//! Smoke tests: every experiment of the harness runs at Quick scale and
//! produces non-empty tables. This is what `repro all --quick` executes.

use bm_harness::experiments::{
    fig10, fig11, fig13, fig14, fig15, fig3, fig5, fig7, fig8, fig9, headline, Scale,
};
use bm_metrics::Table;

fn assert_tables(name: &str, tables: &[Table]) {
    assert!(!tables.is_empty(), "{name}: no tables");
    for t in tables {
        assert!(t.row_count() > 0, "{name}: empty table {}", t.title());
        // Markdown and CSV render without panicking and agree on rows.
        let md_rows = t.to_markdown().lines().count() - 3; // title + header + separator
        let csv_rows = t.to_csv().lines().count() - 1;
        assert_eq!(md_rows, csv_rows, "{name}: render mismatch");
    }
}

#[test]
fn fig3_smoke() {
    assert_tables("fig3", &fig3::run(Scale::Quick));
}

#[test]
fn fig5_smoke() {
    let tables = fig5::run(Scale::Quick);
    assert_tables("fig5", &tables);
    // Both timelines list all 8 requests.
    assert_eq!(tables[0].row_count(), 8);
    assert_eq!(tables[1].row_count(), 8);
}

#[test]
fn fig7_smoke() {
    assert_tables("fig7a", &fig7::run_a(Scale::Quick));
    assert_tables("fig7b", &fig7::run_b(Scale::Quick));
}

#[test]
fn fig8_smoke() {
    assert_tables("fig8", &fig8::run(Scale::Quick));
}

#[test]
fn fig9_smoke() {
    assert_tables("fig9", &fig9::run(Scale::Quick));
}

#[test]
fn fig10_smoke() {
    assert_tables("fig10", &fig10::run(Scale::Quick));
}

#[test]
fn fig11_smoke() {
    assert_tables("fig11", &fig11::run(Scale::Quick));
}

#[test]
fn fig13_smoke() {
    assert_tables("fig13", &fig13::run(Scale::Quick));
}

#[test]
fn fig14_smoke() {
    assert_tables("fig14", &fig14::run(Scale::Quick));
}

#[test]
fn fig15_smoke() {
    assert_tables("fig15", &fig15::run(Scale::Quick));
}

#[test]
fn headline_smoke() {
    assert_tables("headline", &headline::run(Scale::Quick));
}
