//! Property-based invariants of the cellular-batching scheduler, driven
//! with randomized workloads across all three models.
//!
//! For any arrival pattern the scheduler must:
//! - execute every node of every request exactly once (no drops, no
//!   duplicates);
//! - never batch nodes of different cell types into one task;
//! - never exceed the cell type's maximum batch size;
//! - respect dependencies (a node only runs after its dependencies);
//! - pin subgraphs: concurrent in-flight tasks of one subgraph stay on
//!   one worker;
//! - complete every request (no livelock) with monotone timestamps.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use bm_core::{CellularEngine, RequestId, SchedulerConfig, WorkerId};
use bm_model::{LstmLm, Model, RequestInput, Seq2Seq, TreeLstm, TreeShape};
use proptest::prelude::*;

/// A random tree shape with up to `depth` levels.
fn tree_strategy(depth: u32) -> impl Strategy<Value = TreeShape> {
    let leaf = (0u32..100).prop_map(TreeShape::leaf);
    leaf.prop_recursive(depth, 24, 2, |inner| {
        (inner.clone(), inner).prop_map(|(l, r)| TreeShape::internal(l, r))
    })
}

#[derive(Debug, Clone)]
enum Workload {
    Lstm(Vec<Vec<u32>>),
    Seq2Seq(Vec<(Vec<u32>, usize)>),
    Tree(Vec<TreeShape>),
}

fn workload_strategy() -> impl Strategy<Value = Workload> {
    prop_oneof![
        proptest::collection::vec(proptest::collection::vec(0u32..100, 1..12), 1..12)
            .prop_map(Workload::Lstm),
        proptest::collection::vec(
            (proptest::collection::vec(2u32..100, 1..8), 1usize..8),
            1..10
        )
        .prop_map(Workload::Seq2Seq),
        proptest::collection::vec(tree_strategy(4), 1..10).prop_map(Workload::Tree),
    ]
}

fn build(workload: &Workload) -> (Arc<dyn Model>, Vec<RequestInput>) {
    match workload {
        Workload::Lstm(seqs) => (
            Arc::new(LstmLm::small()),
            seqs.iter()
                .map(|s| RequestInput::Sequence(s.clone()))
                .collect(),
        ),
        Workload::Seq2Seq(pairs) => (
            Arc::new(Seq2Seq::small()),
            pairs
                .iter()
                .map(|(src, d)| RequestInput::Pair {
                    src: src.clone(),
                    decode_len: *d,
                })
                .collect(),
        ),
        Workload::Tree(trees) => (
            Arc::new(TreeLstm::small()),
            trees
                .iter()
                .map(|t| RequestInput::Tree(t.clone()))
                .collect(),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scheduler_invariants_hold(
        workload in workload_strategy(),
        workers in 1usize..4,
        max_tasks in 1usize..6,
        arrival_spread in 0u64..50,
    ) {
        let (model, inputs) = build(&workload);
        let registry = Arc::new(model.registry().clone());
        let mut engine = CellularEngine::new(
            Arc::clone(&registry),
            SchedulerConfig::new().max_tasks_to_submit(max_tasks),
        );

        // Admit requests at staggered times.
        let mut expected_nodes: HashMap<u64, usize> = HashMap::new();
        for (i, input) in inputs.iter().enumerate() {
            let graph = model.unfold(input);
            expected_nodes.insert(i as u64, graph.len());
            engine.on_arrival(RequestId(i as u64), graph, i as u64 * arrival_spread);
        }

        // Drive to completion round-robin over workers, one task at a
        // time per worker (serial virtual time).
        let mut executed: HashSet<(u64, u32)> = HashSet::new();
        let mut completed: HashMap<u64, (u64, usize)> = HashMap::new();
        let mut now = 1000;
        let mut stalled = 0;
        // Per-subgraph pinning check: subgraph -> (worker, open tasks).
        let mut sg_pins: HashMap<bm_core::SubgraphId, u32> = HashMap::new();
        while engine.active_requests() > 0 {
            let mut progressed = false;
            for w in 0..workers {
                let tasks = engine.dispatch(WorkerId(w as u32));
                for t in &tasks {
                    // One cell type per task, within max batch.
                    let meta = registry.meta(t.cell_type);
                    prop_assert!(t.batch_size() <= meta.max_batch);
                    prop_assert!(!t.entries.is_empty());
                    for sg in t.subgraphs.iter() {
                        // A subgraph with in-flight tasks must stay on
                        // one worker.
                        if let Some(prev) = sg_pins.get(sg) {
                            prop_assert_eq!(*prev, t.worker.0, "subgraph moved while pinned");
                        }
                        sg_pins.insert(*sg, t.worker.0);
                    }
                    for e in &t.entries {
                        // Exactly-once execution.
                        prop_assert!(
                            executed.insert((e.request.0, e.node.0)),
                            "node executed twice"
                        );
                        // Dependencies executed first (same worker FIFO
                        // or completed earlier).
                        for d in e.deps.iter() {
                            prop_assert!(
                                executed.contains(&(e.request.0, d.0)),
                                "dependency not yet executed"
                            );
                        }
                    }
                }
                // Complete the tasks in order.
                for t in tasks {
                    now += 1;
                    engine.on_task_started(t.id, now);
                    let tokens = vec![None; t.entries.len()];
                    for c in engine.on_task_completed(t.id, &tokens, now) {
                        prop_assert!(c.start_us <= c.completion_us);
                        prop_assert!(c.arrival_us <= c.start_us);
                        completed.insert(c.id.0, (c.completion_us, c.executed_nodes));
                    }
                    // Task closed; its subgraphs may unpin. Conservatively
                    // clear and let future tasks re-pin.
                    for sg in t.subgraphs.iter() {
                        sg_pins.remove(sg);
                    }
                    progressed = true;
                }
            }
            if !progressed {
                stalled += 1;
                prop_assert!(stalled < 3, "scheduler wedged with work remaining");
            } else {
                stalled = 0;
            }
        }

        // Every request completed, with every node executed exactly once.
        prop_assert_eq!(completed.len(), inputs.len());
        for (req, n) in &expected_nodes {
            let (_, executed_nodes) = completed[req];
            prop_assert_eq!(executed_nodes, *n, "request {} node count", req);
        }
        let total: usize = expected_nodes.values().sum();
        prop_assert_eq!(executed.len(), total);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cancellation invariants: under arbitrary cancel timing each
    /// request resolves exactly once (a normal completion or one
    /// cancelled record), no node of a cancelled request is dispatched
    /// after the cancel, and the engine always drains.
    #[test]
    fn cancellation_resolves_each_request_exactly_once(
        workload in workload_strategy(),
        workers in 1usize..4,
        max_tasks in 1usize..6,
        cancels in proptest::collection::vec((0usize..12, 0u64..30), 1..8),
    ) {
        let (model, inputs) = build(&workload);
        let registry = Arc::new(model.registry().clone());
        let mut engine = CellularEngine::new(
            Arc::clone(&registry),
            SchedulerConfig::new().max_tasks_to_submit(max_tasks),
        );

        let mut expected_nodes: HashMap<u64, usize> = HashMap::new();
        for (i, input) in inputs.iter().enumerate() {
            let graph = model.unfold(input);
            expected_nodes.insert(i as u64, graph.len());
            engine.on_arrival(RequestId(i as u64), graph, i as u64);
        }
        // (round, request) cancel schedule, normalized to valid ids.
        let cancels: Vec<(u64, u64)> = cancels
            .iter()
            .map(|&(req, round)| (round, (req % inputs.len()) as u64))
            .collect();

        let mut cancel_requested: HashSet<u64> = HashSet::new();
        // request -> cancelled flag of its single completion record.
        let mut resolved: HashMap<u64, bool> = HashMap::new();
        let mut now = 1000u64;
        let mut round = 0u64;
        let mut stalled = 0;
        while engine.active_requests() > 0 {
            // Dispatch first so this round's cancels land while tasks
            // are in flight, exercising the Draining path.
            let mut inflight = Vec::new();
            for w in 0..workers {
                for t in engine.dispatch(WorkerId(w as u32)) {
                    for e in &t.entries {
                        prop_assert!(
                            !cancel_requested.contains(&e.request.0),
                            "dispatched a node of cancelled request {}", e.request.0
                        );
                    }
                    inflight.push(t);
                }
            }

            for &(at, req) in &cancels {
                if at != round {
                    continue;
                }
                match engine.cancel_request(RequestId(req), now) {
                    bm_core::CancelOutcome::Finished(c) => {
                        prop_assert!(c.cancelled);
                        prop_assert!(
                            resolved.insert(req, true).is_none(),
                            "request {} resolved twice", req
                        );
                    }
                    bm_core::CancelOutcome::Draining => {
                        prop_assert!(!resolved.contains_key(&req), "draining after resolution");
                    }
                    bm_core::CancelOutcome::Unknown => {
                        prop_assert!(
                            resolved.contains_key(&req),
                            "unknown id {} that never resolved", req
                        );
                    }
                }
                if !resolved.contains_key(&req) {
                    cancel_requested.insert(req);
                }
            }
            round += 1;

            let progressed = !inflight.is_empty();
            for t in inflight {
                now += 1;
                engine.on_task_started(t.id, now);
                let tokens = vec![None; t.entries.len()];
                for c in engine.on_task_completed(t.id, &tokens, now) {
                    prop_assert_eq!(
                        c.cancelled,
                        cancel_requested.contains(&c.id.0),
                        "cancelled flag mismatch for request {}", c.id.0
                    );
                    if !c.cancelled {
                        prop_assert_eq!(c.executed_nodes, expected_nodes[&c.id.0]);
                    }
                    prop_assert!(
                        resolved.insert(c.id.0, c.cancelled).is_none(),
                        "request {} resolved twice", c.id.0
                    );
                }
            }
            if !progressed {
                stalled += 1;
                prop_assert!(stalled < 3, "engine wedged with work remaining");
            } else {
                stalled = 0;
            }
        }

        // Fully drained, every request resolved exactly once, and the
        // stats ledger agrees with the records.
        prop_assert_eq!(resolved.len(), inputs.len());
        for w in 0..workers {
            prop_assert!(engine.dispatch(WorkerId(w as u32)).is_empty());
        }
        let stats = engine.stats();
        prop_assert_eq!(
            stats.requests_completed + stats.requests_cancelled,
            inputs.len() as u64
        );
        prop_assert_eq!(
            stats.requests_cancelled,
            resolved.values().filter(|&&c| c).count() as u64
        );
    }
}
