//! Property-based invariants of the cellular-batching scheduler, driven
//! with randomized workloads across all three models.
//!
//! For any arrival pattern the scheduler must:
//! - execute every node of every request exactly once (no drops, no
//!   duplicates);
//! - never batch nodes of different cell types into one task;
//! - never exceed the cell type's maximum batch size;
//! - respect dependencies (a node only runs after its dependencies);
//! - pin subgraphs: concurrent in-flight tasks of one subgraph stay on
//!   one worker;
//! - complete every request (no livelock) with monotone timestamps.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use bm_core::{CellularEngine, RequestId, SchedulerConfig, WorkerId};
use bm_model::{LstmLm, Model, RequestInput, Seq2Seq, TreeLstm, TreeShape};
use proptest::prelude::*;

/// A random tree shape with up to `depth` levels.
fn tree_strategy(depth: u32) -> impl Strategy<Value = TreeShape> {
    let leaf = (0u32..100).prop_map(TreeShape::leaf);
    leaf.prop_recursive(depth, 24, 2, |inner| {
        (inner.clone(), inner).prop_map(|(l, r)| TreeShape::internal(l, r))
    })
}

#[derive(Debug, Clone)]
enum Workload {
    Lstm(Vec<Vec<u32>>),
    Seq2Seq(Vec<(Vec<u32>, usize)>),
    Tree(Vec<TreeShape>),
}

fn workload_strategy() -> impl Strategy<Value = Workload> {
    prop_oneof![
        proptest::collection::vec(proptest::collection::vec(0u32..100, 1..12), 1..12)
            .prop_map(Workload::Lstm),
        proptest::collection::vec(
            (proptest::collection::vec(2u32..100, 1..8), 1usize..8),
            1..10
        )
        .prop_map(Workload::Seq2Seq),
        proptest::collection::vec(tree_strategy(4), 1..10).prop_map(Workload::Tree),
    ]
}

fn build(workload: &Workload) -> (Arc<dyn Model>, Vec<RequestInput>) {
    match workload {
        Workload::Lstm(seqs) => (
            Arc::new(LstmLm::small()),
            seqs.iter()
                .map(|s| RequestInput::Sequence(s.clone()))
                .collect(),
        ),
        Workload::Seq2Seq(pairs) => (
            Arc::new(Seq2Seq::small()),
            pairs
                .iter()
                .map(|(src, d)| RequestInput::Pair {
                    src: src.clone(),
                    decode_len: *d,
                })
                .collect(),
        ),
        Workload::Tree(trees) => (
            Arc::new(TreeLstm::small()),
            trees
                .iter()
                .map(|t| RequestInput::Tree(t.clone()))
                .collect(),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scheduler_invariants_hold(
        workload in workload_strategy(),
        workers in 1usize..4,
        max_tasks in 1usize..6,
        arrival_spread in 0u64..50,
    ) {
        let (model, inputs) = build(&workload);
        let registry = Arc::new(model.registry().clone());
        let mut engine = CellularEngine::new(
            Arc::clone(&registry),
            SchedulerConfig::new().max_tasks_to_submit(max_tasks),
        );

        // Admit requests at staggered times.
        let mut expected_nodes: HashMap<u64, usize> = HashMap::new();
        for (i, input) in inputs.iter().enumerate() {
            let graph = model.unfold(input);
            expected_nodes.insert(i as u64, graph.len());
            engine.on_arrival(RequestId(i as u64), graph, i as u64 * arrival_spread);
        }

        // Drive to completion round-robin over workers, one task at a
        // time per worker (serial virtual time).
        let mut executed: HashSet<(u64, u32)> = HashSet::new();
        let mut completed: HashMap<u64, (u64, usize)> = HashMap::new();
        let mut now = 1000;
        let mut stalled = 0;
        // Per-subgraph pinning check: subgraph -> (worker, open tasks).
        let mut sg_pins: HashMap<bm_core::SubgraphId, u32> = HashMap::new();
        while engine.active_requests() > 0 {
            let mut progressed = false;
            for w in 0..workers {
                let tasks = engine.dispatch(WorkerId(w as u32));
                for t in &tasks {
                    // One cell type per task, within max batch.
                    let meta = registry.meta(t.cell_type);
                    prop_assert!(t.batch_size() <= meta.max_batch);
                    prop_assert!(!t.entries.is_empty());
                    for sg in t.subgraphs.iter() {
                        // A subgraph with in-flight tasks must stay on
                        // one worker.
                        if let Some(prev) = sg_pins.get(sg) {
                            prop_assert_eq!(*prev, t.worker.0, "subgraph moved while pinned");
                        }
                        sg_pins.insert(*sg, t.worker.0);
                    }
                    for e in &t.entries {
                        // Exactly-once execution.
                        prop_assert!(
                            executed.insert((e.request.0, e.node.0)),
                            "node executed twice"
                        );
                        // Dependencies executed first (same worker FIFO
                        // or completed earlier).
                        for d in e.deps.iter() {
                            prop_assert!(
                                executed.contains(&(e.request.0, d.0)),
                                "dependency not yet executed"
                            );
                        }
                    }
                }
                // Complete the tasks in order.
                for t in tasks {
                    now += 1;
                    engine.on_task_started(t.id, now);
                    let tokens = vec![None; t.entries.len()];
                    for c in engine.on_task_completed(t.id, &tokens, now) {
                        prop_assert!(c.start_us <= c.completion_us);
                        prop_assert!(c.arrival_us <= c.start_us);
                        completed.insert(c.id.0, (c.completion_us, c.executed_nodes));
                    }
                    // Task closed; its subgraphs may unpin. Conservatively
                    // clear and let future tasks re-pin.
                    for sg in t.subgraphs.iter() {
                        sg_pins.remove(sg);
                    }
                    progressed = true;
                }
            }
            if !progressed {
                stalled += 1;
                prop_assert!(stalled < 3, "scheduler wedged with work remaining");
            } else {
                stalled = 0;
            }
        }

        // Every request completed, with every node executed exactly once.
        prop_assert_eq!(completed.len(), inputs.len());
        for (req, n) in &expected_nodes {
            let (_, executed_nodes) = completed[req];
            prop_assert_eq!(executed_nodes, *n, "request {} node count", req);
        }
        let total: usize = expected_nodes.values().sum();
        prop_assert_eq!(executed.len(), total);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cancellation invariants: under arbitrary cancel timing each
    /// request resolves exactly once (a normal completion or one
    /// cancelled record), no node of a cancelled request is dispatched
    /// after the cancel, and the engine always drains.
    #[test]
    fn cancellation_resolves_each_request_exactly_once(
        workload in workload_strategy(),
        workers in 1usize..4,
        max_tasks in 1usize..6,
        cancels in proptest::collection::vec((0usize..12, 0u64..30), 1..8),
    ) {
        let (model, inputs) = build(&workload);
        let registry = Arc::new(model.registry().clone());
        let mut engine = CellularEngine::new(
            Arc::clone(&registry),
            SchedulerConfig::new().max_tasks_to_submit(max_tasks),
        );

        let mut expected_nodes: HashMap<u64, usize> = HashMap::new();
        for (i, input) in inputs.iter().enumerate() {
            let graph = model.unfold(input);
            expected_nodes.insert(i as u64, graph.len());
            engine.on_arrival(RequestId(i as u64), graph, i as u64);
        }
        // (round, request) cancel schedule, normalized to valid ids.
        let cancels: Vec<(u64, u64)> = cancels
            .iter()
            .map(|&(req, round)| (round, (req % inputs.len()) as u64))
            .collect();

        let mut cancel_requested: HashSet<u64> = HashSet::new();
        // request -> cancelled flag of its single completion record.
        let mut resolved: HashMap<u64, bool> = HashMap::new();
        let mut now = 1000u64;
        let mut round = 0u64;
        let mut stalled = 0;
        while engine.active_requests() > 0 {
            // Dispatch first so this round's cancels land while tasks
            // are in flight, exercising the Draining path.
            let mut inflight = Vec::new();
            for w in 0..workers {
                for t in engine.dispatch(WorkerId(w as u32)) {
                    for e in &t.entries {
                        prop_assert!(
                            !cancel_requested.contains(&e.request.0),
                            "dispatched a node of cancelled request {}", e.request.0
                        );
                    }
                    inflight.push(t);
                }
            }

            for &(at, req) in &cancels {
                if at != round {
                    continue;
                }
                match engine.cancel_request(RequestId(req), now) {
                    bm_core::CancelOutcome::Finished(c) => {
                        prop_assert!(c.cancelled);
                        prop_assert!(
                            resolved.insert(req, true).is_none(),
                            "request {} resolved twice", req
                        );
                    }
                    bm_core::CancelOutcome::Draining => {
                        prop_assert!(!resolved.contains_key(&req), "draining after resolution");
                    }
                    bm_core::CancelOutcome::Unknown => {
                        prop_assert!(
                            resolved.contains_key(&req),
                            "unknown id {} that never resolved", req
                        );
                    }
                }
                if !resolved.contains_key(&req) {
                    cancel_requested.insert(req);
                }
            }
            round += 1;

            let progressed = !inflight.is_empty();
            for t in inflight {
                now += 1;
                engine.on_task_started(t.id, now);
                let tokens = vec![None; t.entries.len()];
                for c in engine.on_task_completed(t.id, &tokens, now) {
                    prop_assert_eq!(
                        c.cancelled,
                        cancel_requested.contains(&c.id.0),
                        "cancelled flag mismatch for request {}", c.id.0
                    );
                    if !c.cancelled {
                        prop_assert_eq!(c.executed_nodes, expected_nodes[&c.id.0]);
                    }
                    prop_assert!(
                        resolved.insert(c.id.0, c.cancelled).is_none(),
                        "request {} resolved twice", c.id.0
                    );
                }
            }
            if !progressed {
                stalled += 1;
                prop_assert!(stalled < 3, "engine wedged with work remaining");
            } else {
                stalled = 0;
            }
        }

        // Fully drained, every request resolved exactly once, and the
        // stats ledger agrees with the records.
        prop_assert_eq!(resolved.len(), inputs.len());
        for w in 0..workers {
            prop_assert!(engine.dispatch(WorkerId(w as u32)).is_empty());
        }
        let stats = engine.stats();
        prop_assert_eq!(
            stats.requests_completed + stats.requests_cancelled,
            inputs.len() as u64
        );
        prop_assert_eq!(
            stats.requests_cancelled,
            resolved.values().filter(|&&c| c).count() as u64
        );
    }
}

/// A comparable summary of a dispatch result: (cell type, worker,
/// entries as (request, node), subgraphs) per task.
type TaskSig = Vec<(usize, u32, Vec<(u64, u32)>, Vec<bm_core::SubgraphId>)>;

fn sig(tasks: &[bm_core::Task]) -> TaskSig {
    tasks
        .iter()
        .map(|t| {
            (
                t.cell_type.index(),
                t.worker.0,
                t.entries.iter().map(|e| (e.request.0, e.node.0)).collect(),
                t.subgraphs.to_vec(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PaperDefault under the policy trait is bit-identical to the
    /// default-configured scheduler: two engines fed the same arrivals
    /// and driven in lockstep (across models × workers × pipeline
    /// depth) produce identical task streams. The second engine also
    /// round-trips through a policy swap first, so a stale-state
    /// regression in `set_policy_kind` would surface here.
    #[test]
    fn paper_default_under_trait_is_bit_identical(
        workload in workload_strategy(),
        workers in 1usize..4,
        max_tasks in 1usize..6,
        depth in 1usize..4,
    ) {
        use bm_core::PolicyKind;

        let (model, inputs) = build(&workload);
        let registry = Arc::new(model.registry().clone());
        let mut a = CellularEngine::new(
            Arc::clone(&registry),
            SchedulerConfig::new().max_tasks_to_submit(max_tasks),
        );
        let mut b = CellularEngine::new(
            Arc::clone(&registry),
            SchedulerConfig::new()
                .max_tasks_to_submit(max_tasks)
                .policy(PolicyKind::PaperDefault),
        );
        b.set_policy_kind(PolicyKind::lazy_slack());
        b.set_policy_kind(PolicyKind::PaperDefault);

        for (i, input) in inputs.iter().enumerate() {
            let now = i as u64;
            a.on_arrival(RequestId(i as u64), model.unfold(input), now);
            b.on_arrival(RequestId(i as u64), model.unfold(input), now);
        }

        let mut inflight: std::collections::VecDeque<(bm_core::Task, bm_core::Task)> =
            Default::default();
        let mut now = 1000u64;
        let mut stalled = 0;
        while a.active_requests() > 0 {
            let mut dispatched = false;
            for w in 0..workers {
                let ta = a.dispatch(WorkerId(w as u32));
                let tb = b.dispatch(WorkerId(w as u32));
                prop_assert_eq!(sig(&ta), sig(&tb), "task streams diverged");
                dispatched |= !ta.is_empty();
                inflight.extend(ta.into_iter().zip(tb));
            }
            // Hold up to `depth` tasks in flight across rounds; drain
            // fully when nothing new formed so completions release work.
            let keep = if dispatched { depth } else { 0 };
            let mut completed = false;
            while inflight.len() > keep {
                let (x, y) = inflight.pop_front().expect("nonempty");
                now += 1;
                a.on_task_started(x.id, now);
                b.on_task_started(y.id, now);
                let tokens = vec![None; x.entries.len()];
                let ca: Vec<u64> = a
                    .on_task_completed(x.id, &tokens, now)
                    .iter()
                    .map(|c| c.id.0)
                    .collect();
                let cb: Vec<u64> = b
                    .on_task_completed(y.id, &tokens, now)
                    .iter()
                    .map(|c| c.id.0)
                    .collect();
                prop_assert_eq!(ca, cb, "completion streams diverged");
                completed = true;
            }
            if !dispatched && !completed {
                stalled += 1;
                prop_assert!(stalled < 3, "engines wedged with work remaining");
            } else {
                stalled = 0;
            }
        }
        prop_assert_eq!(b.active_requests(), 0);
    }
}

/// Re-derives Algorithm 1's cell-type selection (lines 5–10) from the
/// engine's observable queue depths: saturation, then starvation, then
/// priority; highest priority wins ties, last registry entry winning
/// equal-priority ties (`max_by_key` keeps the last maximum).
fn predict_alg1(
    metas: &[(usize, u32)],    // (max_batch, priority) per type index
    depths: &[(usize, usize)], // (ready_nodes, running_tasks)
) -> Option<(usize, bm_trace::BatchReason)> {
    use bm_trace::BatchReason;
    let tier = |f: &dyn Fn(usize) -> bool| -> Option<usize> {
        (0..metas.len())
            .filter(|&i| depths[i].0 > 0 && f(i))
            .max_by_key(|&i| metas[i].1)
    };
    if let Some(i) = tier(&|i| depths[i].0 >= metas[i].0) {
        return Some((i, BatchReason::Saturation));
    }
    if let Some(i) = tier(&|i| depths[i].1 == 0) {
        return Some((i, BatchReason::Starvation));
    }
    tier(&|_| true).map(|i| (i, BatchReason::Priority))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The engine's picks match an independent re-implementation of
    /// Algorithm 1 derived only from observable queue depths: same cell
    /// type and same recorded `BatchReason`, across all three models
    /// and pipeline depths. Single worker, so subgraph pinning can
    /// never mask the selection.
    #[test]
    fn paper_default_matches_algorithm1_oracle(
        workload in workload_strategy(),
        max_tasks in 1usize..6,
        depth in 1usize..4,
    ) {
        use bm_trace::{EventKind, RingBufferSink};

        let (model, inputs) = build(&workload);
        let registry = Arc::new(model.registry().clone());
        let metas: Vec<(usize, u32)> = registry
            .iter()
            .map(|m| (m.max_batch, m.priority))
            .collect();
        let mut engine = CellularEngine::new(
            Arc::clone(&registry),
            SchedulerConfig::new().max_tasks_to_submit(max_tasks),
        );
        let sink = Arc::new(RingBufferSink::new(4096));
        engine.set_trace_sink(sink.clone());

        for (i, input) in inputs.iter().enumerate() {
            engine.on_arrival(RequestId(i as u64), model.unfold(input), i as u64);
        }
        sink.drain();

        let mut inflight: std::collections::VecDeque<bm_core::Task> = Default::default();
        let mut now = 1000u64;
        while engine.active_requests() > 0 {
            let depths = engine.queue_depths();
            let predicted = predict_alg1(&metas, &depths);
            let tasks = engine.dispatch(WorkerId(0));
            let formed: Vec<bm_trace::BatchReason> = sink
                .drain()
                .into_iter()
                .filter_map(|e| match e.kind {
                    EventKind::BatchFormed { reason, .. } => Some(reason),
                    _ => None,
                })
                .collect();
            match predicted {
                Some((ct, reason)) => {
                    prop_assert!(!tasks.is_empty(), "oracle expected a batch");
                    prop_assert_eq!(tasks[0].cell_type.index(), ct, "cell type diverged");
                    prop_assert_eq!(formed.len(), tasks.len());
                    prop_assert_eq!(formed[0], reason, "selection reason diverged");
                }
                None => prop_assert!(tasks.is_empty(), "batch the oracle ruled out"),
            }
            let dispatched = !tasks.is_empty();
            inflight.extend(tasks);
            prop_assert!(
                dispatched || !inflight.is_empty(),
                "engine wedged with work remaining"
            );
            let keep = if dispatched { depth } else { 0 };
            while inflight.len() > keep {
                let t = inflight.pop_front().expect("nonempty");
                now += 1;
                engine.on_task_started(t.id, now);
                let tokens = vec![None; t.entries.len()];
                engine.on_task_completed(t.id, &tokens, now);
            }
        }
    }
}

/// Drains the sink's `BatchFormed` reasons.
fn formed_reasons(sink: &bm_trace::RingBufferSink) -> Vec<bm_trace::BatchReason> {
    sink.drain()
        .into_iter()
        .filter_map(|e| match e.kind {
            bm_trace::EventKind::BatchFormed { reason, .. } => Some(reason),
            _ => None,
        })
        .collect()
}

/// Regression (stale batch reason): when one `dispatch` call forms
/// several tasks, follow-on tasks must be labelled against the queue
/// state they actually saw, not the selection-time reason. Five
/// single-node requests against `max_batch = 4` form a saturated
/// 4-batch plus a 1-node leftover; the leftover is merely
/// priority-qualified (the first task is still running) and must not
/// inherit the `Saturation` label.
#[test]
fn follow_on_tasks_requalify_their_reason() {
    use bm_model::{LstmLm, LstmLmConfig};
    use bm_trace::{BatchReason, RingBufferSink};

    let model = LstmLm::new(LstmLmConfig {
        max_batch: 4,
        ..Default::default()
    });
    let registry = Arc::new(model.registry().clone());
    let mut engine = CellularEngine::new(
        Arc::clone(&registry),
        SchedulerConfig::new().max_tasks_to_submit(4),
    );
    let sink = Arc::new(RingBufferSink::new(64));
    engine.set_trace_sink(sink.clone());

    for i in 0..5u64 {
        engine.on_arrival(
            RequestId(i),
            model.unfold(&RequestInput::Sequence(vec![1])),
            0,
        );
    }
    sink.drain();
    let tasks = engine.dispatch(WorkerId(0));
    assert_eq!(tasks.len(), 2);
    assert_eq!(tasks[0].batch_size(), 4);
    assert_eq!(tasks[1].batch_size(), 1);
    assert_eq!(
        formed_reasons(&sink),
        vec![BatchReason::Saturation, BatchReason::Priority],
        "follow-on task must requalify, not inherit Saturation"
    );
}

/// Regression (worker-oblivious cell-type pick): a worker must not
/// idle because the highest-priority type's only ready subgraph is
/// pinned to a *different* worker while another type has unpinned
/// ready work. Seq2Seq gives the decoder priority over the encoder;
/// worker 0 holds both an in-flight decoder task (pinning request A's
/// decoder subgraph, which has a further ready node) and an in-flight
/// encoder task, so for worker 1 the pick must fall through the pinned
/// decoder to request B's unpinned encoder work.
#[test]
fn pick_falls_through_type_pinned_to_other_worker() {
    let model = Seq2Seq::small();
    let registry = Arc::new(model.registry().clone());
    let mut engine = CellularEngine::new(
        Arc::clone(&registry),
        SchedulerConfig::new().max_tasks_to_submit(1),
    );
    let mut now = 0u64;
    let finish = |engine: &mut CellularEngine, t: &bm_core::Task, now: &mut u64| {
        *now += 1;
        engine.on_task_started(t.id, *now);
        engine.on_task_completed(t.id, &vec![None; t.entries.len()], *now);
    };

    // Request A: run its encoder to completion on worker 0, then start
    // (and keep in flight) its first decoder step — pinning A's decoder
    // subgraph, whose next node is now ready, to worker 0.
    engine.on_arrival(
        RequestId(0),
        model.unfold(&RequestInput::Pair {
            src: vec![2, 3],
            decode_len: 3,
        }),
        now,
    );
    for _ in 0..2 {
        let t = engine.dispatch(WorkerId(0));
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].cell_type, model.encoder_type());
        finish(&mut engine, &t[0], &mut now);
    }
    let dec = engine.dispatch(WorkerId(0));
    assert_eq!(dec.len(), 1);
    assert_eq!(dec[0].cell_type, model.decoder_type());
    engine.on_task_started(dec[0].id, now);

    // Request C: its single-node encoder task goes in flight on worker
    // 0 too, so the encoder is no longer starving.
    engine.on_arrival(
        RequestId(2),
        model.unfold(&RequestInput::Pair {
            src: vec![2],
            decode_len: 1,
        }),
        now,
    );
    let enc = engine.dispatch(WorkerId(0));
    assert_eq!(enc.len(), 1);
    assert_eq!(enc[0].cell_type, model.encoder_type());
    engine.on_task_started(enc[0].id, now);

    // Request B arrives with unpinned encoder work. The pick for worker
    // 1 prefers the decoder (higher priority, ready node), but its only
    // ready subgraph is pinned to worker 0 — the scheduler must fall
    // through to the encoder instead of idling worker 1.
    engine.on_arrival(
        RequestId(1),
        model.unfold(&RequestInput::Pair {
            src: vec![2],
            decode_len: 1,
        }),
        now,
    );
    let tasks = engine.dispatch(WorkerId(1));
    assert_eq!(tasks.len(), 1, "worker 1 idled despite unpinned ready work");
    assert_eq!(tasks[0].cell_type, model.encoder_type());
    assert_eq!(tasks[0].entries.len(), 1);
    assert_eq!(tasks[0].entries[0].request, RequestId(1));
}

/// Under `DeadlineEdf` the formed batch serves requests in earliest-
/// deadline order, not queue order; `PaperDefault` keeps queue order.
#[test]
fn edf_forms_batches_in_deadline_order() {
    use bm_core::PolicyKind;
    use bm_model::{LstmLm, LstmLmConfig};

    let model = LstmLm::new(LstmLmConfig {
        max_batch: 1,
        ..Default::default()
    });
    let registry = Arc::new(model.registry().clone());
    let arrivals = |engine: &mut CellularEngine| {
        // r0 queues first but has the laxer deadline; r1 is tighter.
        engine.on_arrival_with_deadline(
            RequestId(0),
            model.unfold(&RequestInput::Sequence(vec![1, 2])),
            0,
            Some(200_000),
        );
        engine.on_arrival_with_deadline(
            RequestId(1),
            model.unfold(&RequestInput::Sequence(vec![1, 2])),
            10,
            Some(50_000),
        );
    };

    let mut edf = CellularEngine::new(
        Arc::clone(&registry),
        SchedulerConfig::new()
            .max_tasks_to_submit(1)
            .policy(PolicyKind::DeadlineEdf),
    );
    arrivals(&mut edf);
    let tasks = edf.dispatch(WorkerId(0));
    assert_eq!(tasks.len(), 1);
    assert_eq!(
        tasks[0].entries[0].request,
        RequestId(1),
        "EDF must serve the tighter deadline first"
    );

    let mut paper = CellularEngine::new(
        Arc::clone(&registry),
        SchedulerConfig::new().max_tasks_to_submit(1),
    );
    arrivals(&mut paper);
    let tasks = paper.dispatch(WorkerId(0));
    assert_eq!(tasks.len(), 1);
    assert_eq!(tasks[0].entries[0].request, RequestId(0));
}

/// `LazySlack` engine wiring: a merely priority-qualified batch with
/// ample slack is held (dispatch returns nothing, `next_wakeup`
/// schedules the release), and the hold is released with `Timeout`
/// once the max delay elapses.
#[test]
fn lazy_slack_holds_then_times_out() {
    use bm_core::PolicyKind;
    use bm_model::LstmLm;
    use bm_trace::{BatchReason, RingBufferSink};

    let model = LstmLm::small();
    let registry = Arc::new(model.registry().clone());
    let mut engine = CellularEngine::new(
        Arc::clone(&registry),
        SchedulerConfig::new()
            .max_tasks_to_submit(1)
            .policy(PolicyKind::LazySlack {
                slack_threshold_us: 10_000,
                max_delay_us: 500,
            }),
    );
    let sink = Arc::new(RingBufferSink::new(64));
    engine.set_trace_sink(sink.clone());

    // Ample slack: the deadline is far beyond the hold window.
    engine.on_arrival_with_deadline(
        RequestId(0),
        model.unfold(&RequestInput::Sequence(vec![1, 2, 3, 4])),
        1_000,
        Some(1_000_000),
    );
    sink.drain();

    // Starving type: submits immediately, no hold. Keep it in flight so
    // the next node only priority-qualifies.
    let first = engine.dispatch(WorkerId(0));
    assert_eq!(first.len(), 1);
    assert_eq!(formed_reasons(&sink), vec![BatchReason::Starvation]);
    engine.on_task_started(first[0].id, 1_000);

    // Priority-qualified with ample slack: held.
    assert!(engine.dispatch(WorkerId(0)).is_empty(), "hold expected");
    assert_eq!(engine.next_wakeup(1_000), Some(1_500));

    // At the wakeup the hold times out and the batch is released.
    engine.advance_clock(1_500);
    let released = engine.dispatch(WorkerId(0));
    assert_eq!(released.len(), 1);
    assert_eq!(formed_reasons(&sink), vec![BatchReason::Timeout]);
    assert_eq!(engine.next_wakeup(1_500), None);
}

/// `LazySlack` releases a held batch as soon as the ready queue stops
/// growing (no point waiting longer — nothing new is coalescing), and
/// keeps holding while it does grow.
#[test]
fn lazy_slack_releases_when_growth_stalls() {
    use bm_core::PolicyKind;
    use bm_model::LstmLm;
    use bm_trace::{BatchReason, RingBufferSink};

    let model = LstmLm::small();
    let registry = Arc::new(model.registry().clone());
    let mut engine = CellularEngine::new(
        Arc::clone(&registry),
        SchedulerConfig::new()
            .max_tasks_to_submit(1)
            .policy(PolicyKind::LazySlack {
                slack_threshold_us: 10_000,
                max_delay_us: 100_000,
            }),
    );
    let sink = Arc::new(RingBufferSink::new(64));
    engine.set_trace_sink(sink.clone());

    engine.on_arrival_with_deadline(
        RequestId(0),
        model.unfold(&RequestInput::Sequence(vec![1, 2, 3])),
        1_000,
        Some(10_000_000),
    );
    let first = engine.dispatch(WorkerId(0));
    assert_eq!(first.len(), 1);
    engine.on_task_started(first[0].id, 1_000);
    sink.drain();

    // Hold starts; a second arrival keeps the queue growing, so the
    // hold survives the next poll.
    assert!(engine.dispatch(WorkerId(0)).is_empty(), "hold expected");
    engine.on_arrival_with_deadline(
        RequestId(1),
        model.unfold(&RequestInput::Sequence(vec![1])),
        1_050,
        Some(10_000_000),
    );
    assert!(
        engine.dispatch(WorkerId(0)).is_empty(),
        "growing: keep holding"
    );

    // No further growth: the next poll releases, well before timeout.
    engine.advance_clock(1_100);
    let released = engine.dispatch(WorkerId(0));
    assert_eq!(released.len(), 1);
    assert_eq!(released[0].batch_size(), 2, "hold coalesced both requests");
    assert_eq!(formed_reasons(&sink), vec![BatchReason::SlackRelease]);
}
