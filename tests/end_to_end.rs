//! Workspace-spanning end-to-end tests: workload generation → threaded
//! runtime serving under cellular batching → results verified against
//! the unbatched reference, for all three applications at once.

use std::sync::Arc;

use bm_core::{Runtime, RuntimeOptions, SubmitError};
use bm_model::{reference, LstmLm, Model, RequestInput, Seq2Seq, TreeLstm};
use bm_workload::{Dataset, LengthDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn serve_and_verify(model: Arc<dyn Model>, inputs: &[RequestInput], workers: usize) -> Vec<u64> {
    let rt = Runtime::start(Arc::clone(&model), RuntimeOptions::new().workers(workers));
    let handles: Vec<_> = inputs
        .iter()
        .map(|i| rt.submit_request(i).expect("submit"))
        .collect();
    let mut latencies = Vec::new();
    for (input, h) in inputs.iter().zip(handles) {
        let served = h.wait().completed();
        let expect = reference::execute_graph(&model.unfold(input), model.registry());
        assert_eq!(served.result, expect, "diverged on {input:?}");
        latencies.push(served.timing.completion_us - served.timing.arrival_us);
    }
    rt.shutdown();
    latencies
}

#[test]
fn lstm_wmt_workload_end_to_end() {
    let ds = Dataset::lstm(60, LengthDistribution::wmt15_clipped(30), 900, 21);
    serve_and_verify(Arc::new(LstmLm::small()), ds.items(), 2);
}

#[test]
fn seq2seq_workload_end_to_end() {
    let ds = Dataset::seq2seq(40, LengthDistribution::wmt15_clipped(12), 450, 22);
    serve_and_verify(Arc::new(Seq2Seq::small()), ds.items(), 2);
}

#[test]
fn treelstm_workload_end_to_end() {
    let ds = Dataset::trees(40, LengthDistribution::treebank(), 900, 23);
    serve_and_verify(Arc::new(TreeLstm::small()), ds.items(), 2);
}

#[test]
fn mixed_interleaved_submissions() {
    // Interleave short and long requests: the short ones must not be
    // stuck behind the long ones (continuous leave, §3.2).
    let model: Arc<dyn Model> = Arc::new(LstmLm::small());
    let rt = Runtime::start(Arc::clone(&model), RuntimeOptions::new().workers(1));
    let long = RequestInput::Sequence(vec![1; 120]);
    let short = RequestInput::Sequence(vec![2; 2]);
    let h_long = rt.submit_request(&long).expect("submit");
    let h_shorts: Vec<_> = (0..8)
        .map(|_| rt.submit_request(&short).expect("submit"))
        .collect();
    let long_done = h_long.wait().completed().timing.completion_us;
    for h in h_shorts {
        let t = h.wait().completed().timing;
        assert!(
            t.completion_us < long_done,
            "short request finished at {} after the long one at {long_done}",
            t.completion_us
        );
    }
    rt.shutdown();
}

#[test]
fn repeated_identical_requests_are_deterministic() {
    let model: Arc<dyn Model> = Arc::new(TreeLstm::small());
    let ds = Dataset::trees(5, LengthDistribution::Fixed(7), 900, 9);
    let input = ds.items()[0].clone();
    let rt = Runtime::start(Arc::clone(&model), RuntimeOptions::new().workers(2));
    let results: Vec<_> = (0..6)
        .map(|_| rt.submit_request(&input).expect("submit"))
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.wait().completed().result)
        .collect();
    for r in &results[1..] {
        assert_eq!(
            r, &results[0],
            "identical inputs must give identical outputs"
        );
    }
    rt.shutdown();
}

#[test]
fn stress_small_requests_across_models() {
    // A final soak across all three models in sequence.
    let mut rng = StdRng::seed_from_u64(5);
    let lstm_ds = Dataset::lstm(30, LengthDistribution::Fixed(4), 900, 31);
    serve_and_verify(Arc::new(LstmLm::small()), lstm_ds.items(), 3);

    let tree_ds = Dataset::trees(30, LengthDistribution::Fixed(5), 900, 32);
    let mut picks = Vec::new();
    for _ in 0..20 {
        picks.push(tree_ds.sample(&mut rng).clone());
    }
    serve_and_verify(Arc::new(TreeLstm::small()), &picks, 3);
}

#[test]
fn gru_model_end_to_end() {
    // The GRU extension: a cell whose state has no memory component
    // flows through the whole stack unchanged.
    use bm_model::GruLm;
    let ds = Dataset::lstm(30, LengthDistribution::Fixed(5), 900, 41);
    serve_and_verify(Arc::new(GruLm::small()), ds.items(), 2);
}

#[test]
fn malformed_requests_rejected_gracefully() {
    let model: Arc<dyn Model> = Arc::new(LstmLm::small());
    let rt = Runtime::start(Arc::clone(&model), RuntimeOptions::new().workers(1));
    // Empty sequence, out-of-vocabulary token, wrong variant — all
    // surface as the typed `SubmitError::Invalid`.
    assert!(matches!(
        rt.submit_request(RequestInput::Sequence(vec![])),
        Err(SubmitError::Invalid(_))
    ));
    assert!(matches!(
        rt.submit_request(RequestInput::Sequence(vec![u32::MAX])),
        Err(SubmitError::Invalid(_))
    ));
    assert!(matches!(
        rt.submit_request(&RequestInput::Pair {
            src: vec![1],
            decode_len: 1
        }),
        Err(SubmitError::Invalid(_))
    ));
    // The runtime is unharmed: a valid request still serves.
    let ok = rt
        .submit_request(RequestInput::Sequence(vec![1, 2]))
        .unwrap();
    assert_eq!(ok.wait().completed().result.executed_count(), 2);
    rt.shutdown();
}
