//! Resident batched state rows for chain cells.
//!
//! The §4.3 gather path pays for batching with data movement: every
//! step copies each request's recurrent state out of its slot rows into
//! a contiguous batch matrix, runs the cell, and scatters the results
//! back. For chain cells the batch composition barely changes between
//! consecutive steps — the same requests advance one token — so almost
//! all of that movement is waste.
//!
//! A [`ResidentBatch`] eliminates the gather half. Each active request's
//! state lives as a row of a persistently-allocated batch matrix pair
//! (`xh`/`aux`, laid out per [`bm_cell::ResidentLayout`]):
//!
//! - **join** (request's first step here) writes one row;
//! - **steady state** moves nothing — the fused step reads and rewrites
//!   the rows in place;
//! - **leave** swap-removes the last occupied row into the hole, so the
//!   occupied rows always form a dense prefix;
//! - **migration** (the request executed its previous node elsewhere)
//!   is detected by a freshness check and repaired by re-fetching the
//!   authoritative state from the arena — correctness never depends on
//!   a row being current.
//!
//! The scatter half remains: every node's output is still published to
//! the request's [`crate::SlotBlock`] so later gathers (tree phases,
//! migrated tasks) and the final output copy-out observe it.
//!
//! ## Row placement
//!
//! [`ResidentBatch::place`] arranges one task's entries at rows
//! `0..batch` in entry order, so the fused step runs over exactly the
//! dense prefix the scheduler batched this tick. Processing entries in
//! order keeps a simple invariant: when entry `i` finds its request
//! already resident at row `j`, then `j >= i` — rows displaced by
//! earlier entries only ever move to indices `>=` the current target —
//! so a single row swap suffices and placement is `O(batch)` row moves
//! worst case, zero in steady state (every request already sits at its
//! row from the previous tick).
//!
//! ## Freshness
//!
//! A row is *fresh* for entry `(request, node, dep)` iff it belongs to
//! `request` and its recorded `last_node` equals `dep` — the node whose
//! output this step consumes. Node ids are unique within a request, so
//! the check is exact regardless of how the row migrated or how long
//! ago it was written. A stale row (the request stepped on another
//! worker in between) is repaired from the slot arena; a chain-start
//! entry (`dep == None`) zeroes the state portion, matching the gather
//! path's implicit zero initial state.

use std::collections::HashMap;

use bm_cell::{Cell, ResidentLayout, Scratch, StateRef};
use bm_model::NodeId;
use bm_tensor::Matrix;

use crate::ids::RequestId;

/// Churn counters of one resident batch, mirrored into telemetry by the
/// owning worker (`bm_resident_joins_total` / `bm_resident_leaves_total`
/// / `bm_resident_compactions_total`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResidentStats {
    /// Rows initialized for a newly-resident request.
    pub joins: u64,
    /// Rows released by eviction ([`ResidentBatch::remove`]).
    pub leaves: u64,
    /// Row moves keeping the occupied prefix dense: swap-remove fills
    /// on leave, displacements on join, and placement swaps.
    pub compaction_moves: u64,
    /// Stale rows repaired from the state arena (the request stepped on
    /// another worker since this row was written).
    pub refetches: u64,
}

/// Per-row bookkeeping: who owns the row and which node last wrote it.
#[derive(Debug, Clone, Copy)]
struct RowMeta {
    request: RequestId,
    /// The node whose output the row currently holds. Prospective: set
    /// when the row is placed for a step, correct once the step runs.
    last_node: NodeId,
}

/// A persistent batch matrix pair holding the resident recurrent state
/// of every request currently parked on one worker for one cell type.
///
/// See the module docs for the protocol. The matrices grow
/// geometrically and never shrink; [`ResidentBatch::clear`] releases
/// all rows (but not the allocation) when the owning worker flushes.
#[derive(Debug)]
pub struct ResidentBatch {
    layout: ResidentLayout,
    /// `(capacity, x_width + hidden)` fused-affine input; chain cells
    /// read `[x|h]` rows directly (LSTM-family park `h` in the right
    /// columns).
    xh: Matrix,
    /// `(capacity, aux_width)` side matrix: `c` for LSTM-family cells,
    /// `h` for GRU.
    aux: Matrix,
    /// One entry per occupied row; `meta.len()` is the occupancy.
    meta: Vec<RowMeta>,
    map: HashMap<RequestId, usize>,
    stats: ResidentStats,
}

/// First allocation, rows. Small: a worker's steady batch is usually a
/// handful of requests, and growth is geometric from here.
const INITIAL_ROWS: usize = 8;

impl ResidentBatch {
    /// An empty resident batch for a cell with the given layout.
    pub fn new(layout: ResidentLayout) -> Self {
        ResidentBatch {
            layout,
            xh: Matrix::zeros(0, layout.xh_width()),
            aux: Matrix::zeros(0, layout.aux_width.max(1)),
            meta: Vec::new(),
            map: HashMap::new(),
            stats: ResidentStats::default(),
        }
    }

    /// Occupied rows (the dense prefix the fused step runs over).
    pub fn occupied(&self) -> usize {
        self.meta.len()
    }

    /// Allocated rows.
    pub fn capacity(&self) -> usize {
        self.xh.rows()
    }

    /// Churn counters since construction (or the last [`Self::clear`]
    /// does *not* reset them — they are monotonic).
    pub fn stats(&self) -> ResidentStats {
        self.stats
    }

    /// The layout rows follow.
    pub fn layout(&self) -> ResidentLayout {
        self.layout
    }

    /// Places `request`'s state at row `i` for a step of `node`, whose
    /// state input is `dep`'s output (`None` for a chain start).
    ///
    /// Must be called for a task's entries in order, `i = 0, 1, …` —
    /// the placement invariant (module docs) depends on it. `fetch` is
    /// consulted only when the row is missing or stale; it returns the
    /// authoritative state of `dep` (normally a slot-arena read).
    ///
    /// # Panics
    ///
    /// Panics if a fetched state's widths do not match the layout.
    pub fn place<'a>(
        &mut self,
        i: usize,
        request: RequestId,
        node: NodeId,
        dep: Option<NodeId>,
        fetch: impl FnOnce() -> StateRef<'a>,
    ) {
        debug_assert!(i <= self.meta.len(), "entries must be placed in order");
        // Steady-state fast path: the request already owns row `i` from
        // its previous step, so no map lookup, no movement — just the
        // freshness check and the meta update.
        if let Some(m) = self.meta.get(i) {
            if m.request == request && dep == Some(m.last_node) {
                self.meta[i].last_node = node;
                return;
            }
        }
        let was_resident = self.map.contains_key(&request);
        let fresh = match self.map.get(&request).copied() {
            Some(j) => {
                // Entries 0..i already occupy rows 0..i, so a resident
                // row for this request can only be at j >= i.
                debug_assert!(j >= i, "placement invariant violated: {j} < {i}");
                if j != i {
                    self.swap_rows(i, j);
                    let displaced = self.meta[j].request;
                    self.map.insert(displaced, j);
                    self.map.insert(request, i);
                    self.stats.compaction_moves += 1;
                }
                dep == Some(self.meta[i].last_node)
            }
            None => {
                // Join: grow the prefix by one row. If the target row
                // is occupied, its owner moves to the new tail slot.
                self.ensure_capacity(self.meta.len() + 1);
                let tail = self.meta.len();
                if i < tail {
                    self.copy_row(i, tail);
                    let displaced = self.meta[i];
                    self.meta.push(displaced);
                    self.map.insert(displaced.request, tail);
                    self.stats.compaction_moves += 1;
                } else {
                    self.meta.push(RowMeta {
                        request,
                        last_node: node,
                    });
                }
                self.map.insert(request, i);
                self.stats.joins += 1;
                false
            }
        };
        if !fresh {
            match dep {
                None => self.zero_state(i),
                Some(_) => {
                    if was_resident {
                        self.stats.refetches += 1;
                    }
                    self.write_state(i, fetch());
                }
            }
        }
        self.meta[i] = RowMeta {
            request,
            last_node: node,
        };
    }

    /// Runs one fused step over rows `0..rows` (the entries just
    /// placed), emitting `(row, h, c, token)` per row — bitwise the
    /// outputs of the gather path over equal state rows.
    pub fn step<F>(
        &mut self,
        cell: &Cell,
        rows: usize,
        tokens: &[Option<u32>],
        scratch: &mut Scratch,
        emit: F,
    ) where
        F: FnMut(usize, &[f32], &[f32], Option<u32>),
    {
        assert!(rows <= self.meta.len(), "step past the occupied prefix");
        cell.step_resident(&mut self.xh, &mut self.aux, rows, tokens, scratch, emit);
    }

    /// Evicts `request`'s row, if resident: the last occupied row
    /// swap-fills the hole so the prefix stays dense. Returns whether a
    /// row was released.
    pub fn remove(&mut self, request: RequestId) -> bool {
        let Some(i) = self.map.remove(&request) else {
            return false;
        };
        let last = self.meta.len() - 1;
        if i != last {
            self.copy_row(last, i);
            self.meta[i] = self.meta[last];
            self.map.insert(self.meta[i].request, i);
            self.stats.compaction_moves += 1;
        }
        self.meta.pop();
        self.stats.leaves += 1;
        true
    }

    /// Releases every row (allocation retained). Used by the owning
    /// worker to bound memory when eviction notices pile up; stale rows
    /// would be repaired by the freshness check anyway, so this is pure
    /// hygiene.
    pub fn clear(&mut self) {
        self.meta.clear();
        self.map.clear();
    }

    fn ensure_capacity(&mut self, rows: usize) {
        if rows <= self.xh.rows() {
            return;
        }
        let cap = rows.next_power_of_two().max(INITIAL_ROWS);
        self.xh = grow(&self.xh, cap);
        self.aux = grow(&self.aux, cap);
    }

    /// Swaps rows `i` and `j` of both matrices.
    fn swap_rows(&mut self, i: usize, j: usize) {
        swap_rows(&mut self.xh, i, j);
        swap_rows(&mut self.aux, i, j);
        self.meta.swap(i, j);
    }

    /// Copies row `src` over row `dst` in both matrices (meta is the
    /// caller's job — join and leave update it differently).
    fn copy_row(&mut self, src: usize, dst: usize) {
        copy_row(&mut self.xh, src, dst);
        copy_row(&mut self.aux, src, dst);
    }

    /// Zeroes row `i`'s state portion — the implicit zero initial state
    /// of a chain start. The embedded-input columns need no zeroing
    /// (every step rewrites them), nor does a GRU row's `xh` right half
    /// (the step refreshes it from `aux`).
    fn zero_state(&mut self, i: usize) {
        if self.layout.h_in_xh {
            self.xh.row_mut(i)[self.layout.x_width..].fill(0.0);
        }
        if self.layout.aux_width > 0 {
            self.aux.row_mut(i).fill(0.0);
        }
    }

    /// Writes an authoritative state into row `i` per the layout.
    fn write_state(&mut self, i: usize, st: StateRef<'_>) {
        if self.layout.h_in_xh {
            self.xh.row_mut(i)[self.layout.x_width..].copy_from_slice(st.h);
            self.aux.row_mut(i).copy_from_slice(st.c);
        } else {
            self.aux.row_mut(i).copy_from_slice(st.h);
        }
    }
}

/// Reallocates `m` at `cap` rows, copying the existing rows.
fn grow(m: &Matrix, cap: usize) -> Matrix {
    let w = m.cols();
    let mut data = vec![0.0f32; cap * w];
    data[..m.len()].copy_from_slice(m.as_slice());
    Matrix::from_vec(cap, w, data)
}

fn swap_rows(m: &mut Matrix, i: usize, j: usize) {
    if i == j {
        return;
    }
    let w = m.cols();
    let (lo, hi) = (i.min(j), i.max(j));
    let (a, b) = m.as_mut_slice().split_at_mut(hi * w);
    a[lo * w..(lo + 1) * w].swap_with_slice(&mut b[..w]);
}

fn copy_row(m: &mut Matrix, src: usize, dst: usize) {
    if src == dst {
        return;
    }
    let w = m.cols();
    m.as_mut_slice()
        .copy_within(src * w..(src + 1) * w, dst * w);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_cell::{Cell, CellState, InvocationInput, LstmCell};

    fn lstm() -> Cell {
        Cell::Lstm(LstmCell::seeded(4, 6, 50, 9))
    }

    fn unreachable_fetch<'a>() -> StateRef<'a> {
        panic!("fetch called for a row expected fresh or zero-init")
    }

    /// Internal consistency: map and meta agree, occupancy matches.
    fn check_invariants(rb: &ResidentBatch) {
        assert_eq!(rb.map.len(), rb.meta.len());
        for (r, m) in rb.meta.iter().enumerate() {
            assert_eq!(rb.map.get(&m.request), Some(&r), "row {r} map mismatch");
        }
        assert!(rb.capacity() >= rb.occupied());
    }

    /// Steps requests through a ResidentBatch under churn (joins,
    /// leaves, reorderings, a simulated migration) and checks every
    /// output bitwise against the gather path, with vacated rows
    /// NaN-poisoned to prove they are never read.
    #[test]
    fn churn_preserves_row_map_and_matches_gather() {
        let cell = lstm();
        let layout = cell.resident_layout().unwrap();
        let mut rb = ResidentBatch::new(layout);
        let mut scratch = Scratch::new();
        // Authoritative per-request state, as the slot arena would hold
        // it: (last node id, state).
        let mut truth: HashMap<RequestId, (u32, CellState)> = HashMap::new();
        let mut next_node: HashMap<RequestId, u32> = HashMap::new();

        // One tick: place + step `batch` (request, token) pairs,
        // asserting each row's output equals the gather path's.
        let tick = |rb: &mut ResidentBatch,
                    scratch: &mut Scratch,
                    truth: &mut HashMap<RequestId, (u32, CellState)>,
                    next_node: &mut HashMap<RequestId, u32>,
                    batch: &[(u64, u32)]| {
            let cell = lstm();
            let mut expected = Vec::new();
            // Resolve every entry's placement inputs first so fetched
            // states outlive the `place` calls below.
            let mut placements: Vec<(RequestId, NodeId, Option<NodeId>, Option<CellState>)> =
                Vec::new();
            for &(r, tok) in batch {
                let req = RequestId(r);
                let n = next_node.entry(req).or_insert(0);
                let node = NodeId(*n);
                let dep = n.checked_sub(1).map(NodeId);
                *n += 1;
                let prev = truth.get(&req).map(|(_, s)| s.clone());
                let want = match &prev {
                    Some(s) => cell.execute_batch(&[InvocationInput::chain(tok, s)]),
                    None => cell.execute_batch(&[InvocationInput::token_only(tok)]),
                };
                expected.push(want.into_iter().next().unwrap());
                placements.push((req, node, dep, prev));
            }
            for (idx, (req, node, dep, prev)) in placements.iter().enumerate() {
                rb.place(idx, *req, *node, *dep, || {
                    let s = prev.as_ref().expect("stale fetch without prior state");
                    StateRef { h: &s.h, c: &s.c }
                });
            }
            let tokens: Vec<Option<u32>> = batch.iter().map(|&(_, t)| Some(t)).collect();
            let mut got = Vec::new();
            rb.step(&cell, batch.len(), &tokens, scratch, |row, h, c, token| {
                assert_eq!(row, got.len());
                got.push((h.to_vec(), c.to_vec(), token));
            });
            for (idx, &(r, _)) in batch.iter().enumerate() {
                let req = RequestId(r);
                let (h, c, _) = &got[idx];
                assert_eq!(&expected[idx].state.h, h, "req {r} h mismatch");
                assert_eq!(&expected[idx].state.c, c, "req {r} c mismatch");
                assert!(h.iter().chain(c.iter()).all(|v| v.is_finite()));
                truth.insert(
                    req,
                    (
                        next_node[&req] - 1,
                        CellState {
                            h: h.clone(),
                            c: c.clone(),
                        },
                    ),
                );
            }
            check_invariants(rb);
        };

        // Joins at increasing rows.
        tick(
            &mut rb,
            &mut scratch,
            &mut truth,
            &mut next_node,
            &[(0, 3), (1, 7), (2, 1)],
        );
        assert_eq!(rb.occupied(), 3);
        // Steady state, reordered (exercises placement swaps).
        tick(
            &mut rb,
            &mut scratch,
            &mut truth,
            &mut next_node,
            &[(2, 4), (0, 9), (1, 2)],
        );
        assert_eq!(rb.stats().joins, 3);
        // Leave in the middle; poison the vacated row.
        assert!(rb.remove(RequestId(0)));
        assert!(!rb.remove(RequestId(0)), "double remove is a no-op");
        let vacated = rb.occupied();
        rb.xh.row_mut(vacated).fill(f32::NAN);
        rb.aux.row_mut(vacated).fill(f32::NAN);
        check_invariants(&rb);
        // Join over the hole (displacement path) plus survivors.
        tick(
            &mut rb,
            &mut scratch,
            &mut truth,
            &mut next_node,
            &[(3, 5), (1, 8), (2, 6)],
        );
        assert_eq!(rb.occupied(), 3);
        // Simulated migration: request 1 steps elsewhere (truth
        // advances, resident row goes stale), then returns — the
        // freshness check must trigger a refetch.
        {
            let req = RequestId(1);
            let n = next_node[&req];
            let (_, prev) = truth[&req].clone();
            let out = cell.execute_batch(&[InvocationInput::chain(11, &prev)]);
            truth.insert(req, (n, out[0].state.clone()));
            next_node.insert(req, n + 1);
        }
        let refetches_before = rb.stats().refetches;
        tick(
            &mut rb,
            &mut scratch,
            &mut truth,
            &mut next_node,
            &[(1, 4), (3, 2)],
        );
        assert_eq!(rb.stats().refetches, refetches_before + 1);
        // Re-join of an evicted request: zero-init must overwrite any
        // poison left in the reused tail row.
        tick(
            &mut rb,
            &mut scratch,
            &mut truth,
            &mut next_node,
            &[(4, 1), (1, 3), (2, 2), (3, 9)],
        );
        assert_eq!(rb.occupied(), 4);
        let s = rb.stats();
        assert_eq!(s.joins, 5);
        assert_eq!(s.leaves, 1);
        assert!(s.compaction_moves >= 2);
    }

    #[test]
    fn join_at_occupied_row_displaces_owner_to_tail() {
        let cell = lstm();
        let mut rb = ResidentBatch::new(cell.resident_layout().unwrap());
        // Two residents at rows 0 and 1.
        rb.place(0, RequestId(10), NodeId(0), None, unreachable_fetch);
        rb.place(1, RequestId(11), NodeId(0), None, unreachable_fetch);
        // Mark their rows so displacement is observable.
        rb.xh.row_mut(0)[0] = 10.0;
        rb.xh.row_mut(1)[0] = 11.0;
        // A new request takes row 0: request 10 must move to row 2.
        rb.place(0, RequestId(12), NodeId(0), None, unreachable_fetch);
        check_invariants(&rb);
        assert_eq!(rb.map[&RequestId(10)], 2);
        assert_eq!(rb.map[&RequestId(12)], 0);
        assert_eq!(rb.xh.row(2)[0], 10.0, "displaced row data moved with it");
        assert_eq!(rb.occupied(), 3);
    }

    #[test]
    fn capacity_grows_geometrically_and_preserves_rows() {
        let cell = lstm();
        let mut rb = ResidentBatch::new(cell.resident_layout().unwrap());
        for r in 0..INITIAL_ROWS + 1 {
            rb.place(r, RequestId(r as u64), NodeId(0), None, unreachable_fetch);
            rb.xh.row_mut(r)[0] = r as f32 + 0.5;
        }
        assert_eq!(rb.capacity(), (INITIAL_ROWS + 1).next_power_of_two());
        for r in 0..INITIAL_ROWS + 1 {
            assert_eq!(rb.xh.row(r)[0], r as f32 + 0.5);
        }
        check_invariants(&rb);
    }

    #[test]
    fn clear_releases_rows_but_keeps_allocation() {
        let cell = lstm();
        let mut rb = ResidentBatch::new(cell.resident_layout().unwrap());
        rb.place(0, RequestId(1), NodeId(0), None, unreachable_fetch);
        let cap = rb.capacity();
        rb.clear();
        assert_eq!(rb.occupied(), 0);
        assert_eq!(rb.capacity(), cap);
        // Re-join works from a cleared batch.
        rb.place(0, RequestId(1), NodeId(0), None, unreachable_fetch);
        check_invariants(&rb);
    }
}
