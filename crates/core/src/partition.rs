//! Cell-graph partitioning into same-type subgraphs.
//!
//! "The request processor analyzes the cell graph of a request to find a
//! subgraph to pass to the scheduler. A subgraph contains a single node
//! or a number of connected nodes with the property that all external
//! dependencies to other parts of the graph have been satisfied.
//! Furthermore, all nodes of a subgraph must be of the same cell type."
//! (§4.3)
//!
//! We partition into *maximal* connected components of same-type nodes
//! (connectivity through dependency edges between nodes of equal type).
//! For the paper's TreeLSTM example this yields exactly the §4.4
//! partition: each leaf is its own subgraph, all internal nodes form one.

use bm_model::CellGraph;

/// The partition of one request's graph into subgraphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// For each node (by index), the local subgraph index it belongs to.
    pub node_subgraph: Vec<usize>,
    /// For each subgraph, its member node indices in topological order.
    pub members: Vec<Vec<usize>>,
    /// For each subgraph, the number of *external* dependency edges
    /// entering it (edges whose source is in a different subgraph).
    pub external_deps: Vec<usize>,
}

impl Partition {
    /// Number of subgraphs.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the partition is empty (only for empty graphs).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Partitions `graph` into maximal same-type connected subgraphs.
pub fn partition(graph: &CellGraph) -> Partition {
    let n = graph.len();
    // Union-find over nodes, uniting same-type dependency edges.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for (id, node) in graph.iter() {
        for d in node.deps.iter() {
            if graph.node(*d).cell_type == node.cell_type {
                let a = find(&mut parent, id.index());
                let b = find(&mut parent, d.index());
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    // Assign dense subgraph indices in order of first appearance.
    let mut node_subgraph = vec![usize::MAX; n];
    let mut members: Vec<Vec<usize>> = Vec::new();
    let mut root_to_sg: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for (i, slot) in node_subgraph.iter_mut().enumerate() {
        let root = find(&mut parent, i);
        let sg = *root_to_sg.entry(root).or_insert_with(|| {
            members.push(Vec::new());
            members.len() - 1
        });
        *slot = sg;
        members[sg].push(i);
    }
    // Count external dependency edges per subgraph.
    let mut external_deps = vec![0usize; members.len()];
    for (id, node) in graph.iter() {
        let sg = node_subgraph[id.index()];
        for d in node.deps.iter() {
            if node_subgraph[d.index()] != sg {
                external_deps[sg] += 1;
            }
        }
    }
    Partition {
        node_subgraph,
        members,
        external_deps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_model::{LstmLm, Model, RequestInput, Seq2Seq, TreeLstm, TreeShape};

    #[test]
    fn lstm_chain_is_one_subgraph() {
        let m = LstmLm::small();
        let g = m.unfold(&RequestInput::Sequence(vec![1, 2, 3, 4, 5]));
        let p = partition(&g);
        assert_eq!(p.len(), 1);
        assert_eq!(p.members[0], vec![0, 1, 2, 3, 4]);
        assert_eq!(p.external_deps[0], 0);
    }

    #[test]
    fn seq2seq_is_two_subgraphs() {
        let m = Seq2Seq::small();
        let g = m.unfold(&RequestInput::Pair {
            src: vec![2, 3, 4],
            decode_len: 2,
        });
        let p = partition(&g);
        assert_eq!(p.len(), 2);
        // Encoder nodes 0..3 in one, decoder nodes 3..5 in the other.
        assert_eq!(p.members[0], vec![0, 1, 2]);
        assert_eq!(p.members[1], vec![3, 4]);
        assert_eq!(p.external_deps[0], 0);
        // One external edge: enc_last -> first decoder.
        assert_eq!(p.external_deps[1], 1);
    }

    #[test]
    fn complete_tree_matches_paper_example() {
        // "Suppose request x is a complete binary tree with 16 leaf
        // nodes. Then its cell graph will be partitioned into 17
        // subgraphs: one subgraph contains 31 internal tree nodes" —
        // note the paper counts 31 total internal nodes for the full
        // tree of 16 leaves including the root levels (16-leaf complete
        // binary tree has 15 internal nodes; the paper's 31 counts all
        // nodes of the internal subgraph in its running example; our
        // partition yields 15 internal + 16 leaves = 17 subgraphs).
        let m = TreeLstm::small();
        let g = m.unfold(&RequestInput::Tree(TreeShape::complete(16, 100)));
        let p = partition(&g);
        assert_eq!(p.len(), 17);
        let internal_sg = p.node_subgraph[g.len() - 1]; // Root is internal.
        assert_eq!(p.members[internal_sg].len(), 15);
        // The internal subgraph's external deps: one per leaf child edge.
        assert_eq!(p.external_deps[internal_sg], 16);
        // Leaf subgraphs have no external deps.
        for (sg, m_) in p.members.iter().enumerate() {
            if sg != internal_sg {
                assert_eq!(m_.len(), 1);
                assert_eq!(p.external_deps[sg], 0);
            }
        }
    }

    #[test]
    fn members_are_topologically_ordered() {
        let m = TreeLstm::small();
        let g = m.unfold(&RequestInput::Tree(TreeShape::complete(8, 100)));
        let p = partition(&g);
        for members in &p.members {
            for w in members.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }
}
