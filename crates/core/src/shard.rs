//! The sharded scheduler control plane.
//!
//! BENCH_runtime.json showed the single-threaded manager capping
//! end-to-end pipelining gains: one thread owns the only
//! [`CellularEngine`](crate::CellularEngine) and time-shares with the
//! workers. [`ShardedRuntime`] removes that bottleneck by running N
//! independent scheduler shards — each a full threaded [`Runtime`] with
//! its own engine, deadline heap, manager queue and worker pool — behind
//! one submission front.
//!
//! ## Placement
//!
//! Requests are placed with **cell-type affinity**: each
//! [`RequestInput`] variant (LSTM-LM sequence, seq2seq pair, TreeLSTM
//! tree) has a home shard, so a mixed workload keeps each shard's
//! engine forming large same-type batches instead of splitting every
//! type's queue N ways. Affinity alone collapses under a skewed type
//! mix (all-LSTM traffic would fill one shard), so placement is
//! load-aware: when the home shard's active-request count exceeds the
//! least-loaded shard's by more than a spill margin, the request is
//! **rebalanced** to the least-loaded shard. This is admission-time
//! stealing — once admitted a request never migrates, because its state
//! rows live in the owning shard's slot blocks.
//!
//! Overload refusals get a second chance: a shard refusing with
//! `QueueFull`/`AtCapacity` does not fail the submission until every
//! other shard (tried in load order) has also refused.
//!
//! ## Telemetry
//!
//! With telemetry enabled ([`ServeConfig::telemetry`]), each shard gets
//! its **own** registry (so shards never contend on one), and
//! [`ShardedRuntime::snapshot`] rolls them up into a single
//! [`Snapshot`] with a `shard` label on every entry — aggregate totals
//! fall out of `counter_sum`/`histogram_sum` over the merged view.
//!
//! Worker threads are divided across shards (each shard gets at least
//! one), so a 1-shard and an N-shard runtime with the same
//! [`RuntimeOptions::workers`] use the same compute and differ only in
//! control-plane parallelism — the comparison `repro serve` records.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use bm_model::{Model, RequestInput};
use bm_telemetry::{Snapshot, Telemetry};

use crate::config::ServeConfig;
use crate::request::Request;
use crate::runtime::{ResponseHandle, Runtime, RuntimeOptions, SubmitError};

/// How far (in active requests) a home shard may run ahead of the
/// least-loaded shard before affinity yields to rebalancing. Small
/// enough that a skewed type mix spreads within tens of requests; large
/// enough that balanced traffic keeps its type affinity through normal
/// load jitter.
const SPILL_MARGIN: usize = 16;

/// N independent scheduler shards behind one submission API.
///
/// See the module-level docs in `shard.rs` for placement and telemetry semantics.
/// Construction mirrors [`Runtime::start`]; the shard count comes from
/// the embedded serve config ([`ServeConfig::shards`]):
///
/// ```no_run
/// use std::sync::Arc;
/// use bm_core::{Request, RuntimeOptions, ShardedRuntime};
/// use bm_model::RequestInput;
/// # fn demo(model: Arc<dyn bm_model::Model>) {
/// let rt = ShardedRuntime::start(
///     model,
///     RuntimeOptions::new().workers(8).scheduler(
///         bm_core::SchedulerConfig::new()
///             .serve(bm_core::ServeConfig::new().shards(4)),
///     ),
/// );
/// let handle = rt
///     .submit_request(Request::new(RequestInput::Sequence(vec![1, 2])))
///     .unwrap();
/// let _ = handle.wait();
/// # }
/// ```
pub struct ShardedRuntime {
    shards: Vec<Runtime>,
    /// Per-shard registries (empty when telemetry is disabled).
    registries: Vec<Arc<Telemetry>>,
    /// Round-robin cursor used only to vary the starting shard of the
    /// load scan, so equal-load ties don't all resolve to shard 0.
    rr: AtomicUsize,
}

impl ShardedRuntime {
    /// Starts `opts.serve().shards` shards serving `model`, dividing
    /// `opts.workers` worker threads across them (each shard gets at
    /// least one).
    ///
    /// # Panics
    ///
    /// Panics if `opts.workers` or the serve config's `pipeline_depth`
    /// is zero (shard count 0 is clamped to 1).
    pub fn start(model: Arc<dyn Model>, opts: RuntimeOptions) -> Self {
        let n = opts.serve().shards.max(1);
        let total_workers = opts.workers.max(1);
        let telemetry_on = opts.serve().telemetry.enabled();
        let mut shards = Vec::with_capacity(n);
        let mut registries = Vec::with_capacity(n);
        for i in 0..n {
            // Divide workers as evenly as possible: the first
            // `total_workers % n` shards get one extra.
            let workers = (total_workers / n + usize::from(i < total_workers % n)).max(1);
            let mut shard_opts = opts.clone().workers(workers);
            if telemetry_on {
                let reg = Telemetry::new();
                registries.push(Arc::clone(&reg));
                shard_opts = shard_opts.telemetry(reg);
            }
            shards.push(Runtime::start(Arc::clone(&model), shard_opts));
        }
        ShardedRuntime {
            shards,
            registries,
            rr: AtomicUsize::new(0),
        }
    }

    /// The number of scheduler shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Submits a [`Request`], placing it by cell-type affinity with
    /// load-aware rebalancing (placement details in the module-level docs).
    ///
    /// Fails with [`SubmitError::QueueFull`] / [`SubmitError::AtCapacity`]
    /// only after every shard refused; [`SubmitError::Invalid`] fails
    /// immediately (no shard would accept it).
    pub fn submit_request(&self, req: impl Into<Request>) -> Result<ResponseHandle, SubmitError> {
        let req = req.into();
        let n = self.shards.len();
        let home = affinity_shard(&req.input, n);
        let start = self.rr.fetch_add(1, Ordering::Relaxed) % n;
        let loads: Vec<usize> = self.shards.iter().map(Runtime::active_requests).collect();
        let (mut lightest, mut min_load) = (start, loads[start]);
        for off in 1..n {
            let i = (start + off) % n;
            if loads[i] < min_load {
                lightest = i;
                min_load = loads[i];
            }
        }
        let first = if loads[home] > min_load + SPILL_MARGIN {
            lightest
        } else {
            home
        };

        match self.shards[first].submit_request(req.clone()) {
            Ok(h) => Ok(h),
            Err(e @ SubmitError::Invalid(_)) | Err(e @ SubmitError::ShuttingDown) => Err(e),
            Err(mut overloaded) => {
                // Second chance: try the remaining shards, lightest
                // first, before refusing.
                let mut order: Vec<usize> = (0..n).filter(|&i| i != first).collect();
                order.sort_by_key(|&i| loads[i]);
                for i in order {
                    match self.shards[i].submit_request(req.clone()) {
                        Ok(h) => return Ok(h),
                        Err(e @ SubmitError::Invalid(_)) | Err(e @ SubmitError::ShuttingDown) => {
                            return Err(e)
                        }
                        Err(e) => overloaded = e,
                    }
                }
                Err(overloaded)
            }
        }
    }

    /// Requests admitted and not yet resolved, summed over all shards.
    pub fn active_requests(&self) -> usize {
        self.shards.iter().map(Runtime::active_requests).sum()
    }

    /// Per-shard active-request counts (placement observability).
    pub fn shard_loads(&self) -> Vec<usize> {
        self.shards.iter().map(Runtime::active_requests).collect()
    }

    /// Microseconds since the runtime started (shard 0's clock).
    pub fn now_us(&self) -> u64 {
        self.shards[0].now_us()
    }

    /// One rolled-up snapshot of every shard's registry: each entry
    /// carries a `shard` label naming its source shard. Empty when
    /// telemetry was not enabled at start.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::merge(
            self.registries
                .iter()
                .enumerate()
                .map(|(i, reg)| reg.snapshot().with_label("shard", &i.to_string())),
        )
    }

    /// Shuts every shard down after draining in-flight requests,
    /// joining all threads.
    pub fn shutdown(self) {
        for shard in self.shards {
            shard.shutdown();
        }
    }

    /// The serve config knobs this runtime was started with (shard 0's
    /// copy; all shards share them).
    pub fn serve(&self) -> &ServeConfig {
        self.shards[0].options().serve()
    }
}

/// The home shard for an input: each cell-graph shape (and therefore
/// cell type) maps to its own shard, so same-type requests co-locate
/// and batch together.
fn affinity_shard(input: &RequestInput, n: usize) -> usize {
    let class = match input {
        RequestInput::Sequence(_) => 0usize,
        RequestInput::Pair { .. } => 1,
        RequestInput::Tree(_) => 2,
    };
    class % n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affinity_separates_types_when_shards_allow() {
        let seq = RequestInput::Sequence(vec![1]);
        let pair = RequestInput::Pair {
            src: vec![1],
            decode_len: 1,
        };
        assert_eq!(affinity_shard(&seq, 1), 0);
        assert_eq!(affinity_shard(&pair, 1), 0);
        assert_ne!(affinity_shard(&seq, 2), affinity_shard(&pair, 2));
    }
}
