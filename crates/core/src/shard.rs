//! The sharded scheduler control plane.
//!
//! BENCH_runtime.json showed the single-threaded manager capping
//! end-to-end pipelining gains: one thread owns the only
//! [`CellularEngine`](crate::CellularEngine) and time-shares with the
//! workers. [`ShardedRuntime`] removes that bottleneck by running N
//! independent scheduler shards — each a full threaded [`Runtime`] with
//! its own engine, deadline heap, manager queue and worker pool — behind
//! one submission front.
//!
//! ## Placement
//!
//! Requests are placed with **cell-type affinity**: each
//! [`RequestInput`] variant (LSTM-LM sequence, seq2seq pair, TreeLSTM
//! tree) has a home shard, so a mixed workload keeps each shard's
//! engine forming large same-type batches instead of splitting every
//! type's queue N ways. Affinity alone collapses under a skewed type
//! mix (all-LSTM traffic would fill one shard), so placement is
//! load-aware: when the home shard's active-request count exceeds the
//! least-loaded shard's by more than a spill margin, the request is
//! **rebalanced** to the least-loaded shard. This is admission-time
//! stealing — once admitted a request never migrates, because its state
//! rows live in the owning shard's slot blocks.
//!
//! Overload refusals get a second chance: a shard refusing with
//! `QueueFull`/`AtCapacity` does not fail the submission until every
//! other shard (tried in load order) has also refused.
//!
//! ## Telemetry
//!
//! With telemetry enabled ([`ServeConfig::telemetry`]), each shard gets
//! its **own** registry (so shards never contend on one), and
//! [`ShardedRuntime::snapshot`] rolls them up into a single
//! [`Snapshot`] with a `shard` label on every entry — aggregate totals
//! fall out of `counter_sum`/`histogram_sum` over the merged view.
//!
//! Worker threads are divided across shards (each shard gets at least
//! one), so a 1-shard and an N-shard runtime with the same
//! [`RuntimeOptions::workers`] use the same compute and differ only in
//! control-plane parallelism — the comparison `repro serve` records.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use bm_model::{Model, RequestInput};
use bm_telemetry::{Snapshot, Telemetry};

use crate::config::ServeConfig;
use crate::request::Request;
use crate::runtime::{CompletionQueue, ResponseHandle, Runtime, RuntimeOptions, SubmitError};

/// How far (in active requests) a home shard may run ahead of the
/// least-loaded shard before affinity yields to rebalancing. Small
/// enough that a skewed type mix spreads within tens of requests; large
/// enough that balanced traffic keeps its type affinity through normal
/// load jitter.
const SPILL_MARGIN: usize = 16;

/// N independent scheduler shards behind one submission API.
///
/// See the module-level docs in `shard.rs` for placement and telemetry semantics.
/// Construction mirrors [`Runtime::start`]; the shard count comes from
/// the embedded serve config ([`ServeConfig::shards`]):
///
/// ```no_run
/// use std::sync::Arc;
/// use bm_core::{Request, RuntimeOptions, ShardedRuntime};
/// use bm_model::RequestInput;
/// # fn demo(model: Arc<dyn bm_model::Model>) {
/// let rt = ShardedRuntime::start(
///     model,
///     RuntimeOptions::new().workers(8).scheduler(
///         bm_core::SchedulerConfig::new()
///             .serve(bm_core::ServeConfig::new().shards(4)),
///     ),
/// );
/// let handle = rt
///     .submit_request(Request::new(RequestInput::Sequence(vec![1, 2])))
///     .unwrap();
/// let _ = handle.wait();
/// # }
/// ```
pub struct ShardedRuntime {
    shards: Vec<Runtime>,
    /// Per-shard registries (empty when telemetry is disabled).
    registries: Vec<Arc<Telemetry>>,
    /// Round-robin cursor used only to vary the starting shard of the
    /// load scan, so equal-load ties don't all resolve to shard 0.
    rr: AtomicUsize,
}

impl ShardedRuntime {
    /// Starts `opts.serve().shards` shards serving `model`, dividing
    /// `opts.workers` worker threads across them (each shard gets at
    /// least one).
    ///
    /// # Panics
    ///
    /// Panics if `opts.workers` or the serve config's `pipeline_depth`
    /// is zero (shard count 0 is clamped to 1).
    pub fn start(model: Arc<dyn Model>, opts: RuntimeOptions) -> Self {
        let n = opts.serve().shards.max(1);
        let total_workers = opts.workers.max(1);
        let telemetry_on = opts.serve().telemetry.enabled();
        let mut shards = Vec::with_capacity(n);
        let mut registries = Vec::with_capacity(n);
        for i in 0..n {
            // Divide workers as evenly as possible: the first
            // `total_workers % n` shards get one extra.
            let workers = (total_workers / n + usize::from(i < total_workers % n)).max(1);
            let mut shard_opts = opts.clone().workers(workers);
            if telemetry_on {
                let reg = Telemetry::new();
                registries.push(Arc::clone(&reg));
                shard_opts = shard_opts.telemetry(reg);
            }
            shards.push(Runtime::start(Arc::clone(&model), shard_opts));
        }
        ShardedRuntime {
            shards,
            registries,
            rr: AtomicUsize::new(0),
        }
    }

    /// The number of scheduler shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Submits a [`Request`], placing it by cell-type affinity with
    /// load-aware rebalancing (placement details in the module-level docs).
    ///
    /// Fails with [`SubmitError::QueueFull`] / [`SubmitError::AtCapacity`]
    /// only after every shard refused; [`SubmitError::Invalid`] fails
    /// immediately (no shard would accept it).
    pub fn submit_request(&self, req: impl Into<Request>) -> Result<ResponseHandle, SubmitError> {
        let req = req.into();
        let loads = self.loads();
        let first = self.place(&req.input, &loads);
        self.with_second_chance(first, &loads, |shard| shard.submit_request(req.clone()))
    }

    /// [`Runtime::submit_request_tagged`] with the same cell-type
    /// affinity placement, load-aware rebalancing and second-chance
    /// overload retry as [`ShardedRuntime::submit_request`]: the
    /// outcome is delivered to `queue` with `tag` regardless of which
    /// shard admits the request.
    pub fn submit_request_tagged(
        &self,
        req: impl Into<Request>,
        tag: u64,
        queue: &CompletionQueue,
    ) -> Result<(), SubmitError> {
        let req = req.into();
        let loads = self.loads();
        let first = self.place(&req.input, &loads);
        self.with_second_chance(first, &loads, |shard| {
            shard.submit_request_tagged(req.clone(), tag, queue)
        })
    }

    /// [`Runtime::submit_batch_tagged`] across shards: the batch is
    /// grouped by placement shard (affinity + load-aware rebalancing,
    /// with in-batch assignments projected onto the load estimate so
    /// one burst does not dogpile a single shard) and each group rides
    /// one manager message into its shard. Requests a shard refuses
    /// for overload get the usual second chance, lightest shard first,
    /// as individual submissions.
    ///
    /// Returns one result per request, in input order.
    pub fn submit_batch_tagged(
        &self,
        reqs: impl IntoIterator<Item = (u64, Request)>,
        queue: &CompletionQueue,
    ) -> Vec<Result<(), SubmitError>> {
        let n = self.shards.len();
        let loads = self.loads();
        // Group by placement shard, remembering each request's index
        // in the result vector. `assigned` projects this batch's own
        // placements onto the (snapshot) load estimate.
        let mut groups: Vec<Vec<(usize, u64, Request)>> = vec![Vec::new(); n];
        let mut assigned = vec![0usize; n];
        let mut total = 0usize;
        for (idx, (tag, req)) in reqs.into_iter().enumerate() {
            let proj: Vec<usize> = loads.iter().zip(&assigned).map(|(l, a)| l + a).collect();
            let s = self.place(&req.input, &proj);
            assigned[s] += 1;
            groups[s].push((idx, tag, req));
            total = idx + 1;
        }
        let mut results: Vec<Result<(), SubmitError>> = Vec::with_capacity(total);
        results.resize_with(total, || Ok(()));
        for (s, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            // Clone the requests into the batch message; the originals
            // stay behind for the overload retry path.
            let batch: Vec<(u64, Request)> =
                group.iter().map(|(_, t, r)| (*t, r.clone())).collect();
            let shard_results = self.shards[s].submit_batch_tagged(batch, queue);
            for ((idx, tag, req), res) in group.into_iter().zip(shard_results) {
                results[idx] = match res {
                    Ok(()) => Ok(()),
                    Err(e @ SubmitError::Invalid(_)) | Err(e @ SubmitError::ShuttingDown) => Err(e),
                    Err(_) => self.with_second_chance(s, &loads, |shard| {
                        shard.submit_request_tagged(req.clone(), tag, queue)
                    }),
                };
            }
        }
        results
    }

    /// Per-shard active-request snapshot used for placement.
    fn loads(&self) -> Vec<usize> {
        self.shards.iter().map(Runtime::active_requests).collect()
    }

    /// The shard a request with `input` should be offered to first:
    /// its affinity home unless that home is more than [`SPILL_MARGIN`]
    /// requests ahead of the least-loaded shard, in which case the
    /// least-loaded shard (scan started at a rotating offset so
    /// equal-load ties spread).
    fn place(&self, input: &RequestInput, loads: &[usize]) -> usize {
        let n = self.shards.len();
        let home = affinity_shard(input, n);
        let start = self.rr.fetch_add(1, Ordering::Relaxed) % n;
        let (mut lightest, mut min_load) = (start, loads[start]);
        for off in 1..n {
            let i = (start + off) % n;
            if loads[i] < min_load {
                lightest = i;
                min_load = loads[i];
            }
        }
        if loads[home] > min_load + SPILL_MARGIN {
            lightest
        } else {
            home
        }
    }

    /// Runs `attempt` against shard `first`; on an overload refusal
    /// (`QueueFull`/`AtCapacity`) retries the remaining shards in load
    /// order before giving up. `Invalid`/`ShuttingDown` fail
    /// immediately — no shard would accept the request.
    fn with_second_chance<T>(
        &self,
        first: usize,
        loads: &[usize],
        mut attempt: impl FnMut(&Runtime) -> Result<T, SubmitError>,
    ) -> Result<T, SubmitError> {
        match attempt(&self.shards[first]) {
            Ok(v) => Ok(v),
            Err(e @ SubmitError::Invalid(_)) | Err(e @ SubmitError::ShuttingDown) => Err(e),
            Err(mut overloaded) => {
                let mut order: Vec<usize> =
                    (0..self.shards.len()).filter(|&i| i != first).collect();
                order.sort_by_key(|&i| loads[i]);
                for i in order {
                    match attempt(&self.shards[i]) {
                        Ok(v) => return Ok(v),
                        Err(e @ SubmitError::Invalid(_)) | Err(e @ SubmitError::ShuttingDown) => {
                            return Err(e)
                        }
                        Err(e) => overloaded = e,
                    }
                }
                Err(overloaded)
            }
        }
    }

    /// Requests admitted and not yet resolved, summed over all shards.
    pub fn active_requests(&self) -> usize {
        self.shards.iter().map(Runtime::active_requests).sum()
    }

    /// Per-shard active-request counts (placement observability).
    pub fn shard_loads(&self) -> Vec<usize> {
        self.shards.iter().map(Runtime::active_requests).collect()
    }

    /// Microseconds since the runtime started (shard 0's clock).
    pub fn now_us(&self) -> u64 {
        self.shards[0].now_us()
    }

    /// One rolled-up snapshot of every shard's registry: each entry
    /// carries a `shard` label naming its source shard. Empty when
    /// telemetry was not enabled at start.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::merge(
            self.registries
                .iter()
                .enumerate()
                .map(|(i, reg)| reg.snapshot().with_label("shard", &i.to_string())),
        )
    }

    /// Shuts every shard down after draining in-flight requests,
    /// joining all threads.
    pub fn shutdown(self) {
        for shard in self.shards {
            shard.shutdown();
        }
    }

    /// The serve config knobs this runtime was started with (shard 0's
    /// copy; all shards share them).
    pub fn serve(&self) -> &ServeConfig {
        self.shards[0].options().serve()
    }
}

/// The home shard for an input: each cell-graph shape (and therefore
/// cell type) maps to its own shard, so same-type requests co-locate
/// and batch together.
fn affinity_shard(input: &RequestInput, n: usize) -> usize {
    let class = match input {
        RequestInput::Sequence(_) => 0usize,
        RequestInput::Pair { .. } => 1,
        RequestInput::Tree(_) => 2,
    };
    class % n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affinity_separates_types_when_shards_allow() {
        let seq = RequestInput::Sequence(vec![1]);
        let pair = RequestInput::Pair {
            src: vec![1],
            decode_len: 1,
        };
        assert_eq!(affinity_shard(&seq, 1), 0);
        assert_eq!(affinity_shard(&pair, 1), 0);
        assert_ne!(affinity_shard(&seq, 2), affinity_shard(&pair, 2));
    }
}
