//! Batched tasks and completion records.

use std::sync::Arc;

use bm_cell::CellTypeId;
use bm_model::{NodeId, TokenSource};

use crate::ids::{RequestId, SubgraphId, TaskId, WorkerId};

/// One invocation within a batched task.
///
/// Entries are self-describing: they carry the dependency list and token
/// source so a worker can gather inputs from the state store without
/// holding the request's graph — the analogue of a GPU kernel argument
/// list pointing at device memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskEntry {
    /// The owning request.
    pub request: RequestId,
    /// The node being invoked.
    pub node: NodeId,
    /// The node's state dependencies (within the same request), in cell
    /// order. Shared with the request's graph node (a refcount bump per
    /// entry, not a per-task copy).
    pub deps: Arc<[NodeId]>,
    /// Where the node's token comes from.
    pub token: TokenSource,
}

/// A batched task: one cell type executed once over a batch of node
/// invocations from (potentially) many requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// Task identifier.
    pub id: TaskId,
    /// The worker the task was submitted to.
    pub worker: WorkerId,
    /// The cell type all entries share.
    pub cell_type: CellTypeId,
    /// The batched invocations.
    pub entries: Vec<TaskEntry>,
    /// Distinct subgraphs contributing entries. Shared with the engine's
    /// composition cache, so cloning a task never copies the list.
    pub subgraphs: Arc<[SubgraphId]>,
    /// State rows that must be gathered into contiguous memory because
    /// the batch composition differs from this worker's previous task of
    /// the same cell type (§4.3).
    pub gather_rows: usize,
    /// State rows copied from another device because a subgraph migrated
    /// workers (§4.3).
    pub transfer_rows: usize,
}

impl Task {
    /// Batch size of the task.
    pub fn batch_size(&self) -> usize {
        self.entries.len()
    }
}

/// Emitted when all (non-cancelled) nodes of a request have completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedRequest {
    /// The request.
    pub id: RequestId,
    /// Arrival timestamp, µs.
    pub arrival_us: u64,
    /// First execution start, µs; for a request cancelled before any
    /// cell ran, the cancellation timestamp.
    pub start_us: u64,
    /// Completion timestamp, µs.
    pub completion_us: u64,
    /// Nodes actually executed (excludes `<eos>`-cancelled ones).
    pub executed_nodes: usize,
    /// Total nodes in the unfolded graph.
    pub total_nodes: usize,
    /// Whether the request resolved via
    /// [`crate::CellularEngine::cancel_request`] rather than running to
    /// completion. Cancelled records carry timings for accounting but no
    /// usable outputs.
    pub cancelled: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_size_counts_entries() {
        let entry = |r: u64, n: u32| TaskEntry {
            request: RequestId(r),
            node: NodeId(n),
            deps: Vec::new().into(),
            token: TokenSource::Fixed(0),
        };
        let t = Task {
            id: TaskId(0),
            worker: WorkerId(0),
            cell_type: CellTypeId(0),
            entries: vec![entry(0, 0), entry(1, 0)],
            subgraphs: vec![SubgraphId(0), SubgraphId(1)].into(),
            gather_rows: 2,
            transfer_rows: 0,
        };
        assert_eq!(t.batch_size(), 2);
    }
}
