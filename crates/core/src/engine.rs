//! The cellular-batching engine: request processor + scheduler.
//!
//! This is the paper's manager (§4.2 Figure 6) as a *pure state
//! machine*: it owns no threads and no clock. Drivers feed it events —
//! request arrivals, task starts, task completions — and pull batched
//! tasks for idle workers via [`CellularEngine::dispatch`], which
//! implements Algorithm 1 verbatim (Schedule / Batch / FormBatchedTask,
//! including cell-type selection order, `MaxTasksToSubmit`, subgraph
//! pinning and the min-batch-size gate).
//!
//! Two drivers exist: the threaded real-time runtime
//! ([`crate::runtime::Runtime`]) and the discrete-event simulator in
//! `bm-sim`. Both therefore benchmark exactly the scheduling policy that
//! the correctness tests validate.

use std::collections::HashMap;
use std::sync::Arc;

use bm_cell::{CellRegistry, CellTypeId};
use bm_model::{CellGraph, NodeId};
use bm_telemetry::{Counter, Gauge, Histogram, Telemetry};
use bm_trace::{BatchReason, EventKind, TraceEvent, TraceSink};

use crate::config::ServeConfig;
use crate::ids::{RequestId, SubgraphId, TaskId, WorkerId};
use crate::partition::{partition, Partition};
use crate::policy::{FormationOrder, PolicyKind, PolicyView, SchedulingPolicy, TypeCandidate};
use crate::request::Request;
use crate::task::{CompletedRequest, Task, TaskEntry};

/// EWMA weight of the newest per-row service-cost sample (the slack
/// estimator's remaining-work model).
const ROW_COST_EWMA_ALPHA: f64 = 0.2;

/// Tunables of the scheduler.
///
/// Embeds the shared [`ServeConfig`] (policy, deadlines, observability
/// sinks) and adds the engine-only knobs. Construct with the builder:
///
/// ```
/// use bm_core::SchedulerConfig;
/// let cfg = SchedulerConfig::new().max_tasks_to_submit(3);
/// assert_eq!(cfg.max_tasks_to_submit, 3);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SchedulerConfig {
    /// The shared serving knobs ([`ServeConfig`]): the engine reads the
    /// batch-formation policy, trace sink and telemetry registry from
    /// it; the admission/queue/pipelining knobs are consumed by the
    /// drivers embedding this config.
    pub serve: ServeConfig,
    /// "The maximum number of tasks that can be submitted to a worker"
    /// per `Schedule` invocation (Algorithm 1; default 5).
    pub max_tasks_to_submit: usize,
    /// Whether the engine accumulates completion records for
    /// [`CellularEngine::drain_completions`]. Drivers that consume the
    /// return value of [`CellularEngine::on_task_completed`] directly
    /// must leave this off (the default) — otherwise the undrained
    /// records grow without bound.
    pub retain_completions: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            serve: ServeConfig::default(),
            max_tasks_to_submit: 5,
            retain_completions: false,
        }
    }
}

impl SchedulerConfig {
    /// The default configuration (start of the builder chain).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-`Schedule` task cap (Algorithm 1's
    /// `MaxTasksToSubmit`; default 5).
    pub fn max_tasks_to_submit(mut self, n: usize) -> Self {
        self.max_tasks_to_submit = n;
        self
    }

    /// Sets whether completion records accumulate for
    /// [`CellularEngine::drain_completions`] (default off).
    pub fn retain_completions(mut self, retain: bool) -> Self {
        self.retain_completions = retain;
        self
    }

    /// Sets the batch-formation policy (default
    /// [`PolicyKind::PaperDefault`]); shorthand for setting it on
    /// [`SchedulerConfig::serve`].
    pub fn policy(mut self, kind: PolicyKind) -> Self {
        self.serve.policy = Some(kind);
        self
    }

    /// Replaces the embedded [`ServeConfig`].
    pub fn serve(mut self, serve: ServeConfig) -> Self {
        self.serve = serve;
        self
    }

    /// The effective batch-formation policy.
    pub fn policy_kind(&self) -> PolicyKind {
        self.serve.policy.unwrap_or_default()
    }
}

/// The result of [`CellularEngine::cancel_request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The request is not active: it never arrived, already completed,
    /// or was already cancelled and retired.
    Unknown,
    /// Unsubmitted nodes were cancelled, but tasks containing the
    /// request's nodes are still in flight. The request resolves (with
    /// [`CompletedRequest::cancelled`] set) from a later
    /// [`CellularEngine::on_task_completed`] once they drain — in-flight
    /// work is never revoked, matching the paper's task model where a
    /// submitted kernel sequence runs to completion.
    Draining,
    /// The request had no in-flight work; it was retired immediately and
    /// this is its (cancelled) completion record.
    Finished(CompletedRequest),
}

/// The latency-decomposition stage labels of `bm_stage_us`, in
/// pipeline order. The four stages tile `[arrival, completion]`
/// exactly — their per-request durations telescope to the end-to-end
/// latency — so snapshot sums reconcile with `LatencyRecorder` totals
/// to the microsecond.
pub const STAGE_NAMES: [&str; 4] = [
    "submit_to_enqueue",
    "enqueue_to_batch",
    "batch_wait",
    "compute",
];

/// Telemetry handles the engine records into when a live registry is
/// attached ([`CellularEngine::set_telemetry`]). All handles are
/// registered once at attach time; the hot path pays one
/// `Option::is_some` branch per site when telemetry is disabled,
/// mirroring the trace plane's `enabled()` gate.
#[derive(Debug)]
struct EngineMetrics {
    requests_admitted: Counter,
    requests_completed: Counter,
    requests_cancelled: Counter,
    tasks_submitted: Counter,
    gather_rows: Counter,
    transfer_rows: Counter,
    nodes_cancelled: Counter,
    /// Indexed like [`BatchReason`]: saturation, starvation, priority,
    /// deadline, slack_release, timeout.
    batch_reason: [Counter; 6],
    active_requests: Gauge,
    ready_nodes: Gauge,
    inflight_tasks: Gauge,
    /// Per cell type, indexed by `CellTypeId::index`.
    batch_size: Vec<Histogram>,
    /// Per cell type × stage ([`STAGE_NAMES`] order), labelled by the
    /// cell type of the request's first node.
    stage: Vec<[Histogram; 4]>,
}

impl EngineMetrics {
    fn new(tel: &Telemetry, registry: &CellRegistry) -> Self {
        let mut batch_size = Vec::with_capacity(registry.len());
        let mut stage = Vec::with_capacity(registry.len());
        for meta in registry.iter() {
            let cell = meta.name.as_str();
            batch_size.push(tel.histogram_with("bm_batch_size", &[("cell", cell)]));
            stage.push(
                STAGE_NAMES
                    .map(|s| tel.histogram_with("bm_stage_us", &[("stage", s), ("cell", cell)])),
            );
        }
        EngineMetrics {
            requests_admitted: tel.counter("bm_requests_admitted_total"),
            requests_completed: tel.counter("bm_requests_completed_total"),
            requests_cancelled: tel.counter("bm_requests_cancelled_total"),
            tasks_submitted: tel.counter("bm_tasks_submitted_total"),
            gather_rows: tel.counter("bm_gather_rows_total"),
            transfer_rows: tel.counter("bm_transfer_rows_total"),
            nodes_cancelled: tel.counter("bm_nodes_cancelled_total"),
            batch_reason: [
                tel.counter_with("bm_batch_reason_total", &[("reason", "saturation")]),
                tel.counter_with("bm_batch_reason_total", &[("reason", "starvation")]),
                tel.counter_with("bm_batch_reason_total", &[("reason", "priority")]),
                tel.counter_with("bm_batch_reason_total", &[("reason", "deadline")]),
                tel.counter_with("bm_batch_reason_total", &[("reason", "slack_release")]),
                tel.counter_with("bm_batch_reason_total", &[("reason", "timeout")]),
            ],
            active_requests: tel.gauge("bm_active_requests"),
            ready_nodes: tel.gauge("bm_ready_nodes"),
            inflight_tasks: tel.gauge("bm_inflight_tasks"),
            batch_size,
            stage,
        }
    }

    fn reason_counter(&self, reason: BatchReason) -> &Counter {
        match reason {
            BatchReason::Saturation => &self.batch_reason[0],
            BatchReason::Starvation => &self.batch_reason[1],
            BatchReason::Priority => &self.batch_reason[2],
            BatchReason::Deadline => &self.batch_reason[3],
            BatchReason::SlackRelease => &self.batch_reason[4],
            BatchReason::Timeout => &self.batch_reason[5],
        }
    }
}

/// Per-request bookkeeping held by the request processor.
#[derive(Debug)]
struct RequestState {
    graph: CellGraph,
    arrival_us: u64,
    /// Absolute completion deadline, when the driver supplied one
    /// ([`CellularEngine::on_arrival_with_deadline`]); the slack input
    /// of deadline-aware policies.
    deadline_us: Option<u64>,
    /// Request priority ([`Request::priority`]); deadline-EDF batch
    /// formation prefers higher priorities among equal deadlines.
    priority: u8,
    start_us: Option<u64>,
    /// When the request's first nodes entered a scheduling queue
    /// (telemetry stage decomposition; stamped only when metrics are
    /// attached).
    first_enqueue_us: Option<u64>,
    /// When the first batched task containing the request was formed.
    first_batch_us: Option<u64>,
    /// Per node: dependencies not yet satisfied. Intra-subgraph edges are
    /// satisfied at *submission* of the dependency (FIFO per worker
    /// guarantees order); external edges at *completion*.
    unmet: Vec<u32>,
    /// Per node: dependents (reverse edges).
    dependents: Vec<Vec<u32>>,
    /// Per node: whether it has been submitted in a task.
    submitted: Vec<bool>,
    /// Per node: whether it has completed.
    completed: Vec<bool>,
    /// Per node: whether it was cancelled by `<eos>` termination.
    cancelled: Vec<bool>,
    /// Local subgraph index per node.
    node_subgraph: Vec<usize>,
    /// Global subgraph ids, indexed by local subgraph index.
    subgraph_ids: Vec<SubgraphId>,
    /// Nodes not yet completed or cancelled.
    remaining: usize,
    /// Nodes executed so far.
    executed: usize,
    /// Whether [`CellularEngine::cancel_request`] was called; the
    /// completion record carries this flag.
    cancel_requested: bool,
}

/// Per-subgraph scheduler state.
#[derive(Debug)]
struct SubgraphState {
    request: RequestId,
    cell_type: CellTypeId,
    /// Nodes whose dependencies are satisfied and not yet submitted.
    ready: std::collections::VecDeque<u32>,
    /// External dependency edges not yet satisfied; the subgraph is
    /// passed to the scheduler only when this reaches zero (§4.3).
    external_unmet: usize,
    /// Worker the subgraph is pinned to while it has in-flight tasks.
    pinned: Option<WorkerId>,
    /// Number of in-flight tasks containing nodes of this subgraph.
    inflight: usize,
    /// Last worker this subgraph executed on (for transfer accounting).
    last_worker: Option<WorkerId>,
    /// Whether the subgraph is currently in its type's scheduling queue.
    in_queue: bool,
}

/// Per-cell-type scheduling queue.
#[derive(Debug, Default)]
struct TypeQueue {
    /// Subgraphs with ready nodes, in arrival order.
    subgraphs: std::collections::VecDeque<SubgraphId>,
    /// Total ready nodes across queued subgraphs.
    ready_nodes: usize,
    /// In-flight tasks of this type (`ct.NumRunningTasks()`).
    running_tasks: usize,
}

/// In-flight task bookkeeping.
#[derive(Debug)]
struct InflightTask {
    cell_type: CellTypeId,
    worker: WorkerId,
    entries: Vec<(RequestId, NodeId)>,
    subgraphs: Arc<[SubgraphId]>,
    /// When the task began executing ([`CellularEngine::on_task_started`]);
    /// feeds the per-row service-cost EWMA on completion.
    started_us: Option<u64>,
}

impl InflightTask {
    fn from_task(t: &Task) -> Self {
        InflightTask {
            cell_type: t.cell_type,
            worker: t.worker,
            entries: t.entries.iter().map(|e| (e.request, e.node)).collect(),
            subgraphs: Arc::clone(&t.subgraphs),
            started_us: None,
        }
    }
}

/// Cumulative scheduling statistics.
///
/// The paper reports effective batch sizes ("we find that BatchMaker
/// executes LSTM cells with batch size 64 most of the time", §7.3) and
/// attributes overhead to gathering; these counters expose both.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Batched tasks submitted.
    pub tasks_submitted: u64,
    /// Cell invocations submitted across all tasks.
    pub nodes_submitted: u64,
    /// State rows gathered because batch composition changed (§4.3).
    pub gathered_rows: u64,
    /// Subgraph migrations across workers.
    pub transfers: u64,
    /// Nodes cancelled by `<eos>` early termination or
    /// [`CellularEngine::cancel_request`].
    pub cancelled_nodes: u64,
    /// Requests completed normally.
    pub requests_completed: u64,
    /// Requests resolved as cancelled.
    pub requests_cancelled: u64,
}

impl SchedulerStats {
    /// Mean batch size across submitted tasks.
    pub fn mean_batch_size(&self) -> f64 {
        if self.tasks_submitted == 0 {
            0.0
        } else {
            self.nodes_submitted as f64 / self.tasks_submitted as f64
        }
    }

    /// Fraction of submitted rows that required a gather copy.
    pub fn gather_fraction(&self) -> f64 {
        if self.nodes_submitted == 0 {
            0.0
        } else {
            self.gathered_rows as f64 / self.nodes_submitted as f64
        }
    }
}

/// The cellular-batching engine.
pub struct CellularEngine {
    registry: Arc<CellRegistry>,
    cfg: SchedulerConfig,
    requests: HashMap<RequestId, RequestState>,
    subgraphs: HashMap<SubgraphId, SubgraphState>,
    queues: Vec<TypeQueue>,
    inflight: HashMap<TaskId, InflightTask>,
    /// Last batch composition per (worker, cell type), for gather
    /// accounting: identical composition ⇒ no gather copies (§4.3).
    /// Values share the `Arc` carried by the submitted [`Task`], so a
    /// repeated composition costs a comparison, never an allocation.
    last_composition: HashMap<(WorkerId, CellTypeId), Arc<[SubgraphId]>>,
    next_subgraph: u64,
    next_task: u64,
    /// Completed requests not yet drained by the driver.
    completions: Vec<CompletedRequest>,
    stats: SchedulerStats,
    /// Structured event sink ([`bm_trace`]); defaults to the no-op sink,
    /// whose `enabled() == false` keeps instrumentation off hot paths.
    trace: Arc<dyn TraceSink>,
    /// Registered metric handles; `None` (the default) keeps telemetry
    /// to one branch per call site.
    metrics: Option<EngineMetrics>,
    /// The latest driver-supplied timestamp, used to stamp events from
    /// methods that take no clock (dispatch).
    clock_us: u64,
    /// The batch-formation policy ([`crate::policy`]), built from
    /// `cfg.policy`.
    policy: Box<dyn SchedulingPolicy>,
    /// Per cell type: EWMA of observed per-row service cost (µs),
    /// `0.0` until the first completion. Feeds slack estimation.
    row_cost_ewma: Vec<f64>,
}

impl CellularEngine {
    /// Creates an engine over the given registry.
    ///
    /// The embedded [`ServeConfig`] supplies the batch-formation policy
    /// and the observability sinks: a configured trace sink or enabled
    /// telemetry registry is installed directly, as if
    /// [`CellularEngine::set_trace_sink`] /
    /// [`CellularEngine::set_telemetry`] had been called.
    pub fn new(registry: Arc<CellRegistry>, cfg: SchedulerConfig) -> Self {
        let queues = (0..registry.len()).map(|_| TypeQueue::default()).collect();
        let row_cost_ewma = vec![0.0; registry.len()];
        let metrics = cfg
            .serve
            .telemetry
            .enabled()
            .then(|| EngineMetrics::new(&cfg.serve.telemetry, &registry));
        CellularEngine {
            policy: cfg.policy_kind().build(),
            row_cost_ewma,
            trace: Arc::clone(&cfg.serve.trace),
            metrics,
            cfg,
            registry,
            requests: HashMap::new(),
            subgraphs: HashMap::new(),
            queues,
            inflight: HashMap::new(),
            last_composition: HashMap::new(),
            next_subgraph: 0,
            next_task: 0,
            completions: Vec::new(),
            stats: SchedulerStats::default(),
            clock_us: 0,
        }
    }

    /// Attaches a trace sink; every subsequent scheduling decision and
    /// request-lifecycle transition is recorded into it.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.trace = sink;
    }

    /// Attaches a telemetry registry: registers the engine's counters,
    /// gauges and per-cell-type histograms and records into them from
    /// every subsequent transition. A disabled registry
    /// (`Telemetry::disabled()`) detaches metrics instead, restoring
    /// the one-branch-per-site cold path.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.metrics = tel
            .enabled()
            .then(|| EngineMetrics::new(tel, &self.registry));
    }

    /// Advances the engine's event clock without any other effect.
    ///
    /// [`CellularEngine::dispatch`] takes no timestamp (Algorithm 1 is
    /// time-free), so batch-formation events are stamped with the
    /// latest time the driver reported. Drivers whose dispatch point can
    /// be later than the last arrival/completion (e.g. a timer wake-up)
    /// call this first so traces carry accurate times.
    pub fn advance_clock(&mut self, now_us: u64) {
        self.clock_us = self.clock_us.max(now_us);
    }

    #[inline]
    fn emit(&self, ts_us: u64, kind: EventKind) {
        self.trace.record(TraceEvent { ts_us, kind });
    }

    /// Cumulative scheduling statistics.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Swaps in a different batch-formation policy ([`crate::policy`]).
    /// Queue state is untouched; only future `dispatch` calls are
    /// affected.
    pub fn set_policy_kind(&mut self, kind: PolicyKind) {
        self.cfg.serve.policy = Some(kind);
        self.policy = kind.build();
    }

    /// The kind of the active batch-formation policy.
    pub fn policy_kind(&self) -> PolicyKind {
        self.cfg.policy_kind()
    }

    /// Absolute time (µs) at which the active policy wants a dispatch
    /// poll even if no new event arrives — the release point of a held
    /// batch. `None` when nothing is held. Drivers with a real clock
    /// fold this into their wait; the simulator schedules a wake event.
    pub fn next_wakeup(&self, now_us: u64) -> Option<u64> {
        self.policy.next_wakeup(now_us)
    }

    /// Per-cell-type `(ready_nodes, running_tasks)`, indexed by
    /// [`CellTypeId::index`]. Introspection for tests and oracles.
    pub fn queue_depths(&self) -> Vec<(usize, usize)> {
        self.queues
            .iter()
            .map(|q| (q.ready_nodes, q.running_tasks))
            .collect()
    }

    /// The registry the engine schedules for.
    pub fn registry(&self) -> &Arc<CellRegistry> {
        &self.registry
    }

    /// Admits a request: unfolds bookkeeping, partitions the graph and
    /// releases dependency-free subgraphs to the scheduler.
    ///
    /// # Panics
    ///
    /// Panics if the request id is already active or the graph fails
    /// validation against the registry.
    pub fn on_arrival(&mut self, id: RequestId, graph: CellGraph, now_us: u64) {
        self.on_arrival_with_deadline(id, graph, now_us, None);
    }

    /// [`CellularEngine::on_arrival`] with an absolute completion
    /// deadline (µs) attached. Deadline-aware policies
    /// ([`crate::policy`]) read it through the per-type slack
    /// aggregates; the paper-default policy ignores it.
    ///
    /// # Panics
    ///
    /// Panics if the request id is already active or the graph fails
    /// validation against the registry.
    pub fn on_arrival_with_deadline(
        &mut self,
        id: RequestId,
        graph: CellGraph,
        now_us: u64,
        deadline_us: Option<u64>,
    ) {
        self.admit(id, graph, now_us, deadline_us, 0);
    }

    /// [`CellularEngine::on_arrival_with_deadline`] with a scheduling
    /// priority attached (see [`Request::priority`]); for drivers that
    /// resolved the request's deadline to an absolute time at
    /// submission.
    pub fn on_arrival_full(
        &mut self,
        id: RequestId,
        graph: CellGraph,
        now_us: u64,
        deadline_us: Option<u64>,
        priority: u8,
    ) {
        self.admit(id, graph, now_us, deadline_us, priority);
    }

    /// Admits a pre-unfolded graph carrying a [`Request`]'s metadata:
    /// the deadline resolves relative to `now_us` (the engine itself
    /// has no default deadline — drivers resolve theirs first) and the
    /// priority feeds deadline-aware batch formation.
    pub fn on_request(&mut self, id: RequestId, graph: CellGraph, now_us: u64, req: &Request) {
        let deadline = req
            .effective_deadline_us(None)
            .map(|d| now_us.saturating_add(d));
        self.admit(id, graph, now_us, deadline, req.priority);
    }

    fn admit(
        &mut self,
        id: RequestId,
        graph: CellGraph,
        now_us: u64,
        deadline_us: Option<u64>,
        priority: u8,
    ) {
        assert!(
            !self.requests.contains_key(&id),
            "duplicate request id {id}"
        );
        self.advance_clock(now_us);
        graph
            .validate(&self.registry)
            .unwrap_or_else(|e| panic!("invalid graph for {id}: {e}"));
        let n = graph.len();
        let part: Partition = partition(&graph);

        let mut unmet = vec![0u32; n];
        let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (nid, node) in graph.iter() {
            unmet[nid.index()] = node.deps.len() as u32;
            for d in node.deps.iter() {
                dependents[d.index()].push(nid.0);
            }
        }

        // Create subgraph states.
        let mut subgraph_ids = Vec::with_capacity(part.len());
        for sg_local in 0..part.len() {
            let sg_id = SubgraphId(self.next_subgraph);
            self.next_subgraph += 1;
            let cell_type = graph
                .node(NodeId(part.members[sg_local][0] as u32))
                .cell_type;
            let mut state = SubgraphState {
                request: id,
                cell_type,
                ready: std::collections::VecDeque::new(),
                external_unmet: part.external_deps[sg_local],
                pinned: None,
                inflight: 0,
                last_worker: None,
                in_queue: false,
            };
            if state.external_unmet == 0 {
                // Released immediately: queue nodes with no unmet deps.
                for &m in &part.members[sg_local] {
                    if unmet[m] == 0 {
                        state.ready.push_back(m as u32);
                    }
                }
            }
            subgraph_ids.push(sg_id);
            self.subgraphs.insert(sg_id, state);
        }

        let num_subgraphs = part.len() as u32;
        let req = RequestState {
            arrival_us: now_us,
            deadline_us,
            priority,
            start_us: None,
            first_enqueue_us: None,
            first_batch_us: None,
            unmet,
            dependents,
            submitted: vec![false; n],
            completed: vec![false; n],
            cancelled: vec![false; n],
            node_subgraph: part.node_subgraph,
            subgraph_ids: subgraph_ids.clone(),
            remaining: n,
            executed: 0,
            cancel_requested: false,
            graph,
        };
        self.requests.insert(id, req);

        if self.trace.enabled() {
            self.emit(
                now_us,
                EventKind::RequestArrived {
                    request: id.0,
                    nodes: n as u32,
                    subgraphs: num_subgraphs,
                },
            );
        }
        if let Some(m) = &self.metrics {
            m.requests_admitted.inc();
            m.active_requests.add(1);
        }

        // Enqueue released subgraphs with ready nodes.
        for sg_id in subgraph_ids {
            self.maybe_enqueue(sg_id);
        }
        if self.metrics.is_some() {
            self.set_ready_gauge();
        }
    }

    /// Publishes the ready-node level (single-writer gauge; the engine
    /// is driven from one thread).
    fn set_ready_gauge(&self) {
        if let Some(m) = &self.metrics {
            m.ready_nodes.set(self.total_ready_nodes() as i64);
        }
    }

    fn maybe_enqueue(&mut self, sg_id: SubgraphId) {
        let sg = self.subgraphs.get_mut(&sg_id).expect("live subgraph");
        if !sg.in_queue && sg.external_unmet == 0 && !sg.ready.is_empty() {
            sg.in_queue = true;
            let (request, cell_type, count) = (sg.request, sg.cell_type, sg.ready.len());
            let q = &mut self.queues[cell_type.index()];
            q.subgraphs.push_back(sg_id);
            q.ready_nodes += count;
            if self.trace.enabled() {
                self.emit(
                    self.clock_us,
                    EventKind::NodesEnqueued {
                        request: request.0,
                        subgraph: sg_id.0,
                        cell_type: cell_type.0,
                        count: count as u32,
                    },
                );
            }
            if self.metrics.is_some() {
                // Stage decomposition: when the request first became
                // schedulable.
                if let Some(req) = self.requests.get_mut(&request) {
                    req.first_enqueue_us.get_or_insert(self.clock_us);
                }
            }
        }
    }

    /// Total ready (schedulable) nodes across all cell types.
    pub fn total_ready_nodes(&self) -> usize {
        self.queues.iter().map(|q| q.ready_nodes).sum()
    }

    /// Number of requests currently in the system.
    pub fn active_requests(&self) -> usize {
        self.requests.len()
    }

    /// Number of in-flight tasks.
    pub fn inflight_tasks(&self) -> usize {
        self.inflight.len()
    }

    /// Whether any work can be dispatched right now.
    pub fn has_ready_work(&self) -> bool {
        self.total_ready_nodes() > 0
    }

    /// Algorithm 1 `Schedule(worker)`: asks the policy for a cell type
    /// and forms up to `MaxTasksToSubmit` batched tasks for `worker`.
    ///
    /// Returns an empty vector when nothing is schedulable: no ready
    /// nodes, every candidate type's ready subgraphs are pinned to
    /// other workers, or the policy is holding a batch for more slack.
    ///
    /// When the picked type yields no batch because all of its ready
    /// subgraphs are pinned elsewhere, the pick is retried with that
    /// type excluded — a worker never idles while another type has
    /// runnable unpinned work.
    pub fn dispatch(&mut self, worker: WorkerId) -> Vec<Task> {
        let mut excluded = vec![false; self.queues.len()];
        loop {
            let view = self.policy_view(worker, &excluded);
            if view.candidates.is_empty() {
                return Vec::new();
            }
            let Some(pick) = self.policy.pick(&view) else {
                // The policy holds: nothing this round.
                return Vec::new();
            };
            let tasks = self.batch(pick.cell_type, worker, pick.reason, pick.order);
            if !tasks.is_empty() {
                return tasks;
            }
            excluded[pick.cell_type.index()] = true;
        }
    }

    /// Distills queue state into the policy's input: one candidate per
    /// cell type with ready nodes, in registry order, minus `excluded`
    /// types. Slack aggregates are computed only when the policy asks
    /// for them.
    fn policy_view(&self, worker: WorkerId, excluded: &[bool]) -> PolicyView {
        let want_slack = self.policy.needs_slack();
        let mut candidates = Vec::new();
        for meta in self.registry.iter() {
            let i = meta.id.index();
            let q = &self.queues[i];
            if excluded[i] || q.ready_nodes == 0 {
                continue;
            }
            let (min_slack_us, earliest_deadline_us) = if want_slack {
                self.type_slack(meta.id)
            } else {
                (None, None)
            };
            candidates.push(TypeCandidate {
                cell_type: meta.id,
                ready_nodes: q.ready_nodes,
                running_tasks: q.running_tasks,
                min_batch: meta.min_batch,
                max_batch: meta.max_batch,
                priority: meta.priority,
                min_slack_us,
                earliest_deadline_us,
            });
        }
        PolicyView {
            now_us: self.clock_us,
            worker,
            candidates,
        }
    }

    /// Minimum slack and earliest absolute deadline across the requests
    /// with queued ready nodes of this type. Slack = deadline − now −
    /// estimated remaining work (remaining nodes × the type's EWMA
    /// per-row cost). The scan is bounded to the first `max_batch`
    /// queued subgraphs — the members a batch formed now would take.
    fn type_slack(&self, ct: CellTypeId) -> (Option<i64>, Option<u64>) {
        let q = &self.queues[ct.index()];
        let per_row = self.row_cost_ewma[ct.index()];
        let cap = self.registry.meta(ct).max_batch;
        let mut min_slack: Option<i64> = None;
        let mut earliest: Option<u64> = None;
        for &sg_id in q.subgraphs.iter().take(cap) {
            let sg = &self.subgraphs[&sg_id];
            if sg.ready.is_empty() {
                continue;
            }
            let req = &self.requests[&sg.request];
            let Some(d) = req.deadline_us else { continue };
            earliest = Some(earliest.map_or(d, |e| e.min(d)));
            let est = (req.remaining as f64 * per_row) as i64;
            let slack = d as i64 - self.clock_us as i64 - est;
            min_slack = Some(min_slack.map_or(slack, |s| s.min(slack)));
        }
        (min_slack, earliest)
    }

    /// Re-derives the Algorithm 1 qualification tier for a follow-on
    /// task formed in the same `dispatch` call: the selection-time
    /// reason goes stale once the first task drains the queue below
    /// `max_batch` (or leaves the type with a running task), so each
    /// formed task is labelled against the queue state it actually saw.
    fn requalify(&self, ct: CellTypeId) -> BatchReason {
        let q = &self.queues[ct.index()];
        if q.ready_nodes >= self.registry.meta(ct).max_batch {
            BatchReason::Saturation
        } else if q.running_tasks == 0 {
            BatchReason::Starvation
        } else {
            BatchReason::Priority
        }
    }

    /// Algorithm 1 `Batch(ct, worker)` (lines 12–23).
    fn batch(
        &mut self,
        ct: CellTypeId,
        worker: WorkerId,
        reason: BatchReason,
        order: FormationOrder,
    ) -> Vec<Task> {
        let meta = self.registry.meta(ct);
        let (min_batch, max_batch) = (meta.min_batch, meta.max_batch);
        let mut tasks = Vec::new();
        while tasks.len() < self.cfg.max_tasks_to_submit {
            let picks = self.form_batched_task(ct, worker, max_batch, order);
            if picks.is_empty() {
                break;
            }
            let size: usize = picks.iter().map(|(_, nodes)| nodes.len()).sum();
            if size >= min_batch || tasks.is_empty() {
                // The policy's reason describes the first task; follow-on
                // tasks in the same call requalify against the drained
                // queue so their labels stay truthful.
                let r = if tasks.is_empty() {
                    reason
                } else {
                    self.requalify(ct)
                };
                tasks.push(self.submit(ct, worker, picks, r));
            } else {
                break;
            }
        }
        tasks
    }

    /// Algorithm 1 `FormBatchedTask` (lines 24–32): scans the type's
    /// queue selecting ready nodes from subgraphs pinned to `None` or
    /// `worker`, without mutating state. Returns per-subgraph node
    /// counts to take from the front of each ready deque.
    ///
    /// Under [`FormationOrder::EarliestDeadline`] the eligible
    /// subgraphs are visited in earliest-request-deadline order
    /// (deadline-free requests last, queue order breaking ties)
    /// instead of queue order.
    fn form_batched_task(
        &self,
        ct: CellTypeId,
        worker: WorkerId,
        max_batch: usize,
        order: FormationOrder,
    ) -> Vec<(SubgraphId, Vec<u32>)> {
        let q = &self.queues[ct.index()];
        let eligible = |sg: &SubgraphState| {
            (sg.pinned.is_none() || sg.pinned == Some(worker)) && !sg.ready.is_empty()
        };
        let mut picks = Vec::new();
        let mut total = 0;
        let mut take_from = |sg_id: SubgraphId| {
            let sg = &self.subgraphs[&sg_id];
            let take = sg.ready.len().min(max_batch - total);
            let nodes: Vec<u32> = sg.ready.iter().take(take).copied().collect();
            total += nodes.len();
            picks.push((sg_id, nodes));
            total == max_batch
        };
        match order {
            FormationOrder::Fifo => {
                for &sg_id in &q.subgraphs {
                    if !eligible(&self.subgraphs[&sg_id]) {
                        continue;
                    }
                    if take_from(sg_id) {
                        break;
                    }
                }
            }
            FormationOrder::EarliestDeadline => {
                // Earliest deadline first; among equal deadlines,
                // higher request priority first; queue order breaks the
                // remaining ties (the sort is stable).
                let mut by_deadline: Vec<((u64, u8), SubgraphId)> = q
                    .subgraphs
                    .iter()
                    .filter(|sg_id| eligible(&self.subgraphs[sg_id]))
                    .map(|&sg_id| {
                        let req = &self.requests[&self.subgraphs[&sg_id].request];
                        (
                            (req.deadline_us.unwrap_or(u64::MAX), u8::MAX - req.priority),
                            sg_id,
                        )
                    })
                    .collect();
                by_deadline.sort_by_key(|&(key, _)| key);
                for (_, sg_id) in by_deadline {
                    if take_from(sg_id) {
                        break;
                    }
                }
            }
        }
        picks
    }

    /// Submits one batched task: removes the picked nodes from ready
    /// queues, satisfies intra-subgraph dependencies (line 18), pins
    /// subgraphs (lines 20–21) and computes gather/transfer metadata.
    fn submit(
        &mut self,
        ct: CellTypeId,
        worker: WorkerId,
        picks: Vec<(SubgraphId, Vec<u32>)>,
        reason: BatchReason,
    ) -> Task {
        let id = TaskId(self.next_task);
        self.next_task += 1;

        let mut entries: Vec<TaskEntry> = Vec::new();
        let mut subgraph_list: Vec<SubgraphId> = Vec::new();
        let mut transfer_rows = 0usize;
        let tracing = self.trace.enabled();
        let metrics_on = self.metrics.is_some();
        // Deferred trace payloads (emitted after the mutable borrows
        // below end): pins, migrations, intra-subgraph enqueues.
        let mut pins: Vec<(SubgraphId, RequestId)> = Vec::new();
        let mut migrations: Vec<(SubgraphId, RequestId, WorkerId, u32)> = Vec::new();
        let mut enqueues: Vec<(SubgraphId, RequestId, u32)> = Vec::new();

        for (sg_id, nodes) in &picks {
            let sg = self.subgraphs.get_mut(sg_id).expect("live subgraph");
            let req_id = sg.request;
            subgraph_list.push(*sg_id);
            // Remove from the front of the ready deque (FormBatchedTask
            // picked from the front).
            for &n in nodes {
                let popped = sg.ready.pop_front().expect("picked node is ready");
                debug_assert_eq!(popped, n);
                let gnode = self.requests[&req_id].graph.node(NodeId(n));
                entries.push(TaskEntry {
                    request: req_id,
                    node: NodeId(n),
                    deps: gnode.deps.clone(),
                    token: gnode.token,
                });
            }
            self.queues[ct.index()].ready_nodes -= nodes.len();
            // Pin (line 20-21) and count migration cost: every row of a
            // subgraph resuming on a different worker must move its
            // recurrent state there (§4.3).
            if let Some(prev) = sg.last_worker {
                if prev != worker {
                    transfer_rows += nodes.len();
                    if tracing {
                        migrations.push((*sg_id, req_id, prev, nodes.len() as u32));
                    }
                }
            }
            if tracing && sg.pinned.is_none() {
                pins.push((*sg_id, req_id));
            }
            sg.pinned = Some(worker);
            sg.last_worker = Some(worker);
            sg.inflight += 1;

            // Mark submitted and satisfy intra-subgraph dependencies
            // (UpdateNodesDependency, line 18).
            let req = self.requests.get_mut(&req_id).expect("live request");
            if metrics_on {
                req.first_batch_us.get_or_insert(self.clock_us);
            }
            let mut newly_ready = Vec::new();
            for &n in nodes {
                let ni = n as usize;
                req.submitted[ni] = true;
                for &dep_idx in &req.dependents[ni] {
                    let di = dep_idx as usize;
                    if req.node_subgraph[di] == req.node_subgraph[ni] && !req.cancelled[di] {
                        req.unmet[di] -= 1;
                        if req.unmet[di] == 0 {
                            newly_ready.push(dep_idx);
                        }
                    }
                }
            }
            if tracing && !newly_ready.is_empty() {
                enqueues.push((*sg_id, req_id, newly_ready.len() as u32));
            }
            let sg = self.subgraphs.get_mut(sg_id).expect("live subgraph");
            for n in newly_ready {
                sg.ready.push_back(n);
                self.queues[ct.index()].ready_nodes += 1;
            }
        }

        // Drop drained subgraphs from the queue head region lazily:
        // rebuild queue membership flags.
        self.compact_queue(ct);

        // Gather accounting: identical composition to the previous task
        // of this (worker, cell type) ⇒ no gather copies. On a repeat
        // the cached entry is left untouched (no insert, no clone).
        let key = (worker, ct);
        let subgraph_list: Arc<[SubgraphId]> = subgraph_list.into();
        let gather_rows = match self.last_composition.get(&key) {
            Some(prev) if prev[..] == subgraph_list[..] => 0,
            _ => {
                self.last_composition
                    .insert(key, Arc::clone(&subgraph_list));
                entries.len()
            }
        };

        self.queues[ct.index()].running_tasks += 1;
        self.stats.tasks_submitted += 1;
        self.stats.nodes_submitted += entries.len() as u64;
        self.stats.gathered_rows += gather_rows as u64;
        self.stats.transfers += transfer_rows as u64;
        if let Some(m) = &self.metrics {
            m.tasks_submitted.inc();
            m.reason_counter(reason).inc();
            m.gather_rows.add(gather_rows as u64);
            m.transfer_rows.add(transfer_rows as u64);
            m.batch_size[ct.index()].record(entries.len() as u64);
            m.inflight_tasks.add(1);
            m.ready_nodes.set(self.total_ready_nodes() as i64);
        }
        let task = Task {
            id,
            worker,
            cell_type: ct,
            entries,
            subgraphs: subgraph_list,
            gather_rows,
            transfer_rows,
        };
        if tracing {
            let mut requests: Vec<u64> = Vec::new();
            for e in &task.entries {
                if !requests.contains(&e.request.0) {
                    requests.push(e.request.0);
                }
            }
            let ts = self.clock_us;
            self.emit(
                ts,
                EventKind::BatchFormed {
                    task: id.0,
                    worker: worker.0,
                    cell_type: ct.0,
                    batch: task.entries.len() as u32,
                    reason,
                    gather_rows: gather_rows as u32,
                    transfer_rows: transfer_rows as u32,
                    requests,
                },
            );
            for (sg, req) in pins {
                self.emit(
                    ts,
                    EventKind::SubgraphPinned {
                        subgraph: sg.0,
                        request: req.0,
                        worker: worker.0,
                    },
                );
            }
            for (sg, req, from, rows) in migrations {
                self.emit(
                    ts,
                    EventKind::SubgraphMigrated {
                        subgraph: sg.0,
                        request: req.0,
                        from: from.0,
                        to: worker.0,
                        rows,
                    },
                );
            }
            for (sg, req, count) in enqueues {
                self.emit(
                    ts,
                    EventKind::NodesEnqueued {
                        request: req.0,
                        subgraph: sg.0,
                        cell_type: ct.0,
                        count,
                    },
                );
            }
        }
        self.inflight.insert(id, InflightTask::from_task(&task));
        task
    }

    /// Removes queued subgraphs that no longer have ready nodes.
    fn compact_queue(&mut self, ct: CellTypeId) {
        let q = &mut self.queues[ct.index()];
        let subgraphs = &mut self.subgraphs;
        q.subgraphs.retain(|sg_id| {
            let sg = subgraphs.get_mut(sg_id).expect("live subgraph");
            if sg.ready.is_empty() {
                sg.in_queue = false;
                false
            } else {
                true
            }
        });
    }

    /// Notes that a task began executing; stamps the start time of any
    /// request whose first cell this is.
    pub fn on_task_started(&mut self, task: TaskId, now_us: u64) {
        self.advance_clock(now_us);
        let Some(t) = self.inflight.get_mut(&task) else {
            return;
        };
        t.started_us.get_or_insert(now_us);
        let (task_id, worker) = (task.0, t.worker.0);
        for (req_id, _) in &t.entries {
            if let Some(req) = self.requests.get_mut(req_id) {
                req.start_us.get_or_insert(now_us);
            }
        }
        if self.trace.enabled() {
            self.emit(
                now_us,
                EventKind::TaskStarted {
                    task: task_id,
                    worker,
                },
            );
        }
    }

    /// Processes a task completion.
    ///
    /// `emitted_tokens` carries, per entry, the token the cell produced
    /// (decoder cells) — `None` elsewhere or when the driver does not
    /// execute real math (the simulator). Used only for `<eos>` early
    /// termination.
    ///
    /// Returns the requests that completed as a result.
    ///
    /// # Panics
    ///
    /// Panics if the task id is unknown or `emitted_tokens` has the
    /// wrong length.
    pub fn on_task_completed(
        &mut self,
        task: TaskId,
        emitted_tokens: &[Option<u32>],
        now_us: u64,
    ) -> Vec<CompletedRequest> {
        self.advance_clock(now_us);
        let t = self.inflight.remove(&task).expect("unknown task id");
        assert_eq!(
            emitted_tokens.len(),
            t.entries.len(),
            "token vector must match task entries"
        );
        self.queues[t.cell_type.index()].running_tasks -= 1;
        // Update the per-row service-cost EWMA that backs slack
        // estimation for deadline-aware policies.
        if let Some(started) = t.started_us {
            let per_row = now_us.saturating_sub(started) as f64 / t.entries.len().max(1) as f64;
            let e = &mut self.row_cost_ewma[t.cell_type.index()];
            *e = if *e == 0.0 {
                per_row
            } else {
                *e * (1.0 - ROW_COST_EWMA_ALPHA) + per_row * ROW_COST_EWMA_ALPHA
            };
        }
        if self.trace.enabled() {
            self.emit(
                now_us,
                EventKind::TaskCompleted {
                    task: task.0,
                    worker: t.worker.0,
                },
            );
        }
        if let Some(m) = &self.metrics {
            m.inflight_tasks.sub(1);
        }

        // Unpin subgraphs whose in-flight count drains.
        for sg_id in t.subgraphs.iter() {
            let sg = self.subgraphs.get_mut(sg_id).expect("live subgraph");
            sg.inflight -= 1;
            if sg.inflight == 0 {
                sg.pinned = None;
            }
        }

        let mut completed_requests = Vec::new();
        for (i, (req_id, node)) in t.entries.iter().enumerate() {
            let ni = node.index();
            // Phase 1: mark completion, detect <eos>, collect the
            // external edges this completion satisfies.
            let (eos_hit, released_subgraphs) = {
                let req = self.requests.get_mut(req_id).expect("live request");
                debug_assert!(!req.completed[ni]);
                req.completed[ni] = true;
                req.remaining -= 1;
                req.executed += 1;
                let eos_hit = matches!(
                    (req.graph.node(*node).eos, emitted_tokens[i]),
                    (Some(e), Some(t)) if e == t
                );
                let mut released = Vec::new();
                // Detach the dependent list instead of cloning it; the
                // loop body never touches `dependents[ni]`, and the list
                // is restored right after.
                let dependents = std::mem::take(&mut req.dependents[ni]);
                for &dep_idx in &dependents {
                    let di = dep_idx as usize;
                    if req.cancelled[di] || req.node_subgraph[di] == req.node_subgraph[ni] {
                        continue;
                    }
                    req.unmet[di] -= 1;
                    let sg_local = req.node_subgraph[di];
                    let sg_id = req.subgraph_ids[sg_local];
                    let sg = self.subgraphs.get_mut(&sg_id).expect("live subgraph");
                    sg.external_unmet -= 1;
                    if sg.external_unmet == 0 {
                        released.push(sg_local);
                    }
                }
                req.dependents[ni] = dependents;
                (eos_hit, released)
            };

            if eos_hit {
                self.cancel_downstream(*req_id, *node);
            }

            // Phase 2: release subgraphs whose last external dependency
            // was just satisfied — queue every dependency-free node.
            for sg_local in released_subgraphs {
                self.release_subgraph(*req_id, sg_local);
            }

            // Phase 3: request completion.
            let req = self.requests.get(req_id).expect("live request");
            if req.remaining == 0 {
                let done = CompletedRequest {
                    id: *req_id,
                    arrival_us: req.arrival_us,
                    start_us: req.start_us.expect("started before completing"),
                    completion_us: now_us,
                    executed_nodes: req.executed,
                    total_nodes: req.graph.len(),
                    cancelled: req.cancel_requested,
                };
                completed_requests.push(done);
                if done.cancelled {
                    self.stats.requests_cancelled += 1;
                } else {
                    self.stats.requests_completed += 1;
                }
                if let Some(m) = &self.metrics {
                    m.active_requests.sub(1);
                    if done.cancelled {
                        m.requests_cancelled.inc();
                    } else {
                        m.requests_completed.inc();
                        // Stage decomposition, clamped into a monotone
                        // chain so the four durations telescope to
                        // exactly `completion - arrival`.
                        let cell = req.graph.node(NodeId(0)).cell_type.index();
                        let (a, e) = (done.arrival_us, done.completion_us);
                        let b = req.first_enqueue_us.unwrap_or(a).clamp(a, e);
                        let c = req.first_batch_us.unwrap_or(b).clamp(b, e);
                        let d = done.start_us.clamp(c, e);
                        m.stage[cell][0].record(b - a);
                        m.stage[cell][1].record(c - b);
                        m.stage[cell][2].record(d - c);
                        m.stage[cell][3].record(e - d);
                    }
                }
                if self.trace.enabled() {
                    self.emit(
                        now_us,
                        EventKind::RequestCompleted {
                            request: req_id.0,
                            executed: done.executed_nodes as u32,
                            total: done.total_nodes as u32,
                            cancelled: done.cancelled,
                        },
                    );
                }
                self.retire(*req_id);
            }
        }
        self.set_ready_gauge();
        if self.cfg.retain_completions {
            self.completions.extend(completed_requests.iter().copied());
        }
        completed_requests
    }

    /// Cancels a request (§overload handling): every node not yet
    /// submitted to a worker is cancelled and removed from the
    /// scheduling queues; in-flight tasks are left to drain.
    ///
    /// If no task of the request is in flight the request retires
    /// immediately and its (cancelled) completion record is returned;
    /// otherwise the record is produced by the
    /// [`CellularEngine::on_task_completed`] call that drains the last
    /// in-flight task. Either way the driver observes exactly one
    /// completion record per cancelled request, with
    /// [`CompletedRequest::cancelled`] set.
    pub fn cancel_request(&mut self, id: RequestId, now_us: u64) -> CancelOutcome {
        self.advance_clock(now_us);
        if !self.requests.contains_key(&id) {
            return CancelOutcome::Unknown;
        }

        // Cancel every node that has not been handed to a worker.
        let newly_cancelled: Vec<usize> = {
            let req = self.requests.get_mut(&id).expect("live request");
            req.cancel_requested = true;
            let mut cancelled = Vec::new();
            for i in 0..req.graph.len() {
                if !req.submitted[i] && !req.cancelled[i] {
                    req.cancelled[i] = true;
                    req.remaining -= 1;
                    self.stats.cancelled_nodes += 1;
                    cancelled.push(i);
                }
            }
            cancelled
        };

        let dropped = newly_cancelled.len() as u32;
        if let Some(m) = &self.metrics {
            m.nodes_cancelled.add(dropped as u64);
        }

        // Remove the cancelled nodes from their subgraphs' ready queues,
        // keeping per-type ready counters consistent.
        for i in newly_cancelled {
            let req = &self.requests[&id];
            let sg_id = req.subgraph_ids[req.node_subgraph[i]];
            let sg = self.subgraphs.get_mut(&sg_id).expect("live subgraph");
            let before = sg.ready.len();
            sg.ready.retain(|&x| x != i as u32);
            let removed = before - sg.ready.len();
            if removed > 0 && sg.in_queue {
                self.queues[sg.cell_type.index()].ready_nodes -= removed;
            }
        }
        for ct in 0..self.queues.len() {
            self.compact_queue(CellTypeId(ct as u32));
        }
        self.set_ready_gauge();

        let req = &self.requests[&id];
        let draining = req.remaining > 0;
        if self.trace.enabled() {
            self.emit(
                now_us,
                EventKind::CancelRequested {
                    request: id.0,
                    dropped_nodes: dropped,
                    draining,
                },
            );
        }
        if draining {
            // Submitted-but-uncompleted nodes remain: resolve when the
            // in-flight tasks drain.
            return CancelOutcome::Draining;
        }
        let req = &self.requests[&id];
        let done = CompletedRequest {
            id,
            arrival_us: req.arrival_us,
            start_us: req.start_us.unwrap_or(now_us),
            completion_us: now_us,
            executed_nodes: req.executed,
            total_nodes: req.graph.len(),
            cancelled: true,
        };
        self.stats.requests_cancelled += 1;
        if let Some(m) = &self.metrics {
            m.requests_cancelled.inc();
            m.active_requests.sub(1);
        }
        if self.trace.enabled() {
            self.emit(
                now_us,
                EventKind::RequestCompleted {
                    request: id.0,
                    executed: done.executed_nodes as u32,
                    total: done.total_nodes as u32,
                    cancelled: true,
                },
            );
        }
        self.retire(id);
        if self.cfg.retain_completions {
            self.completions.push(done);
        }
        CancelOutcome::Finished(done)
    }

    /// Queues every dependency-free node of a just-released subgraph.
    fn release_subgraph(&mut self, req_id: RequestId, sg_local: usize) {
        let Some(req) = self.requests.get(&req_id) else {
            return;
        };
        let sg_id = req.subgraph_ids[sg_local];
        let mut to_push = Vec::new();
        for (idx, &sgx) in req.node_subgraph.iter().enumerate() {
            if sgx == sg_local
                && req.unmet[idx] == 0
                && !req.submitted[idx]
                && !req.cancelled[idx]
                && !req.completed[idx]
            {
                to_push.push(idx as u32);
            }
        }
        let sg = self.subgraphs.get_mut(&sg_id).expect("live subgraph");
        debug_assert_eq!(sg.external_unmet, 0, "releasing unreleased subgraph");
        for n in to_push {
            debug_assert!(!sg.ready.contains(&n));
            sg.ready.push_back(n);
        }
        if sg.in_queue {
            // Already queued (cannot happen for a fresh release, but
            // keep the counter consistent if it ever does).
        } else {
            self.maybe_enqueue(sg_id);
        }
    }

    /// Cancels all unsubmitted nodes transitively downstream of `from`.
    fn cancel_downstream(&mut self, req_id: RequestId, from: NodeId) {
        let req = self.requests.get_mut(&req_id).expect("live request");
        let n = req.graph.len();
        let mut downstream = vec![false; n];
        downstream[from.index()] = true;
        let mut newly_cancelled: Vec<usize> = Vec::new();
        for i in from.index() + 1..n {
            let node = req.graph.node(NodeId(i as u32));
            if node.deps.iter().any(|d| downstream[d.index()]) {
                downstream[i] = true;
                if !req.submitted[i] && !req.cancelled[i] {
                    req.cancelled[i] = true;
                    req.remaining -= 1;
                    self.stats.cancelled_nodes += 1;
                    newly_cancelled.push(i);
                }
            }
        }
        let n_cancelled = newly_cancelled.len() as u64;
        // Remove cancelled nodes from their subgraphs' ready queues.
        for i in newly_cancelled {
            let sg_id = req.subgraph_ids[req.node_subgraph[i]];
            let sg = self.subgraphs.get_mut(&sg_id).expect("live subgraph");
            let before = sg.ready.len();
            sg.ready.retain(|&x| x != i as u32);
            let removed = before - sg.ready.len();
            if removed > 0 && sg.in_queue {
                self.queues[sg.cell_type.index()].ready_nodes -= removed;
            }
        }
        // Compact any queues that drained.
        for ct in 0..self.queues.len() {
            self.compact_queue(CellTypeId(ct as u32));
        }
        if let Some(m) = &self.metrics {
            m.nodes_cancelled.add(n_cancelled);
        }
    }

    /// Removes a finished request and its subgraphs.
    fn retire(&mut self, req_id: RequestId) {
        let req = self.requests.remove(&req_id).expect("live request");
        for sg_id in req.subgraph_ids {
            if let Some(sg) = self.subgraphs.remove(&sg_id) {
                debug_assert!(sg.ready.is_empty(), "retiring subgraph with ready nodes");
                if sg.in_queue {
                    let q = &mut self.queues[sg.cell_type.index()];
                    q.subgraphs.retain(|&x| x != sg_id);
                }
            }
        }
    }

    /// Drains the accumulated completion records.
    pub fn drain_completions(&mut self) -> Vec<CompletedRequest> {
        std::mem::take(&mut self.completions)
    }
}

impl std::fmt::Debug for CellularEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellularEngine")
            .field("requests", &self.requests.len())
            .field("subgraphs", &self.subgraphs.len())
            .field("inflight", &self.inflight.len())
            .field("ready", &self.total_ready_nodes())
            .finish()
    }
}
