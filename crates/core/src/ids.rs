//! Identifier types used across the scheduler.

use std::fmt;

pub use bm_device::WorkerId;

/// Identifier of one inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// Identifier of one batched task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Global identifier of one subgraph (unique across requests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubgraphId(pub u64);

impl fmt::Display for SubgraphId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sg{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(RequestId(1).to_string(), "req1");
        assert_eq!(TaskId(2).to_string(), "task2");
        assert_eq!(SubgraphId(3).to_string(), "sg3");
    }
}
