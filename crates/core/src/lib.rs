//! Cellular batching: the paper's primary contribution.
//!
//! This crate implements BatchMaker's manager (§4, Figure 6):
//!
//! - [`mod@partition`] — splitting each request's cell graph into
//!   same-type subgraphs (§4.3/§4.4);
//! - [`CellularEngine`] — the request processor + scheduler as a pure
//!   state machine, implementing Algorithm 1 exactly: cell-type
//!   selection by (saturation, starvation, priority), batched task
//!   formation across subgraphs, `MaxTasksToSubmit`, subgraph pinning
//!   for worker locality, and gather/transfer accounting;
//! - [`Runtime`] — a threaded real-time driver (manager + worker
//!   threads) that executes real cell math on CPU and returns results
//!   bit-identical to the unbatched reference executor;
//! - [`ResidentBatch`] — the resident-state execution plane for chain
//!   cells (on by default via [`ServeConfig::resident_state`]): each active
//!   request's recurrent state stays parked as a row of a persistent
//!   batch matrix, eliminating the per-step gather while remaining
//!   bit-identical to the gather path.
//!
//! The discrete-event simulator in `bm-sim` drives the same
//! [`CellularEngine`] under a calibrated GPU cost model to reproduce the
//! paper's latency/throughput experiments.

mod config;
mod engine;
mod ids;
pub mod partition;
pub mod policy;
mod request;
mod resident;
mod runtime;
mod shard;
mod state_plane;
mod task;

pub use config::{ReadinessMode, ServeConfig, TenantRate};
pub use engine::{CancelOutcome, CellularEngine, SchedulerConfig, SchedulerStats, STAGE_NAMES};
pub use ids::{RequestId, SubgraphId, TaskId, WorkerId};
pub use partition::{partition, Partition};
pub use policy::{
    FormationOrder, PolicyKind, PolicyPick, PolicyView, SchedulingPolicy, TypeCandidate,
};
pub use request::{DeadlineSpec, Request};
pub use resident::{ResidentBatch, ResidentStats};
pub use runtime::{
    completion_queue, CompletionQueue, CompletionReceiver, ResponseHandle, Runtime, RuntimeOptions,
    ServedOutcome, ServedResult, ServedTiming, SubmitError, WaitError,
};
pub use shard::ShardedRuntime;
pub use state_plane::SlotBlock;
pub use task::{CompletedRequest, Task, TaskEntry};
