//! The shared serving configuration.
//!
//! [`ServeConfig`] collects every knob that used to be duplicated
//! across [`crate::SchedulerConfig`], [`crate::RuntimeOptions`] and
//! `bm_sim::SimOptions` — batch-formation policy, deadlines, admission
//! caps, queue bounds, pipelining, observability sinks — plus the knobs
//! introduced by the sharded control plane (shard count, per-tenant
//! rate limits). All three option structs embed one `ServeConfig`, so a
//! deployment configures these once regardless of whether it runs the
//! threaded runtime, the sharded runtime, the simulator, or the network
//! front door.

use std::sync::Arc;

use bm_telemetry::Telemetry;
use bm_trace::TraceSink;

use crate::policy::PolicyKind;

/// How the network front door (`bm-net`) learns that sockets and
/// completions are ready, i.e. which readiness backend its single
/// ingest/completion event loop runs on.
///
/// Lives here (rather than in `bm-net`) for the same reason as
/// [`TenantRate`]: it is a serving-deployment knob carried by the one
/// [`ServeConfig`] every driver embeds. Drivers without sockets (the
/// in-process runtimes, the simulator) ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadinessMode {
    /// Use the best backend the platform supports: the raw-syscall
    /// epoll backend on Linux x86_64, the polled scan everywhere else.
    #[default]
    Auto,
    /// Portable fallback: a polled scan of non-blocking sockets with
    /// adaptive idle backoff. Always available; the bit-identity oracle
    /// the epoll backend is tested against.
    Polled,
    /// Linux x86_64 epoll via `bm-net`'s raw-syscall shim (eventfd
    /// wakeups, edge-free level-triggered readiness, write-interest
    /// registration instead of write backoff). Binding a server with
    /// this mode on an unsupported platform fails with an error.
    Epoll,
}

impl ReadinessMode {
    /// Parses a CLI-style name: `auto`, `polled` or `epoll`.
    pub fn parse(s: &str) -> Option<ReadinessMode> {
        match s {
            "auto" => Some(ReadinessMode::Auto),
            "polled" => Some(ReadinessMode::Polled),
            "epoll" => Some(ReadinessMode::Epoll),
            _ => None,
        }
    }

    /// The CLI-style name ([`ReadinessMode::parse`]'s inverse).
    pub fn label(self) -> &'static str {
        match self {
            ReadinessMode::Auto => "auto",
            ReadinessMode::Polled => "polled",
            ReadinessMode::Epoll => "epoll",
        }
    }
}

/// A per-tenant token-bucket rate limit, enforced by the network front
/// door (`bm-net`) before a request reaches a scheduler shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantRate {
    /// Sustained refill rate, requests per second.
    pub per_sec: f64,
    /// Bucket capacity: the largest burst admitted at once.
    pub burst: u32,
}

impl TenantRate {
    /// A limit of `per_sec` sustained requests/second with bursts up to
    /// `burst`.
    pub fn new(per_sec: f64, burst: u32) -> Self {
        TenantRate { per_sec, burst }
    }
}

/// Serving knobs shared by every driver of the cellular-batching
/// engine.
///
/// Embedded by [`crate::SchedulerConfig`] (and therefore
/// [`crate::RuntimeOptions`]) and `bm_sim::SimOptions`; the network
/// front door reads the shard count and tenant limits from the same
/// struct. Built fluently (`#[non_exhaustive]` forbids literal
/// construction so new knobs can be added compatibly):
///
/// ```
/// use bm_core::{PolicyKind, ServeConfig};
///
/// let cfg = ServeConfig::new()
///     .policy(PolicyKind::DeadlineEdf)
///     .deadline_us(50_000)
///     .max_active(256)
///     .shards(4);
/// assert_eq!(cfg.policy, Some(PolicyKind::DeadlineEdf));
/// assert_eq!(cfg.shards, 4);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Batch-formation policy ([`crate::policy`]). `None` keeps the
    /// driver's existing policy (the engine default is
    /// [`PolicyKind::PaperDefault`]; a simulated server keeps whatever
    /// it was constructed with).
    pub policy: Option<PolicyKind>,
    /// Default relative deadline applied to every submission that does
    /// not carry its own ([`crate::Request::deadline_us`]), µs from
    /// arrival. `None` means no default deadline.
    pub deadline_us: Option<u64>,
    /// Cap on concurrently admitted (unresolved) requests; submissions
    /// beyond it fail with `SubmitError::AtCapacity`. `None` admits
    /// everything.
    pub max_active: Option<usize>,
    /// Bound on the manager's message queue; when full, submissions
    /// fail with `SubmitError::QueueFull`. `None` leaves it unbounded.
    pub queue_cap: Option<usize>,
    /// Per-worker in-flight window (≥ 1; 1 disables pipelining).
    pub pipeline_depth: usize,
    /// Execute eligible chain cells through the resident-state plane
    /// ([`crate::ResidentBatch`]): each active request's recurrent state
    /// stays parked as a row of a per-worker persistent batch matrix,
    /// eliminating the per-step gather. **On by default** since the
    /// plane soaked through a full PR cycle with bit-identity pinned by
    /// the `resident_identity` proptests; the gather path remains the
    /// oracle and A/B baseline (`.resident_state(false)`). Outputs are
    /// bitwise identical either way. The discrete-event simulator
    /// (duration-based, no real state movement) ignores it.
    pub resident_state: bool,
    /// Batch the manager's channel traffic: submit all tasks formed for
    /// a worker in one message per dispatch pass, and let callers
    /// coalesce many client submissions into one manager message
    /// (`Runtime::submit_batch_tagged`; the network front door batches
    /// every frame decoded in one readiness pass). On by default; turn
    /// off to reproduce the per-message baseline the `repro serve`
    /// manager-batching comparison measures against. Outputs are
    /// identical either way — this only changes how many channel
    /// round-trips carry them.
    pub batched_dispatch: bool,
    /// Readiness backend for the network front door's event loop
    /// ([`ReadinessMode`]); in-process drivers ignore it.
    pub readiness: ReadinessMode,
    /// Scheduler shards for the sharded runtime (each owns its own
    /// engine, queues and deadline heap). The plain threaded runtime
    /// and the simulator ignore it. Defaults to half the host's cores,
    /// at least 1.
    pub shards: usize,
    /// Per-tenant token-bucket rate limit enforced at the network front
    /// door. `None` disables tenant rate limiting.
    pub tenant_rate: Option<TenantRate>,
    /// Destination for scheduler trace events; the default no-op sink
    /// reports itself disabled, so instrumentation costs one branch per
    /// site.
    pub trace: Arc<dyn TraceSink>,
    /// Metric registry for live serving telemetry; defaults to the
    /// disabled registry (one branch per call site, no allocation).
    pub telemetry: Arc<Telemetry>,
}

/// Half the host's cores (the default shard count): one scheduler
/// thread per two cores leaves headroom for the workers.
pub(crate) fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| (n.get() / 2).max(1))
        .unwrap_or(1)
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            policy: None,
            deadline_us: None,
            max_active: None,
            queue_cap: None,
            pipeline_depth: 2,
            resident_state: true,
            batched_dispatch: true,
            readiness: ReadinessMode::Auto,
            shards: default_shards(),
            tenant_rate: None,
            trace: bm_trace::noop(),
            telemetry: Telemetry::disabled(),
        }
    }
}

impl ServeConfig {
    /// The default configuration (start of the builder chain): no
    /// policy override, no deadline, no admission cap, unbounded queue,
    /// depth-2 pipeline, resident state and batched dispatch on, auto
    /// readiness, cores/2 shards, no tenant limits, tracing and
    /// telemetry off.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the batch-formation policy.
    pub fn policy(mut self, kind: PolicyKind) -> Self {
        self.policy = Some(kind);
        self
    }

    /// Sets the default relative deadline, µs from arrival.
    pub fn deadline_us(mut self, d: u64) -> Self {
        self.deadline_us = Some(d);
        self
    }

    /// Caps concurrently admitted requests.
    pub fn max_active(mut self, cap: usize) -> Self {
        self.max_active = Some(cap);
        self
    }

    /// Bounds the manager's message queue.
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = Some(cap);
        self
    }

    /// Sets the per-worker in-flight window (≥ 1; 1 disables
    /// pipelining).
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Enables (or disables) the resident-state execution plane for
    /// chain cells. On by default; `false` selects the gather-path
    /// oracle.
    pub fn resident_state(mut self, on: bool) -> Self {
        self.resident_state = on;
        self
    }

    /// Enables (or disables) batched manager dispatch and coalesced
    /// submission. On by default; `false` reproduces the per-message
    /// baseline.
    pub fn batched_dispatch(mut self, on: bool) -> Self {
        self.batched_dispatch = on;
        self
    }

    /// Selects the network front door's readiness backend.
    pub fn readiness(mut self, mode: ReadinessMode) -> Self {
        self.readiness = mode;
        self
    }

    /// Sets the scheduler shard count (≥ 1).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Sets the per-tenant token-bucket rate limit.
    pub fn tenant_rate(mut self, rate: TenantRate) -> Self {
        self.tenant_rate = Some(rate);
        self
    }

    /// Routes scheduler trace events to `sink`.
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = sink;
        self
    }

    /// Records serving metrics into `tel`.
    pub fn telemetry(mut self, tel: Arc<Telemetry>) -> Self {
        self.telemetry = tel;
        self
    }
}
