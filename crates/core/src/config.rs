//! The shared serving configuration.
//!
//! [`ServeConfig`] collects every knob that used to be duplicated
//! across [`crate::SchedulerConfig`], [`crate::RuntimeOptions`] and
//! `bm_sim::SimOptions` — batch-formation policy, deadlines, admission
//! caps, queue bounds, pipelining, observability sinks — plus the knobs
//! introduced by the sharded control plane (shard count, per-tenant
//! rate limits). All three option structs embed one `ServeConfig`, so a
//! deployment configures these once regardless of whether it runs the
//! threaded runtime, the sharded runtime, the simulator, or the network
//! front door.

use std::sync::Arc;

use bm_telemetry::Telemetry;
use bm_trace::TraceSink;

use crate::policy::PolicyKind;

/// A per-tenant token-bucket rate limit, enforced by the network front
/// door (`bm-net`) before a request reaches a scheduler shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantRate {
    /// Sustained refill rate, requests per second.
    pub per_sec: f64,
    /// Bucket capacity: the largest burst admitted at once.
    pub burst: u32,
}

impl TenantRate {
    /// A limit of `per_sec` sustained requests/second with bursts up to
    /// `burst`.
    pub fn new(per_sec: f64, burst: u32) -> Self {
        TenantRate { per_sec, burst }
    }
}

/// Serving knobs shared by every driver of the cellular-batching
/// engine.
///
/// Embedded by [`crate::SchedulerConfig`] (and therefore
/// [`crate::RuntimeOptions`]) and `bm_sim::SimOptions`; the network
/// front door reads the shard count and tenant limits from the same
/// struct. Built fluently (`#[non_exhaustive]` forbids literal
/// construction so new knobs can be added compatibly):
///
/// ```
/// use bm_core::{PolicyKind, ServeConfig};
///
/// let cfg = ServeConfig::new()
///     .policy(PolicyKind::DeadlineEdf)
///     .deadline_us(50_000)
///     .max_active(256)
///     .shards(4);
/// assert_eq!(cfg.policy, Some(PolicyKind::DeadlineEdf));
/// assert_eq!(cfg.shards, 4);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Batch-formation policy ([`crate::policy`]). `None` keeps the
    /// driver's existing policy (the engine default is
    /// [`PolicyKind::PaperDefault`]; a simulated server keeps whatever
    /// it was constructed with).
    pub policy: Option<PolicyKind>,
    /// Default relative deadline applied to every submission that does
    /// not carry its own ([`crate::Request::deadline_us`]), µs from
    /// arrival. `None` means no default deadline.
    pub deadline_us: Option<u64>,
    /// Cap on concurrently admitted (unresolved) requests; submissions
    /// beyond it fail with `SubmitError::AtCapacity`. `None` admits
    /// everything.
    pub max_active: Option<usize>,
    /// Bound on the manager's message queue; when full, submissions
    /// fail with `SubmitError::QueueFull`. `None` leaves it unbounded.
    pub queue_cap: Option<usize>,
    /// Per-worker in-flight window (≥ 1; 1 disables pipelining).
    pub pipeline_depth: usize,
    /// Execute eligible chain cells through the resident-state plane
    /// ([`crate::ResidentBatch`]): each active request's recurrent state
    /// stays parked as a row of a per-worker persistent batch matrix,
    /// eliminating the per-step gather. Off by default; the gather path
    /// remains the bit-identity oracle and A/B baseline. Outputs are
    /// bitwise identical either way. The discrete-event simulator
    /// (duration-based, no real state movement) ignores it.
    pub resident_state: bool,
    /// Scheduler shards for the sharded runtime (each owns its own
    /// engine, queues and deadline heap). The plain threaded runtime
    /// and the simulator ignore it. Defaults to half the host's cores,
    /// at least 1.
    pub shards: usize,
    /// Per-tenant token-bucket rate limit enforced at the network front
    /// door. `None` disables tenant rate limiting.
    pub tenant_rate: Option<TenantRate>,
    /// Destination for scheduler trace events; the default no-op sink
    /// reports itself disabled, so instrumentation costs one branch per
    /// site.
    pub trace: Arc<dyn TraceSink>,
    /// Metric registry for live serving telemetry; defaults to the
    /// disabled registry (one branch per call site, no allocation).
    pub telemetry: Arc<Telemetry>,
}

/// Half the host's cores (the default shard count): one scheduler
/// thread per two cores leaves headroom for the workers.
pub(crate) fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| (n.get() / 2).max(1))
        .unwrap_or(1)
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            policy: None,
            deadline_us: None,
            max_active: None,
            queue_cap: None,
            pipeline_depth: 2,
            resident_state: false,
            shards: default_shards(),
            tenant_rate: None,
            trace: bm_trace::noop(),
            telemetry: Telemetry::disabled(),
        }
    }
}

impl ServeConfig {
    /// The default configuration (start of the builder chain): no
    /// policy override, no deadline, no admission cap, unbounded queue,
    /// depth-2 pipeline, cores/2 shards, no tenant limits, tracing and
    /// telemetry off.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the batch-formation policy.
    pub fn policy(mut self, kind: PolicyKind) -> Self {
        self.policy = Some(kind);
        self
    }

    /// Sets the default relative deadline, µs from arrival.
    pub fn deadline_us(mut self, d: u64) -> Self {
        self.deadline_us = Some(d);
        self
    }

    /// Caps concurrently admitted requests.
    pub fn max_active(mut self, cap: usize) -> Self {
        self.max_active = Some(cap);
        self
    }

    /// Bounds the manager's message queue.
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = Some(cap);
        self
    }

    /// Sets the per-worker in-flight window (≥ 1; 1 disables
    /// pipelining).
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Enables (or disables) the resident-state execution plane for
    /// chain cells.
    pub fn resident_state(mut self, on: bool) -> Self {
        self.resident_state = on;
        self
    }

    /// Sets the scheduler shard count (≥ 1).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Sets the per-tenant token-bucket rate limit.
    pub fn tenant_rate(mut self, rate: TenantRate) -> Self {
        self.tenant_rate = Some(rate);
        self
    }

    /// Routes scheduler trace events to `sink`.
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = sink;
        self
    }

    /// Records serving metrics into `tel`.
    pub fn telemetry(mut self, tel: Arc<Telemetry>) -> Self {
        self.telemetry = tel;
        self
    }
}
