//! The threaded real-time runtime: BatchMaker's manager/worker
//! architecture (§4.2, Figure 6) executing *real* cell math on CPU
//! threads.
//!
//! - The **manager thread** owns the [`CellularEngine`]: it admits
//!   arriving requests, keeps each worker's FIFO queue filled to a
//!   depth-`k` in-flight window ([`RuntimeOptions::pipeline_depth`]),
//!   processes completion notifications and expires requests whose
//!   deadline passes before they finish. All pending completions are
//!   drained before each dispatch pass, so one completion never costs
//!   one dispatch round-trip.
//! - Each **worker thread** owns one task queue. It pops a task,
//!   gathers the batched inputs by reading state-arena rows in place,
//!   executes the cell once at the batch size, scatters outputs into
//!   its own arena rows and pushes a completion record — the CPU
//!   analogue of the paper's GPU worker with its in-progress queue and
//!   signaling kernel (§5's per-device queues hiding launch gaps).
//!
//! ## The state plane
//!
//! Node outputs live in per-request slot blocks
//! (`crate::state_plane::SlotBlock`): dense slot rows allocated at
//! admission, written exactly once by the executing worker and read in
//! place by every later gather. There is no global state map, no lock
//! on the data path and no per-dependency `CellOutput` clone; a node's
//! output is copied exactly once, into the [`GraphResult`] handed back
//! to the client. Cross-task visibility is a per-node
//! `Release`/`Acquire` publication word, and FIFO per-worker queues
//! plus the engine's completion-driven dependency tracking guarantee a
//! dependency's rows are published before any task that gathers them
//! starts (§5 FIFO stream semantics).
//!
//! With [`RuntimeOptions::resident_state`] enabled, workers additionally
//! keep a resident-state plane: one [`crate::ResidentBatch`] per chain
//! cell type whose rows park each active request's recurrent state
//! between steps, so steady-state chain execution skips the gather
//! entirely (the scatter — publication to the slot block — remains, and
//! outputs stay bit-identical). The manager piggybacks eviction notices
//! for resolved requests onto dispatched tasks so workers can release
//! rows; stale rows left by worker migration are repaired from the slot
//! arena by a per-row freshness check.
//!
//! ## Overload behaviour
//!
//! Under overload the runtime degrades explicitly instead of letting
//! queues grow without bound:
//!
//! - **Admission control** ([`RuntimeOptions::max_active`],
//!   [`RuntimeOptions::queue_cap`]) refuses excess submissions with a
//!   typed [`SubmitError`] without disturbing admitted work.
//! - **Deadlines** ([`RuntimeOptions::deadline_us`] or per-request via
//!   [`crate::Request::deadline_us`]) cancel requests that cannot
//!   meet their SLA: unsubmitted cells are dropped through
//!   [`CellularEngine::cancel_request`], in-flight tasks drain, and the
//!   handle resolves to [`ServedOutcome::Expired`].
//!
//! ## Observability
//!
//! Passing a [`TraceSink`] via [`RuntimeOptions::trace`] captures the
//! full request lifecycle — arrival, admission rejections, batch
//! formation (with the Algorithm 1 branch that chose the cell type),
//! per-worker task execution, pinning/migration, expiry and completion —
//! as structured [`bm_trace`] events, exportable to Chrome trace JSON.
//!
//! The runtime exists to prove the scheduler end-to-end: its results are
//! compared bit-for-bit against the unbatched reference executor
//! (`bm_model::reference`), while the latency/throughput experiments use
//! the discrete-event simulator over the same engine.

use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};

use bm_cell::{Cell, CellRegistry, CellTypeId, ResidentLayout, RowInvocation, Scratch, StateRef};
use bm_device::CpuTimer;
use bm_model::{reference::GraphResult, CellGraph, Model, RequestInput, TokenSource};
use bm_telemetry::{Counter, Gauge, Histogram, Telemetry};
use bm_trace::{EventKind, RejectReason, TraceEvent, TraceSink};

use crate::config::ServeConfig;
use crate::engine::{CancelOutcome, CellularEngine, SchedulerConfig};
use crate::ids::{RequestId, TaskId, WorkerId};
use crate::request::Request;
use crate::resident::{ResidentBatch, ResidentStats};
use crate::state_plane::SlotBlock;
use crate::task::{CompletedRequest, Task};

/// Why a submission was refused.
///
/// Validation failures and overload refusals are both surfaced here so
/// callers can match on the cause; the enum is `#[non_exhaustive]`
/// because future policies (e.g. per-tenant quotas) may add variants.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SubmitError {
    /// The input failed model validation (wrong variant, empty
    /// sequence, out-of-vocabulary tokens). No work was done.
    Invalid(String),
    /// The manager's bounded message queue ([`RuntimeOptions::queue_cap`])
    /// was full. No work was done.
    QueueFull,
    /// The concurrent-request cap ([`RuntimeOptions::max_active`]) was
    /// reached. No work was done.
    AtCapacity,
    /// The runtime is shutting down and no longer accepts requests.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Invalid(msg) => write!(f, "invalid request: {msg}"),
            SubmitError::QueueFull => write!(f, "manager queue full"),
            SubmitError::AtCapacity => write!(f, "active-request cap reached"),
            SubmitError::ShuttingDown => write!(f, "runtime shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Timing measured for one served request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedTiming {
    /// Arrival, µs since runtime start.
    pub arrival_us: u64,
    /// First execution, µs.
    pub start_us: u64,
    /// Completion, µs.
    pub completion_us: u64,
}

/// The payload of a successfully served request.
#[derive(Debug, Clone)]
pub struct ServedResult {
    /// Per-node outputs (`None` for `<eos>`-cancelled nodes).
    pub result: GraphResult,
    /// Request timing.
    pub timing: ServedTiming,
}

/// How an *admitted* request resolved. (Refused submissions never get a
/// handle — they fail fast with a [`SubmitError`].)
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ServedOutcome {
    /// The request ran to completion; outputs are bit-identical to the
    /// unbatched reference executor.
    Completed(ServedResult),
    /// The deadline passed before completion: unsubmitted cells were
    /// cancelled, in-flight work drained and partial outputs were
    /// discarded. The timing records when the request was admitted and
    /// when it was declared expired.
    Expired(ServedTiming),
    /// The runtime shut down before resolving the request.
    ShutDown,
}

impl ServedOutcome {
    /// Unwraps the completed result.
    ///
    /// # Panics
    ///
    /// Panics if the request did not complete.
    pub fn completed(self) -> ServedResult {
        match self {
            ServedOutcome::Completed(r) => r,
            other => panic!("request did not complete: {other:?}"),
        }
    }

    /// Whether the request completed normally.
    pub fn is_completed(&self) -> bool {
        matches!(self, ServedOutcome::Completed(_))
    }

    /// The request timing, when one was measured (completed or expired).
    pub fn timing(&self) -> Option<ServedTiming> {
        match self {
            ServedOutcome::Completed(r) => Some(r.timing),
            ServedOutcome::Expired(t) => Some(*t),
            _ => None,
        }
    }
}

/// Why [`ResponseHandle::wait_timeout`] returned without an outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WaitError {
    /// The timeout elapsed before the request resolved; the handle is
    /// still live and may be waited on again.
    TimedOut,
}

impl std::fmt::Display for WaitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitError::TimedOut => write!(f, "timed out waiting for the request to resolve"),
        }
    }
}

impl std::error::Error for WaitError {}

/// A handle to a submitted request; resolves to its outcome.
#[derive(Debug)]
pub struct ResponseHandle {
    rx: Receiver<ServedOutcome>,
}

impl ResponseHandle {
    /// Blocks until the request resolves. Never panics: a runtime that
    /// shut down before serving the request yields
    /// [`ServedOutcome::ShutDown`].
    pub fn wait(self) -> ServedOutcome {
        self.rx.recv().unwrap_or(ServedOutcome::ShutDown)
    }

    /// Blocks until the request resolves or `timeout` elapses. On
    /// timeout the handle stays live: callers interleaving waits with
    /// other work call it again. (Tagged completion queues are the
    /// non-blocking alternative — see [`Runtime::submit_request_tagged`].)
    /// A runtime that shut down yields [`ServedOutcome::ShutDown`],
    /// never an error.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<ServedOutcome, WaitError> {
        match self.rx.recv_timeout(timeout) {
            Ok(outcome) => Ok(outcome),
            Err(RecvTimeoutError::Timeout) => Err(WaitError::TimedOut),
            Err(RecvTimeoutError::Disconnected) => Ok(ServedOutcome::ShutDown),
        }
    }

    /// Non-blocking poll.
    pub fn try_wait(&self) -> Option<ServedOutcome> {
        self.rx.try_recv().ok()
    }
}

/// Creates a shared completion queue: the sending half is cloned into
/// tagged submissions ([`Runtime::submit_request_tagged`] /
/// [`Runtime::submit_batch_tagged`]), the receiving half is held by the
/// one consumer pumping outcomes.
///
/// This is the many-requests-one-consumer alternative to
/// [`ResponseHandle`]: instead of one channel (and one waiting thread)
/// per request, every outcome lands on a single queue tagged with the
/// caller's `u64`, so a single thread — the network front door's event
/// loop — can drain thousands of requests' completions without a
/// thread or a sleep-poll per connection.
pub fn completion_queue() -> (CompletionQueue, CompletionReceiver) {
    let (tx, rx) = unbounded();
    (
        CompletionQueue { tx, waker: None },
        CompletionReceiver { rx },
    )
}

/// The sending half of a [`completion_queue`]: a tagged outcome sink
/// shared by many requests, with an optional waker invoked after each
/// delivery (the front door points it at an eventfd so outcomes wake
/// its readiness loop).
#[derive(Clone)]
pub struct CompletionQueue {
    tx: Sender<(u64, ServedOutcome)>,
    waker: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl std::fmt::Debug for CompletionQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionQueue")
            .field("waker", &self.waker.is_some())
            .finish()
    }
}

impl CompletionQueue {
    /// Attaches a waker called (on the resolving manager thread) after
    /// every outcome is queued. Must be cheap and non-blocking; an
    /// eventfd write qualifies.
    pub fn with_waker(mut self, waker: Arc<dyn Fn() + Send + Sync>) -> Self {
        self.waker = Some(waker);
        self
    }

    /// Queues one resolved outcome and fires the waker.
    fn deliver(&self, tag: u64, outcome: ServedOutcome) {
        let _ = self.tx.send((tag, outcome));
        if let Some(w) = &self.waker {
            w();
        }
    }
}

/// The receiving half of a [`completion_queue`].
pub struct CompletionReceiver {
    rx: Receiver<(u64, ServedOutcome)>,
}

impl CompletionReceiver {
    /// Takes the next queued outcome without blocking.
    pub fn try_recv(&self) -> Option<(u64, ServedOutcome)> {
        self.rx.try_recv().ok()
    }

    /// Blocks up to `timeout` for the next outcome.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(u64, ServedOutcome)> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// Where one admitted request's outcome goes: its own handle channel,
/// or a shared tagged queue.
enum Respond {
    Handle(Sender<ServedOutcome>),
    Queue { queue: CompletionQueue, tag: u64 },
}

impl Respond {
    fn deliver(self, outcome: ServedOutcome) {
        match self {
            Respond::Handle(tx) => {
                let _ = tx.send(outcome);
            }
            Respond::Queue { queue, tag } => queue.deliver(tag, outcome),
        }
    }
}

/// Runtime construction knobs: worker count plus the scheduler
/// tunables, whose embedded [`ServeConfig`] carries the shared serving
/// knobs (policy, deadlines, admission caps, queue bound, pipelining,
/// observability). The fluent setters below delegate into it, so
/// existing builder chains read unchanged.
///
/// Built fluently (`#[non_exhaustive]` forbids literal construction so
/// new knobs can be added compatibly):
///
/// ```
/// use bm_core::{RuntimeOptions, SchedulerConfig};
///
/// let opts = RuntimeOptions::new()
///     .workers(4)
///     .scheduler(SchedulerConfig::new().max_tasks_to_submit(2))
///     .pipeline_depth(3)
///     .max_active(64)
///     .deadline_us(50_000)
///     .queue_cap(256);
/// assert_eq!(opts.workers, 4);
/// assert_eq!(opts.serve().pipeline_depth, 3);
/// assert_eq!(opts.serve().max_active, Some(64));
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RuntimeOptions {
    /// Worker threads executing batched tasks. Must be ≥ 1.
    pub workers: usize,
    /// Scheduler tunables (Algorithm 1), including the embedded
    /// [`ServeConfig`] (reachable via [`RuntimeOptions::serve`]).
    pub scheduler: SchedulerConfig,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            workers: 1,
            scheduler: SchedulerConfig::default(),
        }
    }
}

impl RuntimeOptions {
    /// Default options: one worker, default scheduler, depth-2 pipeline,
    /// no admission cap, no deadline, unbounded queue, tracing off.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared serving configuration embedded in the scheduler
    /// tunables.
    pub fn serve(&self) -> &ServeConfig {
        &self.scheduler.serve
    }

    /// Sets the number of worker threads.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Sets the scheduler tunables. Replaces the whole config including
    /// its embedded [`ServeConfig`], so call it before the delegating
    /// setters below (they edit the embedded serve config in place).
    pub fn scheduler(mut self, cfg: SchedulerConfig) -> Self {
        self.scheduler = cfg;
        self
    }

    /// Replaces the embedded [`ServeConfig`] wholesale, keeping the
    /// other scheduler tunables.
    pub fn serve_config(mut self, serve: ServeConfig) -> Self {
        self.scheduler.serve = serve;
        self
    }

    /// Sets the batch-formation policy (shorthand for setting it on the
    /// embedded [`ServeConfig`]); the threaded runtime and the
    /// simulator run the same policy objects.
    pub fn policy(mut self, kind: crate::policy::PolicyKind) -> Self {
        self.scheduler.serve.policy = Some(kind);
        self
    }

    /// Sets the per-worker in-flight window (≥ 1; 1 disables
    /// pipelining): the manager refills a worker's FIFO queue whenever
    /// fewer than this many of its tasks are unfinished, so the next
    /// batch is already queued when the current one drains. Depth 1
    /// reproduces the classic dispatch-on-drain behaviour.
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.scheduler.serve.pipeline_depth = depth;
        self
    }

    /// Caps concurrently admitted (unresolved) requests; submissions
    /// beyond the cap fail with [`SubmitError::AtCapacity`].
    pub fn max_active(mut self, cap: usize) -> Self {
        self.scheduler.serve.max_active = Some(cap);
        self
    }

    /// Sets the default relative deadline, µs from arrival, applied to
    /// every submission that does not carry its own.
    pub fn deadline_us(mut self, d: u64) -> Self {
        self.scheduler.serve.deadline_us = Some(d);
        self
    }

    /// Bounds the manager's message queue. When full, new submissions
    /// fail with [`SubmitError::QueueFull`]; workers reporting
    /// completions block briefly instead (backpressure, never dropped).
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.scheduler.serve.queue_cap = Some(cap);
        self
    }

    /// Enables the resident-state execution plane for chain cells
    /// (shorthand for setting it on the embedded [`ServeConfig`]):
    /// workers keep each active request's recurrent state parked in a
    /// [`crate::ResidentBatch`] row, skipping the per-step gather.
    /// Outputs stay bit-identical to the gather path.
    pub fn resident_state(mut self, on: bool) -> Self {
        self.scheduler.serve.resident_state = on;
        self
    }

    /// Routes scheduler trace events to `sink`.
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.scheduler.serve.trace = sink;
        self
    }

    /// Records serving metrics into `tel`: admission/rejection/expiry
    /// counters, queue-depth gauges, per-stage latency and batch-size
    /// histograms, and per-worker busy time. The default disabled
    /// registry keeps every instrumentation site to a single branch.
    pub fn telemetry(mut self, tel: Arc<Telemetry>) -> Self {
        self.scheduler.serve.telemetry = tel;
        self
    }
}

/// One admitted request on its way to the manager.
struct Arrival {
    id: RequestId,
    graph: CellGraph,
    arrival_us: u64,
    deadline_us: Option<u64>,
    priority: u8,
    respond: Respond,
}

enum ManagerMsg {
    /// One admitted request (the unbatched submission path).
    Arrive(Box<Arrival>),
    /// Many admitted requests coalesced into one manager wakeup
    /// ([`Runtime::submit_batch_tagged`]). Never empty.
    ArriveBatch(Vec<Arrival>),
    TaskDone {
        task: TaskId,
        worker: WorkerId,
        started_us: u64,
        finished_us: u64,
        tokens: Vec<Option<u32>>,
    },
    Shutdown,
}

impl ManagerMsg {
    /// How many logical items this message carries (requests for
    /// arrivals, 1 otherwise) — the unit `bm_manager_drained_per_wakeup`
    /// counts, so coalescing shows up as amortization rather than
    /// hiding it.
    fn items(&self) -> u64 {
        match self {
            ManagerMsg::ArriveBatch(v) => v.len() as u64,
            _ => 1,
        }
    }
}

/// A dispatched task plus the state blocks its entries live in (one per
/// entry, parallel to `task.entries`), so the worker can gather and
/// scatter without any shared map.
struct WorkerTask {
    task: Task,
    blocks: Vec<Arc<SlotBlock>>,
}

/// One manager→worker message: every task formed for this worker in one
/// dispatch pass (a batch of subgraph executions), plus the resident
/// plane's eviction piggyback. With batched dispatch off, each task
/// rides its own message — the per-message baseline.
struct WorkerBatch {
    tasks: Vec<WorkerTask>,
    /// Requests that resolved since this worker's last message; the
    /// worker releases their resident rows before executing. Always
    /// empty when the resident plane is off.
    evict: Vec<RequestId>,
    /// Tells the worker to clear every resident batch outright — set
    /// when the eviction backlog for an idle worker grew past
    /// [`EVICT_FLUSH_THRESHOLD`] (memory hygiene; stale rows are
    /// repaired by the freshness check, so correctness is unaffected).
    flush_resident: bool,
}

/// The multi-threaded serving runtime.
pub struct Runtime {
    manager_tx: Sender<ManagerMsg>,
    manager: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    model: Arc<dyn Model>,
    timer: CpuTimer,
    next_request: AtomicU64,
    /// Requests admitted and not yet resolved; shared with the manager.
    active: Arc<AtomicUsize>,
    /// `bm_requests_rejected_total{reason}` counters, indexed
    /// at_capacity / queue_full; `None` when telemetry is disabled.
    reject_counters: Option<[Counter; 2]>,
    opts: RuntimeOptions,
}

impl Runtime {
    /// Starts a runtime serving `model` with the given options (worker
    /// count included — see [`RuntimeOptions::workers`]).
    ///
    /// # Panics
    ///
    /// Panics if `opts.workers` or the serve config's `pipeline_depth`
    /// is zero.
    pub fn start(model: Arc<dyn Model>, opts: RuntimeOptions) -> Self {
        let num_workers = opts.workers;
        let pipeline_depth = opts.serve().pipeline_depth;
        assert!(num_workers > 0, "need at least one worker");
        assert!(pipeline_depth > 0, "pipeline depth must be >= 1");
        let registry: Arc<CellRegistry> = Arc::new(model.registry().clone());
        let timer = CpuTimer::new();
        let active = Arc::new(AtomicUsize::new(0));

        let (mgr_tx, mgr_rx) = match opts.serve().queue_cap {
            Some(cap) => bounded::<ManagerMsg>(cap.max(1)),
            None => unbounded::<ManagerMsg>(),
        };
        let tel = Arc::clone(&opts.serve().telemetry);
        let tel = &tel;
        let mut worker_txs = Vec::new();
        let mut workers = Vec::new();
        let resident_on = opts.serve().resident_state;
        for w in 0..num_workers {
            let busy = tel.enabled().then(|| {
                tel.counter_with("bm_worker_busy_us_total", &[("worker", &w.to_string())])
            });
            let resident_tel = (resident_on && tel.enabled()).then(|| {
                let lbl = w.to_string();
                ResidentTelemetry {
                    rows: tel.gauge_with("bm_resident_rows", &[("worker", &lbl)]),
                    joins: tel.counter_with("bm_resident_joins_total", &[("worker", &lbl)]),
                    leaves: tel.counter_with("bm_resident_leaves_total", &[("worker", &lbl)]),
                    compactions: tel
                        .counter_with("bm_resident_compactions_total", &[("worker", &lbl)]),
                }
            });
            // The manager stops refilling a worker at `pipeline_depth`
            // unfinished tasks and each refill overshoots by at most
            // one dispatch (`max_tasks_to_submit` tasks); every message
            // carries at least one task, so this bound is never hit and
            // the manager never blocks on a worker — in batched mode a
            // whole refill is one message, in the per-message baseline
            // it is one message per task.
            let bound = pipeline_depth + opts.scheduler.max_tasks_to_submit.max(1);
            let (tx, rx) = bounded::<WorkerBatch>(bound);
            worker_txs.push(tx);
            workers.push(spawn_worker(
                WorkerId(w as u32),
                rx,
                mgr_tx.clone(),
                Arc::clone(&registry),
                timer.clone(),
                busy,
                resident_on,
                resident_tel,
            ));
        }

        let manager = spawn_manager(ManagerArgs {
            rx: mgr_rx,
            worker_txs,
            registry,
            cfg: opts.scheduler.clone(),
            pipeline_depth,
            num_workers,
            timer: timer.clone(),
            active: Arc::clone(&active),
            trace: Arc::clone(&opts.serve().trace),
            telemetry: Arc::clone(tel),
        });

        let reject_counters = tel.enabled().then(|| {
            [
                tel.counter_with("bm_requests_rejected_total", &[("reason", "at_capacity")]),
                tel.counter_with("bm_requests_rejected_total", &[("reason", "queue_full")]),
            ]
        });

        Runtime {
            manager_tx: mgr_tx,
            manager: Some(manager),
            workers,
            model,
            timer,
            next_request: AtomicU64::new(0),
            active,
            reject_counters,
            opts,
        }
    }

    /// Starts a runtime with an explicit worker count.
    #[deprecated(
        since = "0.2.0",
        note = "use `Runtime::start(model, opts.workers(num_workers))`"
    )]
    pub fn start_with(model: Arc<dyn Model>, num_workers: usize, opts: RuntimeOptions) -> Self {
        Runtime::start(model, opts.workers(num_workers))
    }

    /// Submits a [`Request`] — the single submission entry point; the
    /// deprecated `submit`/`try_submit` trio are shims over it.
    ///
    /// Fails fast with a typed [`SubmitError`] — invalid input,
    /// admission-control refusal ([`SubmitError::AtCapacity`],
    /// [`SubmitError::QueueFull`]) or shutdown. A returned handle means
    /// the request was admitted; it resolves to a [`ServedOutcome`].
    ///
    /// ```no_run
    /// # use std::sync::Arc;
    /// # use bm_core::{Request, Runtime, RuntimeOptions};
    /// # use bm_model::RequestInput;
    /// # fn serve(rt: &Runtime) -> Result<(), bm_core::SubmitError> {
    /// let handle = rt.submit_request(
    ///     Request::new(RequestInput::Sequence(vec![1, 2, 3])).deadline_us(50_000),
    /// )?;
    /// let outcome = handle.wait();
    /// # Ok(())
    /// # }
    /// ```
    pub fn submit_request(&self, req: impl Into<Request>) -> Result<ResponseHandle, SubmitError> {
        let (tx, rx) = unbounded();
        let arrival = self.prepare(&req.into(), Respond::Handle(tx))?;
        self.send_arrival(arrival)?;
        Ok(ResponseHandle { rx })
    }

    /// Submits a [`Request`] whose outcome is delivered to a shared
    /// [`CompletionQueue`] tagged with `tag`, instead of a per-request
    /// [`ResponseHandle`]. Admission semantics are identical to
    /// [`Runtime::submit_request`]; `Ok(())` means the outcome will
    /// eventually appear on the queue (a runtime shutting down delivers
    /// [`ServedOutcome::ShutDown`]).
    pub fn submit_request_tagged(
        &self,
        req: impl Into<Request>,
        tag: u64,
        queue: &CompletionQueue,
    ) -> Result<(), SubmitError> {
        let respond = Respond::Queue {
            queue: queue.clone(),
            tag,
        };
        let arrival = self.prepare(&req.into(), respond)?;
        self.send_arrival(arrival)
    }

    /// Submits many tagged requests in **one manager message**, so a
    /// burst of arrivals costs the manager one wakeup instead of one
    /// per request. Per-request admission still applies: the returned
    /// vector gives each request's verdict in order, and only `Ok`
    /// entries were admitted (their outcomes arrive on `queue`).
    ///
    /// With [`ServeConfig::batched_dispatch`] off this degrades to a
    /// loop of single submissions — the per-message baseline the serve
    /// benchmark compares against.
    pub fn submit_batch_tagged(
        &self,
        reqs: impl IntoIterator<Item = (u64, Request)>,
        queue: &CompletionQueue,
    ) -> Vec<Result<(), SubmitError>> {
        if !self.opts.serve().batched_dispatch {
            return reqs
                .into_iter()
                .map(|(tag, req)| self.submit_request_tagged(req, tag, queue))
                .collect();
        }
        let mut results = Vec::new();
        let mut arrivals = Vec::new();
        // Indices in `results` whose arrival rides the batch message,
        // parallel to `arrivals`; patched to an error if the send fails.
        let mut admitted_idx = Vec::new();
        for (tag, req) in reqs {
            let respond = Respond::Queue {
                queue: queue.clone(),
                tag,
            };
            match self.prepare(&req, respond) {
                Ok(a) => {
                    admitted_idx.push(results.len());
                    arrivals.push(a);
                    results.push(Ok(()));
                }
                Err(e) => results.push(Err(e)),
            }
        }
        if arrivals.is_empty() {
            return results;
        }
        match self.manager_tx.try_send(ManagerMsg::ArriveBatch(arrivals)) {
            Ok(()) => {}
            Err(e) => {
                // The whole batch missed the queue: release every
                // reserved slot and report per-request.
                let (err, returned) = match e {
                    TrySendError::Full(m) => (SubmitError::QueueFull, m),
                    TrySendError::Disconnected(m) => (SubmitError::ShuttingDown, m),
                };
                if let ManagerMsg::ArriveBatch(batch) = returned {
                    for a in &batch {
                        self.active.fetch_sub(1, Ordering::AcqRel);
                        if matches!(err, SubmitError::QueueFull) {
                            self.trace_rejection(a.id, RejectReason::QueueFull);
                        }
                    }
                }
                for idx in admitted_idx {
                    results[idx] = Err(err.clone());
                }
            }
        }
        results
    }

    /// Validates, unfolds and admits one request, reserving an active
    /// slot. On success the caller owns the reserved slot and must ship
    /// the [`Arrival`] to the manager or release the slot.
    fn prepare(&self, req: &Request, respond: Respond) -> Result<Arrival, SubmitError> {
        self.model
            .validate(&req.input)
            .map_err(SubmitError::Invalid)?;
        let graph = self.model.unfold(&req.input);
        let id = RequestId(self.next_request.fetch_add(1, Ordering::Relaxed));

        // Admission: reserve a slot under the cap or refuse outright.
        if let Some(cap) = self.opts.serve().max_active {
            let admitted = self
                .active
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                    if n < cap {
                        Some(n + 1)
                    } else {
                        None
                    }
                })
                .is_ok();
            if !admitted {
                self.trace_rejection(id, RejectReason::AtCapacity);
                return Err(SubmitError::AtCapacity);
            }
        } else {
            self.active.fetch_add(1, Ordering::AcqRel);
        }

        let arrival_us = self.timer.now_us();
        let deadline_us = req.effective_deadline_us(self.opts.serve().deadline_us);
        Ok(Arrival {
            id,
            graph,
            arrival_us,
            deadline_us: deadline_us.map(|d| arrival_us.saturating_add(d)),
            priority: req.priority,
            respond,
        })
    }

    /// Ships one prepared arrival, releasing its reserved slot on
    /// failure.
    fn send_arrival(&self, arrival: Arrival) -> Result<(), SubmitError> {
        let id = arrival.id;
        match self
            .manager_tx
            .try_send(ManagerMsg::Arrive(Box::new(arrival)))
        {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => {
                // Queue full (overload): release the reserved slot.
                self.active.fetch_sub(1, Ordering::AcqRel);
                self.trace_rejection(id, RejectReason::QueueFull);
                Err(SubmitError::QueueFull)
            }
            Err(TrySendError::Disconnected(_)) => {
                // Manager gone (shutdown race).
                self.active.fetch_sub(1, Ordering::AcqRel);
                Err(SubmitError::ShuttingDown)
            }
        }
    }

    /// Submits a request; returns a handle resolving to its outcome.
    ///
    /// # Panics
    ///
    /// Panics on any [`SubmitError`] (invalid input or overload
    /// refusal); use [`Runtime::submit_request`] to handle those.
    #[deprecated(since = "0.3.0", note = "use `submit_request(Request::new(input))`")]
    pub fn submit(&self, input: &RequestInput) -> ResponseHandle {
        self.submit_request(Request::from(input))
            .unwrap_or_else(|e| panic!("submit failed: {e}"))
    }

    /// Submits a request with the runtime's default deadline (if any).
    #[deprecated(since = "0.3.0", note = "use `submit_request(Request::new(input))`")]
    pub fn try_submit(&self, input: &RequestInput) -> Result<ResponseHandle, SubmitError> {
        self.submit_request(Request::from(input))
    }

    /// Submits a request with an explicit relative deadline (µs from
    /// arrival; `None` disables the deadline for this request even if
    /// the runtime has a default).
    #[deprecated(
        since = "0.3.0",
        note = "use `submit_request(Request::new(input).deadline_us(..))` \
                (or `.no_deadline()` for an explicit None)"
    )]
    pub fn try_submit_with_deadline(
        &self,
        input: &RequestInput,
        deadline_us: Option<u64>,
    ) -> Result<ResponseHandle, SubmitError> {
        let req = match deadline_us {
            Some(d) => Request::from(input).deadline_us(d),
            None => Request::from(input).no_deadline(),
        };
        self.submit_request(req)
    }

    fn trace_rejection(&self, id: RequestId, reason: RejectReason) {
        if let Some(c) = &self.reject_counters {
            match reason {
                RejectReason::AtCapacity => c[0].inc(),
                RejectReason::QueueFull => c[1].inc(),
            }
        }
        let trace = &self.opts.serve().trace;
        if trace.enabled() {
            trace.record(TraceEvent {
                ts_us: self.timer.now_us(),
                kind: EventKind::RequestRejected {
                    request: id.0,
                    reason,
                },
            });
        }
    }

    /// Requests admitted and not yet resolved.
    pub fn active_requests(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// The options this runtime was started with.
    pub fn options(&self) -> &RuntimeOptions {
        &self.opts
    }

    /// Microseconds since the runtime started.
    pub fn now_us(&self) -> u64 {
        self.timer.now_us()
    }

    /// Shuts the runtime down after draining in-flight requests, joining
    /// all threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // `send` (not `try_send`): on a bounded queue the shutdown
        // message must wait for a slot rather than be dropped.
        let _ = self.manager_tx.send(ManagerMsg::Shutdown);
        if let Some(m) = self.manager.take() {
            let _ = m.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

struct ManagerArgs {
    rx: Receiver<ManagerMsg>,
    worker_txs: Vec<Sender<WorkerBatch>>,
    registry: Arc<CellRegistry>,
    cfg: SchedulerConfig,
    pipeline_depth: usize,
    num_workers: usize,
    timer: CpuTimer,
    active: Arc<AtomicUsize>,
    trace: Arc<dyn TraceSink>,
    telemetry: Arc<Telemetry>,
}

/// The client side of one admitted request, kept by the manager until
/// the request resolves.
struct Responder {
    respond: Respond,
    n_nodes: usize,
    /// Whether the deadline heap still holds this request's entry; used
    /// to count entries that go stale when the request resolves first.
    has_deadline: bool,
}

/// Rebuild the deadline heap once stale (already-resolved) entries
/// outnumber live ones; below this size the waste is not worth the
/// rebuild.
const DEADLINE_PRUNE_MIN: usize = 64;

/// When an idle worker's resident-eviction backlog exceeds this many
/// requests, the manager drops the list and tells the worker to clear
/// its resident batches wholesale instead — bounding manager-side
/// memory without a correctness cost (stale rows are repaired by the
/// freshness check).
const EVICT_FLUSH_THRESHOLD: usize = 4096;

/// Per-worker telemetry handles for the resident-state plane: the
/// occupancy gauge plus churn counters, updated by the worker after
/// each task from [`ResidentStats`] deltas.
struct ResidentTelemetry {
    rows: Gauge,
    joins: Counter,
    leaves: Counter,
    compactions: Counter,
}

fn spawn_manager(args: ManagerArgs) -> JoinHandle<()> {
    let ManagerArgs {
        rx,
        worker_txs,
        registry,
        cfg,
        pipeline_depth,
        num_workers,
        timer,
        active,
        trace,
        telemetry,
    } = args;
    std::thread::Builder::new()
        .name("bm-manager".into())
        .spawn(move || {
            let resident_state = cfg.serve.resident_state;
            let batched_dispatch = cfg.serve.batched_dispatch;
            // The engine installs its own trace/telemetry sinks from
            // the serve config embedded in `cfg`.
            let mut engine = CellularEngine::new(Arc::clone(&registry), cfg);
            // Manager-side telemetry handles; all `None` when disabled
            // so each site below stays one branch.
            let expired_counter = telemetry
                .enabled()
                .then(|| telemetry.counter("bm_requests_expired_total"));
            let depth_gauges: Option<Vec<Gauge>> = telemetry.enabled().then(|| {
                (0..num_workers)
                    .map(|w| {
                        telemetry
                            .gauge_with("bm_worker_pipeline_depth", &[("worker", &w.to_string())])
                    })
                    .collect()
            });
            // Scatter→completion: time from the engine declaring a
            // request complete to the manager resolving its handle
            // (output copy-out). Outside the four-stage tiling.
            let scatter_hist = telemetry
                .enabled()
                .then(|| telemetry.histogram_with("bm_stage_us", &[("stage", "scatter_resolve")]));
            // Manager hot-path amortization metrics: how often the
            // manager wakes, how many logical items (requests +
            // completions) each wakeup drains, and how many tasks each
            // worker message carries. drained-per-wakeup > 1 under load
            // is the whole point of batched dispatch.
            let wakeup_counter = telemetry
                .enabled()
                .then(|| telemetry.counter("bm_manager_wakeups_total"));
            let drained_hist = telemetry
                .enabled()
                .then(|| telemetry.histogram("bm_manager_drained_per_wakeup"));
            let submit_hist = telemetry
                .enabled()
                .then(|| telemetry.histogram("bm_manager_submit_batch"));
            let mut responders: HashMap<RequestId, Responder> = HashMap::new();
            // Per-request state blocks; workers hold per-task `Arc`
            // clones, so dropping an entry here reclaims the storage as
            // soon as the last in-flight task finishes.
            let mut blocks: HashMap<RequestId, Arc<SlotBlock>> = HashMap::new();
            // Min-heap of (absolute deadline µs, request). Entries for
            // already-resolved requests are discarded when popped and
            // pruned wholesale when they outnumber live entries.
            let mut deadlines: BinaryHeap<std::cmp::Reverse<(u64, RequestId)>> = BinaryHeap::new();
            let mut stale_deadlines = 0usize;
            let mut inflight_per_worker = vec![0usize; num_workers];
            // Resident-plane eviction: requests retired since each
            // worker's last task. A request's row may live on any
            // worker (migration), so retirements broadcast to all.
            let mut retired: Vec<RequestId> = Vec::new();
            let mut pending_evict: Vec<Vec<RequestId>> = vec![Vec::new(); num_workers];
            let mut pending_flush = vec![false; num_workers];
            // Last traced queue depth per worker; MAX forces an initial
            // zero sample so counter tracks start at a baseline.
            let mut traced_depth = vec![usize::MAX; num_workers];
            let mut shutting_down = false;

            loop {
                // Wait for the next message, but never past the nearest
                // pending deadline or the policy's requested wake-up
                // (the release point of a held batch).
                let now = timer.now_us();
                let next_deadline = deadlines.peek().map(|&std::cmp::Reverse((d, _))| d);
                let next_wake = match (next_deadline, engine.next_wakeup(now)) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                let first = match next_wake {
                    Some(d) => {
                        if d <= now {
                            None
                        } else {
                            match rx.recv_timeout(Duration::from_micros(d - now)) {
                                Ok(m) => Some(m),
                                Err(RecvTimeoutError::Timeout) => None,
                                Err(RecvTimeoutError::Disconnected) => break,
                            }
                        }
                    }
                    None => match rx.recv() {
                        Ok(m) => Some(m),
                        Err(_) => break,
                    },
                };

                // Drain every pending message before dispatching, so a
                // burst of completions triggers one dispatch pass (and
                // one batching decision), not one per completion.
                let mut drained_items = 0u64;
                let mut msg = first;
                loop {
                    if let Some(m) = msg {
                        drained_items += m.items();
                        match m {
                            ManagerMsg::Arrive(a) => admit_arrival(
                                *a,
                                &mut engine,
                                &mut responders,
                                &mut blocks,
                                &mut deadlines,
                                &registry,
                            ),
                            ManagerMsg::ArriveBatch(batch) => {
                                for a in batch {
                                    admit_arrival(
                                        a,
                                        &mut engine,
                                        &mut responders,
                                        &mut blocks,
                                        &mut deadlines,
                                        &registry,
                                    );
                                }
                            }
                            ManagerMsg::TaskDone {
                                task,
                                worker,
                                started_us,
                                finished_us,
                                tokens,
                            } => {
                                inflight_per_worker[worker.index()] -= 1;
                                engine.on_task_started(task, started_us);
                                let done = engine.on_task_completed(task, &tokens, finished_us);
                                for c in done {
                                    resolve(
                                        &mut responders,
                                        &mut blocks,
                                        &active,
                                        &mut stale_deadlines,
                                        &mut retired,
                                        c,
                                        scatter_hist.as_ref(),
                                        &timer,
                                    );
                                }
                            }
                            ManagerMsg::Shutdown => {
                                shutting_down = true;
                            }
                        }
                    }
                    match rx.try_recv() {
                        Ok(m) => msg = Some(m),
                        Err(_) => break,
                    }
                }
                if let Some(c) = &wakeup_counter {
                    c.inc();
                }
                if let Some(h) = &drained_hist {
                    h.record(drained_items);
                }

                // Expire overdue requests: cancel unsubmitted work now;
                // requests with in-flight tasks resolve (as cancelled)
                // when those drain through TaskDone.
                let now = timer.now_us();
                while let Some(&std::cmp::Reverse((d, id))) = deadlines.peek() {
                    if d > now {
                        break;
                    }
                    deadlines.pop();
                    let Some(r) = responders.get_mut(&id) else {
                        // Resolved before its deadline — a stale entry
                        // counted at resolve time, now consumed.
                        stale_deadlines = stale_deadlines.saturating_sub(1);
                        continue;
                    };
                    r.has_deadline = false;
                    if let Some(c) = &expired_counter {
                        c.inc();
                    }
                    if trace.enabled() {
                        trace.record(TraceEvent {
                            ts_us: now,
                            kind: EventKind::RequestExpired { request: id.0 },
                        });
                    }
                    if let CancelOutcome::Finished(done) = engine.cancel_request(id, now) {
                        resolve(
                            &mut responders,
                            &mut blocks,
                            &active,
                            &mut stale_deadlines,
                            &mut retired,
                            done,
                            scatter_hist.as_ref(),
                            &timer,
                        );
                    }
                }
                // Opportunistic prune: without it, a long-running server
                // whose requests complete ahead of their deadlines grows
                // the heap without bound.
                if deadlines.len() >= DEADLINE_PRUNE_MIN && stale_deadlines > deadlines.len() / 2 {
                    let live: Vec<_> = deadlines
                        .drain()
                        .filter(|&std::cmp::Reverse((_, id))| responders.contains_key(&id))
                        .collect();
                    deadlines = BinaryHeap::from(live);
                    stale_deadlines = 0;
                }

                // Broadcast retirements to every worker's eviction
                // backlog (a migrated request's row may sit anywhere);
                // an idle worker's backlog degrades to one flush bit.
                if resident_state {
                    for id in retired.drain(..) {
                        for w in 0..num_workers {
                            if !pending_flush[w] {
                                pending_evict[w].push(id);
                                if pending_evict[w].len() > EVICT_FLUSH_THRESHOLD {
                                    pending_evict[w].clear();
                                    pending_flush[w] = true;
                                }
                            }
                        }
                    }
                } else {
                    retired.clear();
                }

                // Refill every worker's pipeline window (§5: per-device
                // FIFO queues + MaxTasksToSubmit hide the completion
                // round-trip; depth 1 degenerates to dispatch-on-drain).
                // All tasks formed for a worker this pass ride one
                // message — a batch of subgraph executions — so a full
                // refill costs one channel send, not one per task.
                engine.advance_clock(now);
                for (w, tx) in worker_txs.iter().enumerate() {
                    let mut formed: Vec<WorkerTask> = Vec::new();
                    while inflight_per_worker[w] < pipeline_depth {
                        let tasks = engine.dispatch(WorkerId(w as u32));
                        if tasks.is_empty() {
                            break;
                        }
                        for t in tasks {
                            inflight_per_worker[w] += 1;
                            formed.push(WorkerTask {
                                blocks: t
                                    .entries
                                    .iter()
                                    .map(|e| {
                                        Arc::clone(
                                            blocks
                                                .get(&e.request)
                                                .expect("state block for dispatched request"),
                                        )
                                    })
                                    .collect(),
                                task: t,
                            });
                        }
                    }
                    if formed.is_empty() {
                        continue;
                    }
                    if batched_dispatch {
                        if let Some(h) = &submit_hist {
                            h.record(formed.len() as u64);
                        }
                        let _ = tx.send(WorkerBatch {
                            tasks: formed,
                            evict: std::mem::take(&mut pending_evict[w]),
                            flush_resident: std::mem::replace(&mut pending_flush[w], false),
                        });
                    } else {
                        // Per-message baseline: one task per send, the
                        // eviction piggyback on the first.
                        let mut first_msg = true;
                        for wt in formed {
                            if let Some(h) = &submit_hist {
                                h.record(1);
                            }
                            let _ = tx.send(WorkerBatch {
                                tasks: vec![wt],
                                evict: if first_msg {
                                    std::mem::take(&mut pending_evict[w])
                                } else {
                                    Vec::new()
                                },
                                flush_resident: first_msg
                                    && std::mem::replace(&mut pending_flush[w], false),
                            });
                            first_msg = false;
                        }
                    }
                }
                if trace.enabled() || depth_gauges.is_some() {
                    for (w, &depth) in inflight_per_worker.iter().enumerate() {
                        if traced_depth[w] != depth {
                            traced_depth[w] = depth;
                            if trace.enabled() {
                                trace.record(TraceEvent {
                                    ts_us: now,
                                    kind: EventKind::WorkerQueueDepth {
                                        worker: w as u32,
                                        depth: depth as u32,
                                    },
                                });
                            }
                            if let Some(g) = &depth_gauges {
                                g[w].set(depth as i64);
                            }
                        }
                    }
                }
                if shutting_down && engine.active_requests() == 0 {
                    break;
                }
            }
            // Dropping the worker senders makes workers exit; dropping
            // the responders resolves outstanding handles to ShutDown.
        })
        .expect("spawn manager")
}

/// Books one arrival into the manager's state: responder, slot block,
/// engine admission, deadline-heap entry. Shared by the single-arrival
/// and coalesced-batch message paths.
fn admit_arrival(
    a: Arrival,
    engine: &mut CellularEngine,
    responders: &mut HashMap<RequestId, Responder>,
    blocks: &mut HashMap<RequestId, Arc<SlotBlock>>,
    deadlines: &mut BinaryHeap<std::cmp::Reverse<(u64, RequestId)>>,
    registry: &CellRegistry,
) {
    let Arrival {
        id,
        graph,
        arrival_us,
        deadline_us,
        priority,
        respond,
    } = a;
    responders.insert(
        id,
        Responder {
            respond,
            n_nodes: graph.len(),
            has_deadline: deadline_us.is_some(),
        },
    );
    blocks.insert(id, Arc::new(SlotBlock::for_graph(&graph, registry)));
    engine.on_arrival_full(id, graph, arrival_us, deadline_us, priority);
    if let Some(d) = deadline_us {
        deadlines.push(std::cmp::Reverse((d, id)));
    }
}

/// Resolves one completion record: removes the responder and the
/// request's state block, and sends the outcome (Completed, or Expired
/// for a cancelled record).
///
/// The engine reports a request finished only after every task touching
/// it has drained, so no worker reads the block's rows concurrently;
/// output extraction is a plain copy on the manager with no lock held
/// anywhere.
#[allow(clippy::too_many_arguments)]
fn resolve(
    responders: &mut HashMap<RequestId, Responder>,
    blocks: &mut HashMap<RequestId, Arc<SlotBlock>>,
    active: &AtomicUsize,
    stale_deadlines: &mut usize,
    retired: &mut Vec<RequestId>,
    done: CompletedRequest,
    scatter_hist: Option<&Histogram>,
    timer: &CpuTimer,
) {
    let Some(r) = responders.remove(&done.id) else {
        return;
    };
    // Request ids are never reused, so eviction is memory hygiene for
    // the workers' resident batches — correctness never depends on it.
    retired.push(done.id);
    if let Some(h) = scatter_hist {
        h.record(timer.now_us().saturating_sub(done.completion_us));
    }
    let block = blocks.remove(&done.id);
    if r.has_deadline {
        // The heap entry now points at a resolved request.
        *stale_deadlines += 1;
    }
    active.fetch_sub(1, Ordering::AcqRel);
    let timing = ServedTiming {
        arrival_us: done.arrival_us,
        start_us: done.start_us,
        completion_us: done.completion_us,
    };
    let outcome = if done.cancelled {
        // Partial outputs die with the block dropped above.
        ServedOutcome::Expired(timing)
    } else {
        let block = block.expect("state block for completed request");
        let outputs = (0..r.n_nodes).map(|i| block.output(i)).collect();
        ServedOutcome::Completed(ServedResult {
            result: GraphResult { outputs },
            timing,
        })
    };
    r.respond.deliver(outcome);
}

#[allow(clippy::too_many_arguments)]
fn spawn_worker(
    id: WorkerId,
    rx: Receiver<WorkerBatch>,
    mgr_tx: Sender<ManagerMsg>,
    registry: Arc<CellRegistry>,
    timer: CpuTimer,
    busy_counter: Option<Counter>,
    resident: bool,
    resident_tel: Option<ResidentTelemetry>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("bm-worker-{}", id.0))
        .spawn(move || {
            // One scratch arena per worker thread: batch intermediates
            // are recycled across tasks, so steady-state execution does
            // no per-step heap allocation.
            let mut scratch = Scratch::new();
            // The resident-state plane: one persistent batch per chain
            // cell type, rows owned by this worker's active requests.
            let mut plane: Option<HashMap<CellTypeId, ResidentBatch>> = resident.then(HashMap::new);
            let mut last_stats = ResidentStats::default();
            'recv: while let Ok(wb) = rx.recv() {
                if let Some(plane) = plane.as_mut() {
                    if wb.flush_resident {
                        for rb in plane.values_mut() {
                            rb.clear();
                        }
                    }
                    for id in &wb.evict {
                        for rb in plane.values_mut() {
                            rb.remove(*id);
                        }
                    }
                }
                // Execute the batch in order, reporting one completion
                // per task (the engine tracks per-task dependencies);
                // the manager drains the burst in one wakeup.
                for wt in &wb.tasks {
                    let started_us = timer.now_us();
                    let tokens = execute_task(wt, &registry, &mut scratch, plane.as_mut());
                    let finished_us = timer.now_us();
                    if let Some(c) = &busy_counter {
                        c.add(finished_us - started_us);
                    }
                    // Blocking send: completions are backpressure, never
                    // dropped — the manager always drains its queue.
                    if mgr_tx
                        .send(ManagerMsg::TaskDone {
                            task: wt.task.id,
                            worker: id,
                            started_us,
                            finished_us,
                            tokens,
                        })
                        .is_err()
                    {
                        break 'recv;
                    }
                }
                if let (Some(t), Some(plane)) = (&resident_tel, plane.as_ref()) {
                    let mut occupied = 0usize;
                    let mut agg = ResidentStats::default();
                    for rb in plane.values() {
                        occupied += rb.occupied();
                        let s = rb.stats();
                        agg.joins += s.joins;
                        agg.leaves += s.leaves;
                        agg.compaction_moves += s.compaction_moves;
                        agg.refetches += s.refetches;
                    }
                    t.rows.set(occupied as i64);
                    t.joins.add(agg.joins - last_stats.joins);
                    t.leaves.add(agg.leaves - last_stats.leaves);
                    t.compactions
                        .add(agg.compaction_moves - last_stats.compaction_moves);
                    last_stats = agg;
                }
            }
        })
        .expect("spawn worker")
}

/// Executes one batched task against the slot-indexed state plane.
///
/// Performs the "gather" (§4.3) by pointing each invocation straight at
/// its dependencies' published arena rows — no map lookup, no lock, no
/// `CellOutput` clone — then runs the cell once and scatters each result
/// row into the entry's own slot. Dependency rows are guaranteed
/// published: tasks on one worker execute in submission order and the
/// engine submits a node only once its external dependencies completed
/// (FIFO stream semantics, §5).
///
/// When the worker carries a resident plane (`plane` is `Some`) and the
/// cell supports it, chain tasks take the resident fast path instead:
/// see [`execute_task_resident`]. Outputs are bitwise identical either
/// way.
fn execute_task(
    wt: &WorkerTask,
    registry: &Arc<CellRegistry>,
    scratch: &mut Scratch,
    plane: Option<&mut HashMap<CellTypeId, ResidentBatch>>,
) -> Vec<Option<u32>> {
    const NO_STATE: StateRef<'static> = StateRef { h: &[], c: &[] };
    let task = &wt.task;
    let cell = registry.cell(task.cell_type);
    if let Some(plane) = plane {
        if let Some(layout) = cell.resident_layout() {
            if !task.entries.is_empty() && task.entries.iter().all(|e| e.deps.len() <= 1) {
                return execute_task_resident(wt, cell, layout, plane, scratch);
            }
        }
    }
    let invocations: Vec<RowInvocation<'_>> = task
        .entries
        .iter()
        .zip(&wt.blocks)
        .map(|(e, block)| {
            let mut states = [NO_STATE; 2];
            for (slot, d) in states.iter_mut().zip(e.deps.iter()) {
                *slot = block.state(d.index()).unwrap_or_else(|| {
                    panic!("missing dependency {}/{} for {}", e.request, d, e.node)
                });
            }
            let token = match e.token {
                TokenSource::None => None,
                TokenSource::Fixed(t) => Some(t),
                TokenSource::FromDep(k) => Some(
                    block
                        .token(e.deps[k].index())
                        .expect("FromDep dependency emitted no token"),
                ),
            };
            RowInvocation::new(token, &states[..e.deps.len()])
        })
        .collect();
    let mut tokens: Vec<Option<u32>> = vec![None; task.entries.len()];
    cell.execute_rows_in(&invocations, scratch, |row, h, c, token| {
        let e = &task.entries[row];
        wt.blocks[row].write(e.node.index(), h, c, token);
        tokens[row] = token;
    });
    tokens
}

/// Executes one chain task through the worker's resident-state plane.
///
/// Each entry is *placed* at its batch row — a no-op for a request
/// already parked there from its previous step, one row write for a
/// join, a slot-arena refetch only when the row went stale (the request
/// migrated workers) — and then the cell runs one fused step over the
/// dense prefix in place. The scatter half is unchanged: every row's
/// output is still published to the request's [`SlotBlock`], keeping
/// cross-worker gathers and final copy-out oblivious to which path ran.
fn execute_task_resident(
    wt: &WorkerTask,
    cell: &Cell,
    layout: ResidentLayout,
    plane: &mut HashMap<CellTypeId, ResidentBatch>,
    scratch: &mut Scratch,
) -> Vec<Option<u32>> {
    let task = &wt.task;
    let rb = plane
        .entry(task.cell_type)
        .or_insert_with(|| ResidentBatch::new(layout));
    let n = task.entries.len();
    let mut tokens_in: Vec<Option<u32>> = Vec::with_capacity(n);
    for (i, (e, block)) in task.entries.iter().zip(&wt.blocks).enumerate() {
        let dep = e.deps.first().copied();
        rb.place(i, e.request, e.node, dep, || {
            let d = dep.expect("state fetch without a dependency");
            block
                .state(d.index())
                .unwrap_or_else(|| panic!("missing dependency {}/{} for {}", e.request, d, e.node))
        });
        tokens_in.push(match e.token {
            TokenSource::None => None,
            TokenSource::Fixed(t) => Some(t),
            TokenSource::FromDep(k) => Some(
                block
                    .token(e.deps[k].index())
                    .expect("FromDep dependency emitted no token"),
            ),
        });
    }
    let mut tokens: Vec<Option<u32>> = vec![None; n];
    rb.step(cell, n, &tokens_in, scratch, |row, h, c, token| {
        let e = &task.entries[row];
        wt.blocks[row].write(e.node.index(), h, c, token);
        tokens[row] = token;
    });
    tokens
}
