//! The threaded real-time runtime: BatchMaker's manager/worker
//! architecture (§4.2, Figure 6) executing *real* cell math on CPU
//! threads.
//!
//! - The **manager thread** owns the [`CellularEngine`]: it admits
//!   arriving requests, dispatches batched tasks to idle workers and
//!   processes completion notifications.
//! - Each **worker thread** owns one task queue. It pops a task,
//!   gathers the batched inputs from the shared state store, executes
//!   the cell once at the batch size, scatters outputs back and pushes a
//!   completion record — the CPU analogue of the paper's GPU worker with
//!   its in-progress queue and signaling kernel.
//!
//! The runtime exists to prove the scheduler end-to-end: its results are
//! compared bit-for-bit against the unbatched reference executor
//! (`bm_model::reference`), while the latency/throughput experiments use
//! the discrete-event simulator over the same engine.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use bm_cell::{CellOutput, CellRegistry, InvocationInput};
use bm_device::CpuTimer;
use bm_model::{reference::GraphResult, CellGraph, Model, RequestInput, TokenSource};

use crate::engine::{CellularEngine, SchedulerConfig};
use crate::ids::{RequestId, TaskId, WorkerId};
use crate::task::{CompletedRequest, Task};

/// Timing measured for one served request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedTiming {
    /// Arrival, µs since runtime start.
    pub arrival_us: u64,
    /// First execution, µs.
    pub start_us: u64,
    /// Completion, µs.
    pub completion_us: u64,
}

/// The outcome of one served request.
#[derive(Debug, Clone)]
pub struct ServedResult {
    /// Per-node outputs (`None` for `<eos>`-cancelled nodes).
    pub result: GraphResult,
    /// Request timing.
    pub timing: ServedTiming,
}

/// A handle to a submitted request; resolves to its result.
#[derive(Debug)]
pub struct ResponseHandle {
    rx: Receiver<ServedResult>,
}

impl ResponseHandle {
    /// Blocks until the request completes.
    ///
    /// # Panics
    ///
    /// Panics if the runtime shut down before serving the request.
    pub fn wait(self) -> ServedResult {
        self.rx.recv().expect("runtime dropped before completion")
    }

    /// Non-blocking poll.
    pub fn try_wait(&self) -> Option<ServedResult> {
        self.rx.try_recv().ok()
    }
}

enum ManagerMsg {
    Arrive {
        id: RequestId,
        graph: CellGraph,
        arrival_us: u64,
        respond: Sender<ServedResult>,
    },
    TaskDone {
        task: TaskId,
        worker: WorkerId,
        started_us: u64,
        finished_us: u64,
        tokens: Vec<Option<u32>>,
    },
    Shutdown,
}

type StateStore = Arc<Mutex<HashMap<(RequestId, u32), CellOutput>>>;

/// The multi-threaded serving runtime.
pub struct Runtime {
    manager_tx: Sender<ManagerMsg>,
    manager: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    model: Arc<dyn Model>,
    timer: CpuTimer,
    next_request: AtomicU64,
}

impl Runtime {
    /// Starts a runtime with `num_workers` worker threads serving
    /// `model`.
    ///
    /// # Panics
    ///
    /// Panics if `num_workers` is zero.
    pub fn start(model: Arc<dyn Model>, num_workers: usize, cfg: SchedulerConfig) -> Self {
        assert!(num_workers > 0, "need at least one worker");
        let registry: Arc<CellRegistry> = Arc::new(model.registry().clone());
        let store: StateStore = Arc::new(Mutex::new(HashMap::new()));
        let timer = CpuTimer::new();

        let (mgr_tx, mgr_rx) = unbounded::<ManagerMsg>();
        let mut worker_txs = Vec::new();
        let mut workers = Vec::new();
        for w in 0..num_workers {
            let (tx, rx) = unbounded::<Task>();
            worker_txs.push(tx);
            workers.push(spawn_worker(
                WorkerId(w as u32),
                rx,
                mgr_tx.clone(),
                Arc::clone(&registry),
                Arc::clone(&store),
                timer.clone(),
            ));
        }

        let manager = spawn_manager(mgr_rx, worker_txs, registry, store, cfg, num_workers);

        Runtime {
            manager_tx: mgr_tx,
            manager: Some(manager),
            workers,
            model,
            timer,
            next_request: AtomicU64::new(0),
        }
    }

    /// Submits a request; returns a handle resolving to its result.
    ///
    /// # Panics
    ///
    /// Panics if the input fails model validation; use
    /// [`Runtime::try_submit`] for graceful rejection.
    pub fn submit(&self, input: &RequestInput) -> ResponseHandle {
        self.try_submit(input)
            .unwrap_or_else(|e| panic!("invalid request: {e}"))
    }

    /// Submits a request after validating it, rejecting malformed inputs
    /// (wrong variant, empty sequence, out-of-vocabulary tokens) without
    /// disturbing in-flight work.
    pub fn try_submit(&self, input: &RequestInput) -> Result<ResponseHandle, String> {
        self.model.validate(input)?;
        let graph = self.model.unfold(input);
        let id = RequestId(self.next_request.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = unbounded();
        self.manager_tx
            .send(ManagerMsg::Arrive {
                id,
                graph,
                arrival_us: self.timer.now_us(),
                respond: tx,
            })
            .expect("manager alive");
        Ok(ResponseHandle { rx })
    }

    /// Microseconds since the runtime started.
    pub fn now_us(&self) -> u64 {
        self.timer.now_us()
    }

    /// Shuts the runtime down after draining in-flight requests, joining
    /// all threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let _ = self.manager_tx.send(ManagerMsg::Shutdown);
        if let Some(m) = self.manager.take() {
            let _ = m.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn spawn_manager(
    rx: Receiver<ManagerMsg>,
    worker_txs: Vec<Sender<Task>>,
    registry: Arc<CellRegistry>,
    store: StateStore,
    cfg: SchedulerConfig,
    num_workers: usize,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("bm-manager".into())
        .spawn(move || {
            let mut engine = CellularEngine::new(Arc::clone(&registry), cfg);
            let mut responders: HashMap<RequestId, (Sender<ServedResult>, usize)> = HashMap::new();
            let mut inflight_per_worker = vec![0usize; num_workers];
            let mut shutting_down = false;

            loop {
                let Ok(msg) = rx.recv() else { break };
                match msg {
                    ManagerMsg::Arrive {
                        id,
                        graph,
                        arrival_us,
                        respond,
                    } => {
                        let n = graph.len();
                        responders.insert(id, (respond, n));
                        engine.on_arrival(id, graph, arrival_us);
                    }
                    ManagerMsg::TaskDone {
                        task,
                        worker,
                        started_us,
                        finished_us,
                        tokens,
                    } => {
                        inflight_per_worker[worker.index()] -= 1;
                        engine.on_task_started(task, started_us);
                        let done = engine.on_task_completed(task, &tokens, finished_us);
                        for c in done {
                            fulfil(&mut responders, &store, c);
                        }
                    }
                    ManagerMsg::Shutdown => {
                        shutting_down = true;
                    }
                }
                // Dispatch to idle workers (the paper dispatches when a
                // worker's queue drains; MaxTasksToSubmit amortizes the
                // notification round-trip).
                for (w, tx) in worker_txs.iter().enumerate() {
                    if inflight_per_worker[w] > 0 {
                        continue;
                    }
                    for t in engine.dispatch(WorkerId(w as u32)) {
                        inflight_per_worker[w] += 1;
                        let _ = tx.send(t);
                    }
                }
                if shutting_down && engine.active_requests() == 0 {
                    break;
                }
            }
            // Dropping the worker senders makes workers exit.
        })
        .expect("spawn manager")
}

fn fulfil(
    responders: &mut HashMap<RequestId, (Sender<ServedResult>, usize)>,
    store: &StateStore,
    done: CompletedRequest,
) {
    let Some((tx, n_nodes)) = responders.remove(&done.id) else {
        return;
    };
    let mut outputs = Vec::with_capacity(n_nodes);
    {
        let mut s = store.lock();
        for i in 0..n_nodes {
            outputs.push(s.remove(&(done.id, i as u32)));
        }
    }
    let result = GraphResult { outputs };
    let _ = tx.send(ServedResult {
        result,
        timing: ServedTiming {
            arrival_us: done.arrival_us,
            start_us: done.start_us,
            completion_us: done.completion_us,
        },
    });
}

fn spawn_worker(
    id: WorkerId,
    rx: Receiver<Task>,
    mgr_tx: Sender<ManagerMsg>,
    registry: Arc<CellRegistry>,
    store: StateStore,
    timer: CpuTimer,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("bm-worker-{}", id.0))
        .spawn(move || {
            while let Ok(task) = rx.recv() {
                let started_us = timer.now_us();
                let tokens = execute_task(&task, &registry, &store);
                let finished_us = timer.now_us();
                if mgr_tx
                    .send(ManagerMsg::TaskDone {
                        task: task.id,
                        worker: id,
                        started_us,
                        finished_us,
                        tokens,
                    })
                    .is_err()
                {
                    break;
                }
            }
        })
        .expect("spawn worker")
}

/// Executes one batched task against the shared state store.
///
/// Performs the "gather" (§4.3): reads each entry's predecessor states
/// and token from the store, builds the contiguous batch, runs the cell
/// once, and scatters outputs back. Returns the emitted tokens.
fn execute_task(task: &Task, registry: &Arc<CellRegistry>, store: &StateStore) -> Vec<Option<u32>> {
    let cell = registry.cell(task.cell_type);
    // Gather: snapshot dependency outputs under the lock. Tasks on one
    // worker execute in submission order, so every dependency's output
    // is present (FIFO stream semantics, §5).
    let gathered: Vec<(Option<u32>, Vec<CellOutput>)> = {
        let s = store.lock();
        task.entries
            .iter()
            .map(|e| {
                let states: Vec<CellOutput> = e
                    .deps
                    .iter()
                    .map(|d| {
                        s.get(&(e.request, d.0))
                            .unwrap_or_else(|| {
                                panic!("missing dependency {}/{} for {}", e.request, d, e.node)
                            })
                            .clone()
                    })
                    .collect();
                let token = match e.token {
                    TokenSource::None => None,
                    TokenSource::Fixed(t) => Some(t),
                    TokenSource::FromDep(k) => Some(
                        states[k]
                            .token
                            .expect("FromDep dependency emitted no token"),
                    ),
                };
                (token, states)
            })
            .collect()
    };
    let invocations: Vec<InvocationInput<'_>> = gathered
        .iter()
        .map(|(token, states)| InvocationInput {
            token: *token,
            states: states.iter().map(|o| &o.state).collect(),
        })
        .collect();
    let outputs = cell.execute_batch(&invocations);
    let tokens: Vec<Option<u32>> = outputs.iter().map(|o| o.token).collect();
    // Scatter: write results back.
    let mut s = store.lock();
    for (e, out) in task.entries.iter().zip(outputs) {
        s.insert((e.request, e.node.0), out);
    }
    tokens
}
