//! The unified request submission type.
//!
//! [`Request`] is the single entry point for submitting work to any
//! driver of the cellular-batching stack — the threaded
//! [`crate::Runtime`], the sharded [`crate::ShardedRuntime`], the
//! engine itself ([`crate::CellularEngine::on_request`]), the
//! discrete-event simulator (`bm_sim::simulate_requests`) and the
//! network wire format (`bm-net`) all accept it. It replaces the old
//! `submit` / `try_submit` / `try_submit_with_deadline` trio, whose
//! deadline handling lived in the method name instead of the request.
//!
//! ```
//! use bm_core::Request;
//! use bm_model::RequestInput;
//!
//! let req = Request::new(RequestInput::Sequence(vec![1, 2, 3]))
//!     .deadline_us(50_000)
//!     .priority(3)
//!     .tenant(7);
//! assert_eq!(req.priority, 3);
//! assert_eq!(req.tenant, Some(7));
//! assert_eq!(req.effective_deadline_us(None), Some(50_000));
//! ```

use bm_model::RequestInput;

/// How a request's completion deadline is determined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadlineSpec {
    /// Use the driver's default deadline (`ServeConfig::deadline_us`),
    /// if it has one.
    #[default]
    Default,
    /// No deadline for this request, even if the driver has a default.
    None,
    /// An explicit relative deadline, µs from arrival.
    RelativeUs(u64),
}

/// One unit of work to serve: the input payload plus its service-level
/// metadata (deadline, priority, tenant).
///
/// Build with [`Request::new`] and the fluent setters; the struct is
/// `#[non_exhaustive]` so new metadata can be added compatibly.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct Request {
    /// The input payload.
    pub input: RequestInput,
    /// The deadline specification (see [`DeadlineSpec`]).
    pub deadline: DeadlineSpec,
    /// Scheduling priority, 0 (default) to 255. Deadline-aware batch
    /// formation ([`crate::PolicyKind::DeadlineEdf`]) prefers
    /// higher-priority requests among equal deadlines; the paper's
    /// default policy ignores it (its priority is per cell type).
    pub priority: u8,
    /// Tenant id for per-tenant rate limiting at the network front
    /// door. `None` (the default) bills the anonymous tenant.
    pub tenant: Option<u32>,
}

impl Request {
    /// A request for `input` with default metadata: the driver's
    /// default deadline, priority 0, anonymous tenant.
    pub fn new(input: RequestInput) -> Self {
        Request {
            input,
            deadline: DeadlineSpec::Default,
            priority: 0,
            tenant: None,
        }
    }

    /// Sets an explicit relative deadline, µs from arrival.
    pub fn deadline_us(mut self, d: u64) -> Self {
        self.deadline = DeadlineSpec::RelativeUs(d);
        self
    }

    /// Disables the deadline for this request, even if the driver has a
    /// default.
    pub fn no_deadline(mut self) -> Self {
        self.deadline = DeadlineSpec::None;
        self
    }

    /// Sets the scheduling priority (0 = default, 255 = most urgent).
    pub fn priority(mut self, p: u8) -> Self {
        self.priority = p;
        self
    }

    /// Attributes the request to a tenant for rate limiting.
    pub fn tenant(mut self, id: u32) -> Self {
        self.tenant = Some(id);
        self
    }

    /// Resolves the deadline against a driver default: the request's
    /// own relative deadline, the default when the request defers to
    /// it, or `None`.
    pub fn effective_deadline_us(&self, default_us: Option<u64>) -> Option<u64> {
        match self.deadline {
            DeadlineSpec::Default => default_us,
            DeadlineSpec::None => None,
            DeadlineSpec::RelativeUs(d) => Some(d),
        }
    }
}

impl From<RequestInput> for Request {
    fn from(input: RequestInput) -> Self {
        Request::new(input)
    }
}

impl From<&RequestInput> for Request {
    fn from(input: &RequestInput) -> Self {
        Request::new(input.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_resolution() {
        let input = RequestInput::Sequence(vec![1]);
        let r = Request::new(input.clone());
        assert_eq!(r.effective_deadline_us(None), None);
        assert_eq!(r.effective_deadline_us(Some(9)), Some(9));
        let r = Request::new(input.clone()).no_deadline();
        assert_eq!(r.effective_deadline_us(Some(9)), None);
        let r = Request::new(input).deadline_us(4);
        assert_eq!(r.effective_deadline_us(Some(9)), Some(4));
    }

    #[test]
    fn from_input_is_default_request() {
        let input = RequestInput::Sequence(vec![1, 2]);
        let r: Request = (&input).into();
        assert_eq!(r, Request::new(input));
    }
}
