//! Pluggable batch-formation policies.
//!
//! [`CellularEngine`](crate::CellularEngine) makes two decisions per
//! `dispatch`: *which cell type to batch next* and *whether to submit
//! now or hold for a larger batch*. Both are delegated to a
//! [`SchedulingPolicy`]. The engine distills its queue state into a
//! [`PolicyView`] — one [`TypeCandidate`] per cell type with ready
//! nodes, in registry order, carrying per-request slack aggregates —
//! and the policy answers with a [`PolicyPick`], or `None` to form no
//! batch this round (either nothing qualifies or a lazy policy is
//! deliberately holding).
//!
//! Three policies ship, selected by [`PolicyKind`] on
//! [`SchedulerConfig`](crate::SchedulerConfig):
//!
//! * [`PolicyKind::PaperDefault`] — Algorithm 1 lines 5–10 verbatim
//!   (saturation → starvation → priority, highest priority wins ties),
//!   bit-identical to the pre-trait scheduler and gated so by proptest.
//! * [`PolicyKind::LazySlack`] — LazyBatching/E-BATCH hybrid: holds a
//!   merely-priority-qualified batch while every member has slack above
//!   a threshold and the ready queue is still growing, bounded by a
//!   max-delay timeout. Saturated and starving types always submit
//!   immediately.
//! * [`PolicyKind::DeadlineEdf`] — earliest-deadline-first type
//!   selection and request ordering under overload; saturated types
//!   keep precedence so full batches are never broken up.
//!
//! Slack is `deadline − now − estimated remaining work`, where the
//! remaining-work estimate is the request's remaining node count times
//! an EWMA of the type's observed per-row service cost.

use std::fmt;

use bm_cell::CellTypeId;
use bm_trace::BatchReason;

use crate::ids::WorkerId;

/// Which batch-formation policy the engine runs.
///
/// `Copy` so it can ride along in
/// [`SchedulerConfig`](crate::SchedulerConfig); [`PolicyKind::build`]
/// materialises the (stateful) policy object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum PolicyKind {
    /// Algorithm 1 exactly as published.
    #[default]
    PaperDefault,
    /// Slack-aware lazy batching with a max-delay timeout.
    LazySlack {
        /// Hold only while every would-be batch member's slack exceeds
        /// this (µs).
        slack_threshold_us: u64,
        /// Upper bound on how long a batch may be held (µs), after
        /// which it is released with [`BatchReason::Timeout`].
        max_delay_us: u64,
    },
    /// Earliest-deadline-first type selection and request ordering.
    DeadlineEdf,
}

impl PolicyKind {
    /// The lazy-slack policy with its default knobs (hold while every
    /// member has > 20 ms slack, release after at most 1 ms).
    pub fn lazy_slack() -> Self {
        PolicyKind::LazySlack {
            slack_threshold_us: 20_000,
            max_delay_us: 1_000,
        }
    }

    /// Stable lowercase label used in metrics, result tables and CLI
    /// flags.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::PaperDefault => "paper",
            PolicyKind::LazySlack { .. } => "lazy",
            PolicyKind::DeadlineEdf => "edf",
        }
    }

    /// Parses a CLI spelling (`paper`, `lazy`, `edf`, plus long
    /// aliases). Returns `None` for unknown names.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "paper" | "paper-default" | "default" => Some(PolicyKind::PaperDefault),
            "lazy" | "lazy-slack" => Some(PolicyKind::lazy_slack()),
            "edf" | "deadline-edf" | "deadline" => Some(PolicyKind::DeadlineEdf),
            _ => None,
        }
    }

    /// Materialises the policy object this kind describes.
    pub fn build(self) -> Box<dyn SchedulingPolicy> {
        match self {
            PolicyKind::PaperDefault => Box::new(PaperDefault),
            PolicyKind::LazySlack {
                slack_threshold_us,
                max_delay_us,
            } => Box::new(LazySlack::new(slack_threshold_us, max_delay_us)),
            PolicyKind::DeadlineEdf => Box::new(DeadlineEdf),
        }
    }
}

/// The scheduler observables for one cell type, as offered to a policy.
#[derive(Debug, Clone, Copy)]
pub struct TypeCandidate {
    /// The cell type.
    pub cell_type: CellTypeId,
    /// Ready (schedulable) nodes queued for the type; always > 0 for a
    /// candidate.
    pub ready_nodes: usize,
    /// In-flight tasks of the type (`ct.NumRunningTasks()`).
    pub running_tasks: usize,
    /// The type's minimum worthwhile batch size.
    pub min_batch: usize,
    /// The type's desired maximum batch size.
    pub max_batch: usize,
    /// Scheduling priority; higher wins ties.
    pub priority: u32,
    /// Minimum slack (deadline − now − estimated remaining work, µs;
    /// negative when overdue) across the requests a batch formed now
    /// would contain. `None` when no such request carries a deadline,
    /// or when the policy declared it does not need slack
    /// ([`SchedulingPolicy::needs_slack`]).
    pub min_slack_us: Option<i64>,
    /// Earliest absolute deadline (µs) across those requests; `None`
    /// under the same conditions as `min_slack_us`.
    pub earliest_deadline_us: Option<u64>,
}

/// The queue state a policy decides over: one candidate per cell type
/// with ready nodes, in registry order, minus any types the engine has
/// already found unformable for this worker during this dispatch call.
#[derive(Debug, Clone)]
pub struct PolicyView {
    /// The engine clock at dispatch time (µs).
    pub now_us: u64,
    /// The worker being dispatched to.
    pub worker: WorkerId,
    /// Cell types with ready nodes, in registry order.
    pub candidates: Vec<TypeCandidate>,
}

impl PolicyView {
    fn candidate(&self, ct: CellTypeId) -> &TypeCandidate {
        self.candidates
            .iter()
            .find(|c| c.cell_type == ct)
            .expect("picked cell type is a candidate")
    }
}

/// How `FormBatchedTask` orders candidate subgraphs within the picked
/// type's queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormationOrder {
    /// Queue (arrival/re-enqueue) order — the paper's behavior.
    Fifo,
    /// Earliest request deadline first; deadline-free requests last, in
    /// queue order.
    EarliestDeadline,
}

/// A policy's answer: batch this type, for this recorded reason, in
/// this formation order.
#[derive(Debug, Clone, Copy)]
pub struct PolicyPick {
    /// The cell type to batch.
    pub cell_type: CellTypeId,
    /// The decision label stamped on `BatchFormed` trace events and
    /// `bm_batch_reason_total`.
    pub reason: BatchReason,
    /// How to order subgraphs when forming the batch.
    pub order: FormationOrder,
}

/// A batch-formation policy: cell-type selection plus submit-or-hold
/// gating.
///
/// `pick` may be called several times per engine `dispatch` (the
/// engine retries with the picked type excluded when all of its ready
/// subgraphs turn out to be pinned to other workers), and once per
/// dispatched worker — policies with internal hold state must tolerate
/// both.
pub trait SchedulingPolicy: Send + fmt::Debug {
    /// The kind that built this policy (label source).
    fn kind(&self) -> PolicyKind;

    /// Decides what to batch for `view.worker`, or `None` to form
    /// nothing this round.
    fn pick(&mut self, view: &PolicyView) -> Option<PolicyPick>;

    /// Absolute time (µs) at which the policy wants to be re-polled
    /// even if no new event arrives — the release point of a held
    /// batch. `None` when nothing is held.
    fn next_wakeup(&self, now_us: u64) -> Option<u64> {
        let _ = now_us;
        None
    }

    /// Whether `pick` consults `min_slack_us` / `earliest_deadline_us`.
    /// When `false` the engine skips the per-request slack scan.
    fn needs_slack(&self) -> bool {
        false
    }
}

/// Algorithm 1 cell-type selection (lines 5–10), shared by the
/// policies: (a) saturated types, else (b) starving types, else (c)
/// any type with ready nodes; highest priority wins ties (`max_by_key`
/// keeps the *last* maximum, matching the pre-trait scheduler's
/// iteration over the registry).
fn paper_pick(view: &PolicyView) -> Option<(CellTypeId, BatchReason)> {
    let pick = |f: &dyn Fn(&TypeCandidate) -> bool| {
        view.candidates
            .iter()
            .filter(|c| f(c))
            .max_by_key(|c| c.priority)
            .map(|c| c.cell_type)
    };
    if let Some(ct) = pick(&|c| c.ready_nodes >= c.max_batch) {
        return Some((ct, BatchReason::Saturation));
    }
    if let Some(ct) = pick(&|c| c.running_tasks == 0) {
        return Some((ct, BatchReason::Starvation));
    }
    pick(&|_| true).map(|ct| (ct, BatchReason::Priority))
}

/// Algorithm 1 exactly as published; bit-identical to the pre-trait
/// scheduler (gated by proptest in `tests/scheduler_invariants.rs`).
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperDefault;

impl SchedulingPolicy for PaperDefault {
    fn kind(&self) -> PolicyKind {
        PolicyKind::PaperDefault
    }

    fn pick(&mut self, view: &PolicyView) -> Option<PolicyPick> {
        paper_pick(view).map(|(cell_type, reason)| PolicyPick {
            cell_type,
            reason,
            order: FormationOrder::Fifo,
        })
    }
}

/// Per-type hold state of [`LazySlack`].
#[derive(Debug, Clone, Copy, Default)]
struct HoldState {
    /// When the current hold began; `None` when not holding.
    held_since: Option<u64>,
    /// Ready-node level observed at the previous poll, to detect
    /// whether the queue is still growing.
    last_ready: usize,
}

/// Slack-aware lazy batching (LazyBatching + E-BATCH's timeout knob).
///
/// Saturated and starving picks submit immediately — delaying a full
/// batch buys nothing, and a starving pipeline must not idle. A pick
/// that qualifies only by priority (tier c) is *held* while every
/// would-be member has slack above `slack_threshold_us` and the type's
/// ready queue grew since the last poll; the hold is released with
/// [`BatchReason::SlackRelease`] when slack runs low or growth stalls,
/// or with [`BatchReason::Timeout`] after `max_delay_us`.
#[derive(Debug)]
pub struct LazySlack {
    slack_threshold_us: u64,
    max_delay_us: u64,
    /// Indexed by cell-type index, grown on demand.
    holds: Vec<HoldState>,
}

impl LazySlack {
    /// Creates the policy with the given hold threshold and timeout.
    pub fn new(slack_threshold_us: u64, max_delay_us: u64) -> Self {
        LazySlack {
            slack_threshold_us,
            max_delay_us,
            holds: Vec::new(),
        }
    }

    fn hold_mut(&mut self, ct: CellTypeId) -> &mut HoldState {
        let i = ct.index();
        if self.holds.len() <= i {
            self.holds.resize(i + 1, HoldState::default());
        }
        &mut self.holds[i]
    }
}

impl SchedulingPolicy for LazySlack {
    fn kind(&self) -> PolicyKind {
        PolicyKind::LazySlack {
            slack_threshold_us: self.slack_threshold_us,
            max_delay_us: self.max_delay_us,
        }
    }

    fn needs_slack(&self) -> bool {
        true
    }

    fn pick(&mut self, view: &PolicyView) -> Option<PolicyPick> {
        let (cell_type, reason) = paper_pick(view)?;
        if reason != BatchReason::Priority {
            // Saturated or starving: submit now, drop any pending hold.
            *self.hold_mut(cell_type) = HoldState::default();
            return Some(PolicyPick {
                cell_type,
                reason,
                order: FormationOrder::Fifo,
            });
        }
        let c = *view.candidate(cell_type);
        let threshold = self.slack_threshold_us as i64;
        let max_delay = self.max_delay_us;
        let h = self.hold_mut(cell_type);
        let slack_high = c.min_slack_us.is_none_or(|s| s > threshold);
        let grew = c.ready_nodes > h.last_ready;
        h.last_ready = c.ready_nodes;
        let release = |h: &mut HoldState, reason| {
            *h = HoldState::default();
            Some(PolicyPick {
                cell_type,
                reason,
                order: FormationOrder::Fifo,
            })
        };
        match h.held_since {
            None if slack_high => {
                h.held_since = Some(view.now_us);
                None
            }
            None => release(h, BatchReason::Priority),
            Some(t0) if view.now_us.saturating_sub(t0) >= max_delay => {
                release(h, BatchReason::Timeout)
            }
            Some(_) if !slack_high || !grew => release(h, BatchReason::SlackRelease),
            Some(_) => None,
        }
    }

    fn next_wakeup(&self, _now_us: u64) -> Option<u64> {
        self.holds
            .iter()
            .filter_map(|h| h.held_since)
            .min()
            .map(|t0| t0.saturating_add(self.max_delay_us))
    }
}

/// Earliest-deadline-first: among saturated types the earliest
/// deadline wins (full batches keep precedence — breaking them up
/// costs throughput with no latency gain); otherwise the type holding
/// the earliest deadline wins outright, labelled
/// [`BatchReason::Deadline`]. Within the picked type, subgraphs are
/// batched in earliest-deadline order. Falls back to paper behavior
/// when no queued request carries a deadline.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadlineEdf;

impl SchedulingPolicy for DeadlineEdf {
    fn kind(&self) -> PolicyKind {
        PolicyKind::DeadlineEdf
    }

    fn needs_slack(&self) -> bool {
        true
    }

    fn pick(&mut self, view: &PolicyView) -> Option<PolicyPick> {
        let saturated: Vec<&TypeCandidate> = view
            .candidates
            .iter()
            .filter(|c| c.ready_nodes >= c.max_batch)
            .collect();
        let any_saturated = !saturated.is_empty();
        let pool: Vec<&TypeCandidate> = if any_saturated {
            saturated
        } else {
            view.candidates.iter().collect()
        };
        let earliest = pool
            .iter()
            .filter(|c| c.earliest_deadline_us.is_some())
            .min_by_key(|c| c.earliest_deadline_us);
        match earliest {
            Some(c) => Some(PolicyPick {
                cell_type: c.cell_type,
                reason: if any_saturated {
                    BatchReason::Saturation
                } else {
                    BatchReason::Deadline
                },
                order: FormationOrder::EarliestDeadline,
            }),
            // No queued request carries a deadline: paper behavior.
            None => paper_pick(view).map(|(cell_type, reason)| PolicyPick {
                cell_type,
                reason,
                order: FormationOrder::EarliestDeadline,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(i: u32, ready: usize, running: usize, priority: u32) -> TypeCandidate {
        TypeCandidate {
            cell_type: CellTypeId(i),
            ready_nodes: ready,
            running_tasks: running,
            min_batch: 1,
            max_batch: 8,
            priority,
            min_slack_us: None,
            earliest_deadline_us: None,
        }
    }

    fn view(now_us: u64, candidates: Vec<TypeCandidate>) -> PolicyView {
        PolicyView {
            now_us,
            worker: WorkerId(0),
            candidates,
        }
    }

    #[test]
    fn paper_tiers_and_tie_breaks() {
        // Saturation beats a higher-priority starving type.
        let v = view(0, vec![cand(0, 8, 0, 5), cand(1, 1, 0, 9)]);
        let (ct, reason) = paper_pick(&v).unwrap();
        assert_eq!((ct, reason), (CellTypeId(0), BatchReason::Saturation));

        // Within a tier the higher priority wins...
        let v = view(0, vec![cand(0, 1, 0, 1), cand(1, 1, 0, 2)]);
        assert_eq!(paper_pick(&v).unwrap().0, CellTypeId(1));

        // ...and an equal-priority tie goes to the later registry entry
        // (the pre-trait scheduler's `max_by_key` kept the last max).
        let v = view(0, vec![cand(0, 1, 0, 3), cand(1, 1, 0, 3)]);
        assert_eq!(paper_pick(&v).unwrap().0, CellTypeId(1));

        // Starvation outranks priority-only types.
        let v = view(0, vec![cand(0, 1, 1, 9), cand(1, 1, 0, 1)]);
        let (ct, reason) = paper_pick(&v).unwrap();
        assert_eq!((ct, reason), (CellTypeId(1), BatchReason::Starvation));

        assert!(paper_pick(&view(0, Vec::new())).is_none());
    }

    /// A priority-only candidate with the given slack.
    fn slacked(i: u32, ready: usize, slack: i64) -> TypeCandidate {
        TypeCandidate {
            min_slack_us: Some(slack),
            earliest_deadline_us: Some(1_000_000),
            ..cand(i, ready, 1, 1)
        }
    }

    #[test]
    fn lazy_slack_submits_saturated_and_starving_immediately() {
        let mut p = LazySlack::new(10_000, 500);
        let pick = p.pick(&view(0, vec![cand(0, 8, 1, 1)])).unwrap();
        assert_eq!(pick.reason, BatchReason::Saturation);
        let pick = p.pick(&view(0, vec![cand(0, 1, 0, 1)])).unwrap();
        assert_eq!(pick.reason, BatchReason::Starvation);
        assert_eq!(p.next_wakeup(0), None);
    }

    #[test]
    fn lazy_slack_low_slack_never_holds() {
        let mut p = LazySlack::new(10_000, 500);
        let pick = p.pick(&view(0, vec![slacked(0, 1, 5_000)])).unwrap();
        assert_eq!(pick.reason, BatchReason::Priority);
    }

    #[test]
    fn lazy_slack_hold_times_out() {
        let mut p = LazySlack::new(10_000, 500);
        assert!(p.pick(&view(100, vec![slacked(0, 1, 50_000)])).is_none());
        assert_eq!(p.next_wakeup(100), Some(600));
        // Still growing before the deadline: keep holding.
        assert!(p.pick(&view(300, vec![slacked(0, 2, 50_000)])).is_none());
        let pick = p.pick(&view(600, vec![slacked(0, 3, 50_000)])).unwrap();
        assert_eq!(pick.reason, BatchReason::Timeout);
        assert_eq!(p.next_wakeup(600), None);
    }

    #[test]
    fn lazy_slack_releases_when_slack_drops() {
        let mut p = LazySlack::new(10_000, 100_000);
        assert!(p.pick(&view(100, vec![slacked(0, 1, 50_000)])).is_none());
        let pick = p.pick(&view(200, vec![slacked(0, 2, 9_000)])).unwrap();
        assert_eq!(pick.reason, BatchReason::SlackRelease);
    }

    #[test]
    fn lazy_slack_releases_when_growth_stalls() {
        let mut p = LazySlack::new(10_000, 100_000);
        assert!(p.pick(&view(100, vec![slacked(0, 2, 50_000)])).is_none());
        let pick = p.pick(&view(200, vec![slacked(0, 2, 50_000)])).unwrap();
        assert_eq!(pick.reason, BatchReason::SlackRelease);
    }

    fn deadlined(i: u32, ready: usize, deadline: u64) -> TypeCandidate {
        TypeCandidate {
            min_slack_us: Some(0),
            earliest_deadline_us: Some(deadline),
            ..cand(i, ready, 1, 1)
        }
    }

    #[test]
    fn edf_picks_earliest_deadline_type() {
        let mut p = DeadlineEdf;
        let pick = p
            .pick(&view(
                0,
                vec![deadlined(0, 1, 9_000), deadlined(1, 1, 4_000)],
            ))
            .unwrap();
        assert_eq!(pick.cell_type, CellTypeId(1));
        assert_eq!(pick.reason, BatchReason::Deadline);
        assert_eq!(pick.order, FormationOrder::EarliestDeadline);
    }

    #[test]
    fn edf_keeps_saturation_precedence() {
        // A full batch is never broken up for a tighter deadline
        // elsewhere: the saturated type wins even though the other
        // type's deadline is earlier.
        let mut p = DeadlineEdf;
        let saturated = TypeCandidate {
            earliest_deadline_us: Some(9_000),
            min_slack_us: Some(0),
            ..cand(0, 8, 1, 1)
        };
        let pick = p
            .pick(&view(0, vec![saturated, deadlined(1, 1, 4_000)]))
            .unwrap();
        assert_eq!(pick.cell_type, CellTypeId(0));
        assert_eq!(pick.reason, BatchReason::Saturation);
    }

    #[test]
    fn edf_falls_back_to_paper_without_deadlines() {
        let mut p = DeadlineEdf;
        let pick = p.pick(&view(0, vec![cand(0, 1, 0, 1)])).unwrap();
        assert_eq!(pick.cell_type, CellTypeId(0));
        assert_eq!(pick.reason, BatchReason::Starvation);
        assert_eq!(pick.order, FormationOrder::EarliestDeadline);
    }
}
