//! The per-request slot-indexed state plane.
//!
//! One [`SlotBlock`] backs each admitted request: a [`RowArena`] holding
//! two rows per graph node (hidden state and memory cell, sized from the
//! node's cell type) plus one atomic publication word per node. Workers
//! *scatter* a node's output by writing its rows and then storing the
//! word with `Release`; any later *gather* (on any worker) loads the
//! word with `Acquire` and reads the rows in place — so dependency
//! states flow between tasks with zero copies, no `CellOutput`
//! materialization and no lock.
//!
//! Publication protocol, per node:
//!
//! - `0` — empty (node not executed; reads report "missing").
//! - `CLAIMED` — a writer won the (panicking) claim CAS and is filling
//!   the rows. Readers still report "missing": the write is not
//!   published.
//! - `WRITTEN | [HAS_TOKEN | token]` — rows are final and immutable;
//!   the `Release`/`Acquire` pair orders the row bytes.
//!
//! The claim CAS makes the API safe: a node's rows are written at most
//! once ever (a second writer panics — the engine's exactly-once
//! submission invariant, so this is a scheduler-bug detector, not a
//! recoverable path), and once `WRITTEN` is observed the rows can never
//! be written again, so shared row views handed to gathers are sound.

use std::sync::atomic::{AtomicU64, Ordering};

use bm_cell::{CellOutput, CellRegistry, CellState, StateRef};
use bm_model::CellGraph;
use bm_tensor::RowArena;

const CLAIMED: u64 = 1 << 62;
const WRITTEN: u64 = 1 << 63;
const HAS_TOKEN: u64 = 1 << 32;
const TOKEN_MASK: u64 = u32::MAX as u64;

/// State storage for one request: slot rows plus publication words,
/// indexed by node.
#[derive(Debug)]
pub struct SlotBlock {
    arena: RowArena,
    meta: Box<[AtomicU64]>,
}

impl SlotBlock {
    /// Allocates zeroed slots for every node of `graph`, sized from each
    /// node's cell type (`h` row of `hidden_size`, `c` row of
    /// `memory_width` — 0 for cells without a memory cell).
    pub fn for_graph(graph: &CellGraph, registry: &CellRegistry) -> Self {
        let mut widths = Vec::with_capacity(2 * graph.len());
        for node in graph.nodes() {
            let cell = registry.cell(node.cell_type);
            widths.push(cell.hidden_size());
            widths.push(cell.memory_width());
        }
        SlotBlock {
            arena: RowArena::new(&widths),
            meta: (0..graph.len()).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Writes node `i`'s output rows and publishes them.
    ///
    /// # Panics
    ///
    /// Panics if the node was already claimed or written (each node
    /// executes exactly once), or on a row-width mismatch.
    pub fn write(&self, i: usize, h: &[f32], c: &[f32], token: Option<u32>) {
        self.meta[i]
            .compare_exchange(0, CLAIMED, Ordering::Acquire, Ordering::Relaxed)
            .unwrap_or_else(|_| panic!("state slot {i} written twice"));
        // SAFETY: the claim CAS above makes this thread the only writer
        // of node `i`'s rows, ever; readers wait for WRITTEN.
        unsafe {
            self.arena.row_mut(2 * i).copy_from_slice(h);
            self.arena.row_mut(2 * i + 1).copy_from_slice(c);
        }
        let mut m = WRITTEN;
        if let Some(t) = token {
            m |= HAS_TOKEN | t as u64;
        }
        self.meta[i].store(m, Ordering::Release);
    }

    /// Borrows node `i`'s published state rows, or `None` if the node
    /// has not (finished) executing.
    pub fn state(&self, i: usize) -> Option<StateRef<'_>> {
        if self.meta[i].load(Ordering::Acquire) & WRITTEN == 0 {
            return None;
        }
        // SAFETY: WRITTEN was observed with Acquire, so the final row
        // write happened-before this read and no writer can ever touch
        // these rows again.
        Some(unsafe {
            StateRef {
                h: self.arena.row(2 * i),
                c: self.arena.row(2 * i + 1),
            }
        })
    }

    /// The token node `i` emitted, if any.
    ///
    /// Meaningful only after [`SlotBlock::state`] returned `Some` for
    /// the node.
    pub fn token(&self, i: usize) -> Option<u32> {
        let m = self.meta[i].load(Ordering::Acquire);
        debug_assert_ne!(m & WRITTEN, 0, "token read before publication");
        if m & HAS_TOKEN != 0 {
            Some((m & TOKEN_MASK) as u32)
        } else {
            None
        }
    }

    /// Copies node `i`'s published output out as an owned [`CellOutput`]
    /// (`None` for never-executed nodes, e.g. past an `<eos>` cancel).
    /// The one copy of the state plane's lifecycle, made once per node
    /// when the finished request is handed back to the client.
    pub fn output(&self, i: usize) -> Option<CellOutput> {
        let st = self.state(i)?;
        Some(CellOutput {
            state: CellState {
                h: st.h.to_vec(),
                c: st.c.to_vec(),
            },
            token: self.token(i),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(widths: &[(usize, usize)]) -> SlotBlock {
        let flat: Vec<usize> = widths.iter().flat_map(|&(h, c)| [h, c]).collect();
        SlotBlock {
            arena: RowArena::new(&flat),
            meta: (0..widths.len()).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    #[test]
    fn publish_then_read_round_trips() {
        let b = block(&[(3, 3), (2, 0)]);
        assert!(b.state(0).is_none());
        b.write(0, &[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], None);
        let st = b.state(0).expect("published");
        assert_eq!(st.h, &[1.0, 2.0, 3.0]);
        assert_eq!(st.c, &[4.0, 5.0, 6.0]);
        assert_eq!(b.token(0), None);

        b.write(1, &[7.0, 8.0], &[], Some(42));
        assert_eq!(b.token(1), Some(42));
        let out = b.output(1).expect("published");
        assert_eq!(out.state.h, vec![7.0, 8.0]);
        assert!(out.state.c.is_empty());
        assert_eq!(out.token, Some(42));
    }

    #[test]
    #[should_panic(expected = "written twice")]
    fn double_write_panics() {
        let b = block(&[(1, 1)]);
        b.write(0, &[1.0], &[2.0], None);
        b.write(0, &[1.0], &[2.0], None);
    }
}
