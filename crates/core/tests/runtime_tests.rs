//! End-to-end tests of the threaded runtime: results served under
//! dynamic cellular batching must be bit-identical to the unbatched
//! reference executor.

use std::sync::Arc;

use bm_core::{Runtime, RuntimeOptions};
use bm_model::{reference, LstmLm, Model, RequestInput, Seq2Seq, Seq2SeqConfig, TreeLstm};
use bm_workload::{Dataset, LengthDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn check_against_reference(model: Arc<dyn Model>, inputs: &[RequestInput], workers: usize) {
    let rt = Runtime::start(Arc::clone(&model), RuntimeOptions::new().workers(workers));
    let handles: Vec<_> = inputs
        .iter()
        .map(|i| rt.submit_request(i).expect("submit"))
        .collect();
    for (input, h) in inputs.iter().zip(handles) {
        let served = h.wait().completed();
        let expect = reference::execute_graph(&model.unfold(input), model.registry());
        assert_eq!(
            served.result, expect,
            "served result diverged from reference for {input:?}"
        );
        let t = served.timing;
        assert!(t.arrival_us <= t.start_us && t.start_us <= t.completion_us);
    }
    rt.shutdown();
}

#[test]
fn lstm_results_match_reference_single_worker() {
    let model = Arc::new(LstmLm::small());
    let inputs: Vec<RequestInput> = (1..=12)
        .map(|i| RequestInput::Sequence((0..i).map(|t| (t % 50) as u32).collect()))
        .collect();
    check_against_reference(model, &inputs, 1);
}

#[test]
fn lstm_results_match_reference_multi_worker() {
    let model = Arc::new(LstmLm::small());
    let inputs: Vec<RequestInput> = (1..=16)
        .map(|i| RequestInput::Sequence((0..(1 + i % 9)).map(|t| (t % 50) as u32).collect()))
        .collect();
    check_against_reference(model, &inputs, 3);
}

#[test]
fn seq2seq_decoded_tokens_match_reference() {
    let model = Arc::new(Seq2Seq::small());
    let inputs: Vec<RequestInput> = (1..=10)
        .map(|i: usize| RequestInput::Pair {
            src: (2..(2 + (i as u32 % 6) + 1)).collect(),
            decode_len: 1 + (i % 4),
        })
        .collect();
    check_against_reference(model, &inputs, 2);
}

#[test]
fn treelstm_results_match_reference() {
    let model = Arc::new(TreeLstm::small());
    let mut rng = StdRng::seed_from_u64(7);
    let ds = Dataset::trees(12, LengthDistribution::Fixed(9), 100, 3);
    let inputs: Vec<RequestInput> = (0..12).map(|_| ds.sample(&mut rng).clone()).collect();
    check_against_reference(model, &inputs, 2);
}

#[test]
fn mixed_lengths_from_wmt_distribution() {
    let model = Arc::new(LstmLm::small());
    let ds = Dataset::lstm(24, LengthDistribution::wmt15_clipped(40), 900, 11);
    check_against_reference(model, ds.items(), 2);
}

#[test]
fn eos_terminated_decode_stops_early() {
    let model = Arc::new(Seq2Seq::new(Seq2SeqConfig {
        eos_terminates: true,
        ..Default::default()
    }));
    let rt = Runtime::start(
        Arc::clone(&model) as Arc<dyn Model>,
        RuntimeOptions::new().workers(1),
    );
    let input = RequestInput::Pair {
        src: vec![2, 3],
        decode_len: 40,
    };
    let served = rt
        .submit_request(&input)
        .expect("submit")
        .wait()
        .completed();
    // The reference executor applies the same eos semantics; decoded
    // prefixes must agree.
    let expect = reference::execute_graph(&model.unfold(&input), model.registry());
    let served_tokens = served.result.decoded_tokens();
    let expect_tokens = expect.decoded_tokens();
    // The runtime may have executed a few extra steps that were already
    // submitted when <eos> appeared; the reference's decode must be a
    // prefix of the served decode (or equal).
    assert!(
        served_tokens.starts_with(&expect_tokens),
        "served {served_tokens:?} vs reference {expect_tokens:?}"
    );
    rt.shutdown();
}

#[test]
fn throughput_sanity_many_concurrent_requests() {
    // 200 small requests across 2 workers complete, each matching the
    // reference.
    let model = Arc::new(LstmLm::small());
    let rt = Runtime::start(
        Arc::clone(&model) as Arc<dyn Model>,
        RuntimeOptions::new().workers(2),
    );
    let ds = Dataset::lstm(200, LengthDistribution::Fixed(6), 900, 5);
    let handles: Vec<_> = ds
        .items()
        .iter()
        .map(|i| rt.submit_request(i).expect("submit"))
        .collect();
    let mut latencies = Vec::new();
    for (input, h) in ds.items().iter().zip(handles) {
        let served = h.wait().completed();
        let expect = reference::execute_graph(&model.unfold(input), model.registry());
        assert_eq!(served.result, expect);
        latencies.push(served.timing.completion_us - served.timing.arrival_us);
    }
    assert_eq!(latencies.len(), 200);
    rt.shutdown();
}

#[test]
fn handles_resolve_even_when_submitted_after_idle() {
    let model = Arc::new(LstmLm::small());
    let rt = Runtime::start(
        Arc::clone(&model) as Arc<dyn Model>,
        RuntimeOptions::new().workers(1),
    );
    // First burst.
    let a = rt
        .submit_request(RequestInput::Sequence(vec![1, 2, 3]))
        .expect("submit")
        .wait()
        .completed();
    // Let the system go idle, then submit again.
    std::thread::sleep(std::time::Duration::from_millis(5));
    let b = rt
        .submit_request(RequestInput::Sequence(vec![4, 5]))
        .expect("submit")
        .wait()
        .completed();
    assert_eq!(a.result.executed_count(), 3);
    assert_eq!(b.result.executed_count(), 2);
    rt.shutdown();
}

// ---------------------------------------------------------------------------
// Overload behaviour: deadlines, admission control, cancellation.
// ---------------------------------------------------------------------------

use bm_core::{ServedOutcome, SubmitError};

/// A zero-length deadline expires in the manager iteration that admits
/// the request — before any dispatch — so the outcome is deterministic:
/// interleaved no-deadline requests complete (bit-identical to the
/// reference), zero-deadline ones expire, and nothing panics or hangs.
#[test]
fn zero_deadline_requests_expire_while_others_complete() {
    let model = Arc::new(LstmLm::small());
    let rt = Runtime::start(
        Arc::clone(&model) as Arc<dyn Model>,
        RuntimeOptions::new().workers(1),
    );
    let inputs: Vec<RequestInput> = (0..90)
        .map(|i| RequestInput::Sequence((0..(3 + i % 10)).map(|t| (t % 50) as u32).collect()))
        .collect();
    let handles: Vec<_> = inputs
        .iter()
        .enumerate()
        .map(|(i, input)| {
            let req = if i % 3 == 0 {
                bm_core::Request::from(input).deadline_us(0)
            } else {
                bm_core::Request::from(input)
            };
            rt.submit_request(req).expect("valid input")
        })
        .collect();
    let mut expired = 0;
    for (i, (input, h)) in inputs.iter().zip(handles).enumerate() {
        match h.wait() {
            ServedOutcome::Completed(served) => {
                assert_ne!(i % 3, 0, "zero-deadline request {i} completed");
                let expect = reference::execute_graph(&model.unfold(input), model.registry());
                assert_eq!(served.result, expect, "admitted request {i} diverged");
            }
            ServedOutcome::Expired(t) => {
                assert_eq!(i % 3, 0, "no-deadline request {i} expired");
                assert!(t.arrival_us <= t.completion_us);
                expired += 1;
            }
            other => panic!("unexpected outcome for request {i}: {other:?}"),
        }
    }
    assert_eq!(expired, 30);
    assert_eq!(rt.active_requests(), 0, "every slot reclaimed");
    rt.shutdown();
}

/// A flood with a short real deadline on one worker: the tail of the
/// queue cannot meet it, so requests expire — yet every handle resolves
/// (no panic, no hang) and whatever did complete matches the reference.
#[test]
fn deadline_flood_sheds_tail_without_hanging() {
    let model = Arc::new(LstmLm::small());
    let rt = Runtime::start(
        Arc::clone(&model) as Arc<dyn Model>,
        RuntimeOptions::new().workers(1).deadline_us(1_000),
    );
    let ds = Dataset::lstm(600, LengthDistribution::Fixed(20), 900, 17);
    let handles: Vec<_> = ds
        .items()
        .iter()
        .map(|i| rt.submit_request(i).expect("submit"))
        .collect();
    let (mut completed, mut expired) = (0usize, 0usize);
    for (input, h) in ds.items().iter().zip(handles) {
        match h.wait() {
            ServedOutcome::Completed(served) => {
                let expect = reference::execute_graph(&model.unfold(input), model.registry());
                assert_eq!(served.result, expect, "admitted request diverged");
                completed += 1;
            }
            ServedOutcome::Expired(t) => {
                assert!(t.arrival_us <= t.completion_us);
                expired += 1;
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }
    assert_eq!(completed + expired, 600);
    assert!(
        expired > 0,
        "600 x 20-step requests cannot all finish within 1 ms each on one worker"
    );
    assert_eq!(rt.active_requests(), 0);
    rt.shutdown();
}

/// With a small active-request cap, a burst fails some submissions fast
/// with [`SubmitError::AtCapacity`] (no work done, no handle), while
/// admitted ones still complete correctly.
#[test]
fn admission_cap_rejects_excess_submissions() {
    let model = Arc::new(LstmLm::small());
    let rt = Runtime::start(
        Arc::clone(&model) as Arc<dyn Model>,
        RuntimeOptions::new().workers(1).max_active(4),
    );
    let ds = Dataset::lstm(200, LengthDistribution::Fixed(40), 900, 23);
    let submissions: Vec<_> = ds.items().iter().map(|i| rt.submit_request(i)).collect();
    let (mut completed, mut rejected) = (0usize, 0usize);
    for (input, sub) in ds.items().iter().zip(submissions) {
        match sub {
            Ok(h) => {
                let served = h.wait().completed();
                let expect = reference::execute_graph(&model.unfold(input), model.registry());
                assert_eq!(served.result, expect, "admitted request diverged");
                completed += 1;
            }
            Err(SubmitError::AtCapacity) => rejected += 1,
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    }
    assert_eq!(completed + rejected, 200);
    assert!(completed >= 4, "the first burst fits under the cap");
    assert!(
        rejected > 0,
        "a 200-deep burst of 40-step requests must overflow a cap of 4"
    );
    assert_eq!(rt.active_requests(), 0);
    rt.shutdown();
}

/// A bounded manager queue must never deadlock: worker completions use
/// blocking sends the manager always drains, and submissions that find
/// the queue full fail fast with [`SubmitError::QueueFull`] instead of
/// blocking the caller.
#[test]
fn bounded_manager_queue_never_deadlocks() {
    let model = Arc::new(LstmLm::small());
    let rt = Runtime::start(
        Arc::clone(&model) as Arc<dyn Model>,
        RuntimeOptions::new().workers(2).queue_cap(2),
    );
    let ds = Dataset::lstm(80, LengthDistribution::Fixed(10), 900, 31);
    let submissions: Vec<_> = ds.items().iter().map(|i| rt.submit_request(i)).collect();
    let mut resolved = 0usize;
    for (input, sub) in ds.items().iter().zip(submissions) {
        match sub {
            Ok(h) => match h.wait() {
                ServedOutcome::Completed(served) => {
                    let expect = reference::execute_graph(&model.unfold(input), model.registry());
                    assert_eq!(served.result, expect, "admitted request diverged");
                    resolved += 1;
                }
                other => panic!("unexpected outcome: {other:?}"),
            },
            Err(SubmitError::QueueFull) => resolved += 1,
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    }
    assert_eq!(resolved, 80);
    assert_eq!(rt.active_requests(), 0);
    rt.shutdown();
}

// ---------------------------------------------------------------------------
// Tracing: every completed request's timeline is causally ordered.
// ---------------------------------------------------------------------------

use bm_metrics::reconstruct_timelines;
use bm_trace::RingBufferSink;

/// Serving through a traced runtime yields, for every completed request,
/// a timeline whose arrival, first dispatch and completion appear in
/// that order — and the deprecated `start_with` shim still works.
#[test]
fn traced_run_yields_ordered_timelines() {
    let model = Arc::new(LstmLm::small());
    let sink = Arc::new(RingBufferSink::new(200_000));
    #[allow(deprecated)]
    let rt = Runtime::start_with(
        Arc::clone(&model) as Arc<dyn Model>,
        2,
        RuntimeOptions::new().trace(sink.clone()),
    );
    let ds = Dataset::lstm(40, LengthDistribution::Fixed(8), 900, 41);
    let handles: Vec<_> = ds
        .items()
        .iter()
        .map(|i| rt.submit_request(i).expect("submit"))
        .collect();
    for h in handles {
        h.wait().completed();
    }
    rt.shutdown();

    let events = sink.events();
    assert_eq!(sink.dropped(), 0, "capture buffer must not overflow");
    let timelines = reconstruct_timelines(&events);
    let completed: Vec<_> = timelines
        .iter()
        .filter(|t| t.entries.iter().any(|e| e.label == "request_completed"))
        .collect();
    assert_eq!(completed.len(), 40, "one timeline per completed request");
    for t in &completed {
        let arrival = t.arrival_us().expect("arrival traced");
        let dispatch = t.first_dispatch_us().expect("dispatch traced");
        let end = t.end_us().expect("completion traced");
        assert!(
            arrival <= dispatch && dispatch <= end,
            "request {}: arrival {arrival} -> dispatch {dispatch} -> complete {end} out of order",
            t.request
        );
        // Entries are in causal trace order with monotonic timestamps.
        for w in t.entries.windows(2) {
            assert!(
                w[0].ts_us <= w[1].ts_us,
                "request {}: ts regressed",
                t.request
            );
        }
    }
}

#[test]
fn builders_preserve_defaults() {
    // `new()` is the documented start of the chain and must match
    // `Default` field for field, so adding a knob never shifts behavior
    // of existing builder chains.
    let opts = RuntimeOptions::new();
    let defaults = RuntimeOptions::default();
    assert_eq!(opts.workers, defaults.workers);
    assert_eq!(opts.workers, 1);
    assert_eq!(opts.serve().max_active, defaults.serve().max_active);
    assert_eq!(opts.serve().max_active, None);
    assert_eq!(opts.serve().deadline_us, None);
    assert_eq!(opts.serve().queue_cap, None);
    assert_eq!(opts.serve().pipeline_depth, defaults.serve().pipeline_depth);
    assert_eq!(opts.serve().pipeline_depth, 2);
    assert!(
        !opts.serve().trace.enabled(),
        "default sink must be the no-op"
    );
    assert!(opts.serve().shards >= 1);

    let cfg = bm_core::SchedulerConfig::new();
    let cfg_defaults = bm_core::SchedulerConfig::default();
    assert_eq!(cfg.max_tasks_to_submit, cfg_defaults.max_tasks_to_submit);
    assert_eq!(cfg.max_tasks_to_submit, 5);
    assert!(!cfg.retain_completions);

    let serve = bm_core::ServeConfig::new();
    let serve_defaults = bm_core::ServeConfig::default();
    assert_eq!(serve.policy, serve_defaults.policy);
    assert_eq!(serve.policy, None);
    assert_eq!(serve.pipeline_depth, 2);
    assert_eq!(serve.tenant_rate, None);
}

#[test]
fn builders_set_only_the_named_field() {
    // `scheduler(..)` replaces the whole SchedulerConfig including its
    // embedded ServeConfig, so it comes first in the chain; the
    // delegating setters after it edit the embedded serve config.
    let opts = RuntimeOptions::new()
        .scheduler(bm_core::SchedulerConfig::new().max_tasks_to_submit(2))
        .workers(3)
        .max_active(64)
        .deadline_us(50_000)
        .queue_cap(256)
        .pipeline_depth(4);
    assert_eq!(opts.workers, 3);
    assert_eq!(opts.serve().max_active, Some(64));
    assert_eq!(opts.serve().deadline_us, Some(50_000));
    assert_eq!(opts.serve().queue_cap, Some(256));
    assert_eq!(opts.serve().pipeline_depth, 4);
    assert_eq!(opts.scheduler.max_tasks_to_submit, 2);
    // Untouched knobs keep their defaults through the chain.
    assert!(!opts.scheduler.retain_completions);
    assert!(!opts.serve().trace.enabled());
}

// ---------------------------------------------------------------------------
// Pipelined dispatch: bit-identity across (workers, depth, submit cap).
// ---------------------------------------------------------------------------

use proptest::prelude::*;

/// Seeded inputs for one model family, sized to exercise batching
/// without making each proptest case expensive.
fn model_and_inputs(kind: usize, seed: u64) -> (Arc<dyn Model>, Vec<RequestInput>) {
    let mut rng = StdRng::seed_from_u64(seed);
    match kind {
        0 => {
            let ds = Dataset::lstm(8, LengthDistribution::wmt15_clipped(10), 900, seed);
            (Arc::new(LstmLm::small()), ds.items().to_vec())
        }
        1 => {
            let inputs = (0..8)
                .map(|i: u32| RequestInput::Pair {
                    src: (2..(2 + 1 + (i + seed as u32) % 5)).collect(),
                    decode_len: 1 + ((i as usize + seed as usize) % 4),
                })
                .collect();
            (Arc::new(Seq2Seq::small()), inputs)
        }
        _ => {
            let ds = Dataset::trees(8, LengthDistribution::Fixed(7), 100, seed);
            let inputs = (0..8).map(|_| ds.sample(&mut rng).clone()).collect();
            (Arc::new(TreeLstm::small()), inputs)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The served result must be bit-identical to the unbatched
    /// reference executor at every (workers, pipeline depth,
    /// MaxTasksToSubmit) combination, for all three model families —
    /// pipelining and the slot-indexed state plane change scheduling
    /// and storage, never values.
    #[test]
    fn pipelined_runtime_matches_reference(
        workers in 1usize..4,
        depth in 1usize..4,
        max_tasks in 1usize..6,
        kind in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let (model, inputs) = model_and_inputs(kind, seed);
        let rt = Runtime::start(
            Arc::clone(&model),
            RuntimeOptions::new()
                .workers(workers)
                .pipeline_depth(depth)
                .scheduler(bm_core::SchedulerConfig::new().max_tasks_to_submit(max_tasks)),
        );
        let handles: Vec<_> = inputs.iter().map(|i| rt.submit_request(i).expect("submit")).collect();
        for (input, h) in inputs.iter().zip(handles) {
            let served = h.wait().completed();
            let expect = reference::execute_graph(&model.unfold(input), model.registry());
            prop_assert_eq!(
                &served.result,
                &expect,
                "diverged at workers={} depth={} max_tasks={} kind={} for {:?}",
                workers,
                depth,
                max_tasks,
                kind,
                input
            );
        }
        rt.shutdown();
    }
}

/// Deep pipelining must never outrun state publication: with every
/// worker holding a deep in-flight window and an aggressive submit cap,
/// cross-worker dependencies (tree joins whose children ran elsewhere,
/// encoder-to-decoder handoffs) must find their states published at
/// gather time. A missed happens-before edge panics the worker
/// (`missing dependency ...`) and wedges the handle, so completing
/// bit-identically IS the regression assertion.
#[test]
fn deep_pipelining_preserves_cross_worker_dependencies() {
    let tree = Arc::new(TreeLstm::small());
    let mut rng = StdRng::seed_from_u64(97);
    let ds = Dataset::trees(48, LengthDistribution::Fixed(9), 100, 97);
    let tree_inputs: Vec<RequestInput> = (0..48).map(|_| ds.sample(&mut rng).clone()).collect();

    let s2s = Arc::new(Seq2Seq::small());
    let s2s_inputs: Vec<RequestInput> = (0..48)
        .map(|i: u32| RequestInput::Pair {
            src: (2..(2 + 1 + i % 6)).collect(),
            decode_len: 1 + (i as usize % 5),
        })
        .collect();

    for (model, inputs) in [
        (tree as Arc<dyn Model>, tree_inputs),
        (s2s as Arc<dyn Model>, s2s_inputs),
    ] {
        let rt = Runtime::start(
            Arc::clone(&model),
            RuntimeOptions::new()
                // scheduler() replaces the whole config, so it comes
                // before the delegating setters.
                .scheduler(bm_core::SchedulerConfig::new().max_tasks_to_submit(6))
                .workers(4)
                .pipeline_depth(4),
        );
        let handles: Vec<_> = inputs
            .iter()
            .map(|i| rt.submit_request(i).expect("submit"))
            .collect();
        for (input, h) in inputs.iter().zip(handles) {
            let served = h.wait().completed();
            let expect = reference::execute_graph(&model.unfold(input), model.registry());
            assert_eq!(served.result, expect, "diverged for {input:?}");
        }
        assert_eq!(rt.active_requests(), 0);
        rt.shutdown();
    }
}

#[test]
fn wait_timeout_distinguishes_pending_from_resolved() {
    use std::time::Duration;
    let model: Arc<dyn Model> = Arc::new(LstmLm::small());
    let rt = Runtime::start(Arc::clone(&model), RuntimeOptions::new().workers(1));

    // A long request polled with a zero-ish timeout: at least the first
    // poll reports TimedOut rather than blocking or fabricating an
    // outcome, and polling eventually yields the real completion.
    let h = rt
        .submit_request(RequestInput::Sequence(vec![1; 40]))
        .expect("submit");
    let mut timed_out = false;
    let outcome = loop {
        match h.wait_timeout(Duration::from_micros(50)) {
            Err(bm_core::WaitError::TimedOut) => timed_out = true,
            Err(e) => panic!("unexpected wait error: {e}"),
            Ok(outcome) => break outcome,
        }
    };
    assert!(timed_out, "a 40-step request must outlive a 50µs poll");
    let served = outcome.completed();
    let expect = reference::execute_graph(
        &model.unfold(&RequestInput::Sequence(vec![1; 40])),
        model.registry(),
    );
    assert_eq!(served.result, expect);

    // A resolved handle keeps answering without further timeouts.
    let h2 = rt
        .submit_request(RequestInput::Sequence(vec![2, 3]))
        .expect("submit");
    let first = h2.wait_timeout(Duration::from_secs(30)).expect("resolves");
    assert!(matches!(first, bm_core::ServedOutcome::Completed(_)));
    rt.shutdown();
}
