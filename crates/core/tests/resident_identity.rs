//! The resident-state plane must be invisible to results: a runtime
//! with `resident_state` on returns outputs bit-identical to the
//! gather-path runtime, across worker counts × pipeline depths ×
//! batch-formation policies × all model families. The plane may change
//! *how* state reaches the cell — parked rows, swaps, refetches after
//! migration — never *what* it computes.

use std::sync::Arc;

use bm_core::{PolicyKind, Request, Runtime, RuntimeOptions, ServedOutcome};
use bm_model::{GruLm, LstmLm, Model, RequestInput, Seq2Seq, TreeLstm, TreeShape};
use proptest::collection::vec;
use proptest::prelude::*;

/// Vocabulary bound of `LstmLm::small()` / `GruLm::small()`.
const VOCAB: u32 = 900;

fn opts(
    workers: usize,
    depth: usize,
    policy: Option<PolicyKind>,
    resident: bool,
) -> RuntimeOptions {
    let mut o = RuntimeOptions::new()
        .workers(workers)
        .pipeline_depth(depth)
        .resident_state(resident);
    if let Some(p) = policy {
        o = o.policy(p);
    }
    o
}

/// Serves every input and returns the full per-node outputs (states and
/// tokens) in submission order.
fn outputs_of(rt: &Runtime, inputs: &[RequestInput]) -> Vec<Vec<Option<bm_cell::CellOutput>>> {
    let handles: Vec<_> = inputs
        .iter()
        .map(|i| rt.submit_request(Request::from(i)).expect("submit"))
        .collect();
    handles
        .into_iter()
        .map(|h| match h.wait() {
            ServedOutcome::Completed(res) => res.result.outputs,
            other => panic!("request did not complete: {other:?}"),
        })
        .collect()
}

fn check_identity(
    model: Arc<dyn Model>,
    inputs: &[RequestInput],
    workers: usize,
    depth: usize,
    policy: Option<PolicyKind>,
) {
    let gather = Runtime::start(Arc::clone(&model), opts(workers, depth, policy, false));
    let want = outputs_of(&gather, inputs);
    gather.shutdown();

    let resident = Runtime::start(model, opts(workers, depth, policy, true));
    let got = outputs_of(&resident, inputs);
    resident.shutdown();

    // PartialEq on CellOutput compares every f32 exactly: any
    // accumulation-order or state-placement difference between the
    // paths would fail here.
    assert_eq!(
        want, got,
        "resident outputs diverged ({workers} workers, depth {depth}, {policy:?})"
    );
}

fn policy_strategy() -> impl Strategy<Value = Option<PolicyKind>> {
    prop_oneof![
        Just(None),
        Just(Some(PolicyKind::PaperDefault)),
        Just(Some(PolicyKind::lazy_slack())),
        Just(Some(PolicyKind::DeadlineEdf)),
    ]
}

fn tree_strategy() -> impl Strategy<Value = TreeShape> {
    (0u32..VOCAB).prop_map(TreeShape::Leaf).prop_recursive(
        4,  // depth
        24, // total nodes
        2,  // branches
        |inner| (inner.clone(), inner).prop_map(|(l, r)| TreeShape::internal(l, r)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn lstm_outputs_identical_with_resident_plane(
        seqs in vec(vec(1u32..VOCAB, 1..12), 4..16),
        workers in 1usize..4,
        depth in 1usize..4,
        policy in policy_strategy(),
    ) {
        let inputs: Vec<RequestInput> =
            seqs.into_iter().map(RequestInput::Sequence).collect();
        check_identity(Arc::new(LstmLm::small()), &inputs, workers, depth, policy);
    }

    #[test]
    fn gru_outputs_identical_with_resident_plane(
        seqs in vec(vec(1u32..VOCAB, 1..12), 4..12),
        workers in 1usize..4,
        policy in policy_strategy(),
    ) {
        let inputs: Vec<RequestInput> =
            seqs.into_iter().map(RequestInput::Sequence).collect();
        check_identity(Arc::new(GruLm::small()), &inputs, workers, 2, policy);
    }

    #[test]
    fn seq2seq_outputs_identical_with_resident_plane(
        // Seq2Seq::small has a 500-token vocabulary; 2.. reserves the
        // <go>/<eos> ids.
        pairs in vec((vec(2u32..490, 1..10), 1usize..8), 4..12),
        workers in 1usize..4,
        depth in 1usize..4,
        policy in policy_strategy(),
    ) {
        let inputs: Vec<RequestInput> = pairs
            .into_iter()
            .map(|(src, decode_len)| RequestInput::Pair { src, decode_len })
            .collect();
        check_identity(Arc::new(Seq2Seq::small()), &inputs, workers, depth, policy);
    }

    #[test]
    fn tree_outputs_identical_with_resident_plane_enabled(
        // Tree cells have no resident layout; the knob must leave them
        // on the gather path untouched.
        trees in vec(tree_strategy(), 4..10),
        workers in 1usize..3,
    ) {
        let inputs: Vec<RequestInput> =
            trees.into_iter().map(RequestInput::Tree).collect();
        check_identity(Arc::new(TreeLstm::small()), &inputs, workers, 2, None);
    }
}
