//! The batched manager hot path: tagged completion-queue submission,
//! coalesced arrival batches, batched worker dispatch, and the
//! amortization telemetry — all bit-identical to the per-message
//! baseline and to the unbatched reference executor.

use std::sync::Arc;

use bm_core::{
    completion_queue, Runtime, RuntimeOptions, SchedulerConfig, ServeConfig, ServedOutcome,
    ShardedRuntime,
};
use bm_model::{reference, LstmLm, Model, RequestInput};
use bm_telemetry::{MetricValue, Telemetry};

fn inputs(n: usize) -> Vec<RequestInput> {
    (0..n)
        .map(|i| RequestInput::Sequence((0..(1 + i % 9)).map(|t| (t % 50) as u32).collect()))
        .collect()
}

fn opts(batched: bool, workers: usize) -> RuntimeOptions {
    RuntimeOptions::new()
        .workers(workers)
        .scheduler(SchedulerConfig::new().serve(ServeConfig::new().batched_dispatch(batched)))
}

/// Submits `inputs` as one tagged batch and returns the outcomes in
/// tag order, pulled off the completion queue.
fn serve_batch(rt: &Runtime, inputs: &[RequestInput]) -> Vec<ServedOutcome> {
    let (queue, completions) = completion_queue();
    let reqs = inputs
        .iter()
        .enumerate()
        .map(|(i, input)| (i as u64, input.into()));
    let results = rt.submit_batch_tagged(reqs, &queue);
    assert!(results.iter().all(Result::is_ok), "{results:?}");
    let mut out: Vec<Option<ServedOutcome>> = (0..inputs.len()).map(|_| None).collect();
    for _ in 0..inputs.len() {
        let (tag, outcome) = completions
            .recv_timeout(std::time::Duration::from_secs(30))
            .expect("completion within timeout");
        let slot = &mut out[tag as usize];
        assert!(slot.is_none(), "duplicate completion for tag {tag}");
        *slot = Some(outcome);
    }
    out.into_iter().map(|o| o.expect("all tags seen")).collect()
}

#[test]
fn batch_tagged_results_match_reference() {
    let model: Arc<dyn Model> = Arc::new(LstmLm::small());
    let inputs = inputs(24);
    let rt = Runtime::start(Arc::clone(&model), opts(true, 2));
    for (input, outcome) in inputs.iter().zip(serve_batch(&rt, &inputs)) {
        let ServedOutcome::Completed(res) = outcome else {
            panic!("expected completion for {input:?}");
        };
        let expect = reference::execute_graph(&model.unfold(input), model.registry());
        assert_eq!(res.result, expect, "diverged from reference for {input:?}");
    }
    rt.shutdown();
}

#[test]
fn batched_and_per_message_dispatch_are_bit_identical() {
    let model: Arc<dyn Model> = Arc::new(LstmLm::small());
    let inputs = inputs(20);
    let batched_rt = Runtime::start(Arc::clone(&model), opts(true, 2));
    let baseline_rt = Runtime::start(Arc::clone(&model), opts(false, 2));
    let batched = serve_batch(&batched_rt, &inputs);
    let baseline = serve_batch(&baseline_rt, &inputs);
    for ((input, b), p) in inputs.iter().zip(batched).zip(baseline) {
        let (ServedOutcome::Completed(b), ServedOutcome::Completed(p)) = (b, p) else {
            panic!("expected completions for {input:?}");
        };
        assert_eq!(b.result, p.result, "dispatch modes diverged for {input:?}");
    }
    batched_rt.shutdown();
    baseline_rt.shutdown();
}

#[test]
fn sharded_batch_tagged_serves_across_shards() {
    let model: Arc<dyn Model> = Arc::new(LstmLm::small());
    let inputs = inputs(32);
    let rt = ShardedRuntime::start(
        Arc::clone(&model),
        RuntimeOptions::new()
            .workers(2)
            .scheduler(SchedulerConfig::new().serve(ServeConfig::new().shards(2))),
    );
    let (queue, completions) = completion_queue();
    let reqs = inputs
        .iter()
        .enumerate()
        .map(|(i, input)| (i as u64, input.into()));
    let results = rt.submit_batch_tagged(reqs, &queue);
    assert!(results.iter().all(Result::is_ok), "{results:?}");
    let mut seen = vec![false; inputs.len()];
    for _ in 0..inputs.len() {
        let (tag, outcome) = completions
            .recv_timeout(std::time::Duration::from_secs(30))
            .expect("completion within timeout");
        assert!(!seen[tag as usize], "duplicate tag {tag}");
        seen[tag as usize] = true;
        let ServedOutcome::Completed(res) = outcome else {
            panic!("expected completion for tag {tag}");
        };
        let expect =
            reference::execute_graph(&model.unfold(&inputs[tag as usize]), model.registry());
        assert_eq!(res.result, expect, "shard diverged for tag {tag}");
    }
    assert!(seen.iter().all(|&s| s));
    rt.shutdown();
}

#[test]
fn manager_amortization_metrics_record_batching() {
    let model: Arc<dyn Model> = Arc::new(LstmLm::small());
    let telemetry = Telemetry::new();
    let rt = Runtime::start(
        Arc::clone(&model),
        RuntimeOptions::new().workers(2).scheduler(
            SchedulerConfig::new().serve(
                ServeConfig::new()
                    .batched_dispatch(true)
                    .telemetry(Arc::clone(&telemetry)),
            ),
        ),
    );
    let inputs = inputs(32);
    let outcomes = serve_batch(&rt, &inputs);
    assert!(outcomes
        .iter()
        .all(|o| matches!(o, ServedOutcome::Completed(_))));
    rt.shutdown();

    let snap = telemetry.snapshot();
    let wakeups = snap.counter_sum("bm_manager_wakeups_total");
    assert!(wakeups > 0, "manager never counted a wakeup");
    let Some(MetricValue::Histogram(drained)) = snap.get_with("bm_manager_drained_per_wakeup", &[])
    else {
        panic!("drained-per-wakeup histogram missing");
    };
    assert_eq!(drained.count, wakeups, "one drain sample per wakeup");
    // The 32-request arrival batch is one message, so its wakeup must
    // have drained at least the whole batch in one go.
    assert!(
        drained.max >= inputs.len() as u64,
        "coalesced arrivals not drained in one wakeup: max {}",
        drained.max
    );
    let Some(MetricValue::Histogram(submit)) = snap.get_with("bm_manager_submit_batch", &[]) else {
        panic!("submit-batch histogram missing");
    };
    assert!(submit.count > 0, "no worker submissions recorded");
    assert!(
        submit.max > 1,
        "batched dispatch never put two tasks in one worker message"
    );
}
