//! Scheduler state-machine tests: Algorithm 1 behaviour, dependency
//! tracking, pinning, continuous join/leave, and `<eos>` cancellation.

use std::sync::Arc;

use bm_core::{CancelOutcome, CellularEngine, RequestId, SchedulerConfig, Task, WorkerId};
use bm_model::{LstmLm, Model, RequestInput, Seq2Seq, TreeLstm, TreeShape};

fn engine_for(model: &dyn Model, max_tasks: usize) -> CellularEngine {
    CellularEngine::new(
        Arc::new(model.registry().clone()),
        SchedulerConfig::new().max_tasks_to_submit(max_tasks),
    )
}

/// Completes a task instantly with no emitted tokens.
fn complete(engine: &mut CellularEngine, task: &Task, now: u64) -> Vec<bm_core::CompletedRequest> {
    engine.on_task_started(task.id, now);
    let tokens = vec![None; task.entries.len()];
    engine.on_task_completed(task.id, &tokens, now)
}

#[test]
fn single_chain_request_executes_in_order() {
    let m = LstmLm::small();
    let mut eng = engine_for(&m, 5);
    let req = RequestId(0);
    eng.on_arrival(req, m.unfold(&RequestInput::Sequence(vec![1, 2, 3])), 0);

    // A chain exposes one ready node; MaxTasksToSubmit lets the scheduler
    // submit successive steps as successive tasks.
    let tasks = eng.dispatch(WorkerId(0));
    assert_eq!(tasks.len(), 3, "3-step chain yields 3 consecutive tasks");
    for (i, t) in tasks.iter().enumerate() {
        assert_eq!(t.batch_size(), 1);
        assert_eq!(t.entries[0].node.index(), i);
    }
    // Nothing more to dispatch.
    assert!(eng.dispatch(WorkerId(0)).is_empty());

    let mut done = Vec::new();
    for (i, t) in tasks.iter().enumerate() {
        done.extend(complete(&mut eng, t, 10 * (i as u64 + 1)));
    }
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].id, req);
    assert_eq!(done[0].executed_nodes, 3);
    assert_eq!(done[0].completion_us, 30);
    assert_eq!(eng.active_requests(), 0);
}

#[test]
fn max_tasks_to_submit_caps_consecutive_tasks() {
    let m = LstmLm::small();
    let mut eng = engine_for(&m, 2);
    eng.on_arrival(
        RequestId(0),
        m.unfold(&RequestInput::Sequence(vec![1; 10])),
        0,
    );
    let tasks = eng.dispatch(WorkerId(0));
    assert_eq!(tasks.len(), 2, "capped at MaxTasksToSubmit");
}

#[test]
fn new_request_joins_ongoing_execution() {
    // The core claim of cellular batching (§3.2): a newly arrived
    // request's early cells batch together with existing requests' later
    // cells.
    let m = LstmLm::small();
    let mut eng = engine_for(&m, 1);
    eng.on_arrival(
        RequestId(0),
        m.unfold(&RequestInput::Sequence(vec![1; 5])),
        0,
    );

    // Execute two steps of request 0 alone.
    for _ in 0..2 {
        let tasks = eng.dispatch(WorkerId(0));
        assert_eq!(tasks[0].batch_size(), 1);
        complete(&mut eng, &tasks[0], 1);
    }

    // Request 1 arrives mid-flight.
    eng.on_arrival(
        RequestId(1),
        m.unfold(&RequestInput::Sequence(vec![2; 4])),
        2,
    );

    // The next task batches step 3 of req0 with step 1 of req1.
    let tasks = eng.dispatch(WorkerId(0));
    assert_eq!(tasks[0].batch_size(), 2);
    let reqs: Vec<u64> = tasks[0].entries.iter().map(|e| e.request.0).collect();
    assert!(reqs.contains(&0) && reqs.contains(&1));
}

#[test]
fn short_request_leaves_before_long_one() {
    // §3.2: "a short request is not penalized with increased latency
    // when it's batched with longer requests".
    let m = LstmLm::small();
    let mut eng = engine_for(&m, 1);
    eng.on_arrival(
        RequestId(0),
        m.unfold(&RequestInput::Sequence(vec![1; 2])),
        0,
    );
    eng.on_arrival(
        RequestId(1),
        m.unfold(&RequestInput::Sequence(vec![1; 6])),
        0,
    );

    let mut completions = Vec::new();
    let mut now = 0;
    loop {
        let tasks = eng.dispatch(WorkerId(0));
        if tasks.is_empty() {
            break;
        }
        for t in tasks {
            now += 1;
            completions.extend(complete(&mut eng, &t, now));
        }
    }
    assert_eq!(completions.len(), 2);
    assert_eq!(completions[0].id, RequestId(0), "short request first");
    assert!(completions[0].completion_us < completions[1].completion_us);
}

#[test]
fn batch_respects_max_batch_size() {
    let cfg = bm_model::LstmLmConfig {
        max_batch: 4,
        ..Default::default()
    };
    let m = LstmLm::new(cfg);
    let mut eng = engine_for(&m, 1);
    for i in 0..10 {
        eng.on_arrival(
            RequestId(i),
            m.unfold(&RequestInput::Sequence(vec![1; 3])),
            0,
        );
    }
    let tasks = eng.dispatch(WorkerId(0));
    assert_eq!(tasks[0].batch_size(), 4, "batch capped at max_batch");
}

#[test]
fn tree_leaves_batch_then_internals_release() {
    let m = TreeLstm::small();
    let mut eng = engine_for(&m, 1);
    let shape = TreeShape::complete(4, 100); // 4 leaves, 3 internal.
    eng.on_arrival(RequestId(0), m.unfold(&RequestInput::Tree(shape)), 0);

    // First dispatch: all 4 leaves in one task (leaf subgraphs all
    // released on arrival).
    let t1 = eng.dispatch(WorkerId(0));
    assert_eq!(t1[0].cell_type, m.leaf_type());
    assert_eq!(t1[0].batch_size(), 4);

    // Internal subgraph is not released until all leaves complete.
    assert!(eng.dispatch(WorkerId(0)).is_empty());
    complete(&mut eng, &t1[0], 1);

    // Level 1: two internal nodes batch together.
    let t2 = eng.dispatch(WorkerId(0));
    assert_eq!(t2[0].cell_type, m.internal_type());
    assert_eq!(t2[0].batch_size(), 2);
    complete(&mut eng, &t2[0], 2);

    // Root.
    let t3 = eng.dispatch(WorkerId(0));
    assert_eq!(t3[0].batch_size(), 1);
    let done = complete(&mut eng, &t3[0], 3);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].executed_nodes, 7);
}

#[test]
fn tree_levels_pipeline_within_one_dispatch() {
    // With MaxTasksToSubmit > 1, successive tree levels are submitted as
    // successive tasks in one Schedule call (§4.4: "the scheduler puts
    // the cells of x at successive levels of the tree in successive
    // batched tasks").
    let m = TreeLstm::small();
    let mut eng = engine_for(&m, 5);
    eng.on_arrival(
        RequestId(0),
        m.unfold(&RequestInput::Tree(TreeShape::complete(8, 100))),
        0,
    );
    let leaves = eng.dispatch(WorkerId(0));
    assert_eq!(leaves.len(), 1, "all 8 leaves fit one task");
    complete(&mut eng, &leaves[0], 1);

    let internals = eng.dispatch(WorkerId(0));
    // 3 levels: 4, 2, 1 — pipelined as three consecutive tasks.
    assert_eq!(internals.len(), 3);
    assert_eq!(internals[0].batch_size(), 4);
    assert_eq!(internals[1].batch_size(), 2);
    assert_eq!(internals[2].batch_size(), 1);
}

#[test]
fn seq2seq_decoder_has_priority_once_ready() {
    let m = Seq2Seq::small();
    let mut eng = engine_for(&m, 1);
    // Request 0: encoder done, decoder ready. Request 1: encoder ready.
    eng.on_arrival(
        RequestId(0),
        m.unfold(&RequestInput::Pair {
            src: vec![2],
            decode_len: 2,
        }),
        0,
    );
    let enc = eng.dispatch(WorkerId(0));
    assert_eq!(enc[0].cell_type, m.encoder_type());
    complete(&mut eng, &enc[0], 1);

    eng.on_arrival(
        RequestId(1),
        m.unfold(&RequestInput::Pair {
            src: vec![3],
            decode_len: 1,
        }),
        1,
    );

    // Both a decoder node (req0) and an encoder node (req1) are ready;
    // neither type has a full batch or running tasks, so priority picks
    // the decoder (§4.3).
    let next = eng.dispatch(WorkerId(0));
    assert_eq!(next[0].cell_type, m.decoder_type());
}

#[test]
fn subgraph_pinning_excludes_other_workers() {
    let m = LstmLm::small();
    let mut eng = engine_for(&m, 1);
    eng.on_arrival(
        RequestId(0),
        m.unfold(&RequestInput::Sequence(vec![1; 4])),
        0,
    );

    let t0 = eng.dispatch(WorkerId(0));
    assert_eq!(t0.len(), 1);
    // The subgraph is pinned to worker 0 while the task is in flight;
    // worker 1 gets nothing even though a successor node is ready.
    assert!(eng.has_ready_work());
    let t1 = eng.dispatch(WorkerId(1));
    assert!(t1.is_empty(), "pinned subgraph not schedulable elsewhere");

    // Worker 0 can continue the chain.
    let t0b = eng.dispatch(WorkerId(0));
    assert_eq!(t0b.len(), 1);

    // After all in-flight tasks complete, the subgraph unpins and
    // worker 1 may pick it up.
    complete(&mut eng, &t0[0], 1);
    complete(&mut eng, &t0b[0], 2);
    let t1b = eng.dispatch(WorkerId(1));
    assert_eq!(t1b.len(), 1);
    assert_eq!(t1b[0].transfer_rows, 1, "migration pays a transfer per row");
}

#[test]
fn gather_free_when_composition_repeats() {
    let m = LstmLm::small();
    let mut eng = engine_for(&m, 3);
    eng.on_arrival(
        RequestId(0),
        m.unfold(&RequestInput::Sequence(vec![1; 5])),
        0,
    );
    eng.on_arrival(
        RequestId(1),
        m.unfold(&RequestInput::Sequence(vec![1; 5])),
        0,
    );

    let tasks = eng.dispatch(WorkerId(0));
    assert_eq!(tasks.len(), 3);
    // First task gathers (fresh composition); subsequent identical
    // compositions do not (§4.3 locality).
    assert_eq!(tasks[0].gather_rows, 2);
    assert_eq!(tasks[1].gather_rows, 0);
    assert_eq!(tasks[2].gather_rows, 0);
}

#[test]
fn composition_change_triggers_gather() {
    let m = LstmLm::small();
    let mut eng = engine_for(&m, 1);
    eng.on_arrival(
        RequestId(0),
        m.unfold(&RequestInput::Sequence(vec![1; 2])),
        0,
    );
    let t0 = eng.dispatch(WorkerId(0));
    complete(&mut eng, &t0[0], 1);

    // New request joins: composition changes, gather required.
    eng.on_arrival(
        RequestId(1),
        m.unfold(&RequestInput::Sequence(vec![1; 2])),
        1,
    );
    let t1 = eng.dispatch(WorkerId(0));
    assert_eq!(t1[0].batch_size(), 2);
    assert_eq!(t1[0].gather_rows, 2);
}

#[test]
fn min_batch_gate_stops_tiny_followup_tasks() {
    // min_batch = 4: the head task may be any size, but follow-up tasks
    // below the minimum are not formed (Algorithm 1 line 16).
    let cfg = bm_model::LstmLmConfig {
        min_batch: 4,
        ..Default::default()
    };
    let m = LstmLm::new(cfg);
    let mut eng = engine_for(&m, 5);
    eng.on_arrival(
        RequestId(0),
        m.unfold(&RequestInput::Sequence(vec![1; 9])),
        0,
    );
    let tasks = eng.dispatch(WorkerId(0));
    assert_eq!(tasks.len(), 1, "follow-ups below min_batch suppressed");
    assert_eq!(tasks[0].batch_size(), 1, "head task exempt from the gate");
}

#[test]
fn eos_token_cancels_remaining_decode_steps() {
    use bm_model::Seq2SeqConfig;
    let m = Seq2Seq::new(Seq2SeqConfig {
        eos_terminates: true,
        ..Default::default()
    });
    let mut eng = engine_for(&m, 1);
    eng.on_arrival(
        RequestId(0),
        m.unfold(&RequestInput::Pair {
            src: vec![2],
            decode_len: 6,
        }),
        0,
    );
    // Encoder.
    let enc = eng.dispatch(WorkerId(0));
    complete(&mut eng, &enc[0], 1);
    // First decode step emits <eos> (token 1).
    let dec = eng.dispatch(WorkerId(0));
    assert_eq!(dec[0].cell_type, m.decoder_type());
    eng.on_task_started(dec[0].id, 2);
    let done = eng.on_task_completed(dec[0].id, &[Some(bm_model::EOS_TOKEN)], 2);
    // All remaining decode steps cancel; the request completes.
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].executed_nodes, 2);
    assert_eq!(done[0].total_nodes, 7);
    assert!(!eng.has_ready_work());
    assert_eq!(eng.active_requests(), 0);
}

#[test]
fn ready_type_with_full_batch_beats_priority() {
    // Algorithm 1 rule (a): a type whose ready nodes reach the max batch
    // size is preferred even over a higher-priority type below it.
    let m = TreeLstm::new(bm_model::TreeLstmConfig {
        max_batch: 4,
        ..Default::default()
    });
    let mut eng = engine_for(&m, 1);
    // Request A: a 4-leaf complete tree -> after leaves, 2+1 internals.
    eng.on_arrival(
        RequestId(0),
        m.unfold(&RequestInput::Tree(TreeShape::complete(4, 100))),
        0,
    );
    let leaves = eng.dispatch(WorkerId(0));
    complete(&mut eng, &leaves[0], 1);
    // Two internal nodes (priority 1) are now ready but below max batch.
    // Add 4 fresh single-leaf requests: leaf type (priority 0) reaches
    // its full batch.
    for i in 1..=4 {
        eng.on_arrival(
            RequestId(i),
            m.unfold(&RequestInput::Tree(TreeShape::leaf(1))),
            1,
        );
    }
    let next = eng.dispatch(WorkerId(0));
    assert_eq!(
        next[0].cell_type,
        m.leaf_type(),
        "full-batch type wins over priority"
    );
    assert_eq!(next[0].batch_size(), 4);
}

#[test]
fn starved_type_without_running_tasks_preferred() {
    // Algorithm 1 rule (b): among types below a full batch, one with no
    // running tasks is preferred over one that already has tasks
    // in flight — even if the latter has higher priority.
    let m = Seq2Seq::small();
    let mut eng = engine_for(&m, 1);
    // Req 0 reaches decoding.
    eng.on_arrival(
        RequestId(0),
        m.unfold(&RequestInput::Pair {
            src: vec![2],
            decode_len: 3,
        }),
        0,
    );
    let enc = eng.dispatch(WorkerId(0));
    complete(&mut eng, &enc[0], 1);
    let dec = eng.dispatch(WorkerId(0));
    assert_eq!(dec[0].cell_type, m.decoder_type());
    // Decoder task in flight. A fresh encoder-only request arrives.
    eng.on_arrival(
        RequestId(1),
        m.unfold(&RequestInput::Pair {
            src: vec![3, 4],
            decode_len: 1,
        }),
        2,
    );
    // Worker 1 asks for work: decoder has a running task, encoder has
    // none -> encoder chosen despite lower priority.
    let next = eng.dispatch(WorkerId(1));
    assert_eq!(next[0].cell_type, m.encoder_type());
}

#[test]
fn many_requests_all_complete() {
    // Soak: drive a mixed set of requests to completion and check
    // accounting invariants.
    let m = LstmLm::small();
    let mut eng = engine_for(&m, 5);
    let mut expected = 0;
    for i in 0..50u64 {
        let len = 1 + (i % 7) as usize;
        eng.on_arrival(
            RequestId(i),
            m.unfold(&RequestInput::Sequence(vec![1; len])),
            i,
        );
        expected += 1;
    }
    let mut now = 100;
    let mut completed = 0;
    let mut guard = 0;
    while eng.active_requests() > 0 {
        guard += 1;
        assert!(guard < 10_000, "scheduler wedged");
        let tasks = eng.dispatch(WorkerId(0));
        assert!(!tasks.is_empty(), "work remains but nothing dispatched");
        for t in tasks {
            now += 1;
            completed += complete(&mut eng, &t, now).len();
        }
    }
    assert_eq!(completed, expected);
    assert!(!eng.has_ready_work());
    assert_eq!(eng.inflight_tasks(), 0);
}

#[test]
fn scheduler_stats_account_for_everything() {
    let m = LstmLm::small();
    let mut eng = engine_for(&m, 5);
    eng.on_arrival(
        RequestId(0),
        m.unfold(&RequestInput::Sequence(vec![1; 4])),
        0,
    );
    eng.on_arrival(
        RequestId(1),
        m.unfold(&RequestInput::Sequence(vec![1; 4])),
        0,
    );
    let mut now = 0;
    while eng.active_requests() > 0 {
        for t in eng.dispatch(WorkerId(0)) {
            now += 1;
            complete(&mut eng, &t, now);
        }
    }
    let s = eng.stats();
    assert_eq!(s.nodes_submitted, 8);
    assert_eq!(s.requests_completed, 2);
    assert_eq!(s.tasks_submitted, 4, "4 batch-2 steps");
    assert!((s.mean_batch_size() - 2.0).abs() < 1e-9);
    // Only the first task of a repeated composition gathers.
    assert_eq!(s.gathered_rows, 2);
    assert!(s.gather_fraction() < 0.5);
    assert_eq!(s.transfers, 0);
    assert_eq!(s.cancelled_nodes, 0);
}

#[test]
fn cancel_before_start_retires_immediately() {
    let m = LstmLm::small();
    let mut eng = engine_for(&m, 5);
    eng.on_arrival(
        RequestId(0),
        m.unfold(&RequestInput::Sequence(vec![1; 4])),
        0,
    );
    let out = eng.cancel_request(RequestId(0), 7);
    let CancelOutcome::Finished(c) = out else {
        panic!("expected immediate retire, got {out:?}");
    };
    assert!(c.cancelled);
    assert_eq!(c.executed_nodes, 0);
    assert_eq!(c.arrival_us, 0);
    assert_eq!(c.start_us, 7, "never started: cancellation stamps start");
    assert_eq!(c.completion_us, 7);
    assert_eq!(eng.active_requests(), 0);
    assert!(!eng.has_ready_work());
    // Cancelling a retired request is a no-op.
    assert_eq!(eng.cancel_request(RequestId(0), 8), CancelOutcome::Unknown);
    let s = eng.stats();
    assert_eq!(s.requests_cancelled, 1);
    assert_eq!(s.requests_completed, 0);
    assert_eq!(s.cancelled_nodes, 4);
}

#[test]
fn cancel_in_flight_drains_then_resolves_once() {
    let m = LstmLm::small();
    let mut eng = engine_for(&m, 1);
    eng.on_arrival(
        RequestId(0),
        m.unfold(&RequestInput::Sequence(vec![1; 4])),
        0,
    );
    let t = eng.dispatch(WorkerId(0));
    assert_eq!(t.len(), 1);
    // Step 0 in flight, step 1 ready: cancelling drops the ready tail
    // but leaves the in-flight task alone.
    assert!(eng.has_ready_work());
    assert_eq!(eng.cancel_request(RequestId(0), 5), CancelOutcome::Draining);
    assert!(!eng.has_ready_work(), "unsubmitted nodes leave the queues");
    assert!(eng.dispatch(WorkerId(0)).is_empty());
    // Draining the in-flight task produces the single cancelled record.
    let done = complete(&mut eng, &t[0], 9);
    assert_eq!(done.len(), 1);
    assert!(done[0].cancelled);
    assert_eq!(done[0].executed_nodes, 1);
    assert_eq!(done[0].completion_us, 9);
    assert_eq!(eng.active_requests(), 0);
    assert_eq!(eng.inflight_tasks(), 0);
}

#[test]
fn cancel_retires_subgraphs_that_never_queued() {
    // Seq2Seq: the decoder subgraph still has unmet external deps when
    // the encoder is cancelled mid-flight; retirement must clean it up
    // even though it never entered a scheduling queue.
    let m = Seq2Seq::small();
    let mut eng = engine_for(&m, 1);
    eng.on_arrival(
        RequestId(0),
        m.unfold(&RequestInput::Pair {
            src: vec![2, 3],
            decode_len: 3,
        }),
        0,
    );
    let enc = eng.dispatch(WorkerId(0));
    assert_eq!(enc[0].cell_type, m.encoder_type());
    assert_eq!(eng.cancel_request(RequestId(0), 4), CancelOutcome::Draining);
    let done = complete(&mut eng, &enc[0], 8);
    assert_eq!(done.len(), 1);
    assert!(done[0].cancelled);
    assert_eq!(done[0].executed_nodes, 1);
    assert_eq!(eng.active_requests(), 0);
    assert!(!eng.has_ready_work());
}

#[test]
fn cancel_coexists_with_eos_termination() {
    use bm_model::Seq2SeqConfig;
    let m = Seq2Seq::new(Seq2SeqConfig {
        eos_terminates: true,
        ..Default::default()
    });
    let mut eng = engine_for(&m, 1);
    eng.on_arrival(
        RequestId(0),
        m.unfold(&RequestInput::Pair {
            src: vec![2],
            decode_len: 6,
        }),
        0,
    );
    let enc = eng.dispatch(WorkerId(0));
    complete(&mut eng, &enc[0], 1);
    let dec = eng.dispatch(WorkerId(0));
    // Cancel while the decode step that will emit <eos> is in flight:
    // the request cancel already dropped the downstream steps, so the
    // <eos> cancellation path finds nothing left and the request still
    // resolves exactly once.
    assert_eq!(eng.cancel_request(RequestId(0), 2), CancelOutcome::Draining);
    eng.on_task_started(dec[0].id, 3);
    let done = eng.on_task_completed(dec[0].id, &[Some(bm_model::EOS_TOKEN)], 3);
    assert_eq!(done.len(), 1);
    assert!(done[0].cancelled);
    assert_eq!(eng.active_requests(), 0);
    let s = eng.stats();
    assert_eq!(s.requests_cancelled, 1);
    assert_eq!(s.requests_completed, 0);
}

#[test]
fn completion_records_not_retained_by_default() {
    // Drivers consume `on_task_completed`'s return value directly; the
    // engine must not grow a second, never-drained copy of every record.
    let m = LstmLm::small();
    let mut eng = engine_for(&m, 5);
    for i in 0..20u64 {
        eng.on_arrival(
            RequestId(i),
            m.unfold(&RequestInput::Sequence(vec![1; 3])),
            i,
        );
    }
    let mut now = 0;
    let mut returned = 0;
    while eng.active_requests() > 0 {
        for t in eng.dispatch(WorkerId(0)) {
            now += 1;
            returned += complete(&mut eng, &t, now).len();
        }
    }
    assert_eq!(returned, 20);
    assert!(
        eng.drain_completions().is_empty(),
        "completion records leaked"
    );
}

#[test]
fn completion_records_retained_on_request() {
    let m = LstmLm::small();
    let mut eng = CellularEngine::new(
        Arc::new(m.registry().clone()),
        SchedulerConfig::new().retain_completions(true),
    );
    for i in 0..10u64 {
        eng.on_arrival(
            RequestId(i),
            m.unfold(&RequestInput::Sequence(vec![1; 2])),
            i,
        );
    }
    let mut now = 0;
    while eng.active_requests() > 0 {
        for t in eng.dispatch(WorkerId(0)) {
            now += 1;
            complete(&mut eng, &t, now);
        }
    }
    assert_eq!(eng.drain_completions().len(), 10);
    assert!(
        eng.drain_completions().is_empty(),
        "drain empties the buffer"
    );
}

#[test]
fn telemetry_reconciles_with_scheduler_stats() {
    // The metrics plane must agree exactly with the engine's own
    // cumulative stats, and the four-stage latency decomposition must
    // telescope to exactly the end-to-end latency of every completed
    // request.
    use bm_telemetry::{MetricValue, Telemetry};

    let m = LstmLm::small();
    let mut eng = engine_for(&m, 3);
    let tel = Telemetry::new();
    eng.set_telemetry(&tel);

    let n = 8u64;
    for r in 0..n {
        eng.on_arrival(
            RequestId(r),
            m.unfold(&RequestInput::Sequence(vec![1; 2 + (r as usize % 5)])),
            r * 5,
        );
    }
    let mut now = 40;
    let mut done = Vec::new();
    while eng.active_requests() > 0 {
        for t in eng.dispatch(WorkerId(0)) {
            now += 7;
            done.extend(complete(&mut eng, &t, now));
        }
    }
    assert_eq!(done.len(), n as usize);

    let stats = eng.stats();
    let snap = tel.snapshot();
    assert_eq!(snap.counter_sum("bm_requests_admitted_total"), n);
    assert_eq!(
        snap.counter_sum("bm_requests_completed_total"),
        stats.requests_completed
    );
    assert_eq!(
        snap.counter_sum("bm_tasks_submitted_total"),
        stats.tasks_submitted
    );
    assert_eq!(
        snap.counter_sum("bm_gather_rows_total"),
        stats.gathered_rows
    );
    assert_eq!(snap.counter_sum("bm_transfer_rows_total"), stats.transfers);
    assert_eq!(
        snap.counter_sum("bm_batch_reason_total"),
        stats.tasks_submitted,
        "every task is attributed to exactly one Algorithm 1 branch"
    );

    // Batch-size histogram: exact count is the task count, exact sum is
    // the node-invocation count.
    let (mut bcount, mut bsum) = (0u64, 0u64);
    let (mut stage_sum, mut stage_count) = (0u64, 0u64);
    for e in &snap.entries {
        if let MetricValue::Histogram(h) = &e.value {
            match e.name.as_str() {
                "bm_batch_size" => {
                    bcount += h.count;
                    bsum += h.sum;
                }
                "bm_stage_us" => {
                    stage_count += h.count;
                    stage_sum += h.sum;
                }
                _ => {}
            }
        }
    }
    assert_eq!(bcount, stats.tasks_submitted);
    assert_eq!(bsum, stats.nodes_submitted);

    // Stage decomposition telescopes exactly: four samples per
    // completed request summing to completion - arrival.
    let e2e: u64 = done.iter().map(|c| c.completion_us - c.arrival_us).sum();
    assert_eq!(stage_count, 4 * stats.requests_completed);
    assert_eq!(stage_sum, e2e);

    // A drained engine's gauges read zero.
    for (name, want) in [
        ("bm_active_requests", 0i64),
        ("bm_inflight_tasks", 0),
        ("bm_ready_nodes", 0),
    ] {
        match snap.get_with(name, &[]) {
            Some(MetricValue::Gauge(g)) => assert_eq!(*g, want, "{name}"),
            other => panic!("missing gauge {name}: {other:?}"),
        }
    }
}

#[test]
fn detached_telemetry_records_nothing() {
    let m = LstmLm::small();
    let mut eng = engine_for(&m, 3);
    eng.set_telemetry(&bm_telemetry::Telemetry::disabled());
    eng.on_arrival(
        RequestId(0),
        m.unfold(&RequestInput::Sequence(vec![1; 3])),
        0,
    );
    for t in eng.dispatch(WorkerId(0)) {
        complete(&mut eng, &t, 10);
    }
    // The disabled registry hands out no handles, so nothing registers.
    assert!(bm_telemetry::Telemetry::disabled()
        .snapshot()
        .entries
        .is_empty());
    assert_eq!(eng.stats().requests_completed, 1);
}
