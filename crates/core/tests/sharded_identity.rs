//! Sharding must be invisible to results: a request served by an
//! N-shard [`ShardedRuntime`] returns outputs bit-identical to the
//! single-shard [`Runtime`], across shard counts × batch-formation
//! policies × all three model families. Placement and rebalancing may
//! move *where* a request runs, never *what* it computes.

use std::sync::Arc;

use bm_core::{
    PolicyKind, Request, Runtime, RuntimeOptions, SchedulerConfig, ServeConfig, ServedOutcome,
    ShardedRuntime,
};
use bm_model::{LstmLm, Model, RequestInput, Seq2Seq, TreeLstm, TreeShape};
use proptest::collection::vec;
use proptest::prelude::*;

/// Vocabulary bound shared by the three `small()` models' inputs.
const VOCAB: u32 = 900;

fn opts(shards: usize, policy: Option<PolicyKind>) -> RuntimeOptions {
    let mut serve = ServeConfig::new().shards(shards);
    if let Some(p) = policy {
        serve = serve.policy(p);
    }
    RuntimeOptions::new()
        .workers(2)
        .scheduler(SchedulerConfig::new().serve(serve))
}

/// Serves every input on `rt`-like runtimes and returns the full
/// per-node outputs (states and tokens) in submission order.
fn outputs_of(
    submit: impl Fn(Request) -> bm_core::ResponseHandle,
    inputs: &[RequestInput],
) -> Vec<Vec<Option<bm_cell::CellOutput>>> {
    let handles: Vec<_> = inputs.iter().map(|i| submit(Request::from(i))).collect();
    handles
        .into_iter()
        .map(|h| match h.wait() {
            ServedOutcome::Completed(res) => res.result.outputs,
            other => panic!("request did not complete: {other:?}"),
        })
        .collect()
}

fn check_identity(
    model: Arc<dyn Model>,
    inputs: &[RequestInput],
    shards: usize,
    policy: Option<PolicyKind>,
) {
    let single = Runtime::start(Arc::clone(&model), opts(1, policy));
    let want = outputs_of(|r| single.submit_request(r).expect("single submit"), inputs);
    single.shutdown();

    let sharded = ShardedRuntime::start(model, opts(shards, policy));
    assert_eq!(sharded.num_shards(), shards);
    let got = outputs_of(
        |r| sharded.submit_request(r).expect("sharded submit"),
        inputs,
    );
    sharded.shutdown();

    // PartialEq on CellOutput compares every f32 exactly: any
    // accumulation-order difference between the paths would fail here.
    assert_eq!(
        want, got,
        "sharded outputs diverged ({shards} shards, {policy:?})"
    );
}

fn tree_strategy() -> impl Strategy<Value = TreeShape> {
    (0u32..VOCAB).prop_map(TreeShape::Leaf).prop_recursive(
        4,  // depth
        24, // total nodes
        2,  // branches
        |inner| (inner.clone(), inner).prop_map(|(l, r)| TreeShape::internal(l, r)),
    )
}

fn policy_strategy() -> impl Strategy<Value = Option<PolicyKind>> {
    prop_oneof![
        Just(None),
        Just(Some(PolicyKind::PaperDefault)),
        Just(Some(PolicyKind::lazy_slack())),
        Just(Some(PolicyKind::DeadlineEdf)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn lstm_outputs_identical_across_shards(
        seqs in vec(vec(1u32..VOCAB, 1..12), 4..16),
        shards in 2usize..5,
        policy in policy_strategy(),
    ) {
        let inputs: Vec<RequestInput> =
            seqs.into_iter().map(RequestInput::Sequence).collect();
        check_identity(Arc::new(LstmLm::small()), &inputs, shards, policy);
    }

    #[test]
    fn seq2seq_outputs_identical_across_shards(
        // Seq2Seq::small has a 500-token vocabulary; 2.. reserves the
        // <go>/<eos> ids.
        pairs in vec((vec(2u32..490, 1..10), 1usize..8), 4..12),
        shards in 2usize..5,
        policy in policy_strategy(),
    ) {
        let inputs: Vec<RequestInput> = pairs
            .into_iter()
            .map(|(src, decode_len)| RequestInput::Pair { src, decode_len })
            .collect();
        check_identity(Arc::new(Seq2Seq::small()), &inputs, shards, policy);
    }

    #[test]
    fn treelstm_outputs_identical_across_shards(
        trees in vec(tree_strategy(), 4..12),
        shards in 2usize..5,
        policy in policy_strategy(),
    ) {
        let inputs: Vec<RequestInput> =
            trees.into_iter().map(RequestInput::Tree).collect();
        check_identity(Arc::new(TreeLstm::small()), &inputs, shards, policy);
    }

    #[test]
    fn mixed_type_traffic_identical_with_affinity_placement(
        seqs in vec(vec(1u32..VOCAB, 1..10), 2..6),
        shards in 2usize..4,
    ) {
        // Mixed Sequence traffic through affinity + spill placement on
        // an LstmLm-only runtime: every request lands *somewhere* and
        // still computes the same bits.
        let inputs: Vec<RequestInput> =
            seqs.into_iter().map(RequestInput::Sequence).collect();
        check_identity(Arc::new(LstmLm::small()), &inputs, shards, None);
    }
}
