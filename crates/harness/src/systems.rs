//! Server construction for the systems under comparison.

use std::sync::Arc;

use bm_baseline::{DynGraphConfig, DynGraphServer, IdealServer, PaddingConfig, PaddingServer};
use bm_core::SchedulerConfig;
use bm_device::{CostProfile, GpuCostModel};
use bm_model::{Model, RequestInput};
use bm_sim::{CellularServer, Server};

/// The serving systems compared in the paper's evaluation.
#[derive(Debug, Clone)]
pub enum SystemKind {
    /// BatchMaker (cellular batching).
    BatchMaker,
    /// Padding + bucketing à la TensorFlow (slightly higher per-graph
    /// host overhead than MXNet in our model).
    TensorFlow {
        /// Bucket width in tokens.
        bucket_width: usize,
    },
    /// Padding + bucketing à la MXNet.
    Mxnet {
        /// Bucket width in tokens.
        bucket_width: usize,
    },
    /// TensorFlow Fold (dynamic graph merging, heavy construction,
    /// overlapped).
    Fold,
    /// DyNet (dynamic graph merging, cheap construction, per-operator
    /// batching).
    Dynet,
    /// The Figure 15 ideal static-graph executor for one fixed input.
    Ideal {
        /// The single input shape the static graph supports.
        expected: RequestInput,
    },
}

impl SystemKind {
    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::BatchMaker => "BatchMaker",
            SystemKind::TensorFlow { .. } => "TensorFlow",
            SystemKind::Mxnet { .. } => "MXNet",
            SystemKind::Fold => "TF Fold",
            SystemKind::Dynet => "DyNet",
            SystemKind::Ideal { .. } => "Ideal",
        }
    }
}

/// Builds fresh server instances for sweep points.
pub struct ServerFactory {
    /// The model served (small weights; pricing is paper-scale).
    pub model: Arc<dyn Model>,
    /// Per-type FLOP profile (normally
    /// `CostProfile::paper_scale(registry, 1024, 30_000)`).
    pub profile: CostProfile,
    /// The device timing model.
    pub cost: GpuCostModel,
    /// Longest sequence the padding baselines must support.
    pub max_len: usize,
    /// Padding baselines' maximum batch size.
    pub pad_max_batch: usize,
    /// Dynamic-graph baselines' maximum batch (input requests).
    pub dyn_max_batch: usize,
    /// Optional batch-accumulation timeout for the padding baselines
    /// (`None` = idle-start, the paper's best configuration; the
    /// ablation experiment sweeps this).
    pub accumulation_timeout_us: Option<u64>,
    /// Scheduler tunables for the BatchMaker server (the ablation
    /// experiment sweeps `max_tasks_to_submit`).
    pub scheduler: SchedulerConfig,
}

impl ServerFactory {
    /// A factory with paper-scale pricing and V100 timing.
    pub fn paper(model: Arc<dyn Model>) -> Self {
        let profile = CostProfile::paper_scale(model.registry(), 1024, 30_000);
        ServerFactory {
            model,
            profile,
            cost: GpuCostModel::v100(),
            max_len: 330,
            pad_max_batch: 512,
            dyn_max_batch: 64,
            accumulation_timeout_us: None,
            scheduler: SchedulerConfig::default(),
        }
    }

    /// Instantiates a server of the given kind.
    ///
    /// # Panics
    ///
    /// Panics if a padding baseline is requested for a model without
    /// chain structure (tree models cannot be padded, §2.3).
    pub fn build(&self, kind: &SystemKind) -> Box<dyn Server> {
        match kind {
            SystemKind::BatchMaker => Box::new(CellularServer::new(
                Arc::clone(&self.model),
                self.scheduler.clone(),
                self.cost,
                self.profile.clone(),
            )),
            SystemKind::TensorFlow { bucket_width } => {
                let mut cost = self.cost;
                // TensorFlow's session/runtime overhead per launched
                // graph is a bit higher than MXNet's in the paper's
                // low-load latency plots.
                cost.sched_overhead_us += 25.0;
                Box::new(PaddingServer::new(
                    self.padding_config(*bucket_width),
                    cost,
                    self.profile.clone(),
                ))
            }
            SystemKind::Mxnet { bucket_width } => Box::new(PaddingServer::new(
                self.padding_config(*bucket_width),
                self.cost,
                self.profile.clone(),
            )),
            SystemKind::Fold => Box::new(DynGraphServer::new(
                Arc::clone(&self.model),
                DynGraphConfig::fold(self.dyn_max_batch),
                self.cost,
                self.profile.clone(),
            )),
            SystemKind::Dynet => Box::new(DynGraphServer::new(
                Arc::clone(&self.model),
                DynGraphConfig::dynet(self.dyn_max_batch),
                self.cost,
                self.profile.clone(),
            )),
            SystemKind::Ideal { expected } => Box::new(IdealServer::new(
                Arc::clone(&self.model),
                expected.clone(),
                self.dyn_max_batch,
                self.cost,
                self.profile.clone(),
            )),
        }
    }

    fn padding_config(&self, bucket_width: usize) -> PaddingConfig {
        use bm_baseline::PadKind;
        let reg = self.model.registry();
        let kind = if let (Some(enc), Some(dec)) = (reg.by_name("encoder"), reg.by_name("decoder"))
        {
            PadKind::Seq2Seq {
                encoder: enc.id,
                decoder: dec.id,
            }
        } else if let Some(lstm) = reg.by_name("lstm") {
            PadKind::Lstm { cell: lstm.id }
        } else {
            panic!("padding baseline requires a chain model (lstm or seq2seq)")
        };
        PaddingConfig {
            bucket_width,
            max_len: self.max_len,
            max_batch: self.pad_max_batch,
            kind,
            accumulation_timeout_us: self.accumulation_timeout_us,
        }
    }
}
