//! Result persistence: markdown + CSV under `results/`.

use std::path::{Path, PathBuf};

use bm_metrics::Table;

/// Writes a figure's tables to `results/<name>.md` and one CSV per
/// table, and echoes the markdown to stdout.
///
/// Returns the markdown path.
///
/// # Panics
///
/// Panics on I/O errors (the harness is a CLI; failing loudly is
/// correct).
pub fn write_results(results_dir: &Path, name: &str, tables: &[Table]) -> PathBuf {
    std::fs::create_dir_all(results_dir).expect("create results dir");
    let mut md = String::new();
    for (i, t) in tables.iter().enumerate() {
        md.push_str(&t.to_markdown());
        md.push('\n');
        let csv_path = results_dir.join(format!("{name}_{i}.csv"));
        std::fs::write(&csv_path, t.to_csv()).expect("write csv");
    }
    let md_path = results_dir.join(format!("{name}.md"));
    std::fs::write(&md_path, &md).expect("write markdown");
    println!("{md}");
    md_path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_md_and_csv() {
        let dir = std::env::temp_dir().join("bm_harness_output_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = Table::new("T", &["a"]);
        t.push_row(vec!["1".into()]);
        let md = write_results(&dir, "demo", &[t]);
        assert!(md.exists());
        assert!(dir.join("demo_0.csv").exists());
        let content = std::fs::read_to_string(md).unwrap();
        assert!(content.contains("### T"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
