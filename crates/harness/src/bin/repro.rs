//! The reproduction CLI: regenerates every figure of the paper.
//!
//! ```text
//! repro <experiment>... [--quick|--smoke] [--out DIR] [--policy NAME]
//! repro all [--quick]
//! ```
//!
//! Experiments: fig3 fig5 fig7a fig7b fig8 fig9 fig10 fig11 fig13 fig14
//! fig15 headline ablation sla policies trace bench stats serve.
//! Results land
//! in `results/` as markdown + CSV and are echoed to stdout; `trace`
//! additionally writes Chrome trace JSON (Perfetto-loadable) and
//! per-request timelines, `bench` writes machine-readable
//! `BENCH_kernels.json` kernel timings for benchmark regression checks,
//! `stats` exercises the live telemetry plane (scraper, head-sampled
//! tracing, stage-latency reconciliation) and writes
//! `BENCH_telemetry.json` plus a Prometheus exposition, and `policies`
//! compares the batch-formation policies (paper/lazy/edf) across the
//! SLA load sweep, writing `BENCH_policies.json`. `repro sla --policy
//! lazy` runs the SLA sweep under one alternative policy (results land
//! under `sla_<policy>` so the default `sla` outputs stay untouched),
//! and `serve` drives the full socket path — wire protocol, TCP front
//! door, sharded scheduler — writing `BENCH_serve.json` with the 1-vs-N
//! shard throughput comparison and a client-observed SLA sweep.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use bm_core::PolicyKind;
use bm_harness::experiments::{
    ablation, bench, fig10, fig11, fig13, fig14, fig15, fig3, fig5, fig7, fig8, fig9, headline,
    serve, sla, stats, trace, Scale,
};
use bm_harness::write_results;
use bm_metrics::Table;

const EXPERIMENTS: &[&str] = &[
    "fig3", "fig5", "fig7a", "fig7b", "fig8", "fig9", "fig10", "fig11", "fig13", "fig14", "fig15",
    "headline", "ablation", "sla", "policies", "trace", "bench", "stats", "serve",
];

fn run_one(
    name: &str,
    scale: Scale,
    out_dir: &Path,
    policy: Option<PolicyKind>,
) -> Option<Vec<Table>> {
    let tables = match name {
        "fig3" => fig3::run(scale),
        "fig5" => fig5::run(scale),
        "fig7a" => fig7::run_a(scale),
        "fig7b" => fig7::run_b(scale),
        "fig8" => fig8::run(scale),
        "fig9" => fig9::run(scale),
        "fig10" => fig10::run(scale),
        "fig11" => fig11::run(scale),
        "fig13" => fig13::run(scale),
        "fig14" => fig14::run(scale),
        "fig15" => fig15::run(scale),
        "headline" => headline::run(scale),
        "ablation" => ablation::run(scale),
        "sla" => match policy {
            Some(kind) => sla::run_with_policy(scale, kind),
            None => sla::run(scale),
        },
        "policies" => sla::run_policies(scale, out_dir),
        "trace" => trace::run(scale, out_dir),
        "bench" => bench::run(scale, out_dir),
        "stats" => stats::run(scale, out_dir),
        "serve" => serve::run(scale, out_dir),
        _ => return None,
    };
    Some(tables)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut out_dir = PathBuf::from("results");
    let mut policy: Option<PolicyKind> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--quick" | "--smoke" => scale = Scale::Quick,
            "--out" => match iter.next() {
                Some(d) => out_dir = PathBuf::from(d),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--policy" => match iter.next().as_deref().and_then(PolicyKind::parse) {
                Some(k) => policy = Some(k),
                None => {
                    eprintln!("--policy requires one of: paper lazy edf");
                    return ExitCode::FAILURE;
                }
            },
            "all" => selected.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            other => selected.push(other.to_string()),
        }
    }
    if selected.is_empty() {
        eprintln!("usage: repro <experiment>... [--quick|--smoke] [--out DIR] [--policy NAME]");
        eprintln!("experiments: {} all", EXPERIMENTS.join(" "));
        return ExitCode::FAILURE;
    }
    selected.dedup();
    for name in &selected {
        eprintln!("== running {name} ({scale:?}) ==");
        let start = std::time::Instant::now();
        match run_one(name, scale, &out_dir, policy) {
            Some(tables) => {
                // A policy-variant sla run lands under its own name so
                // the default sla outputs stay byte-stable.
                let out_name = match policy {
                    Some(k) if name == "sla" => format!("sla_{}", k.label()),
                    _ => name.clone(),
                };
                write_results(&out_dir, &out_name, &tables);
                eprintln!("== {out_name} done in {:.1?} ==\n", start.elapsed());
            }
            None => {
                eprintln!(
                    "unknown experiment {name}; known: {}",
                    EXPERIMENTS.join(" ")
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
