//! Overload robustness: goodput and deadline attainment under a fixed
//! SLA as offered load sweeps past capacity.
//!
//! Not a paper figure — the paper's open-loop sweeps simply report
//! saturation ("the system cannot sustain this rate"). This experiment
//! asks the operational follow-up: with a latency SLA and overload
//! controls (per-request deadlines that cancel doomed requests, an
//! admission cap on in-system requests), how do goodput and the
//! fraction of requests served within the SLA degrade as offered load
//! grows past the knee? A robust server sheds the excess and keeps
//! serving admitted requests near capacity, instead of letting queues
//! grow without bound and every request miss its deadline.

use std::sync::Arc;

use bm_metrics::{SlaSummary, Table};
use bm_model::{LstmLm, LstmLmConfig};
use bm_sim::{simulate, SimOptions};
use bm_workload::{Dataset, LengthDistribution};

use crate::experiments::serving::arrivals;
use crate::experiments::Scale;
use crate::systems::{ServerFactory, SystemKind};

/// Offered-load points, req/s. The top points exceed single-GPU
/// capacity for this workload (~27k req/s: compute-bound at
/// ~1.5 µs·row per step over ~24 steps).
pub const RATES: &[f64] = &[2_000.0, 10_000.0, 18_000.0, 26_000.0, 34_000.0, 42_000.0];

/// The latency SLA: a request not completed this many µs after arrival
/// is cancelled and counted against attainment.
pub const SLA_US: u64 = 100_000;

/// Admission cap on requests concurrently in the system.
pub const MAX_ACTIVE: usize = 4_096;

/// One offered-load point of the SLA sweep.
#[derive(Debug)]
pub struct SlaPoint {
    /// Offered load, req/s.
    pub offered_rps: f64,
    /// Drop accounting and goodput.
    pub summary: SlaSummary,
    /// p90 latency of in-SLA completions, ms (None if none completed).
    pub p90_ms: Option<f64>,
    /// Whether the run hit the simulation time cap.
    pub saturated: bool,
}

/// Runs the sweep: BatchMaker with a 100 ms SLA on the WMT'15 workload
/// clipped at 50 tokens, one simulated GPU.
pub fn run_points(scale: Scale) -> Vec<SlaPoint> {
    let model = Arc::new(LstmLm::new(LstmLmConfig {
        max_batch: 512,
        ..Default::default()
    }));
    let factory = ServerFactory::paper(model);
    let ds = Dataset::lstm(20_000, LengthDistribution::wmt15_clipped(50), 900, 0x51a);
    let mut points = Vec::new();
    for &rate in &scale.rates(RATES) {
        let n = ((rate * scale.duration_s()) as usize).clamp(500, scale.max_requests());
        let arr = arrivals(&ds, rate, n, 0x5eed ^ rate as u64);
        let span = arr.last().expect("nonempty").0;
        let mut server = factory.build(&SystemKind::BatchMaker);
        let out = simulate(
            server.as_mut(),
            &arr,
            SimOptions::new()
                .workers(1)
                .max_sim_us(span.saturating_mul(4).max(5_000_000))
                .deadline_us(SLA_US)
                .max_active(MAX_ACTIVE),
        );
        let summary = SlaSummary::new(
            n,
            out.completions.len(),
            out.expired,
            out.rejected,
            out.end_us,
        );
        let p90_ms = (!out.recorder.is_empty()).then(|| out.recorder.summary().p90_ms);
        points.push(SlaPoint {
            offered_rps: rate,
            summary,
            p90_ms,
            saturated: out.saturated,
        });
    }
    points
}

/// Runs the experiment, returning the result table.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "SLA sweep: goodput & attainment under overload (LSTM, WMT clip-50, 100 ms SLA, 1 GPU)",
        &[
            "offered_rps",
            "completed",
            "expired",
            "rejected",
            "goodput_rps",
            "attainment",
            "p90_ms",
        ],
    );
    for p in run_points(scale) {
        t.push_row(vec![
            format!("{:.0}", p.offered_rps),
            p.summary.completed.to_string(),
            p.summary.expired.to_string(),
            p.summary.rejected.to_string(),
            format!("{:.0}", p.summary.goodput_rps),
            format!("{:.3}", p.summary.attainment()),
            p.p90_ms.map_or_else(|| "-".into(), |v| format!("{v:.1}")),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_degrades_gracefully_under_sla() {
        let points = run_points(Scale::Quick);
        let low = points.first().expect("points");
        let high = points.last().expect("points");
        assert!(high.offered_rps > low.offered_rps);

        // Below the knee everything meets the SLA.
        assert!(
            low.summary.attainment() > 0.9,
            "low-load attainment {}",
            low.summary.attainment()
        );

        // Past the knee the system sheds load explicitly...
        assert!(
            high.summary.expired + high.summary.rejected > 0,
            "overload must shed requests"
        );
        assert!(high.summary.attainment() < low.summary.attainment());

        // ...while continuing to serve admitted requests within the SLA
        // instead of collapsing: goodput at the worst overload point
        // stays within a factor of the best point's, and every recorded
        // completion met the deadline by construction.
        let best = points
            .iter()
            .map(|p| p.summary.goodput_rps)
            .fold(0.0, f64::max);
        assert!(
            high.summary.goodput_rps > 0.4 * best,
            "goodput collapsed under overload: {} vs best {best}",
            high.summary.goodput_rps
        );
        for p in &points {
            if let Some(p90) = p.p90_ms {
                assert!(
                    p90 <= SLA_US as f64 / 1_000.0 + 1e-9,
                    "completed requests must meet the SLA (p90 {p90} ms)"
                );
            }
            assert!(!p.saturated, "deadline shedding keeps the run live");
        }
    }
}
