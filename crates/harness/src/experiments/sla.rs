//! Overload robustness: goodput and deadline attainment under a fixed
//! SLA as offered load sweeps past capacity.
//!
//! Not a paper figure — the paper's open-loop sweeps simply report
//! saturation ("the system cannot sustain this rate"). This experiment
//! asks the operational follow-up: with a latency SLA and overload
//! controls (per-request deadlines that cancel doomed requests, an
//! admission cap on in-system requests), how do goodput and the
//! fraction of requests served within the SLA degrade as offered load
//! grows past the knee? A robust server sheds the excess and keeps
//! serving admitted requests near capacity, instead of letting queues
//! grow without bound and every request miss its deadline.

use std::path::Path;
use std::sync::Arc;

use bm_core::PolicyKind;
use bm_metrics::{SlaSummary, Table};
use bm_model::{LstmLm, LstmLmConfig};
use bm_sim::{simulate, SimOptions};
use bm_workload::{Dataset, LengthDistribution};

use crate::experiments::serving::arrivals;
use crate::experiments::Scale;
use crate::systems::{ServerFactory, SystemKind};

/// Offered-load points, req/s. The top points exceed single-GPU
/// capacity for this workload (~27k req/s: compute-bound at
/// ~1.5 µs·row per step over ~24 steps).
pub const RATES: &[f64] = &[2_000.0, 10_000.0, 18_000.0, 26_000.0, 34_000.0, 42_000.0];

/// The latency SLA: a request not completed this many µs after arrival
/// is cancelled and counted against attainment.
pub const SLA_US: u64 = 100_000;

/// Admission cap on requests concurrently in the system.
pub const MAX_ACTIVE: usize = 4_096;

/// Dispatch pipeline depth for the per-policy comparison. The default
/// `sla` sweep keeps the simulator's depth of 1, where dispatch only
/// ever happens on an idle device and every pick is saturation- or
/// starvation-qualified — the three policies are provably identical
/// there. Under pipelined dispatch (the threaded runtime's behavior)
/// batches form while the device is busy, so eager formation submits
/// undersized priority-tier batches; that is the regime lazy/EDF
/// policies exist for, and the comparison runs there.
pub const POLICY_PIPELINE_DEPTH: usize = 2;

/// One offered-load point of the SLA sweep.
#[derive(Debug)]
pub struct SlaPoint {
    /// Offered load, req/s.
    pub offered_rps: f64,
    /// Drop accounting and goodput.
    pub summary: SlaSummary,
    /// p90 latency of in-SLA completions, ms (None if none completed).
    pub p90_ms: Option<f64>,
    /// Whether the run hit the simulation time cap.
    pub saturated: bool,
}

/// The policies compared by the `repro policies` sweep, in table and
/// JSON order: paper-default first (the baseline the others are judged
/// against).
pub fn policy_lineup() -> Vec<PolicyKind> {
    vec![
        PolicyKind::PaperDefault,
        PolicyKind::lazy_slack(),
        PolicyKind::DeadlineEdf,
    ]
}

/// Runs the sweep: BatchMaker with a 100 ms SLA on the WMT'15 workload
/// clipped at 50 tokens, one simulated GPU, under the default
/// (paper-exact) batch-formation policy.
pub fn run_points(scale: Scale) -> Vec<SlaPoint> {
    run_points_with(scale, None)
}

/// [`run_points`] under an explicit batch-formation policy; `None`
/// leaves the server's default (paper-exact) scheduler untouched, which
/// keeps the default `repro sla` output byte-identical. Policy runs use
/// [`POLICY_PIPELINE_DEPTH`] so formation decisions actually differ
/// (see its docs); the policy-less run keeps depth 1.
pub fn run_points_with(scale: Scale, policy: Option<PolicyKind>) -> Vec<SlaPoint> {
    let model = Arc::new(LstmLm::new(LstmLmConfig {
        max_batch: 512,
        ..Default::default()
    }));
    let factory = ServerFactory::paper(model);
    let ds = Dataset::lstm(20_000, LengthDistribution::wmt15_clipped(50), 900, 0x51a);
    let mut points = Vec::new();
    for &rate in &scale.rates(RATES) {
        let n = ((rate * scale.duration_s()) as usize).clamp(500, scale.max_requests());
        let arr = arrivals(&ds, rate, n, 0x5eed ^ rate as u64);
        let span = arr.last().expect("nonempty").0;
        let mut server = factory.build(&SystemKind::BatchMaker);
        let mut opts = SimOptions::new()
            .workers(1)
            .max_sim_us(span.saturating_mul(4).max(5_000_000))
            .deadline_us(SLA_US)
            .max_active(MAX_ACTIVE);
        if let Some(kind) = policy {
            opts = opts.policy(kind).pipeline_depth(POLICY_PIPELINE_DEPTH);
        }
        let out = simulate(server.as_mut(), &arr, opts);
        let summary = SlaSummary::new(
            n,
            out.completions.len(),
            out.expired,
            out.rejected,
            out.end_us,
        );
        let p90_ms = (!out.recorder.is_empty()).then(|| out.recorder.summary().p90_ms);
        points.push(SlaPoint {
            offered_rps: rate,
            summary,
            p90_ms,
            saturated: out.saturated,
        });
    }
    points
}

/// Runs the experiment, returning the result table.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "SLA sweep: goodput & attainment under overload (LSTM, WMT clip-50, 100 ms SLA, 1 GPU)",
        &[
            "offered_rps",
            "completed",
            "expired",
            "rejected",
            "goodput_rps",
            "attainment",
            "p90_ms",
        ],
    );
    for p in run_points(scale) {
        t.push_row(vec![
            format!("{:.0}", p.offered_rps),
            p.summary.completed.to_string(),
            p.summary.expired.to_string(),
            p.summary.rejected.to_string(),
            format!("{:.0}", p.summary.goodput_rps),
            format!("{:.3}", p.summary.attainment()),
            p.p90_ms.map_or_else(|| "-".into(), |v| format!("{v:.1}")),
        ]);
    }
    vec![t]
}

/// Runs the sweep under one explicit policy, returning a result table
/// labelled with the policy (backs `repro sla --policy NAME`).
pub fn run_with_policy(scale: Scale, kind: PolicyKind) -> Vec<Table> {
    let mut t = Table::new(
        format!(
            "SLA sweep under policy '{}' (LSTM, WMT clip-50, 100 ms SLA, 1 GPU, pipelined dispatch x2)",
            kind.label()
        ),
        &[
            "offered_rps",
            "completed",
            "expired",
            "rejected",
            "goodput_rps",
            "attainment",
            "p90_ms",
        ],
    );
    for p in run_points_with(scale, Some(kind)) {
        t.push_row(vec![
            format!("{:.0}", p.offered_rps),
            p.summary.completed.to_string(),
            p.summary.expired.to_string(),
            p.summary.rejected.to_string(),
            format!("{:.0}", p.summary.goodput_rps),
            format!("{:.3}", p.summary.attainment()),
            p.p90_ms.map_or_else(|| "-".into(), |v| format!("{v:.1}")),
        ]);
    }
    vec![t]
}

/// Runs the per-policy comparison sweep (paper-default vs lazy-slack vs
/// deadline-EDF, same workload and load points) and writes the
/// machine-readable `BENCH_policies.json` (schema `bm-policies/v1`)
/// into `out_dir`.
///
/// # Panics
///
/// Panics if `out_dir` is unwritable.
pub fn run_policies(scale: Scale, out_dir: &Path) -> Vec<Table> {
    let mut t = Table::new(
        "Policy comparison: goodput & SLA attainment per load point \
         (LSTM, WMT clip-50, 100 ms SLA, 1 GPU, pipelined dispatch x2)",
        &[
            "policy",
            "offered_rps",
            "completed",
            "expired",
            "rejected",
            "goodput_rps",
            "attainment",
            "p90_ms",
        ],
    );
    let mut results: Vec<(PolicyKind, Vec<SlaPoint>)> = Vec::new();
    for kind in policy_lineup() {
        let points = run_points_with(scale, Some(kind));
        for p in &points {
            t.push_row(vec![
                kind.label().to_string(),
                format!("{:.0}", p.offered_rps),
                p.summary.completed.to_string(),
                p.summary.expired.to_string(),
                p.summary.rejected.to_string(),
                format!("{:.0}", p.summary.goodput_rps),
                format!("{:.3}", p.summary.attainment()),
                p.p90_ms.map_or_else(|| "-".into(), |v| format!("{v:.1}")),
            ]);
        }
        results.push((kind, points));
    }
    std::fs::create_dir_all(out_dir).expect("create results dir");
    let path = out_dir.join("BENCH_policies.json");
    std::fs::write(&path, policies_json(&results)).expect("write BENCH_policies.json");
    eprintln!("wrote {}", path.display());
    vec![t]
}

/// Renders the machine-readable comparison file (schema
/// `bm-policies/v1`).
fn policies_json(results: &[(PolicyKind, Vec<SlaPoint>)]) -> String {
    let mut s = String::from("{\n  \"schema\": \"bm-policies/v1\",\n");
    s.push_str(&format!(
        "  \"sla_us\": {SLA_US},\n  \"pipeline_depth\": {POLICY_PIPELINE_DEPTH},\n  \"policies\": [\n"
    ));
    for (i, (kind, points)) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"policy\": \"{}\", \"points\": [\n",
            kind.label()
        ));
        for (j, p) in points.iter().enumerate() {
            s.push_str(&format!(
                "      {{\"offered_rps\": {:.0}, \"completed\": {}, \"expired\": {}, \
                 \"rejected\": {}, \"goodput_rps\": {:.1}, \"attainment\": {:.4}, \
                 \"p90_ms\": {}}}{}\n",
                p.offered_rps,
                p.summary.completed,
                p.summary.expired,
                p.summary.rejected,
                p.summary.goodput_rps,
                p.summary.attainment(),
                p.p90_ms
                    .map_or_else(|| "null".into(), |v| format!("{v:.2}")),
                if j + 1 < points.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_degrades_gracefully_under_sla() {
        let points = run_points(Scale::Quick);
        let low = points.first().expect("points");
        let high = points.last().expect("points");
        assert!(high.offered_rps > low.offered_rps);

        // Below the knee everything meets the SLA.
        assert!(
            low.summary.attainment() > 0.9,
            "low-load attainment {}",
            low.summary.attainment()
        );

        // Past the knee the system sheds load explicitly...
        assert!(
            high.summary.expired + high.summary.rejected > 0,
            "overload must shed requests"
        );
        assert!(high.summary.attainment() < low.summary.attainment());

        // ...while continuing to serve admitted requests within the SLA
        // instead of collapsing: goodput at the worst overload point
        // stays within a factor of the best point's, and every recorded
        // completion met the deadline by construction.
        let best = points
            .iter()
            .map(|p| p.summary.goodput_rps)
            .fold(0.0, f64::max);
        assert!(
            high.summary.goodput_rps > 0.4 * best,
            "goodput collapsed under overload: {} vs best {best}",
            high.summary.goodput_rps
        );
        for p in &points {
            if let Some(p90) = p.p90_ms {
                assert!(
                    p90 <= SLA_US as f64 / 1_000.0 + 1e-9,
                    "completed requests must meet the SLA (p90 {p90} ms)"
                );
            }
            assert!(!p.saturated, "deadline shedding keeps the run live");
        }
    }
}
