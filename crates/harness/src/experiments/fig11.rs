//! Figure 11: the impact of sequence-length variance.
//!
//! Three datasets: fixed length 20, WMT clipped at 50, WMT clipped at
//! 100. The paper's finding: higher variance hurts the padding systems
//! (more buckets to wait behind, smaller effective batches) while
//! BatchMaker's low-load latency is unaffected; on *fixed-length*
//! inputs the padding systems reach slightly higher peak throughput
//! than BatchMaker (which pays scheduling/gather overhead — §7.3).

use std::sync::Arc;

use bm_metrics::Table;
use bm_model::{LstmLm, LstmLmConfig};
use bm_workload::{Dataset, LengthDistribution};

use crate::experiments::serving::{sweep, SweepPoint};
use crate::experiments::Scale;
use crate::systems::{ServerFactory, SystemKind};

/// Offered-load points, req/s.
pub const RATES: &[f64] = &[
    1_000.0, 4_000.0, 8_000.0, 12_000.0, 16_000.0, 20_000.0, 24_000.0, 28_000.0,
];

/// The three datasets of the figure.
pub fn datasets() -> Vec<(&'static str, Dataset)> {
    vec![
        (
            // The fixed length sits on a width-10 bucket boundary so the
            // padding baselines genuinely pad nothing (§7.3's
            // "zero-padding theoretical maximum"); an operator serving a
            // known fixed-length workload would configure buckets the
            // same way.
            "fixed-20",
            Dataset::lstm(20_000, LengthDistribution::Fixed(20), 900, 0x77a1),
        ),
        (
            "wmt-clip-50",
            Dataset::lstm(20_000, LengthDistribution::wmt15_clipped(50), 900, 0x77a1),
        ),
        (
            "wmt-clip-100",
            Dataset::lstm(20_000, LengthDistribution::wmt15_clipped(100), 900, 0x77a1),
        ),
    ]
}

/// Runs the sweeps, returning per-dataset points and the table.
pub fn run_points(scale: Scale) -> (Vec<(&'static str, Vec<SweepPoint>)>, Table) {
    let model = Arc::new(LstmLm::new(LstmLmConfig {
        max_batch: 512,
        ..Default::default()
    }));
    let factory = ServerFactory::paper(model);
    let systems = [
        SystemKind::BatchMaker,
        SystemKind::TensorFlow { bucket_width: 10 },
        SystemKind::Mxnet { bucket_width: 10 },
    ];
    let mut t = Table::new(
        "Figure 11: sequence-length variance (LSTM, 1 GPU, bmax=512)",
        &[
            "dataset",
            "system",
            "offered_rps",
            "throughput_rps",
            "p50_ms",
            "p90_ms",
            "p99_ms",
        ],
    );
    let mut all = Vec::new();
    for (name, ds) in datasets() {
        let points = sweep(&factory, &systems, &ds, &scale.rates(RATES), 1, scale);
        for p in &points {
            let base = crate::experiments::serving::sweep_table("x", std::slice::from_ref(p));
            let row: Vec<String> = base
                .to_csv()
                .lines()
                .nth(1)
                .expect("row")
                .split(',')
                .map(String::from)
                .collect();
            let mut full = vec![name.to_string()];
            full.extend(row);
            t.push_row(full);
        }
        all.push((name, points));
    }
    (all, t)
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    vec![run_points(scale).1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::serving::{p90_at, peak_throughput};

    #[test]
    fn variance_hurts_padding_not_batchmaker() {
        let (all, _) = run_points(Scale::Quick);
        let by = |name: &str| &all.iter().find(|(n, _)| *n == name).unwrap().1;

        // On fixed-length inputs the padding baselines may edge out
        // BatchMaker in peak throughput (paper §7.3).
        let fixed = by("fixed-20");
        let mx_fixed = peak_throughput(fixed, "MXNet");
        assert!(mx_fixed > 0.0);

        // With variance (clip-100), BatchMaker clearly wins both peak
        // and latency.
        let var = by("wmt-clip-100");
        let bm_peak = peak_throughput(var, "BatchMaker");
        let mx_peak = peak_throughput(var, "MXNet");
        assert!(bm_peak > mx_peak, "bm {bm_peak} vs mx {mx_peak}");
        let rate = RATES[0];
        let bm_p90 = p90_at(var, "BatchMaker", rate).unwrap();
        let mx_p90 = p90_at(var, "MXNet", rate).unwrap();
        assert!(bm_p90 < mx_p90);

        // MXNet's peak degrades as variance grows.
        let mx_50 = peak_throughput(by("wmt-clip-50"), "MXNet");
        assert!(
            mx_fixed >= mx_50 && mx_50 >= mx_peak,
            "mxnet peaks {mx_fixed} -> {mx_50} -> {mx_peak} should degrade"
        );
    }
}
