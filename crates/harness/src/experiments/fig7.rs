//! Figure 7: LSTM serving on the WMT-15-like dataset, one GPU.
//!
//! (a) maximum batch size 512; (b) maximum batch size 64. BatchMaker vs
//! TensorFlow and MXNet (padding, bucket width 10).

use std::sync::Arc;

use bm_metrics::Table;
use bm_model::{LstmLm, LstmLmConfig};
use bm_workload::{Dataset, LengthDistribution};

use crate::experiments::serving::{sweep, sweep_table, SweepPoint};
use crate::experiments::Scale;
use crate::systems::{ServerFactory, SystemKind};

/// Offered-load points, req/s.
pub const RATES: &[f64] = &[
    1_000.0, 2_000.0, 4_000.0, 6_000.0, 8_000.0, 10_000.0, 12_000.0, 14_000.0, 16_000.0, 18_000.0,
    20_000.0, 22_000.0,
];

/// The WMT-15-like LSTM dataset (100k sentences in the paper; the pool
/// size only affects sampling diversity).
pub fn dataset() -> Dataset {
    Dataset::lstm(20_000, LengthDistribution::wmt15(), 900, 0x77a1)
}

/// The three compared systems.
pub fn systems() -> Vec<SystemKind> {
    vec![
        SystemKind::BatchMaker,
        SystemKind::TensorFlow { bucket_width: 10 },
        SystemKind::Mxnet { bucket_width: 10 },
    ]
}

/// Runs one sub-figure with the given maximum batch size.
pub fn run_sub(scale: Scale, max_batch: usize) -> (Vec<SweepPoint>, Table) {
    let model = Arc::new(LstmLm::new(LstmLmConfig {
        max_batch,
        ..Default::default()
    }));
    let mut factory = ServerFactory::paper(model);
    factory.pad_max_batch = max_batch;
    let ds = dataset();
    let points = sweep(&factory, &systems(), &ds, &scale.rates(RATES), 1, scale);
    let table = sweep_table(
        &format!(
            "Figure 7{}: LSTM on WMT-15-like, 1 GPU, bmax={max_batch}",
            if max_batch == 512 { "a" } else { "b" }
        ),
        &points,
    );
    (points, table)
}

/// Runs Figure 7a (bmax = 512).
pub fn run_a(scale: Scale) -> Vec<Table> {
    vec![run_sub(scale, 512).1]
}

/// Runs Figure 7b (bmax = 64).
pub fn run_b(scale: Scale) -> Vec<Table> {
    vec![run_sub(scale, 64).1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::serving::{p90_at, peak_throughput};

    #[test]
    fn batchmaker_beats_padding_baselines() {
        let (points, _) = run_sub(Scale::Quick, 512);
        let bm_peak = peak_throughput(&points, "BatchMaker");
        let mx_peak = peak_throughput(&points, "MXNet");
        assert!(
            bm_peak > mx_peak,
            "BatchMaker peak {bm_peak} should beat MXNet {mx_peak}"
        );
        // At the lowest common load BatchMaker's p90 is lower.
        let rate = 1_000.0;
        let bm = p90_at(&points, "BatchMaker", rate).unwrap();
        let mx = p90_at(&points, "MXNet", rate).unwrap();
        assert!(bm < mx, "p90 at {rate}: BatchMaker {bm} vs MXNet {mx}");
    }
}
