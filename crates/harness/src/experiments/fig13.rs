//! Figure 13: Seq2Seq translation on 2 and 4 GPUs.
//!
//! BatchMaker-512,256 (encoder bmax 512, decoder bmax 256) and
//! BatchMaker-256,256 vs TensorFlow/MXNet padding with bmax 256 and
//! bucket width 10. The decoder's vocabulary projection makes decoding
//! ~75 % of the compute (§7.4).

use std::sync::Arc;

use bm_metrics::Table;
use bm_model::{Seq2Seq, Seq2SeqConfig};
use bm_workload::{Dataset, LengthDistribution};

use crate::experiments::serving::{sweep, SweepPoint};
use crate::experiments::Scale;
use crate::systems::{ServerFactory, SystemKind};

/// Offered-load points per GPU count, req/s.
pub fn rates(gpus: usize) -> Vec<f64> {
    let base: &[f64] = &[
        500.0, 1_000.0, 2_000.0, 3_000.0, 4_000.0, 5_000.0, 6_000.0, 7_000.0, 8_000.0, 9_000.0,
    ];
    base.iter().map(|r| r * (gpus as f64 / 2.0)).collect()
}

/// The Seq2Seq translation-pair dataset.
pub fn dataset() -> Dataset {
    Dataset::seq2seq(20_000, LengthDistribution::wmt15(), 450, 0x5e92)
}

fn factory(enc_max: usize, dec_max: usize) -> ServerFactory {
    let model = Arc::new(Seq2Seq::new(Seq2SeqConfig {
        encoder_max_batch: enc_max,
        decoder_max_batch: dec_max,
        ..Default::default()
    }));
    let mut f = ServerFactory::paper(model);
    // Graph batching requires one batch size for the whole graph; the
    // paper uses 256 (the decoder optimum) for the baselines.
    f.pad_max_batch = 256;
    f
}

/// Runs the sweeps for one GPU count.
pub fn run_points(scale: Scale, gpus: usize) -> (Vec<(String, Vec<SweepPoint>)>, Table) {
    let ds = dataset();
    let rates = scale.rates(&rates(gpus));
    let mut t = Table::new(
        format!("Figure 13: Seq2Seq on {gpus} GPUs"),
        &[
            "system",
            "offered_rps",
            "throughput_rps",
            "p50_ms",
            "p90_ms",
            "p99_ms",
        ],
    );
    let mut all = Vec::new();

    // BatchMaker in both batching configurations.
    for (label, enc_max) in [("BatchMaker-512,256", 512), ("BatchMaker-256,256", 256)] {
        let f = factory(enc_max, 256);
        let points = sweep(&f, &[SystemKind::BatchMaker], &ds, &rates, gpus, scale);
        for p in &points {
            let mut row = row_of(p);
            row[0] = label.to_string();
            t.push_row(row);
        }
        all.push((label.to_string(), points));
    }
    // Padding baselines.
    let f = factory(256, 256);
    for kind in [
        SystemKind::TensorFlow { bucket_width: 10 },
        SystemKind::Mxnet { bucket_width: 10 },
    ] {
        let points = sweep(&f, std::slice::from_ref(&kind), &ds, &rates, gpus, scale);
        for p in &points {
            t.push_row(row_of(p));
        }
        all.push((kind.label().to_string(), points));
    }
    (all, t)
}

fn row_of(p: &SweepPoint) -> Vec<String> {
    crate::experiments::serving::sweep_table("x", std::slice::from_ref(p))
        .to_csv()
        .lines()
        .nth(1)
        .expect("row")
        .split(',')
        .map(String::from)
        .collect()
}

/// Runs the experiment (both GPU counts).
pub fn run(scale: Scale) -> Vec<Table> {
    vec![run_points(scale, 2).1, run_points(scale, 4).1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::serving::{p90_at, peak_throughput};

    #[test]
    fn batchmaker_wins_seq2seq_on_two_gpus() {
        let (all, _) = run_points(Scale::Quick, 2);
        let by = |name: &str| &all.iter().find(|(n, _)| n == name).unwrap().1;
        let bm = peak_throughput(by("BatchMaker-512,256"), "BatchMaker");
        let mx = peak_throughput(by("MXNet"), "MXNet");
        assert!(bm > mx, "BatchMaker {bm} vs MXNet {mx}");
        let r = 1_000.0;
        let bm_p90 = p90_at(by("BatchMaker-512,256"), "BatchMaker", r).unwrap();
        let mx_p90 = p90_at(by("MXNet"), "MXNet", r).unwrap();
        assert!(bm_p90 < mx_p90, "p90 {bm_p90} vs {mx_p90}");
    }

    #[test]
    fn split_batch_config_helps_slightly() {
        // §7.4: different encoder/decoder bmax yields a small (3.5-6 %)
        // throughput gain. We assert the weaker, robust property: the
        // 512,256 configuration is at least as good.
        let (all, _) = run_points(Scale::Quick, 2);
        let by = |name: &str| &all.iter().find(|(n, _)| n == name).unwrap().1;
        let split = peak_throughput(by("BatchMaker-512,256"), "BatchMaker");
        let flat = peak_throughput(by("BatchMaker-256,256"), "BatchMaker");
        assert!(split >= flat * 0.95, "split {split} vs flat {flat}");
    }
}
