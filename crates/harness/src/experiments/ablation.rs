//! Ablations of the design choices §4.3/§7.1 call out (not figures in
//! the paper, but claims it makes in prose):
//!
//! 1. **MaxTasksToSubmit** — submitting several tasks per Schedule call
//!    keeps the device busy and amortizes completion notifications, but
//!    a large value delays new requests from joining ("allows new
//!    requests to join execution"). We sweep 1/2/5/10 and report p99
//!    queueing and throughput.
//! 2. **Decoder priority** — §4.3: "one can achieve better latency by
//!    preferentially executing cell types that occur later in the
//!    computation graph". We compare Seq2Seq with and without decoder
//!    priority.
//! 3. **Timeout-based batch accumulation** — §7.1: starting a non-full
//!    batch whenever the device is idle "achieves lower latency than
//!    any configuration of the timeout-based strategy". We sweep
//!    timeouts for the MXNet-style baseline at a moderate load.

use std::sync::Arc;

use bm_core::SchedulerConfig;
use bm_metrics::Table;
use bm_model::{LstmLm, LstmLmConfig, Seq2Seq, Seq2SeqConfig};
use bm_workload::{Dataset, LengthDistribution};

use crate::experiments::serving::run_point;
use crate::experiments::Scale;
use crate::systems::{ServerFactory, SystemKind};

/// Runs all three ablations.
pub fn run(scale: Scale) -> Vec<Table> {
    vec![
        max_tasks_ablation(scale),
        priority_ablation(scale),
        timeout_ablation(scale),
    ]
}

/// Ablation 1: `MaxTasksToSubmit` (LSTM, 8k req/s).
pub fn max_tasks_ablation(scale: Scale) -> Table {
    let ds = Dataset::lstm(10_000, LengthDistribution::wmt15(), 900, 0x77a1);
    let mut t = Table::new(
        "Ablation: MaxTasksToSubmit (LSTM @ 8k req/s, 1 GPU)",
        &[
            "max_tasks_to_submit",
            "throughput_rps",
            "queue_p99_ms",
            "p90_ms",
        ],
    );
    for &mt in &[1usize, 2, 5, 10] {
        let model = Arc::new(LstmLm::new(LstmLmConfig {
            max_batch: 512,
            ..Default::default()
        }));
        let mut factory = ServerFactory::paper(model);
        factory.scheduler = SchedulerConfig::new().max_tasks_to_submit(mt);
        let p = run_point(&factory, &SystemKind::BatchMaker, &ds, 8_000.0, 1, scale);
        let s = p.outcome.recorder.summary();
        let q99 = p.outcome.recorder.queueing_cdf().quantile(0.99);
        t.push_row(vec![
            mt.to_string(),
            format!("{:.0}", s.throughput_rps),
            format!("{q99:.2}"),
            format!("{:.1}", s.p90_ms),
        ]);
    }
    t
}

/// Ablation 2: decoder priority (Seq2Seq, 1 GPU, moderate load).
pub fn priority_ablation(scale: Scale) -> Table {
    let ds = Dataset::seq2seq(10_000, LengthDistribution::wmt15(), 450, 0x5e92);
    let mut t = Table::new(
        "Ablation: decoder vs encoder priority (Seq2Seq @ 1k req/s, 1 GPU)",
        &["decoder_priority", "throughput_rps", "p50_ms", "p90_ms"],
    );
    for &prio in &[true, false] {
        let model = Arc::new(Seq2Seq::new(Seq2SeqConfig {
            decoder_priority: prio,
            ..Default::default()
        }));
        let mut factory = ServerFactory::paper(model);
        factory.pad_max_batch = 256;
        let p = run_point(&factory, &SystemKind::BatchMaker, &ds, 1_000.0, 1, scale);
        let s = p.outcome.recorder.summary();
        t.push_row(vec![
            prio.to_string(),
            format!("{:.0}", s.throughput_rps),
            format!("{:.1}", s.p50_ms),
            format!("{:.1}", s.p90_ms),
        ]);
    }
    t
}

/// Ablation 3: timeout-based batch accumulation for the padding
/// baseline (LSTM, 1k req/s).
pub fn timeout_ablation(scale: Scale) -> Table {
    let ds = Dataset::lstm(10_000, LengthDistribution::wmt15(), 900, 0x77a1);
    let mut t = Table::new(
        "Ablation: batch-accumulation timeout (MXNet-style @ 300 req/s)",
        &["timeout", "throughput_rps", "p50_ms", "p90_ms"],
    );
    for timeout in [None, Some(2_000u64), Some(10_000), Some(50_000)] {
        let model = Arc::new(LstmLm::new(LstmLmConfig {
            max_batch: 512,
            ..Default::default()
        }));
        let mut factory = ServerFactory::paper(model);
        factory.accumulation_timeout_us = timeout;
        let p = run_point(
            &factory,
            &SystemKind::Mxnet { bucket_width: 10 },
            &ds,
            300.0,
            1,
            scale,
        );
        let label = timeout.map_or("idle-start".to_string(), |t| format!("{} ms", t / 1_000));
        if p.outcome.saturated {
            t.push_row(vec![label, "SATURATED".into(), "-".into(), "-".into()]);
            continue;
        }
        let s = p.outcome.recorder.summary();
        t.push_row(vec![
            label,
            format!("{:.0}", s.throughput_rps),
            format!("{:.1}", s.p50_ms),
            format!("{:.1}", s.p90_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(t: &Table, row: usize, c: usize) -> String {
        t.to_csv()
            .lines()
            .nth(row + 1)
            .unwrap()
            .split(',')
            .nth(c)
            .unwrap()
            .to_string()
    }

    #[test]
    fn small_max_tasks_minimizes_queueing() {
        let t = max_tasks_ablation(Scale::Quick);
        assert_eq!(t.row_count(), 4);
        // p99 queueing grows with MaxTasksToSubmit (a new request waits
        // behind more in-flight tasks).
        let q1: f64 = col(&t, 0, 2).parse().unwrap();
        let q10: f64 = col(&t, 3, 2).parse().unwrap();
        assert!(q10 > q1, "queueing q1={q1} q10={q10}");
    }

    #[test]
    fn decoder_priority_helps_latency() {
        let t = priority_ablation(Scale::Quick);
        let with: f64 = col(&t, 0, 3).parse().unwrap();
        let without: f64 = col(&t, 1, 3).parse().unwrap();
        // Later-cells-first (decoder priority) clearly beats the
        // inverted rule on p90 latency.
        assert!(
            with < without,
            "decoder-priority p90 {with} vs encoder-priority {without}"
        );
    }

    #[test]
    fn any_timeout_hurts_latency() {
        let t = timeout_ablation(Scale::Quick);
        let idle: f64 = col(&t, 0, 3).parse().unwrap();
        for row in 1..t.row_count() {
            let v = col(&t, row, 3);
            if v == "-" {
                continue; // Saturated timeout configuration: also worse.
            }
            let timeout_p90: f64 = v.parse().unwrap();
            assert!(
                idle <= timeout_p90 * 1.05,
                "idle-start p90 {idle} vs timeout p90 {timeout_p90}"
            );
        }
    }
}
