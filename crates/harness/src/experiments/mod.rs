//! One module per reproduced figure.

pub mod ablation;
pub mod bench;
pub mod fig10;
pub mod fig11;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig3;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod headline;
pub mod serve;
pub mod serving;
pub mod sla;
pub mod stats;
pub mod trace;

/// Experiment size: `Quick` for tests and benches, `Full` for the real
/// reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Few rates, short runs — seconds of wall time.
    Quick,
    /// The full sweeps reported in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Virtual seconds of arrivals per sweep point.
    pub fn duration_s(self) -> f64 {
        match self {
            Scale::Quick => 0.4,
            Scale::Full => 2.0,
        }
    }

    /// Thins a rate list for quick runs.
    pub fn rates(self, full: &[f64]) -> Vec<f64> {
        match self {
            Scale::Full => full.to_vec(),
            Scale::Quick => full
                .iter()
                .step_by(2.max(full.len() / 3))
                .copied()
                .collect(),
        }
    }

    /// Caps the request count of one sweep point.
    ///
    /// The cap must not truncate the arrival window below
    /// [`Scale::duration_s`] at the highest swept rate (24k req/s for
    /// the Quick-thinned Figure 11 sweep, 22k for the full Figure 7
    /// one): a truncated window turns a sustained-load capacity point
    /// into a short burst whose drain is dominated by once-per-bucket
    /// cold batches, which buries the bucket-width trade-off the
    /// Figure 8 assertions check.
    pub fn max_requests(self) -> usize {
        match self {
            Scale::Quick => 10_000,
            Scale::Full => 56_000,
        }
    }
}
