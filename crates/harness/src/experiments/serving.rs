//! Shared load-sweep machinery for the serving experiments.

use bm_metrics::Table;
use bm_model::RequestInput;
use bm_sim::{simulate, SimOptions, SimOutcome};
use bm_workload::{Dataset, PoissonArrivals};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::experiments::Scale;
use crate::systems::{ServerFactory, SystemKind};

/// Builds an open-loop arrival trace: requests sampled uniformly from
/// `ds`, Poisson arrivals at `rate` req/s.
pub fn arrivals(ds: &Dataset, rate: f64, n: usize, seed: u64) -> Vec<(u64, RequestInput)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa221);
    PoissonArrivals::new(rate, seed)
        .take(n)
        .map(|t| (t, ds.sample(&mut rng).clone()))
        .collect()
}

/// One sweep point's outcome.
#[derive(Debug)]
pub struct SweepPoint {
    /// System label.
    pub system: &'static str,
    /// Offered load, req/s.
    pub offered_rps: f64,
    /// The simulation outcome.
    pub outcome: SimOutcome,
}

impl SweepPoint {
    fn row(&self) -> Vec<String> {
        if self.outcome.saturated || self.outcome.recorder.is_empty() {
            return vec![
                self.system.to_string(),
                format!("{:.0}", self.offered_rps),
                "SATURATED".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ];
        }
        let s = self.outcome.recorder.summary();
        vec![
            self.system.to_string(),
            format!("{:.0}", self.offered_rps),
            format!("{:.0}", s.throughput_rps),
            format!("{:.1}", s.p50_ms),
            format!("{:.1}", s.p90_ms),
            format!("{:.1}", s.p99_ms),
        ]
    }
}

/// Runs a full latency-vs-throughput sweep.
pub fn sweep(
    factory: &ServerFactory,
    systems: &[SystemKind],
    ds: &Dataset,
    rates: &[f64],
    workers: usize,
    scale: Scale,
) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for kind in systems {
        for &rate in rates {
            points.push(run_point(factory, kind, ds, rate, workers, scale));
        }
    }
    points
}

/// Runs one (system, rate) point.
pub fn run_point(
    factory: &ServerFactory,
    kind: &SystemKind,
    ds: &Dataset,
    rate: f64,
    workers: usize,
    scale: Scale,
) -> SweepPoint {
    let n = ((rate * scale.duration_s()) as usize).clamp(500, scale.max_requests());
    let arr = arrivals(ds, rate, n, 0x5eed ^ rate as u64);
    let span = arr.last().expect("nonempty").0;
    let mut server = factory.build(kind);
    let outcome = simulate(
        server.as_mut(),
        &arr,
        SimOptions::new()
            .workers(workers)
            // Allow 4x the arrival span to drain; beyond that the system
            // is saturated at this rate.
            .max_sim_us(span.saturating_mul(4).max(5_000_000))
            .warmup(n / 10),
    );
    SweepPoint {
        system: kind.label(),
        offered_rps: rate,
        outcome,
    }
}

/// Formats sweep points as the standard figure table.
pub fn sweep_table(title: &str, points: &[SweepPoint]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "system",
            "offered_rps",
            "throughput_rps",
            "p50_ms",
            "p90_ms",
            "p99_ms",
        ],
    );
    for p in points {
        t.push_row(p.row());
    }
    t
}

/// The peak throughput a system achieved across the sweep.
///
/// Overloaded (saturated) points still contribute their *measured*
/// completion rate — the capacity estimate the paper's open-loop
/// methodology yields when the offered load exceeds what the system can
/// serve.
pub fn peak_throughput(points: &[SweepPoint], system: &str) -> f64 {
    points
        .iter()
        .filter(|p| p.system == system)
        .map(|p| p.outcome.throughput_rps().min(p.offered_rps))
        .fold(0.0, f64::max)
}

/// p90 latency of `system` at the sweep point closest to `rate`.
pub fn p90_at(points: &[SweepPoint], system: &str, rate: f64) -> Option<f64> {
    points
        .iter()
        .filter(|p| p.system == system && !p.outcome.saturated)
        .min_by(|a, b| {
            (a.offered_rps - rate)
                .abs()
                .partial_cmp(&(b.offered_rps - rate).abs())
                .expect("finite")
        })
        .map(|p| p.outcome.recorder.summary().p90_ms)
}
