//! Figure 3: latency vs throughput of a single LSTM step across batch
//! sizes, on the simulated GPU (calibrated model) and on the real CPU
//! (measured wall time of our tensor engine).

use std::time::Instant;

use bm_cell::{Cell, InvocationInput, LstmCell};
use bm_device::GpuCostModel;
use bm_metrics::Table;

use crate::experiments::Scale;

/// The batch sizes of the paper's Figure 3.
pub const BATCHES: &[usize] = &[2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    vec![gpu_table(), cpu_table(scale)]
}

/// The simulated-GPU curve from the calibrated cost model
/// (hidden size 1024, the paper's configuration).
pub fn gpu_table() -> Table {
    let cost = GpuCostModel::v100();
    let cell = Cell::Lstm(LstmCell::seeded(1024, 1024, 4, 1));
    let mut t = Table::new(
        "Figure 3 (bottom): GPU LSTM step, hidden 1024 (calibrated model)",
        &["batch", "exec_time_us", "throughput_ops_per_sec"],
    );
    for (b, us, ops) in cost.figure3_curve(&cell, BATCHES) {
        t.push_row(vec![b.to_string(), format!("{us:.0}"), format!("{ops:.0}")]);
    }
    t
}

/// The real-CPU curve: measured wall time of one batched LSTM step on
/// our tensor engine. A smaller hidden size keeps the measurement quick;
/// the *shape* (flat floor, then linear growth, throughput saturating)
/// is what Figure 3 (top) demonstrates.
pub fn cpu_table(scale: Scale) -> Table {
    let hidden = match scale {
        Scale::Quick => 128,
        Scale::Full => 256,
    };
    let max_batch = match scale {
        Scale::Quick => 256,
        Scale::Full => 1024,
    };
    let cell = LstmCell::seeded(hidden, hidden, 64, 7);
    let mut t = Table::new(
        format!("Figure 3 (top): CPU LSTM step, hidden {hidden} (measured)"),
        &["batch", "exec_time_us", "throughput_ops_per_sec"],
    );
    for &b in BATCHES.iter().filter(|&&b| b <= max_batch) {
        let invs: Vec<InvocationInput<'_>> = (0..b)
            .map(|i| InvocationInput::token_only((i % 64) as u32))
            .collect();
        // Warm up, then time a few iterations.
        let _ = cell.execute_batch(&invs);
        let iters = (8 / (b / 64).max(1)).max(2);
        let start = Instant::now();
        for _ in 0..iters {
            let out = cell.execute_batch(&invs);
            std::hint::black_box(&out);
        }
        let us = start.elapsed().as_secs_f64() * 1e6 / iters as f64;
        t.push_row(vec![
            b.to_string(),
            format!("{us:.0}"),
            format!("{:.0}", b as f64 / (us / 1e6)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_curve_matches_paper_anchors() {
        let t = gpu_table();
        assert_eq!(t.row_count(), BATCHES.len());
        let csv = t.to_csv();
        // The 512 row sits in the 700-900 µs band (paper: 784 µs).
        let row512: Vec<&str> = csv
            .lines()
            .find(|l| l.starts_with("512,"))
            .expect("512 row")
            .split(',')
            .collect();
        let us: f64 = row512[1].parse().unwrap();
        assert!((700.0..900.0).contains(&us), "{us}");
    }

    #[test]
    fn cpu_curve_throughput_grows_with_batch() {
        // Batching improves CPU throughput by saturating the cores:
        // small batches cannot keep every core busy, large ones can.
        // On a single-core host the curve is legitimately flat, so the
        // expected speedup scales with the available parallelism.
        let t = cpu_table(Scale::Quick);
        let csv = t.to_csv();
        let tput: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(2).unwrap().parse().unwrap())
            .collect();
        let best = tput.iter().cloned().fold(0.0, f64::max);
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        let expected_gain = if cores > 1 { 1.5 } else { 0.5 };
        assert!(
            best >= expected_gain * tput[0],
            "best {best} vs smallest-batch {} on {cores} cores",
            tput[0]
        );
    }
}
