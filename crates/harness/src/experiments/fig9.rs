//! Figure 9: CDFs of queueing time and computation time for LSTM at
//! ~5k req/s (a moderate load for all systems).
//!
//! The paper's finding: BatchMaker's 99-percentile queueing time is
//! ~1.4 ms (a new request waits at most `MaxTasksToSubmit` in-flight
//! steps) versus >100 ms for the padding systems (a request waits for
//! whole bucket batches), and reduced queueing dominates the latency
//! win.

use std::sync::Arc;

use bm_metrics::Table;
use bm_model::{LstmLm, LstmLmConfig};
use bm_workload::{Dataset, LengthDistribution};

use crate::experiments::serving::{arrivals, run_point};
use crate::experiments::Scale;
use crate::systems::{ServerFactory, SystemKind};

/// The figure's offered load, req/s.
pub const RATE: f64 = 5_000.0;

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let model = Arc::new(LstmLm::new(LstmLmConfig {
        max_batch: 512,
        ..Default::default()
    }));
    let factory = ServerFactory::paper(model);
    let ds = Dataset::lstm(20_000, LengthDistribution::wmt15(), 900, 0x77a1);
    let _ = arrivals(&ds, RATE, 10, 0); // Keep the helper exercised in docs.

    let systems = [
        SystemKind::BatchMaker,
        SystemKind::TensorFlow { bucket_width: 10 },
        SystemKind::Mxnet { bucket_width: 10 },
    ];

    let mut t = Table::new(
        "Figure 9: queueing vs computation time at 5k req/s (LSTM, WMT-15-like)",
        &[
            "system",
            "queue_p50_ms",
            "queue_p90_ms",
            "queue_p99_ms",
            "comp_p50_ms",
            "comp_p90_ms",
            "comp_p99_ms",
        ],
    );
    let mut curves = Table::new(
        "Figure 9 CDF curves (ms at cumulative fraction)",
        &["system", "metric", "p10", "p25", "p50", "p75", "p90", "p99"],
    );
    for kind in &systems {
        let point = run_point(&factory, kind, &ds, RATE, 1, scale);
        assert!(
            !point.outcome.saturated,
            "{} saturated at the Figure 9 load",
            kind.label()
        );
        let q = point.outcome.recorder.queueing_cdf();
        let c = point.outcome.recorder.computation_cdf();
        t.push_row(vec![
            kind.label().to_string(),
            format!("{:.2}", q.quantile(0.5)),
            format!("{:.2}", q.quantile(0.9)),
            format!("{:.2}", q.quantile(0.99)),
            format!("{:.2}", c.quantile(0.5)),
            format!("{:.2}", c.quantile(0.9)),
            format!("{:.2}", c.quantile(0.99)),
        ]);
        for (name, cdf) in [("queueing", &q), ("computation", &c)] {
            curves.push_row(vec![
                kind.label().to_string(),
                name.to_string(),
                format!("{:.2}", cdf.quantile(0.10)),
                format!("{:.2}", cdf.quantile(0.25)),
                format!("{:.2}", cdf.quantile(0.50)),
                format!("{:.2}", cdf.quantile(0.75)),
                format!("{:.2}", cdf.quantile(0.90)),
                format!("{:.2}", cdf.quantile(0.99)),
            ]);
        }
    }
    vec![t, curves]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queueing_dominates_the_gap() {
        let tables = run(Scale::Quick);
        let csv = tables[0].to_csv();
        let row = |name: &str| -> Vec<f64> {
            csv.lines()
                .find(|l| l.starts_with(name))
                .unwrap_or_else(|| panic!("row {name}"))
                .split(',')
                .skip(1)
                .map(|v| v.parse().unwrap())
                .collect()
        };
        let bm = row("BatchMaker");
        let mx = row("MXNet");
        // p99 queueing: BatchMaker a few ms at most; MXNet far larger
        // (paper: 1.38 ms vs > 100 ms).
        assert!(bm[2] < 10.0, "BatchMaker q99 {}", bm[2]);
        assert!(mx[2] > 5.0 * bm[2], "MXNet q99 {} vs BM {}", mx[2], bm[2]);
        // Computation time: BatchMaker no worse than MXNet's padded
        // execution at the median.
        assert!(bm[3] <= mx[3] * 1.5, "comp p50 {} vs {}", bm[3], mx[3]);
    }
}
