//! `repro bench`: the kernel benchmark-regression harness.
//!
//! Times the hot-path kernels rebuilt by the compute overhaul — packed
//! GEMM, fused affine, in-place activations, the fused batched LSTM cell
//! step — against the seed's serial compositions, plus a small real
//! serving run for a headline requests/s figure. Results are emitted as
//! tables and as machine-readable `BENCH_kernels.json` (schema
//! `bm-bench/v1`) so CI can assert the numbers stay finite and positive
//! without depending on absolute machine speed.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use bm_cell::{
    Cell, CellOutput, CellState, InvocationInput, LstmCell, RowInvocation, Scratch, StateRef,
};
use bm_core::{Request, RequestId, ResidentBatch, Runtime, RuntimeOptions, SlotBlock};
use bm_metrics::{LatencyRecorder, RequestTiming, Table};
use bm_model::{LstmLm, Model, NodeId, RequestInput};
use bm_tensor::{ops, xavier_uniform, ComputePool, Matrix};

use crate::experiments::Scale;

/// One measured kernel: best-case wall time and derived rate.
#[derive(Debug, Clone)]
pub struct KernelBench {
    /// Bench name as it appears in tables and JSON.
    pub name: String,
    /// Best (minimum) nanoseconds per operation across samples.
    pub ns_per_op: f64,
    /// Throughput in GFLOP/s (elementwise ops count one flop/element).
    pub gflops: f64,
}

fn sample_counts(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Quick => (1, 5),
        Scale::Full => (2, 15),
    }
}

/// Best wall time of `f` in nanoseconds, after warmup. The minimum, not
/// the median: on a shared single-core host, competing load adds large
/// one-sided spikes, and the best observed run is the stable estimator
/// of what the kernel itself costs.
fn best_ns(scale: Scale, mut f: impl FnMut()) -> f64 {
    let (warmup, iters) = sample_counts(scale);
    for _ in 0..warmup {
        f();
    }
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e9
        })
        .fold(f64::INFINITY, f64::min)
}

fn bench(scale: Scale, name: &str, flops: f64, f: impl FnMut()) -> KernelBench {
    let ns = best_ns(scale, f);
    KernelBench {
        name: name.to_string(),
        ns_per_op: ns,
        gflops: flops / ns,
    }
}

/// Measures a head-to-head pair with interleaved samples (A, B, A, B, …)
/// so both sides see the same noise environment; each side keeps its
/// best run.
fn bench_pair(
    scale: Scale,
    name_a: &str,
    name_b: &str,
    flops: f64,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> (KernelBench, KernelBench) {
    let (warmup, iters) = sample_counts(scale);
    for _ in 0..warmup {
        a();
        b();
    }
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..iters {
        let start = Instant::now();
        a();
        best_a = best_a.min(start.elapsed().as_secs_f64() * 1e9);
        let start = Instant::now();
        b();
        best_b = best_b.min(start.elapsed().as_secs_f64() * 1e9);
    }
    (
        KernelBench {
            name: name_a.to_string(),
            ns_per_op: best_a,
            gflops: flops / best_a,
        },
        KernelBench {
            name: name_b.to_string(),
            ns_per_op: best_b,
            gflops: flops / best_b,
        },
    )
}

/// The seed's batched LSTM step, reproduced verbatim from the pre-overhaul
/// composition: serial i-k-j matmul, broadcast bias add, allocating
/// `split_cols`/`sigmoid`/`tanh`/`mul`/`add` chain (~8 intermediate
/// allocations per step). This is the regression baseline the fused path
/// is measured against.
fn seed_lstm_step(
    embed: &Matrix,
    w: &Matrix,
    b: &Matrix,
    ids: &[usize],
    h: &Matrix,
    c: &Matrix,
) -> (Matrix, Matrix) {
    let x = ops::embedding(embed, ids);
    let xh = ops::concat_cols(&[&x, h]);
    let mut z = xh.matmul_serial(w);
    let bias = b.row(0);
    for r in 0..z.rows() {
        for (o, &bv) in z.row_mut(r).iter_mut().zip(bias.iter()) {
            *o += bv;
        }
    }
    let gates = ops::split_cols(&z, 4);
    let i = ops::sigmoid(&gates[0]);
    let f = ops::sigmoid(&gates[1]);
    let g = ops::tanh(&gates[2]);
    let o = ops::sigmoid(&gates[3]);
    let c_new = ops::add(&ops::mul(&f, c), &ops::mul(&i, &g));
    let h_new = ops::mul(&o, &ops::tanh(&c_new));
    (h_new, c_new)
}

/// Measures the kernel suite. The headline pair is the batched LSTM cell
/// step at batch 64, hidden 512 — the shape of the paper's §2.2
/// microbenchmark — fused vs seed composition.
fn kernel_suite(scale: Scale) -> (Vec<KernelBench>, f64) {
    let mut out = Vec::new();

    // GEMM at the LSTM b64/h512 shape: (64, 1024) x (1024, 2048).
    let (m, k, n) = (64usize, 1024usize, 2048usize);
    let a = xavier_uniform(m, k, 31);
    let w = xavier_uniform(k, n, 32);
    let bias = Matrix::zeros(1, n);
    let gemm_flops = (2 * m * k * n) as f64;
    out.push(bench(scale, "gemm_packed_b64_h512", gemm_flops, || {
        std::hint::black_box(a.matmul(&w));
    }));
    out.push(bench(scale, "gemm_serial_b64_h512", gemm_flops, || {
        std::hint::black_box(a.matmul_serial(&w));
    }));
    let mut affine_out = Matrix::zeros(m, n);
    out.push(bench(
        scale,
        "affine_fused_b64_h512",
        gemm_flops + (m * n) as f64,
        || {
            ops::affine_into(&a, &w, &bias, &mut affine_out);
            std::hint::black_box(&affine_out);
        },
    ));

    // In-place vs allocating activations, 256x1024.
    let act = xavier_uniform(256, 1024, 33);
    let elems = act.len() as f64;
    out.push(bench(scale, "sigmoid_alloc_256x1024", elems, || {
        std::hint::black_box(ops::sigmoid(&act));
    }));
    let mut act_mut = act.clone();
    out.push(bench(scale, "sigmoid_inplace_256x1024", elems, || {
        ops::sigmoid_inplace(&mut act_mut);
        std::hint::black_box(&act_mut);
    }));

    // The headline cell step, fused vs seed composition.
    let cell = LstmCell::seeded(512, 512, 1024, 41);
    let cell_enum = Cell::Lstm(cell.clone());
    let state = {
        let o = cell_enum.execute_batch(&[InvocationInput::token_only(1)]);
        o.into_iter().next().unwrap().state
    };
    let invs: Vec<InvocationInput<'_>> = (0..64)
        .map(|i| InvocationInput::chain((i % 1024) as u32, &state))
        .collect();
    let step_flops = cell_enum.flops(64) as f64;
    let mut scratch = Scratch::new();

    // Seed baseline over the same weights and inputs, measured
    // interleaved with the fused path so the speedup ratio is immune to
    // background-load drift.
    let bundle = cell_enum.to_bundle();
    let embed = bundle.get("embed").expect("embed weights").clone();
    let w_lstm = bundle.get("w").expect("gate weights").clone();
    let b_lstm = bundle.get("b").expect("gate bias").clone();
    let ids: Vec<usize> = (0..64).map(|i| i % 1024).collect();
    let mut h_prev = Matrix::zeros(64, 512);
    let mut c_prev = Matrix::zeros(64, 512);
    for r in 0..64 {
        h_prev.row_mut(r).copy_from_slice(&state.h);
        c_prev.row_mut(r).copy_from_slice(&state.c);
    }
    let (fused, seed) = bench_pair(
        scale,
        "lstm_step_fused_b64_h512",
        "lstm_step_seed_b64_h512",
        step_flops,
        || {
            std::hint::black_box(cell_enum.execute_batch_in(&invs, &mut scratch));
        },
        || {
            std::hint::black_box(seed_lstm_step(
                &embed, &w_lstm, &b_lstm, &ids, &h_prev, &c_prev,
            ));
        },
    );

    let speedup = seed.ns_per_op / fused.ns_per_op;
    out.push(fused);
    out.push(seed);
    (out, speedup)
}

/// A small real serving run: requests/s sustained by the threaded
/// runtime over the chain LSTM model.
fn serving_rps(scale: Scale) -> f64 {
    let (requests, len) = match scale {
        Scale::Quick => (24, 6),
        Scale::Full => (192, 10),
    };
    let model = std::sync::Arc::new(LstmLm::small());
    let rt = Runtime::start(model, RuntimeOptions::new());
    let start = Instant::now();
    let handles: Vec<_> = (0..requests)
        .map(|i| {
            let tokens: Vec<u32> = (0..len).map(|t| ((i * 7 + t * 3) % 1000) as u32).collect();
            rt.submit_request(Request::new(RequestInput::Sequence(tokens)))
                .expect("submit")
        })
        .collect();
    let mut completed = 0usize;
    for h in handles {
        if h.wait().is_completed() {
            completed += 1;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    rt.shutdown();
    completed as f64 / secs
}

/// One serving measurement of the threaded runtime at a fixed pipeline
/// depth: sustained throughput plus latency quantiles.
#[derive(Debug, Clone)]
pub struct RuntimeBench {
    /// Per-worker in-flight window used for the run.
    pub pipeline_depth: usize,
    /// Completed requests per second over the measured span.
    pub throughput_rps: f64,
    /// Median total latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile total latency, ms.
    pub p99_ms: f64,
}

/// One serving run: a closed burst of chain-LSTM requests over the
/// threaded runtime at the given pipeline depth.
///
/// The shape targets the regime pipelining exists for: few concurrent
/// requests over long chains, so batches stay narrow and each task is
/// short — at depth 1 the worker drains and idles for a manager
/// round-trip between consecutive dispatch groups, while a depth-2
/// window keeps it fed.
fn serve_once(scale: Scale, workers: usize, depth: usize) -> RuntimeBench {
    let (requests, len) = match scale {
        Scale::Quick => (4, 256),
        Scale::Full => (8, 512),
    };
    // A narrow cell keeps each task a few microseconds, the regime
    // where the manager round-trip is the cost being measured.
    let model = std::sync::Arc::new(LstmLm::new(bm_model::LstmLmConfig {
        embed_size: 32,
        hidden_size: 32,
        ..Default::default()
    }));
    // Submit cap 1: each task costs one manager round-trip, so the
    // depth window is the only lookahead — at depth 1 this IS the
    // classic single-in-flight dispatch the comparison baselines.
    let rt = Runtime::start(
        model,
        RuntimeOptions::new()
            .workers(workers)
            .scheduler(bm_core::SchedulerConfig::new().max_tasks_to_submit(1))
            .pipeline_depth(depth),
    );
    let handles: Vec<_> = (0..requests)
        .map(|i| {
            let tokens: Vec<u32> = (0..len).map(|t| ((i * 7 + t * 3) % 1000) as u32).collect();
            rt.submit_request(Request::new(RequestInput::Sequence(tokens)))
                .expect("submit")
        })
        .collect();
    let mut rec = LatencyRecorder::new();
    for h in handles {
        let served = h.wait().completed();
        let t = served.timing;
        rec.record(RequestTiming {
            arrival_us: t.arrival_us,
            start_us: t.start_us,
            completion_us: t.completion_us,
        });
    }
    rt.shutdown();
    let s = rec.summary();
    RuntimeBench {
        pipeline_depth: depth,
        throughput_rps: s.throughput_rps,
        p50_ms: s.p50_ms,
        p99_ms: s.p99_ms,
    }
}

/// Measures the threaded runtime's serving data plane: the same closed
/// burst at pipeline depth 1 (classic dispatch-on-drain, the seed's
/// behaviour) and at the pipelined default, interleaved so both depths
/// see the same background load. Each depth keeps its best-throughput
/// sample; the last element's throughput over the first's is the
/// pipelining speedup.
fn runtime_suite(scale: Scale) -> Vec<RuntimeBench> {
    let workers = 2;
    let depths = [1usize, RuntimeOptions::new().serve().pipeline_depth];
    let samples = match scale {
        Scale::Quick => 2,
        Scale::Full => 3,
    };
    let mut best: Vec<Option<RuntimeBench>> = vec![None; depths.len()];
    for _ in 0..samples {
        for (slot, &d) in depths.iter().enumerate() {
            let run = serve_once(scale, workers, d);
            if best[slot]
                .as_ref()
                .is_none_or(|b| run.throughput_rps > b.throughput_rps)
            {
                best[slot] = Some(run);
            }
        }
    }
    best.into_iter().map(|b| b.expect("sampled")).collect()
}

/// Head-to-head gather microbench: the slot-indexed state arena against
/// the seed's data plane — a globally locked `HashMap<(request, node),
/// CellOutput>` whose gather cloned one owned `CellOutput` per batch row.
/// Both sides assemble the same 64-row batch-input matrix from published
/// node states; the arena side reads slot rows in place (one atomic load
/// per row, zero clones, zero allocations).
fn state_plane_suite(scale: Scale) -> (KernelBench, KernelBench, f64) {
    let model = LstmLm::small();
    let rows = 64usize;
    let input = RequestInput::Sequence((0..rows as u32).map(|t| t % 50).collect());
    let graph = model.unfold(&input);
    let registry = model.registry();
    let hidden = 64usize;

    let h: Vec<f32> = (0..hidden).map(|i| i as f32 * 0.25).collect();
    let c: Vec<f32> = (0..hidden).map(|i| i as f32 * 0.5).collect();

    // Arena side: every node published once, the steady state a gather
    // observes.
    let block = SlotBlock::for_graph(&graph, registry);
    for i in 0..rows {
        block.write(i, &h, &c, None);
    }

    // Seed side: the same states behind the old global store.
    let store: Mutex<HashMap<(u64, u32), CellOutput>> = Mutex::new(
        (0..rows)
            .map(|i| {
                let out = CellOutput::state_only(CellState {
                    h: h.clone(),
                    c: c.clone(),
                });
                ((0u64, i as u32), out)
            })
            .collect(),
    );

    let mut xh_arena = Matrix::zeros(rows, hidden);
    let mut xh_map = Matrix::zeros(rows, hidden);
    // One gather is sub-microsecond; time a burst of them per sample so
    // each measurement sits well above clock resolution. The speedup is
    // a ratio, so the burst size cancels.
    let reps = 256usize;
    let elems = (reps * rows * hidden) as f64;
    let (arena, locked) = bench_pair(
        scale,
        "gather_slot_arena_b64_h64",
        "gather_locked_map_b64_h64",
        elems,
        || {
            for _ in 0..reps {
                for r in 0..rows {
                    let st = block.state(r).expect("published");
                    xh_arena.row_mut(r).copy_from_slice(st.h);
                }
                std::hint::black_box(&xh_arena);
            }
        },
        || {
            for _ in 0..reps {
                for r in 0..rows {
                    let out = store
                        .lock()
                        .expect("unpoisoned")
                        .get(&(0, r as u32))
                        .cloned()
                        .expect("published");
                    xh_map.row_mut(r).copy_from_slice(&out.state.h);
                }
                std::hint::black_box(&xh_map);
            }
        },
    );
    let speedup = locked.ns_per_op / arena.ns_per_op;
    (arena, locked, speedup)
}

/// One resident-vs-gather chain-step measurement plus the bit-identity
/// check between the two paths.
#[derive(Debug, Clone)]
pub struct ResidentBench {
    /// Steady-state gather-path step, ns per step (batched chain
    /// requests; state copied in from per-request rows every step).
    pub gather_step_ns: f64,
    /// Steady-state resident-path step, ns per step (same weights and
    /// batch; state parked in `ResidentBatch` rows).
    pub resident_step_ns: f64,
    /// `gather_step_ns / resident_step_ns`.
    pub speedup: f64,
    /// Resident step with one leave + one rejoin per tick, ns per step
    /// (the churn overhead of swap-remove and join-with-fetch).
    pub churn_step_ns: f64,
    /// Whether one step produced bitwise-identical outputs on both
    /// paths — the smoke-level mirror of the runtime identity proptest.
    pub identity: bool,
}

/// Measures the resident-state plane against the gather path at the
/// execution level the runtime workers run: per step, the gather side
/// rebuilds row invocations pointing at per-request state rows, copies
/// them into a contiguous batch and runs the full `[x|h]·W` affine; the
/// resident side places (a no-op when fresh) rows parked in a
/// [`ResidentBatch`] and runs the split affine — cached token
/// projection plus the `h·Wh` fold continuation, half the multiplies.
/// Both sides keep the production scatter (the emit copy-out), so the
/// difference isolated is exactly what the plane eliminates: the
/// gather and the `x`-half of the GEMM.
///
/// The shape follows the paper's microbenchmark configuration (§2.2:
/// one `b × 2h` by `2h × 4h` matmul per step, embed == hidden) at
/// hidden 256, batch 64.
fn resident_suite(scale: Scale) -> ResidentBench {
    let (embed, hidden, vocab, batch) = (256usize, 256usize, 1000usize, 64usize);
    let cell = Cell::Lstm(LstmCell::seeded(embed, hidden, vocab, 71));
    let layout = cell.resident_layout().expect("chain cell");
    let mut scratch = Scratch::new();

    // Per-request states after one warm-up step from zero.
    let states: Vec<CellState> = (0..batch)
        .map(|r| {
            let o = cell.execute_batch(&[InvocationInput::token_only((r % vocab) as u32)]);
            o.into_iter().next().unwrap().state
        })
        .collect();
    let tokens: Vec<u32> = (0..batch).map(|r| ((r * 13 + 5) % vocab) as u32).collect();
    let tokens_opt: Vec<Option<u32>> = tokens.iter().map(|&t| Some(t)).collect();

    // Identity: one step over the same states, both paths, compared
    // bitwise.
    let invs: Vec<RowInvocation<'_>> = states
        .iter()
        .zip(&tokens)
        .map(|(s, &t)| RowInvocation::chain(t, StateRef::of(s)))
        .collect();
    let mut want: Vec<(Vec<f32>, Vec<f32>)> = Vec::new();
    cell.execute_rows_in(&invs, &mut scratch, |_, h, c, _| {
        want.push((h.to_vec(), c.to_vec()));
    });
    let mut rb = ResidentBatch::new(layout);
    for (i, s) in states.iter().enumerate() {
        rb.place(i, RequestId(i as u64), NodeId(1), Some(NodeId(0)), || {
            StateRef::of(s)
        });
    }
    let mut got: Vec<(Vec<f32>, Vec<f32>)> = Vec::new();
    rb.step(&cell, batch, &tokens_opt, &mut scratch, |_, h, c, _| {
        got.push((h.to_vec(), c.to_vec()));
    });
    let identity = want == got;

    // Steady state, interleaved: `reps` chain steps per sample. One
    // step is a few µs, so a burst per sample sits well above clock
    // resolution; per-step figures divide the burst back out.
    let reps = 8usize;
    let flops = (reps as u64 * cell.flops(batch)) as f64;
    let mut scratch_res = Scratch::new();
    let mut scratch_gat = Scratch::new();
    let mut res_out = states.clone();
    let mut prev = states.clone();
    let mut next = states.clone();
    let mut t_node: u32 = 1;
    let (resident, gather) = bench_pair(
        scale,
        "chain_step_resident_b64_h256",
        "chain_step_gather_b64_h256",
        flops,
        || {
            for _ in 0..reps {
                t_node += 1;
                for i in 0..batch {
                    rb.place(
                        i,
                        RequestId(i as u64),
                        NodeId(t_node),
                        Some(NodeId(t_node - 1)),
                        || unreachable!("steady-state rows are always fresh"),
                    );
                }
                rb.step(
                    &cell,
                    batch,
                    &tokens_opt,
                    &mut scratch_res,
                    |row, h, c, _| {
                        res_out[row].h.copy_from_slice(h);
                        res_out[row].c.copy_from_slice(c);
                    },
                );
            }
            std::hint::black_box(&res_out);
        },
        || {
            for _ in 0..reps {
                let invs: Vec<RowInvocation<'_>> = prev
                    .iter()
                    .zip(&tokens)
                    .map(|(s, &t)| RowInvocation::chain(t, StateRef::of(s)))
                    .collect();
                cell.execute_rows_in(&invs, &mut scratch_gat, |row, h, c, _| {
                    next[row].h.copy_from_slice(h);
                    next[row].c.copy_from_slice(c);
                });
                std::mem::swap(&mut prev, &mut next);
            }
            std::hint::black_box(&prev);
        },
    );

    // Churn: one request leaves and rejoins every tick on top of the
    // steady step — the swap-remove + join-with-fetch overhead.
    let mut rb_churn = ResidentBatch::new(layout);
    let mut scratch_churn = Scratch::new();
    let zero = CellState::zeros(hidden);
    let mut churn_out = states.clone();
    let mut ct: u32 = 0;
    let mut victim = 0u64;
    let churn_total = best_ns(scale, || {
        for _ in 0..reps {
            ct += 1;
            rb_churn.remove(RequestId(victim));
            victim = (victim + 1) % batch as u64;
            for i in 0..batch {
                rb_churn.place(
                    i,
                    RequestId(i as u64),
                    NodeId(ct),
                    ct.checked_sub(1).map(NodeId),
                    || StateRef::of(&zero),
                );
            }
            rb_churn.step(
                &cell,
                batch,
                &tokens_opt,
                &mut scratch_churn,
                |row, h, c, _| {
                    churn_out[row].h.copy_from_slice(h);
                    churn_out[row].c.copy_from_slice(c);
                },
            );
        }
        std::hint::black_box(&churn_out);
    });

    let gather_step_ns = gather.ns_per_op / reps as f64;
    let resident_step_ns = resident.ns_per_op / reps as f64;
    ResidentBench {
        gather_step_ns,
        resident_step_ns,
        speedup: gather_step_ns / resident_step_ns,
        churn_step_ns: churn_total / reps as f64,
        identity,
    }
}

/// Pool-parallel packed-GEMM scaling over the batch-row dimension:
/// `affine_rows_into` serial vs spread across a [`ComputePool`] sized
/// to the host.
#[derive(Debug, Clone)]
pub struct PoolScaling {
    /// Batch rows of the measured affine.
    pub batch: usize,
    /// Pool participants (host `available_parallelism`).
    pub workers: usize,
    /// Serial (no pool) best time, ns.
    pub serial_ns: f64,
    /// Pooled best time, ns.
    pub pool_ns: f64,
    /// Whether the host has more than one core. On a single-core host
    /// the pooled run cannot win, so CI gates strict superiority on
    /// this flag.
    pub multi_core: bool,
}

/// Measures [`PoolScaling`] at the resident fused-affine shape (batch
/// 64 x k 256 -> 1024 gate columns) and returns the raw kernel entries
/// for the benches table. Also spot-checks that the pooled result is
/// bitwise identical to the serial one (the property bm-tensor's
/// proptests pin at every pool size).
fn pool_scaling_suite(scale: Scale) -> (PoolScaling, Vec<KernelBench>) {
    let (m, k, n) = (64usize, 256usize, 1024usize);
    let x = xavier_uniform(m, k, 81);
    let w = xavier_uniform(k, n, 82);
    let b = Matrix::zeros(1, n);
    let mut out_serial = Matrix::zeros(m, n);
    let mut out_pool = Matrix::zeros(m, n);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let pool = ComputePool::new(workers);
    let flops = (2 * m * k * n) as f64;
    let pooled_name = format!("affine_rows_pool{workers}_b64");
    let (serial, pooled) = bench_pair(
        scale,
        "affine_rows_serial_b64",
        &pooled_name,
        flops,
        || {
            ops::affine_rows_into(&x, m, &w, &b, &mut out_serial, None);
            std::hint::black_box(&out_serial);
        },
        || {
            ops::affine_rows_into(&x, m, &w, &b, &mut out_pool, Some(&pool));
            std::hint::black_box(&out_pool);
        },
    );
    assert_eq!(
        out_serial.as_slice(),
        out_pool.as_slice(),
        "pooled affine diverged from serial"
    );
    let scaling = PoolScaling {
        batch: m,
        workers,
        serial_ns: serial.ns_per_op,
        pool_ns: pooled.ns_per_op,
        multi_core: workers > 1,
    };
    (scaling, vec![serial, pooled])
}

/// Renders `BENCH_runtime.json` (schema `bm-bench-runtime/v1`): the
/// serving runs per depth, the end-to-end pipelining speedup, the
/// state-plane gather pair, and the resident-vs-gather chain step.
fn runtime_to_json(
    runs: &[RuntimeBench],
    speedup: f64,
    arena: &KernelBench,
    locked: &KernelBench,
    gather_speedup: f64,
    resident: &ResidentBench,
) -> String {
    let mut s = String::from("{\n  \"schema\": \"bm-bench-runtime/v1\",\n  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"pipeline_depth\": {}, \"throughput_rps\": {:.1}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}{}\n",
            r.pipeline_depth,
            r.throughput_rps,
            r.p50_ms,
            r.p99_ms,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    s.push_str(&format!(
        "  ],\n  \"pipelined_speedup\": {speedup:.2},\n  \"state_plane\": \
         {{\"slot_arena_ns\": {:.1}, \"locked_map_ns\": {:.1}, \"gather_speedup\": {gather_speedup:.2}}},\n",
        arena.ns_per_op, locked.ns_per_op
    ));
    s.push_str(&format!(
        "  \"resident\": {{\"gather_step_ns\": {:.1}, \"resident_step_ns\": {:.1}, \
         \"speedup\": {:.2}, \"churn_step_ns\": {:.1}, \"identity\": {}}}\n}}\n",
        resident.gather_step_ns,
        resident.resident_step_ns,
        resident.speedup,
        resident.churn_step_ns,
        resident.identity
    ));
    s
}

/// Renders the machine-readable regression file (schema `bm-bench/v1`).
fn to_json(benches: &[KernelBench], speedup: f64, rps: f64, pool: &PoolScaling) -> String {
    let mut s = String::from("{\n  \"schema\": \"bm-bench/v1\",\n  \"benches\": [\n");
    for (i, b) in benches.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_op\": {:.1}, \"gflops\": {:.4}}}{}\n",
            b.name,
            b.ns_per_op,
            b.gflops,
            if i + 1 < benches.len() { "," } else { "" }
        ));
    }
    s.push_str(&format!(
        "  ],\n  \"pool_scaling\": {{\"batch\": {}, \"workers\": {}, \"serial_ns\": {:.1}, \
         \"pool_ns\": {:.1}, \"multi_core\": {}}},\n",
        pool.batch, pool.workers, pool.serial_ns, pool.pool_ns, pool.multi_core
    ));
    s.push_str(&format!(
        "  \"headline\": {{\"serving_rps\": {rps:.1}, \"lstm_b64_h512_speedup\": {speedup:.2}}}\n}}\n"
    ));
    s
}

/// Runs the experiment, writing `BENCH_kernels.json` and
/// `BENCH_runtime.json` into `out_dir`.
///
/// # Panics
///
/// Panics if any measurement is non-finite or non-positive (the smoke
/// contract CI relies on), or if the output directory is unwritable.
pub fn run(scale: Scale, out_dir: &Path) -> Vec<Table> {
    let (mut benches, speedup) = kernel_suite(scale);
    let rps = serving_rps(scale);
    let runtime_runs = runtime_suite(scale);
    let (arena, locked, gather_speedup) = state_plane_suite(scale);
    let resident = resident_suite(scale);
    let (pool, pool_benches) = pool_scaling_suite(scale);
    benches.extend(pool_benches);

    for b in &benches {
        assert!(
            b.ns_per_op.is_finite() && b.ns_per_op > 0.0,
            "bench {} has bad ns_per_op {}",
            b.name,
            b.ns_per_op
        );
        assert!(
            b.gflops.is_finite() && b.gflops > 0.0,
            "bench {} has bad gflops {}",
            b.name,
            b.gflops
        );
    }
    assert!(
        speedup.is_finite() && speedup > 0.0,
        "bad speedup {speedup}"
    );
    assert!(rps.is_finite() && rps > 0.0, "bad serving rate {rps}");
    for r in &runtime_runs {
        for (metric, v) in [
            ("throughput_rps", r.throughput_rps),
            ("p50_ms", r.p50_ms),
            ("p99_ms", r.p99_ms),
        ] {
            assert!(
                v.is_finite() && v > 0.0,
                "runtime bench depth {} has bad {metric} {v}",
                r.pipeline_depth
            );
        }
    }
    let pipelined_speedup = runtime_runs.last().expect("runs").throughput_rps
        / runtime_runs.first().expect("runs").throughput_rps;
    assert!(
        pipelined_speedup.is_finite() && pipelined_speedup > 0.0,
        "bad pipelined speedup {pipelined_speedup}"
    );
    for b in [&arena, &locked] {
        assert!(
            b.ns_per_op.is_finite() && b.ns_per_op > 0.0,
            "bench {} has bad ns_per_op {}",
            b.name,
            b.ns_per_op
        );
    }
    assert!(
        gather_speedup.is_finite() && gather_speedup > 0.0,
        "bad gather speedup {gather_speedup}"
    );
    for (metric, v) in [
        ("gather_step_ns", resident.gather_step_ns),
        ("resident_step_ns", resident.resident_step_ns),
        ("speedup", resident.speedup),
        ("churn_step_ns", resident.churn_step_ns),
    ] {
        assert!(
            v.is_finite() && v > 0.0,
            "resident bench has bad {metric} {v}"
        );
    }
    assert!(
        resident.identity,
        "resident path diverged bitwise from the gather path"
    );
    for (metric, v) in [("serial_ns", pool.serial_ns), ("pool_ns", pool.pool_ns)] {
        assert!(
            v.is_finite() && v > 0.0,
            "pool scaling has bad {metric} {v}"
        );
    }

    std::fs::create_dir_all(out_dir).expect("create output directory");
    let json_path = out_dir.join("BENCH_kernels.json");
    std::fs::write(&json_path, to_json(&benches, speedup, rps, &pool))
        .expect("write BENCH_kernels.json");
    eprintln!("wrote {}", json_path.display());
    let runtime_path = out_dir.join("BENCH_runtime.json");
    std::fs::write(
        &runtime_path,
        runtime_to_json(
            &runtime_runs,
            pipelined_speedup,
            &arena,
            &locked,
            gather_speedup,
            &resident,
        ),
    )
    .expect("write BENCH_runtime.json");
    eprintln!("wrote {}", runtime_path.display());

    let mut kernels = Table::new(
        "Kernel benchmarks (best-of-N wall time)",
        &["bench", "ns_per_op", "gflops"],
    );
    for b in &benches {
        kernels.push_row(vec![
            b.name.clone(),
            format!("{:.0}", b.ns_per_op),
            format!("{:.3}", b.gflops),
        ]);
    }
    let mut runtime = Table::new(
        "Runtime serving (2 workers, best-of-N)",
        &["pipeline_depth", "throughput_rps", "p50_ms", "p99_ms"],
    );
    for r in &runtime_runs {
        runtime.push_row(vec![
            format!("{}", r.pipeline_depth),
            format!("{:.0}", r.throughput_rps),
            format!("{:.3}", r.p50_ms),
            format!("{:.3}", r.p99_ms),
        ]);
    }
    let mut state_plane = Table::new(
        "State-plane gather (64 rows, hidden 64)",
        &["bench", "ns_per_op", "gflops"],
    );
    for b in [&arena, &locked] {
        state_plane.push_row(vec![
            b.name.clone(),
            format!("{:.0}", b.ns_per_op),
            format!("{:.3}", b.gflops),
        ]);
    }
    let mut resident_tbl = Table::new(
        "Resident state plane (chain LSTM, batch 64, hidden 256)",
        &["path", "ns_per_step"],
    );
    resident_tbl.push_row(vec![
        "gather".into(),
        format!("{:.0}", resident.gather_step_ns),
    ]);
    resident_tbl.push_row(vec![
        "resident".into(),
        format!("{:.0}", resident.resident_step_ns),
    ]);
    resident_tbl.push_row(vec![
        "resident + churn (1 leave/join per tick)".into(),
        format!("{:.0}", resident.churn_step_ns),
    ]);
    let mut headline = Table::new("Headline", &["metric", "value"]);
    headline.push_row(vec![
        "LSTM step b64/h512 speedup vs seed".into(),
        format!("{speedup:.2}x"),
    ]);
    headline.push_row(vec![
        "serving throughput (req/s)".into(),
        format!("{rps:.0}"),
    ]);
    headline.push_row(vec![
        "pipelined dispatch speedup (depth 1 -> default)".into(),
        format!("{pipelined_speedup:.2}x"),
    ]);
    headline.push_row(vec![
        "state-plane gather speedup (arena vs locked map)".into(),
        format!("{gather_speedup:.2}x"),
    ]);
    headline.push_row(vec![
        "resident-state steady-step speedup vs gather".into(),
        format!("{:.2}x", resident.speedup),
    ]);
    headline.push_row(vec![
        format!(
            "pool-parallel affine b64 ({} workers{})",
            pool.workers,
            if pool.multi_core {
                ""
            } else {
                ", single-core host"
            }
        ),
        format!("{:.2}x", pool.serial_ns / pool.pool_ns),
    ]);
    vec![kernels, runtime, state_plane, resident_tbl, headline]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_step_matches_fused_path_bitwise() {
        // The regression baseline must compute the same function as the
        // fused path, or the speedup comparison is meaningless.
        let cell = LstmCell::seeded(16, 16, 32, 5);
        let cell_enum = Cell::Lstm(cell);
        let state = {
            let o = cell_enum.execute_batch(&[InvocationInput::token_only(3)]);
            o.into_iter().next().unwrap().state
        };
        let invs: Vec<InvocationInput<'_>> = (0..4)
            .map(|i| InvocationInput::chain(i as u32, &state))
            .collect();
        let fused = cell_enum.execute_batch(&invs);

        let bundle = cell_enum.to_bundle();
        let embed = bundle.get("embed").unwrap();
        let w = bundle.get("w").unwrap();
        let b = bundle.get("b").unwrap();
        let ids: Vec<usize> = (0..4).collect();
        let mut h = Matrix::zeros(4, 16);
        let mut c = Matrix::zeros(4, 16);
        for r in 0..4 {
            h.row_mut(r).copy_from_slice(&state.h);
            c.row_mut(r).copy_from_slice(&state.c);
        }
        let (h2, c2) = seed_lstm_step(embed, w, b, &ids, &h, &c);
        for (r, out) in fused.iter().enumerate() {
            assert_eq!(out.state.h.as_slice(), h2.row(r));
            assert_eq!(out.state.c.as_slice(), c2.row(r));
        }
    }

    #[test]
    fn runtime_bench_json_is_well_formed() {
        let runs = vec![
            RuntimeBench {
                pipeline_depth: 1,
                throughput_rps: 500.0,
                p50_ms: 1.0,
                p99_ms: 2.0,
            },
            RuntimeBench {
                pipeline_depth: 2,
                throughput_rps: 900.0,
                p50_ms: 0.6,
                p99_ms: 1.4,
            },
        ];
        let arena = KernelBench {
            name: "gather_slot_arena_b64_h64".into(),
            ns_per_op: 1000.0,
            gflops: 4.0,
        };
        let locked = KernelBench {
            name: "gather_locked_map_b64_h64".into(),
            ns_per_op: 2500.0,
            gflops: 1.6,
        };
        let resident = ResidentBench {
            gather_step_ns: 9000.0,
            resident_step_ns: 6000.0,
            speedup: 1.5,
            churn_step_ns: 6500.0,
            identity: true,
        };
        let j = runtime_to_json(&runs, 1.8, &arena, &locked, 2.5, &resident);
        assert!(j.contains("\"schema\": \"bm-bench-runtime/v1\""));
        assert!(j.contains("\"pipeline_depth\": 1"));
        assert!(j.contains("\"pipeline_depth\": 2"));
        assert!(j.contains("\"pipelined_speedup\": 1.80"));
        assert!(j.contains("\"slot_arena_ns\": 1000.0"));
        assert!(j.contains("\"locked_map_ns\": 2500.0"));
        assert!(j.contains("\"gather_speedup\": 2.50"));
        assert!(j.contains("\"gather_step_ns\": 9000.0"));
        assert!(j.contains("\"resident_step_ns\": 6000.0"));
        assert!(j.contains("\"churn_step_ns\": 6500.0"));
        assert!(j.contains("\"identity\": true"));
    }

    #[test]
    fn bench_json_is_well_formed() {
        let benches = vec![KernelBench {
            name: "x".into(),
            ns_per_op: 10.0,
            gflops: 1.5,
        }];
        let pool = PoolScaling {
            batch: 64,
            workers: 4,
            serial_ns: 80000.0,
            pool_ns: 30000.0,
            multi_core: true,
        };
        let j = to_json(&benches, 2.5, 100.0, &pool);
        assert!(j.contains("\"schema\": \"bm-bench/v1\""));
        assert!(j.contains("\"lstm_b64_h512_speedup\": 2.50"));
        assert!(j.contains("\"serving_rps\": 100.0"));
        assert!(j.contains("\"pool_scaling\""));
        assert!(j.contains("\"workers\": 4"));
        assert!(j.contains("\"multi_core\": true"));
    }
}
