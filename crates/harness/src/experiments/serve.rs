//! `repro serve`: the full socket serving path, measured end to end.
//!
//! Everything the other experiments drive in-process or in virtual time
//! runs here over a real loopback TCP connection: wire encode →
//! event-loop ingest → sharded scheduler → threaded workers →
//! completion-pump write-back → wire decode. Four measurements:
//!
//! 1. **Shard scaling** — a closed-loop, deeply pipelined load drives
//!    the front door with 1 scheduler shard and again with N shards,
//!    *same total worker threads*, so the only difference is
//!    control-plane parallelism. On a multi-core host the N-shard
//!    configuration must win; the JSON records `cores` so single-core
//!    CI doesn't assert an impossibility.
//! 2. **SLA sweep over the socket** — the paper's open-loop Poisson
//!    methodology ([`bm_workload::Pacer`] replays the virtual-µs
//!    schedule in wall time), reporting client-observed latency
//!    percentiles per offered rate — the numbers a network client would
//!    see, including wire and ingest overhead.
//! 3. **Idle-connection sweep** — 1 hot closed-loop connection next to
//!    512 idle sockets, once per readiness backend. The polled scan
//!    pays a read syscall per idle socket per pass, so it degrades with
//!    idle population; epoll only hears about ready descriptors and
//!    must not. CI gates `epoll_rps >= polled_rps` here.
//! 4. **Manager dispatch comparison** — the same load with batched
//!    manager dispatch on vs off, plus the amortization telemetry
//!    (wakeups, drained-per-wakeup, submit batch size) from the batched
//!    arm. CI gates drained-per-wakeup > 1: under load the manager
//!    must be handling multiple messages per channel wakeup.
//!
//! Artifacts: `BENCH_serve.json` (schema `bm-serve/v1`) and the
//! standard markdown/CSV tables. The smoke run (`--smoke`) is the CI
//! gate: 2 shards, 5 000 closed-loop requests, JSON sanity-checked.

use std::io::Write;
use std::net::TcpStream;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bm_core::{ReadinessMode, Request, RuntimeOptions, SchedulerConfig, ServeConfig};
use bm_metrics::{LatencyRecorder, RequestTiming, Table};
use bm_model::{LstmLm, Model, RequestInput};
use bm_net::readiness::SUPPORTED as EPOLL_SUPPORTED;
use bm_net::{wire, NetClient, NetResponse, NetServer, NetServerOptions};
use bm_workload::{Dataset, LengthDistribution, Pacer, PoissonArrivals};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::experiments::Scale;

/// Closed-loop pipelining window per connection: deep enough to keep
/// the manager queue full, well under the runtime's queue capacity.
const WINDOW: usize = 64;

/// Client connections for the closed-loop throughput runs.
const CONNS: usize = 4;

fn model() -> Arc<dyn Model> {
    Arc::new(LstmLm::small())
}

/// Short-sequence dataset: per-request compute is a few cells, so the
/// control plane (ingest, scheduler, dispatch) is the measured system.
fn dataset(n: usize) -> Dataset {
    Dataset::lstm(n, LengthDistribution::Fixed(3), 900, 0x5e7e)
}

/// One closed-loop load configuration: the serving knobs under test
/// plus the client shape driving them.
#[derive(Clone, Copy)]
struct LoadCfg {
    shards: usize,
    workers: usize,
    total: usize,
    telemetry: bool,
    /// Hot (request-driving) client connections.
    conns: usize,
    /// Sockets that connect and then stay silent for the whole run.
    idle_conns: usize,
    readiness: ReadinessMode,
    batched_dispatch: bool,
}

/// Readiness backend for the non-comparative measurements:
/// `BM_SERVE_READINESS=auto|polled|epoll` (default `auto`), so CI can
/// run the whole smoke under each backend. The idle sweep always
/// measures both explicitly.
fn default_readiness() -> ReadinessMode {
    match std::env::var("BM_SERVE_READINESS") {
        Ok(v) => ReadinessMode::parse(&v)
            .unwrap_or_else(|| panic!("BM_SERVE_READINESS must be auto|polled|epoll, got {v:?}")),
        Err(_) => ReadinessMode::Auto,
    }
}

impl LoadCfg {
    fn new(shards: usize, workers: usize, total: usize, telemetry: bool) -> Self {
        LoadCfg {
            shards,
            workers,
            total,
            telemetry,
            conns: CONNS,
            idle_conns: 0,
            readiness: default_readiness(),
            batched_dispatch: true,
        }
    }

    fn server_options(&self) -> NetServerOptions {
        let mut serve = ServeConfig::new()
            .shards(self.shards)
            .readiness(self.readiness)
            .batched_dispatch(self.batched_dispatch);
        if self.telemetry {
            serve = serve.telemetry(bm_telemetry::Telemetry::new());
        }
        NetServerOptions::new().max_inflight(2 * WINDOW).runtime(
            RuntimeOptions::new()
                .workers(self.workers)
                .scheduler(SchedulerConfig::new().serve(serve)),
        )
    }
}

/// Manager hot-path amortization counters, rolled up across shards.
#[derive(Clone, Copy, Default)]
struct ManagerStats {
    wakeups: u64,
    drained_per_wakeup_mean: f64,
    submit_batch_mean: f64,
}

/// Sums a labeled (per-shard) histogram's `(count, sum)` across every
/// snapshot entry with `name`.
fn histogram_totals(snapshot: &bm_telemetry::Snapshot, name: &str) -> (u64, u64) {
    snapshot.entries.iter().filter(|e| e.name == name).fold(
        (0u64, 0u64),
        |(count, sum), e| match &e.value {
            bm_telemetry::MetricValue::Histogram(h) => (count + h.count, sum + h.sum),
            _ => (count, sum),
        },
    )
}

fn manager_stats(snapshot: &bm_telemetry::Snapshot) -> ManagerStats {
    let mean = |(count, sum): (u64, u64)| {
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    };
    ManagerStats {
        wakeups: snapshot.counter_sum("bm_manager_wakeups_total"),
        drained_per_wakeup_mean: mean(histogram_totals(snapshot, "bm_manager_drained_per_wakeup")),
        submit_batch_mean: mean(histogram_totals(snapshot, "bm_manager_submit_batch")),
    }
}

/// One closed-loop throughput measurement.
struct ThroughputPoint {
    shards: usize,
    completed: usize,
    wall_s: f64,
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    /// Snapshot entry count and per-shard completion counters, when
    /// telemetry was on.
    shard_completions: Vec<(String, u64)>,
    /// Manager amortization counters, when telemetry was on.
    manager: ManagerStats,
    /// Readiness backend the server actually ran ("polled"/"epoll").
    backend: &'static str,
}

/// Drives `cfg.total` requests through `cfg.conns` connections, each
/// keeping [`WINDOW`] requests in flight (send-one-per-receive after
/// the initial burst), with `cfg.idle_conns` silent sockets held open
/// for the whole run. Returns the aggregate completion rate.
fn closed_loop_cfg(cfg: LoadCfg) -> ThroughputPoint {
    let server =
        NetServer::bind(model(), cfg.server_options(), "127.0.0.1:0").expect("bind loopback");
    let backend = server.readiness_backend();
    let addr = server.local_addr();
    let ds = dataset(256);
    let (total, conns) = (cfg.total, cfg.conns);
    let per_conn = total / conns;

    // Idle sockets: admitted, registered with the readiness backend,
    // and silent — pure scan load for the polled backend.
    let _idle: Vec<TcpStream> = (0..cfg.idle_conns)
        .map(|_| TcpStream::connect(addr).expect("idle connect"))
        .collect();

    let t0 = Instant::now();
    let threads: Vec<_> = (0..conns)
        .map(|c| {
            let items: Vec<RequestInput> = {
                let mut rng = StdRng::seed_from_u64(0x10ad ^ c as u64);
                (0..per_conn).map(|_| ds.sample(&mut rng).clone()).collect()
            };
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                let mut latencies_us: Vec<u64> = Vec::with_capacity(per_conn);
                let mut sent_at: std::collections::HashMap<u32, Instant> = Default::default();
                let mut completed = 0usize;
                let mut next = 0usize;
                // Prime the window, then lock-step send-per-receive.
                while next < items.len().min(WINDOW) {
                    let corr = client.send(&Request::from(&items[next])).expect("send");
                    sent_at.insert(corr, Instant::now());
                    next += 1;
                }
                while completed < items.len() {
                    let (corr, resp) = client.recv().expect("recv");
                    let t_sent = sent_at.remove(&corr).expect("known corr");
                    match resp {
                        NetResponse::Completed { .. } => {
                            latencies_us.push(t_sent.elapsed().as_micros() as u64);
                            completed += 1;
                        }
                        other => panic!("closed-loop request failed: {other:?}"),
                    }
                    if next < items.len() {
                        let corr = client.send(&Request::from(&items[next])).expect("send");
                        sent_at.insert(corr, Instant::now());
                        next += 1;
                    }
                }
                latencies_us
            })
        })
        .collect();

    let mut latencies: Vec<u64> = Vec::with_capacity(total);
    for t in threads {
        latencies.extend(t.join().expect("client thread"));
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let completed = latencies.len();

    let snapshot = server.snapshot();
    let shard_completions: Vec<(String, u64)> = snapshot
        .entries
        .iter()
        .filter(|e| e.name == "bm_requests_completed_total")
        .map(|e| {
            let shard = e
                .labels
                .iter()
                .find(|(k, _)| k == "shard")
                .map(|(_, v)| v.clone())
                .unwrap_or_default();
            let v = match &e.value {
                bm_telemetry::MetricValue::Counter(c) => *c,
                _ => 0,
            };
            (shard, v)
        })
        .collect();
    let manager = manager_stats(&snapshot);

    let stats = server.stats();
    assert_eq!(stats.submitted, total as u64, "every request admitted");
    assert_eq!(stats.completed, total as u64, "every request completed");
    assert_eq!(stats.protocol_errors, 0);
    server.shutdown();

    latencies.sort_unstable();
    let pct = |q: f64| latencies[((latencies.len() - 1) as f64 * q) as usize] as f64 / 1e3;
    ThroughputPoint {
        shards: cfg.shards,
        completed,
        wall_s,
        rps: completed as f64 / wall_s,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        shard_completions,
        manager,
        backend,
    }
}

/// The default-shape closed loop: [`CONNS`] hot connections, no idle
/// sockets, auto readiness, batched dispatch.
fn closed_loop(shards: usize, workers: usize, total: usize, telemetry: bool) -> ThroughputPoint {
    closed_loop_cfg(LoadCfg::new(shards, workers, total, telemetry))
}

/// The idle-connection sweep: 1 hot connection next to `idle_conns`
/// silent sockets, per readiness backend.
struct IdleSweep {
    idle_conns: usize,
    requests: usize,
    polled_rps: f64,
    epoll_supported: bool,
    /// 0.0 when epoll is unsupported on this platform.
    epoll_rps: f64,
    epoll_wins: bool,
}

fn idle_sweep(workers: usize, idle_conns: usize, total: usize) -> IdleSweep {
    let arm = |mode: ReadinessMode| {
        let mut cfg = LoadCfg::new(1, workers, total, false);
        cfg.conns = 1;
        cfg.idle_conns = idle_conns;
        cfg.readiness = mode;
        closed_loop_cfg(cfg)
    };
    let polled = arm(ReadinessMode::Polled);
    assert_eq!(polled.backend, "polled");
    let (epoll_rps, epoll_wins) = if EPOLL_SUPPORTED {
        let epoll = arm(ReadinessMode::Epoll);
        assert_eq!(epoll.backend, "epoll");
        (epoll.rps, epoll.rps >= polled.rps)
    } else {
        (0.0, false)
    };
    IdleSweep {
        idle_conns,
        requests: total,
        polled_rps: polled.rps,
        epoll_supported: EPOLL_SUPPORTED,
        epoll_rps,
        epoll_wins,
    }
}

/// Batched vs per-message manager dispatch under the same closed-loop
/// load, with the batched arm's amortization telemetry.
struct ManagerCompare {
    batched_rps: f64,
    per_message_rps: f64,
    stats: ManagerStats,
}

fn manager_compare(shards: usize, workers: usize, total: usize) -> ManagerCompare {
    let arm = |batched: bool| {
        let mut cfg = LoadCfg::new(shards, workers, total, true);
        cfg.batched_dispatch = batched;
        closed_loop_cfg(cfg)
    };
    let batched = arm(true);
    let per_message = arm(false);
    ManagerCompare {
        batched_rps: batched.rps,
        per_message_rps: per_message.rps,
        stats: batched.manager,
    }
}

/// One open-loop sweep point's client-side outcome.
struct SweepPoint {
    offered_rps: f64,
    completed: usize,
    max_lateness_us: u64,
    summary: bm_metrics::Summary,
}

/// Replays a Poisson schedule at `rate` req/s over `CONNS` sockets in
/// wall-clock time and records client-observed latency.
///
/// Each connection gets an interleaved slice of the schedule, one
/// sender thread pacing submissions ([`Pacer`]) and one receiver thread
/// stamping completions — open-loop, so a slow server shows up as
/// latency, not as reduced offered load. Latency is measured from the
/// *scheduled* arrival (coordinated-omission-free).
fn open_loop_point(shards: usize, workers: usize, rate: f64, n: usize) -> SweepPoint {
    let server = NetServer::bind(
        model(),
        LoadCfg::new(shards, workers, n, false).server_options(),
        "127.0.0.1:0",
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let ds = dataset(256);
    let mut rng = StdRng::seed_from_u64(0x0a11 ^ rate as u64);
    let schedule: Vec<(u64, RequestInput)> = PoissonArrivals::new(rate, 0x5eed ^ rate as u64)
        .take(n)
        .map(|t| (t, ds.sample(&mut rng).clone()))
        .collect();

    let pacer = Pacer::new();
    let max_lateness = Arc::new(AtomicU64::new(0));
    let mut threads = Vec::new();
    let mut recv_threads = Vec::new();
    for c in 0..CONNS {
        // Interleaved slices preserve each connection's arrival order.
        let slice: Vec<(u32, u64, RequestInput)> = schedule
            .iter()
            .enumerate()
            .filter(|(i, _)| i % CONNS == c)
            .map(|(i, (at, input))| (i as u32, *at, input.clone()))
            .collect();
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let reader = stream.try_clone().expect("clone socket");
        let expect = slice.len();

        // Receiver: stamp each response against the pacer clock.
        let rx_pacer = pacer;
        recv_threads.push(std::thread::spawn(move || {
            use std::io::Read;
            let mut reader = reader;
            let mut buf = Vec::new();
            let mut chunk = [0u8; 16 * 1024];
            let mut out: Vec<(u32, u64, NetResponse)> = Vec::with_capacity(expect);
            while out.len() < expect {
                if let Some((frame, consumed)) =
                    wire::decode_frame(&buf).expect("well-formed response stream")
                {
                    buf.drain(..consumed);
                    let wire::Message::Response(resp) = frame.message else {
                        panic!("server sent a submit frame");
                    };
                    out.push((frame.correlation, rx_pacer.elapsed_us(), resp));
                    continue;
                }
                let got = reader.read(&mut chunk).expect("read");
                assert!(got > 0, "server closed mid-sweep");
                buf.extend_from_slice(&chunk[..got]);
            }
            out
        }));

        // Sender: pace submissions to the schedule.
        let tx_pacer = pacer;
        let late = Arc::clone(&max_lateness);
        threads.push(std::thread::spawn(move || {
            let mut stream = stream;
            let mut buf = Vec::with_capacity(1024);
            for (corr, at_us, input) in slice {
                let lateness = tx_pacer.wait_until(at_us);
                late.fetch_max(lateness, Ordering::Relaxed);
                buf.clear();
                wire::encode_submit(&mut buf, corr, &Request::from(&input));
                stream.write_all(&buf).expect("send");
            }
        }));
    }
    for t in threads {
        t.join().expect("sender");
    }
    let mut recorder = LatencyRecorder::new();
    let mut completed = 0usize;
    for t in recv_threads {
        for (corr, recv_us, resp) in t.join().expect("receiver") {
            let scheduled_us = schedule[corr as usize].0;
            let NetResponse::Completed { timing, .. } = resp else {
                panic!("open-loop request failed: {resp:?}");
            };
            completed += 1;
            // Client clock for arrival/completion; the server's own
            // queueing delay positions start_us within that span.
            let queue_us = timing.start_us.saturating_sub(timing.arrival_us);
            let completion = recv_us.max(scheduled_us);
            recorder.record(RequestTiming {
                arrival_us: scheduled_us,
                start_us: (scheduled_us + queue_us).min(completion),
                completion_us: completion,
            });
        }
    }
    server.shutdown();
    SweepPoint {
        offered_rps: rate,
        completed,
        max_lateness_us: max_lateness.load(Ordering::Relaxed),
        summary: recorder.summary(),
    }
}

fn to_json(
    cores: usize,
    shard_counts: (usize, usize),
    points: &[ThroughputPoint],
    sweep: &[SweepPoint],
    idle: &IdleSweep,
    manager: &ManagerCompare,
) -> String {
    let best = |shards: usize| {
        points
            .iter()
            .filter(|p| p.shards == shards)
            .map(|p| p.rps)
            .fold(0.0f64, f64::max)
    };
    let (one, many) = (best(shard_counts.0), best(shard_counts.1));
    let mut s = String::from("{\n  \"schema\": \"bm-serve/v1\",\n");
    s.push_str(&format!("  \"cores\": {cores},\n"));
    s.push_str(&format!(
        "  \"shard_scaling\": {{\"shards_single\": {}, \"shards_multi\": {}, \
         \"rps_single\": {:.1}, \"rps_multi\": {:.1}, \"speedup\": {:.3}, \
         \"multi_wins\": {}, \"multi_core\": {}}},\n",
        shard_counts.0,
        shard_counts.1,
        one,
        many,
        many / one,
        many > one,
        cores > 1
    ));
    s.push_str("  \"throughput_points\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"shards\": {}, \"completed\": {}, \"wall_s\": {:.3}, \"rps\": {:.1}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}{}\n",
            p.shards,
            p.completed,
            p.wall_s,
            p.rps,
            p.p50_ms,
            p.p99_ms,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    s.push_str(&format!(
        "  ],\n  \"idle_sweep\": {{\"idle_conns\": {}, \"hot_conns\": 1, \"requests\": {}, \
         \"polled_rps\": {:.1}, \"epoll_supported\": {}, \"epoll_rps\": {:.1}, \
         \"epoll_wins\": {}}},\n",
        idle.idle_conns,
        idle.requests,
        idle.polled_rps,
        idle.epoll_supported,
        idle.epoll_rps,
        idle.epoll_wins
    ));
    s.push_str(&format!(
        "  \"manager\": {{\"batched_rps\": {:.1}, \"per_message_rps\": {:.1}, \
         \"wakeups\": {}, \"drained_per_wakeup_mean\": {:.3}, \
         \"submit_batch_mean\": {:.3}}},\n",
        manager.batched_rps,
        manager.per_message_rps,
        manager.stats.wakeups,
        manager.stats.drained_per_wakeup_mean,
        manager.stats.submit_batch_mean
    ));
    s.push_str("  \"sla_sweep\": [\n");
    for (i, p) in sweep.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"offered_rps\": {:.0}, \"completed\": {}, \"throughput_rps\": {:.1}, \
             \"p50_ms\": {:.3}, \"p90_ms\": {:.3}, \"p99_ms\": {:.3}, \"max_lateness_us\": {}}}{}\n",
            p.offered_rps,
            p.completed,
            p.summary.throughput_rps,
            p.summary.p50_ms,
            p.summary.p90_ms,
            p.summary.p99_ms,
            p.max_lateness_us,
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Runs the socket serving benchmark, writing `BENCH_serve.json`.
///
/// # Panics
///
/// Panics if any request fails, any response is lost, or the smoke
/// sanity gates (all submitted == all completed, no protocol errors)
/// fail — CI runs this with `--smoke`.
pub fn run(scale: Scale, out_dir: &Path) -> Vec<Table> {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = 2;
    let multi_shards = 2.max(cores / 2).min(4);
    let (total, reps) = match scale {
        Scale::Quick => (5_000, 1),
        Scale::Full => (20_000, 2),
    };

    // Part 1: shard scaling, interleaved reps so OS noise hits both
    // arms equally. The smoke run's N-shard arm doubles as the
    // telemetry-rollup check.
    let mut points = Vec::new();
    for rep in 0..reps.max(1) {
        let telemetry = rep == 0;
        points.push(closed_loop(1, workers, total, telemetry));
        points.push(closed_loop(multi_shards, workers, total, telemetry));
    }
    for p in &points {
        assert_eq!(p.completed, total, "lost responses at {} shards", p.shards);
    }
    // The per-shard rollup must actually be per-shard: the multi-shard
    // telemetry run's merged snapshot carries one completion counter
    // per shard, summing to the request total.
    let multi_tel = points
        .iter()
        .find(|p| p.shards == multi_shards && !p.shard_completions.is_empty())
        .expect("telemetry-enabled multi-shard run");
    assert_eq!(multi_tel.shard_completions.len(), multi_shards);
    let rollup_sum: u64 = multi_tel.shard_completions.iter().map(|(_, v)| v).sum();
    assert_eq!(rollup_sum, total as u64, "per-shard counters must roll up");

    // Part 2: the idle-connection sweep (1 hot / 512 idle) and the
    // batched-vs-per-message manager comparison. Under load the
    // manager must be amortizing: >1 message drained per wakeup.
    let (idle_total, idle_conns) = match scale {
        Scale::Quick => (3_000, 512),
        Scale::Full => (10_000, 512),
    };
    let idle = idle_sweep(workers, idle_conns, idle_total);
    let manager = manager_compare(multi_shards, workers, total);
    assert!(
        manager.stats.wakeups > 0 && manager.stats.drained_per_wakeup_mean > 1.0,
        "manager not amortizing under load: {} wakeups, {:.3} drained/wakeup",
        manager.stats.wakeups,
        manager.stats.drained_per_wakeup_mean
    );

    // Part 3: the SLA sweep over the socket, N-shard configuration.
    let full_rates = [500.0, 1_000.0, 2_000.0, 4_000.0];
    let rates = scale.rates(&full_rates);
    let sweep: Vec<SweepPoint> = rates
        .iter()
        .map(|&rate| {
            let n = ((rate * scale.duration_s()) as usize).clamp(200, scale.max_requests());
            open_loop_point(multi_shards, workers, rate, n)
        })
        .collect();
    for p in &sweep {
        assert_eq!(p.completed, p.summary.count, "sweep point lost requests");
    }

    std::fs::create_dir_all(out_dir).expect("create results dir");
    let json = to_json(cores, (1, multi_shards), &points, &sweep, &idle, &manager);
    let json_path = out_dir.join("BENCH_serve.json");
    std::fs::write(&json_path, &json).expect("write BENCH_serve.json");
    eprintln!("wrote {}", json_path.display());

    let mut t = Table::new(
        "Socket throughput: 1 vs N scheduler shards (closed loop)",
        &["shards", "completed", "wall_s", "rps", "p50_ms", "p99_ms"],
    );
    for p in &points {
        t.push_row(vec![
            p.shards.to_string(),
            p.completed.to_string(),
            format!("{:.3}", p.wall_s),
            format!("{:.0}", p.rps),
            format!("{:.3}", p.p50_ms),
            format!("{:.3}", p.p99_ms),
        ]);
    }

    let mut i = Table::new(
        "Idle-connection sweep: readiness backend rps with 1 hot conn",
        &["backend", "idle_conns", "requests", "rps"],
    );
    i.push_row(vec![
        "polled".into(),
        idle.idle_conns.to_string(),
        idle.requests.to_string(),
        format!("{:.0}", idle.polled_rps),
    ]);
    if idle.epoll_supported {
        i.push_row(vec![
            "epoll".into(),
            idle.idle_conns.to_string(),
            idle.requests.to_string(),
            format!("{:.0}", idle.epoll_rps),
        ]);
    }

    let mut m = Table::new(
        "Manager dispatch: batched vs per-message",
        &[
            "batched_rps",
            "per_message_rps",
            "wakeups",
            "drained_per_wakeup_mean",
            "submit_batch_mean",
        ],
    );
    m.push_row(vec![
        format!("{:.0}", manager.batched_rps),
        format!("{:.0}", manager.per_message_rps),
        manager.stats.wakeups.to_string(),
        format!("{:.2}", manager.stats.drained_per_wakeup_mean),
        format!("{:.2}", manager.stats.submit_batch_mean),
    ]);

    let mut s = Table::new(
        "SLA sweep over the socket (open loop, client-observed)",
        &[
            "offered_rps",
            "throughput_rps",
            "p50_ms",
            "p90_ms",
            "p99_ms",
            "max_lateness_us",
        ],
    );
    for p in &sweep {
        s.push_row(vec![
            format!("{:.0}", p.offered_rps),
            format!("{:.0}", p.summary.throughput_rps),
            format!("{:.1}", p.summary.p50_ms),
            format!("{:.1}", p.summary.p90_ms),
            format!("{:.1}", p.summary.p99_ms),
            p.max_lateness_us.to_string(),
        ]);
    }
    vec![t, i, m, s]
}
