//! `repro stats`: the live telemetry plane, exercised end to end.
//!
//! Not a paper figure — the observability companion to `repro trace`.
//! Four parts, each checked hard (a failure panics so CI catches it):
//!
//! 1. **Overhead** — the same serving run is timed with telemetry
//!    disabled and enabled, interleaved, best-of-N minima compared. Two
//!    flavors: a threaded [`Runtime`] run (real kernels — the serving
//!    throughput the acceptance bound applies to) and a simulated run
//!    (no real compute, so pure scheduler overhead — the worst case).
//!    The disabled path must stay a single branch per call site, so the
//!    enabled/disabled gap bounds the full cost of the metrics plane.
//! 2. **Live run** — a real threaded [`Runtime`] serves requests with a
//!    registry attached; a [`Scraper`] thread prints periodic stats
//!    lines while a [`SamplingSink`] head-samples the trace stream into
//!    a drop-counting ring buffer.
//! 3. **Reconciliation** — the four `bm_stage_us` stage histograms
//!    (exact sums, not bucket approximations) must telescope to exactly
//!    the end-to-end latency total reported by the per-request
//!    [`bm_core::ServedTiming`]s — the decomposition loses nothing.
//! 4. **Round-trip** — the final snapshot must survive
//!    `to_json` → `from_json` unchanged, and render to Prometheus text.
//!
//! Artifacts: `BENCH_telemetry.json` (schema `bm-telemetry-bench/v1`,
//! with the full snapshot embedded) and `telemetry.prom`.

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bm_core::{Runtime, RuntimeOptions, STAGE_NAMES};
use bm_metrics::Table;
use bm_model::{LstmLm, LstmLmConfig, Model};
use bm_sim::{simulate, CellularServer, SimOptions};
use bm_telemetry::{MetricValue, Scraper, Snapshot, Telemetry};
use bm_trace::{RingBufferSink, SamplingSink, TraceSink};
use bm_workload::{Dataset, LengthDistribution};

use crate::experiments::serving::arrivals;
use crate::experiments::Scale;

/// Trace-event capacity of the live run's ring buffer. Deliberately
/// small so the drop counter has something to count at full scale.
const RING_CAPACITY: usize = 1 << 12;

/// Fraction of requests the live run's [`SamplingSink`] keeps.
const SAMPLE_RATE: f64 = 0.25;

fn paper_lstm() -> Arc<LstmLm> {
    Arc::new(LstmLm::new(LstmLmConfig {
        max_batch: 512,
        ..Default::default()
    }))
}

/// Wall-clock seconds of one simulated serving run, with the given
/// registry attached to both the engine and the driver.
fn timed_sim_run(arr: &[(u64, bm_model::RequestInput)], tel: &Arc<Telemetry>) -> f64 {
    let mut server = CellularServer::paper_scale(paper_lstm()).with_telemetry(tel);
    let t0 = Instant::now();
    let out = simulate(
        &mut server,
        arr,
        SimOptions::new().workers(2).telemetry(Arc::clone(tel)),
    );
    let dt = t0.elapsed().as_secs_f64();
    assert!(!out.saturated, "overhead run must not saturate");
    dt
}

/// Wall-clock seconds of one threaded serving run: every request
/// submitted up front, timed to the last completion. Real kernel work
/// dominates here, so this is the serving-throughput overhead the
/// acceptance bound constrains. One worker: on a small host, extra
/// worker threads time-share cores and the OS interleaving changes
/// which batches form, which would vary the measured work itself.
fn timed_serve_run(ds: &Dataset, tel: &Arc<Telemetry>) -> f64 {
    let model: Arc<dyn Model> = Arc::new(LstmLm::small());
    let rt = Runtime::start(
        model,
        RuntimeOptions::new().workers(1).telemetry(Arc::clone(tel)),
    );
    let t0 = Instant::now();
    let handles: Vec<_> = ds
        .items()
        .iter()
        .map(|i| rt.submit_request(i).expect("submit"))
        .collect();
    for h in handles {
        let _ = h.wait().completed();
    }
    let dt = t0.elapsed().as_secs_f64();
    rt.shutdown();
    dt
}

/// Interleaved disabled-vs-enabled timing of one run flavor.
///
/// Scheduler preemption and cache pollution on a shared host only ever
/// *add* time, so the per-arm minimum over many interleaved reps
/// (alternating inner order, so neither arm systematically rides the
/// other's cache shadow) is the standard noise-robust cost estimator;
/// the gap between minima is the telemetry cost itself.
fn paired_overhead(reps: usize, mut run: impl FnMut(&Arc<Telemetry>) -> f64) -> (f64, f64, f64) {
    let (mut off, mut on) = (Vec::new(), Vec::new());
    let _ = run(&Telemetry::disabled()); // untimed warm-up
    for i in 0..reps {
        if i % 2 == 0 {
            off.push(run(&Telemetry::disabled()));
            on.push(run(&Telemetry::new()));
        } else {
            on.push(run(&Telemetry::new()));
            off.push(run(&Telemetry::disabled()));
        }
    }
    let (off_s, on_s) = (minimum(&off), minimum(&on));
    (off_s, on_s, (on_s - off_s) / off_s * 100.0)
}

fn minimum(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

struct Overhead {
    serve_off_s: f64,
    serve_on_s: f64,
    serve_pct: f64,
    sim_off_s: f64,
    sim_on_s: f64,
    sim_pct: f64,
}

/// Part 1: serving-throughput overhead (threaded runtime, primary) and
/// scheduler-only overhead (simulator, worst case — the simulator does
/// no real compute, so per-request work is a few microseconds and the
/// metric atomics are maximally visible).
fn measure_overhead(scale: Scale) -> Overhead {
    let (n_serve, n_sim, reps) = match scale {
        Scale::Quick => (120, 800, 3),
        Scale::Full => (900, 8000, 25),
    };
    let ds = Dataset::lstm(n_serve, LengthDistribution::wmt15_clipped(24), 900, 0x0f5e);
    let (serve_off_s, serve_on_s, serve_pct) =
        paired_overhead(reps, |tel| timed_serve_run(&ds, tel));

    let sim_ds = Dataset::lstm(n_sim, LengthDistribution::wmt15_clipped(30), 900, 0x57a7);
    let arr = arrivals(&sim_ds, 4_000.0, n_sim, 0x57a7);
    let (sim_off_s, sim_on_s, sim_pct) = paired_overhead(reps, |tel| timed_sim_run(&arr, tel));

    Overhead {
        serve_off_s,
        serve_on_s,
        serve_pct,
        sim_off_s,
        sim_on_s,
        sim_pct,
    }
}

/// Sum of the exact `sum` fields of the four tiling-stage histograms
/// (excludes `scatter_resolve`, which happens after `completion_us`).
fn tiling_stage_sum(snap: &Snapshot) -> u64 {
    snap.entries
        .iter()
        .filter(|e| {
            e.name == "bm_stage_us"
                && e.labels
                    .iter()
                    .any(|(k, v)| k == "stage" && STAGE_NAMES.contains(&v.as_str()))
        })
        .fold(0u64, |acc, e| match &e.value {
            MetricValue::Histogram(h) => acc.wrapping_add(h.sum),
            _ => acc,
        })
}

fn gauge(snap: &Snapshot, name: &str) -> i64 {
    match snap.get_with(name, &[]) {
        Some(MetricValue::Gauge(g)) => *g,
        _ => 0,
    }
}

struct LiveRun {
    snapshot: Snapshot,
    scrapes: u64,
    completed: usize,
    e2e_sum_us: u64,
    stage_sum_us: u64,
    wall_s: f64,
    sampled_out: u64,
    ring_events: usize,
    ring_dropped: u64,
    busy: Vec<(String, u64)>,
}

/// Parts 2 and 3: the live threaded run with scraper + sampling sink,
/// and the exact stage-sum reconciliation.
fn live_run(scale: Scale) -> LiveRun {
    let n = match scale {
        Scale::Quick => 160,
        Scale::Full => 1200,
    };
    let workers = 2;
    let tel = Telemetry::new();
    let ring = Arc::new(
        RingBufferSink::new(RING_CAPACITY)
            .with_drop_counter(tel.counter("bm_trace_events_dropped_total")),
    );
    let sampler = Arc::new(SamplingSink::new(ring.clone(), SAMPLE_RATE));

    let scrape_count = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let sc = Arc::clone(&scrape_count);
    let scraper = Scraper::start_with(
        Arc::clone(&tel),
        Duration::from_millis(25),
        move |snap: &Snapshot| {
            sc.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            eprintln!(
                "live: completed={} active={} inflight_tasks={} batches={}",
                snap.counter_sum("bm_requests_completed_total"),
                gauge(snap, "bm_active_requests"),
                gauge(snap, "bm_inflight_tasks"),
                snap.counter_sum("bm_batch_reason_total"),
            );
        },
    );

    let model: Arc<dyn Model> = Arc::new(LstmLm::small());
    let rt = Runtime::start(
        Arc::clone(&model),
        RuntimeOptions::new()
            .workers(workers)
            .telemetry(Arc::clone(&tel))
            .trace(sampler.clone() as Arc<dyn TraceSink>),
    );
    let ds = Dataset::lstm(n, LengthDistribution::wmt15_clipped(24), 900, 0x11fe);
    let t0 = Instant::now();
    // Submit in waves with a short pause so the scraper observes the
    // run in flight rather than only its end state.
    let mut handles = Vec::with_capacity(n);
    for chunk in ds.items().chunks(64) {
        handles.extend(chunk.iter().map(|i| rt.submit_request(i).expect("submit")));
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut e2e_sum_us = 0u64;
    let mut completed = 0usize;
    for h in handles {
        let served = h.wait().completed();
        e2e_sum_us += served.timing.completion_us - served.timing.arrival_us;
        completed += 1;
    }
    let wall_s = t0.elapsed().as_secs_f64();
    rt.shutdown();
    let snapshot = scraper.stop();

    // Part 3: the stage decomposition must telescope exactly.
    let stage_sum_us = tiling_stage_sum(&snapshot);
    assert_eq!(
        stage_sum_us, e2e_sum_us,
        "stage histogram sums must reconcile with end-to-end latencies"
    );
    assert_eq!(
        snapshot.counter_sum("bm_requests_completed_total"),
        completed as u64,
        "completion counter must match resolved handles"
    );
    assert_eq!(gauge(&snapshot, "bm_active_requests"), 0);
    assert_eq!(gauge(&snapshot, "bm_inflight_tasks"), 0);

    let busy = snapshot
        .entries
        .iter()
        .filter(|e| e.name == "bm_worker_busy_us_total")
        .map(|e| {
            let w = e
                .labels
                .iter()
                .find(|(k, _)| k == "worker")
                .map(|(_, v)| v.clone())
                .unwrap_or_default();
            let v = match &e.value {
                MetricValue::Counter(c) => *c,
                _ => 0,
            };
            (w, v)
        })
        .collect();
    LiveRun {
        scrapes: scrape_count.load(std::sync::atomic::Ordering::Relaxed),
        completed,
        e2e_sum_us,
        stage_sum_us,
        wall_s,
        sampled_out: sampler.sampled_out(),
        ring_events: ring.events().len(),
        ring_dropped: ring.dropped(),
        busy,
        snapshot,
    }
}

/// Renders `BENCH_telemetry.json` (schema `bm-telemetry-bench/v1`).
fn to_json(ov: &Overhead, live: &LiveRun) -> String {
    let mut s = String::from("{\n  \"schema\": \"bm-telemetry-bench/v1\",\n");
    s.push_str(&format!(
        "  \"overhead\": {{\"disabled_s\": {:.4}, \"enabled_s\": {:.4}, \"overhead_pct\": {:.2}, \
         \"sim_disabled_s\": {:.4}, \"sim_enabled_s\": {:.4}, \"sim_overhead_pct\": {:.2}}},\n",
        ov.serve_off_s, ov.serve_on_s, ov.serve_pct, ov.sim_off_s, ov.sim_on_s, ov.sim_pct
    ));
    s.push_str(&format!(
        "  \"reconciliation\": {{\"stage_sum_us\": {}, \"e2e_sum_us\": {}, \"exact\": {}}},\n",
        live.stage_sum_us,
        live.e2e_sum_us,
        live.stage_sum_us == live.e2e_sum_us
    ));
    s.push_str(&format!(
        "  \"live\": {{\"completed\": {}, \"scrapes\": {}, \"sampled_out_events\": {}, \"ring_events\": {}, \"ring_dropped\": {}}},\n",
        live.completed, live.scrapes, live.sampled_out, live.ring_events, live.ring_dropped
    ));
    s.push_str(&format!(
        "  \"snapshot\": {}\n}}\n",
        live.snapshot.to_json()
    ));
    s
}

/// Runs the experiment, writing `BENCH_telemetry.json` and
/// `telemetry.prom` into `out_dir`.
///
/// # Panics
///
/// Panics if the stage decomposition fails to reconcile exactly, the
/// snapshot does not round-trip through JSON, or an overhead run
/// saturates.
pub fn run(scale: Scale, out_dir: &Path) -> Vec<Table> {
    let ov = measure_overhead(scale);
    let live = live_run(scale);

    // Part 4: strict JSON round-trip, then Prometheus exposition.
    let json = live.snapshot.to_json();
    let reparsed = Snapshot::from_json(&json).expect("snapshot JSON must reparse");
    assert_eq!(reparsed, live.snapshot, "snapshot must round-trip exactly");
    let prom = live.snapshot.to_prometheus();

    std::fs::create_dir_all(out_dir).expect("create results dir");
    let json_path = out_dir.join("BENCH_telemetry.json");
    std::fs::write(&json_path, to_json(&ov, &live)).expect("write BENCH_telemetry.json");
    eprintln!("wrote {}", json_path.display());
    let prom_path = out_dir.join("telemetry.prom");
    std::fs::write(&prom_path, &prom).expect("write telemetry.prom");
    eprintln!("wrote {}", prom_path.display());

    let mut t = Table::new("Telemetry overhead", &["metric", "value"]);
    let row = |t: &mut Table, m: &str, v: String| t.push_row(vec![m.to_string(), v]);
    row(
        &mut t,
        "serve_disabled_min_s",
        format!("{:.4}", ov.serve_off_s),
    );
    row(
        &mut t,
        "serve_enabled_min_s",
        format!("{:.4}", ov.serve_on_s),
    );
    row(&mut t, "serve_overhead_pct", format!("{:.2}", ov.serve_pct));
    row(&mut t, "sim_disabled_min_s", format!("{:.4}", ov.sim_off_s));
    row(&mut t, "sim_enabled_min_s", format!("{:.4}", ov.sim_on_s));
    row(
        &mut t,
        "sim_overhead_pct (scheduler only, worst case)",
        format!("{:.2}", ov.sim_pct),
    );

    let mut l = Table::new("Live threaded run", &["metric", "value"]);
    row(&mut l, "requests_completed", live.completed.to_string());
    row(&mut l, "scraper_ticks", live.scrapes.to_string());
    row(&mut l, "stage_sum_us", live.stage_sum_us.to_string());
    row(&mut l, "e2e_latency_sum_us", live.e2e_sum_us.to_string());
    row(&mut l, "reconciled_exactly", "yes".to_string());
    row(&mut l, "sampled_out_events", live.sampled_out.to_string());
    row(&mut l, "ring_events_kept", live.ring_events.to_string());
    row(&mut l, "ring_events_dropped", live.ring_dropped.to_string());
    for (w, busy_us) in &live.busy {
        let util = *busy_us as f64 / 1e6 / live.wall_s * 100.0;
        row(
            &mut l,
            &format!("worker_{w}_utilization_pct"),
            format!("{util:.1}"),
        );
    }
    vec![t, l]
}
