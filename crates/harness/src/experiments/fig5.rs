//! Figure 5: the timeline of graph batching vs cellular batching on the
//! paper's 8-request example.
//!
//! Each RNN cell takes exactly one time unit; the batch size is 4.
//! Requests 1–4 (lengths 2, 3, 3, 5) arrive at time 0; requests 5–8
//! (lengths 5, 7, 3, 1) arrive while the first batch is running.

use std::sync::Arc;

use bm_baseline::{DynGraphConfig, DynGraphServer};
use bm_core::SchedulerConfig;
use bm_device::{CostProfile, GpuCostModel};
use bm_metrics::Table;
use bm_model::{LstmLm, LstmLmConfig, Model, RequestInput};
use bm_sim::{simulate, CellularServer, Server, SimOptions};

use crate::experiments::Scale;

/// One time unit in µs.
const UNIT: u64 = 1_000;

/// A cost model where every cell execution takes exactly one unit,
/// independent of batch size — the figure's idealized device.
fn unit_cost() -> GpuCostModel {
    GpuCostModel {
        flops_per_us: 1e15,
        kernel_floor_us: UNIT as f64,
        smooth_p: 8.0,
        launch_gap_us: 0.0,
        gather_us_per_row: 0.0,
        transfer_us_per_row: 0.0,
        completion_poll_us: 0.0,
        sched_overhead_us: 0.0,
    }
}

/// `(length, arrival in units x 10)` for the figure's 8 requests.
const REQUESTS: &[(usize, u64)] = &[
    (2, 0),
    (3, 0),
    (3, 0),
    (5, 0),
    (5, 5),  // req5 arrives at t=0.5
    (7, 20), // req6 at t=2
    (3, 25), // req7 at t=2.5
    (1, 50), // req8 at t=5
];

fn arrivals() -> Vec<(u64, RequestInput)> {
    REQUESTS
        .iter()
        .map(|&(len, at10)| (at10 * UNIT / 10, RequestInput::Sequence(vec![1; len])))
        .collect()
}

/// Runs the experiment.
pub fn run(_scale: Scale) -> Vec<Table> {
    let model = Arc::new(LstmLm::new(LstmLmConfig {
        max_batch: 4,
        ..Default::default()
    }));
    let profile = CostProfile::from_registry(model.registry());

    // Graph batching: merge a batch of 4 graphs, run to the longest.
    let mut graph = DynGraphServer::new(
        Arc::clone(&model) as Arc<dyn Model>,
        DynGraphConfig {
            max_batch: 4,
            merge_us_per_node: 0.0,
            overlap_merge: true,
            per_level_extra_us: 0.0,
        },
        unit_cost(),
        profile.clone(),
    );
    let t_graph = timeline("Figure 5 (a): graph batching timeline", &mut graph);

    // Cellular batching: one task at a time so joins are visible each
    // step, as in the figure.
    let mut cellular = CellularServer::new(
        model,
        SchedulerConfig::new().max_tasks_to_submit(1),
        unit_cost(),
        profile,
    );
    let t_cell = timeline("Figure 5 (b): cellular batching timeline", &mut cellular);
    vec![t_graph, t_cell]
}

fn timeline(title: &str, server: &mut dyn Server) -> Table {
    let out = simulate(server, &arrivals(), SimOptions::default());
    let mut t = Table::new(
        title,
        &[
            "request",
            "length",
            "arrival",
            "exec_start",
            "completion",
            "latency",
        ],
    );
    let mut completions = out.completions.clone();
    completions.sort_by_key(|&(id, ..)| id);
    let units = |us: u64| format!("{:.1}", us as f64 / UNIT as f64);
    for &(id, arrival, start, completion) in &completions {
        t.push_row(vec![
            format!("req{}", id + 1),
            REQUESTS[id as usize].0.to_string(),
            units(arrival),
            units(start),
            units(completion),
            units(completion - arrival),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completion_of(table: &Table, req: usize) -> f64 {
        table
            .to_csv()
            .lines()
            .skip(1)
            .nth(req - 1)
            .unwrap()
            .split(',')
            .nth(4)
            .unwrap()
            .parse()
            .unwrap()
    }

    #[test]
    fn reproduces_paper_timelines() {
        let tables = run(Scale::Quick);
        let (graph, cell) = (&tables[0], &tables[1]);

        // Graph batching (paper): first batch done at t=5, second at 12.
        assert_eq!(completion_of(graph, 1), 5.0);
        assert_eq!(completion_of(graph, 4), 5.0);
        assert_eq!(completion_of(graph, 8), 12.0);

        // Cellular batching (paper): req1 leaves at t=2 and joins are
        // continuous; every request beats or matches its graph-batching
        // completion.
        assert_eq!(completion_of(cell, 1), 2.0);
        for r in 1..=8 {
            assert!(
                completion_of(cell, r) <= completion_of(graph, r),
                "req{r}: cellular {} vs graph {}",
                completion_of(cell, r),
                completion_of(graph, r)
            );
        }
    }
}
