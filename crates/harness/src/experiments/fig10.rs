//! Figure 10: the CDF of sequence lengths in the WMT-15-like dataset —
//! a validation that the synthetic workload matches the paper's
//! reported statistics (mean 24, max 330, ~99 % below 100).

use bm_metrics::Table;
use bm_workload::lengths::EmpiricalCdf;
use bm_workload::{Dataset, LengthDistribution};

use crate::experiments::Scale;

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let n = match scale {
        Scale::Quick => 10_000,
        Scale::Full => 100_000,
    };
    let ds = Dataset::lstm(n, LengthDistribution::wmt15(), 900, 0x77a1);
    let cdf = EmpiricalCdf::new(ds.cell_counts());

    let mut stats = Table::new(
        "Figure 10: WMT-15-like sequence length distribution",
        &["statistic", "paper", "ours"],
    );
    stats.push_row(vec![
        "mean".into(),
        "24".into(),
        format!("{:.1}", cdf.mean()),
    ]);
    stats.push_row(vec!["max".into(), "330".into(), cdf.max().to_string()]);
    stats.push_row(vec![
        "fraction <= 100".into(),
        "~0.99".into(),
        format!("{:.3}", cdf.fraction_le(100)),
    ]);
    stats.push_row(vec![
        "p50".into(),
        "-".into(),
        cdf.quantile(0.5).to_string(),
    ]);
    stats.push_row(vec![
        "p90".into(),
        "-".into(),
        cdf.quantile(0.9).to_string(),
    ]);

    let mut curve = Table::new("Figure 10 CDF curve", &["length", "cumulative_fraction"]);
    for (x, f) in cdf.curve(40) {
        curve.push_row(vec![x.to_string(), format!("{f:.4}")]);
    }
    vec![stats, curve]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_match_paper() {
        let tables = run(Scale::Quick);
        let csv = tables[0].to_csv();
        let ours = |stat: &str| -> f64 {
            csv.lines()
                .find(|l| l.starts_with(stat))
                .unwrap()
                .split(',')
                .nth(2)
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!((ours("mean") - 24.0).abs() < 1.5);
        assert!(ours("max") <= 330.0);
        assert!(ours("fraction <= 100") > 0.98);
    }
}
