//! Figure 15: TreeLSTM on a synthetic dataset of *identical* complete
//! 16-leaf binary trees, with the hard-coded "Ideal" static-graph
//! baseline.
//!
//! Paper findings: BatchMaker reaches ~70 % of the ideal peak (it pays
//! scheduling/gather overhead), but the ideal's *latency* is higher
//! because it runs all 31 cells per batch while BatchMaker and DyNet
//! batch cells at the same depth together.

use std::sync::Arc;

use bm_metrics::Table;
use bm_model::{RequestInput, TreeLstm, TreeLstmConfig, TreeShape};
use bm_workload::Dataset;

use crate::experiments::serving::{sweep, sweep_table, SweepPoint};
use crate::experiments::Scale;
use crate::systems::{ServerFactory, SystemKind};

/// Offered-load points, req/s.
pub const RATES: &[f64] = &[
    500.0, 1_000.0, 1_500.0, 2_000.0, 2_500.0, 3_000.0, 4_000.0, 5_000.0, 6_000.0, 7_000.0,
    8_000.0, 10_000.0, 12_000.0, 14_000.0,
];

/// Runs the sweep.
pub fn run_points(scale: Scale) -> (Vec<SweepPoint>, Table) {
    let model = Arc::new(TreeLstm::new(TreeLstmConfig {
        max_batch: 64,
        ..Default::default()
    }));
    let mut factory = ServerFactory::paper(model);
    factory.dyn_max_batch = 64;
    let ds = Dataset::identical_trees(64, 16, 900);
    let expected = RequestInput::Tree(TreeShape::complete(16, 900));
    let points = sweep(
        &factory,
        &[
            SystemKind::Ideal { expected },
            SystemKind::BatchMaker,
            SystemKind::Fold,
            SystemKind::Dynet,
        ],
        &ds,
        &scale.rates(RATES),
        1,
        scale,
    );
    let table = sweep_table(
        "Figure 15: identical complete 16-leaf trees, bmax=64",
        &points,
    );
    (points, table)
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    vec![run_points(scale).1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::serving::p90_at;

    #[test]
    fn ideal_peaks_highest_but_with_higher_latency() {
        let (points, _) = run_points(Scale::Quick);
        // Probe capacity directly with a deliberate overload.
        let model = Arc::new(TreeLstm::new(TreeLstmConfig {
            max_batch: 64,
            ..Default::default()
        }));
        let factory = ServerFactory::paper(model);
        let ds = Dataset::identical_trees(64, 16, 900);
        let expected = RequestInput::Tree(TreeShape::complete(16, 900));
        let overload = 25_000.0;
        let cap = |kind: &SystemKind| {
            let p = crate::experiments::serving::run_point(
                &factory,
                kind,
                &ds,
                overload,
                1,
                Scale::Quick,
            );
            p.outcome.throughput_rps()
        };
        let ideal = cap(&SystemKind::Ideal { expected });
        let bm = cap(&SystemKind::BatchMaker);
        // Paper: BatchMaker reaches a large fraction (~70 %) of the
        // ideal peak, but not all of it.
        assert!(ideal > bm, "ideal {ideal} vs bm {bm}");
        assert!(
            bm > 0.5 * ideal,
            "BatchMaker {bm} should be a large fraction of ideal {ideal}"
        );
        // Ideal's latency at low load exceeds BatchMaker's (31 serial
        // cells vs depth-batched execution).
        let r = RATES[0];
        let ideal_p90 = p90_at(&points, "Ideal", r).unwrap();
        let bm_p90 = p90_at(&points, "BatchMaker", r).unwrap();
        assert!(
            bm_p90 < ideal_p90,
            "bm p90 {bm_p90} vs ideal p90 {ideal_p90}"
        );
    }
}
