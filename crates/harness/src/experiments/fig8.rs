//! Figure 8: the bucket-width trade-off for MXNet-style padding.
//!
//! Fine buckets (width 1) waste no padding but multiply the number of
//! round-robin turns a request waits; coarse buckets (width 40) wait
//! less but pad more. Width 10 is the paper's sweet spot.

use std::sync::Arc;

use bm_metrics::Table;
use bm_model::LstmLm;
use bm_workload::{Dataset, LengthDistribution};

use crate::experiments::serving::{sweep, sweep_table, SweepPoint};
use crate::experiments::Scale;
use crate::systems::{ServerFactory, SystemKind};

/// The widths swept in the paper.
pub const WIDTHS: &[usize] = &[1, 5, 10, 20, 40];

/// Offered-load points, req/s.
pub const RATES: &[f64] = &[
    1_000.0, 2_000.0, 4_000.0, 6_000.0, 8_000.0, 10_000.0, 12_000.0, 14_000.0, 16_000.0,
];

/// Runs the sweep, returning points and the rendered table.
pub fn run_points(scale: Scale) -> (Vec<(usize, Vec<SweepPoint>)>, Table) {
    let model = Arc::new(LstmLm::new(bm_model::LstmLmConfig {
        max_batch: 512,
        ..Default::default()
    }));
    let factory = ServerFactory::paper(model);
    let ds = Dataset::lstm(20_000, LengthDistribution::wmt15(), 900, 0x77a1);

    let mut t = Table::new(
        "Figure 8: MXNet bucket-width sweep (bmax=512)",
        &[
            "bucket_width",
            "offered_rps",
            "throughput_rps",
            "p50_ms",
            "p90_ms",
            "p99_ms",
        ],
    );
    let mut all = Vec::new();
    for &w in WIDTHS {
        let points = sweep(
            &factory,
            &[SystemKind::Mxnet { bucket_width: w }],
            &ds,
            &scale.rates(RATES),
            1,
            scale,
        );
        for p in &points {
            let inner = sweep_table("x", std::slice::from_ref(p));
            // Reuse the standard row, substituting the system column
            // with the width.
            let csv = inner.to_csv();
            let row: Vec<String> = csv
                .lines()
                .nth(1)
                .expect("one row")
                .split(',')
                .map(|s| s.to_string())
                .collect();
            t.push_row(vec![
                format!("bw {w}"),
                row[1].clone(),
                row[2].clone(),
                row[3].clone(),
                row[4].clone(),
                row[5].clone(),
            ]);
        }
        all.push((w, points));
    }
    (all, t)
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    vec![run_points(scale).1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::serving::{p90_at, peak_throughput};

    #[test]
    fn width_tradeoff_holds() {
        let (all, _) = run_points(Scale::Quick);
        let by_width = |w: usize| &all.iter().find(|(x, _)| *x == w).unwrap().1;
        // Coarse buckets: better latency at the lowest load than width 1
        // (fewer round-robin turns to wait behind — §7.2).
        let low = RATES[0];
        let p90_w1 = p90_at(by_width(1), "MXNet", low);
        let p90_w10 = p90_at(by_width(10), "MXNet", low).expect("width 10 at low load");
        let p90_w40 = p90_at(by_width(40), "MXNet", low).expect("width 40 at low load");
        if let Some(w1) = p90_w1 {
            assert!(
                p90_w40 < w1 && p90_w10 < w1,
                "wider buckets should beat width 1 at low load: w1={w1} w10={p90_w10} w40={p90_w40}"
            );
        }
        // Width 1's per-length buckets leave long, rare lengths running
        // nearly solo, so within any bounded horizon its measured peak
        // trails width 10 badly (see EXPERIMENTS.md for the discussion
        // of the paper's asymptotic width-1 claim).
        let peaks: Vec<(usize, f64)> = WIDTHS
            .iter()
            .map(|&w| (w, peak_throughput(by_width(w), "MXNet")))
            .collect();
        let peak_of = |w: usize| peaks.iter().find(|&&(x, _)| x == w).unwrap().1;
        assert!(
            peak_of(10) > peak_of(1),
            "width 10 peak {} should beat width 1 {}",
            peak_of(10),
            peak_of(1)
        );
        // And width 10 stays close to the best width overall — the
        // combined latency/throughput sweet spot the paper picks. (At
        // Full scale width 10 *is* the best; the Quick sweeps are too
        // short to amortize narrow buckets fully, hence the slack.)
        let best = peaks.iter().map(|&(_, p)| p).fold(0.0, f64::max);
        assert!(
            peak_of(10) >= 0.8 * best,
            "width 10 peak {} vs best {best} ({peaks:?})",
            peak_of(10)
        );
    }
}
