//! `repro trace`: record an instrumented serving run and export it.
//!
//! Not a paper figure — the observability companion to the scheduler:
//! serves a short LSTM run and a short Seq2Seq run through the
//! simulated [`CellularServer`] with a [`RingBufferSink`] attached, then
//! writes two artifacts per run under the results directory:
//!
//! - `trace_<run>.chrome.json` — Chrome trace-event JSON; load it at
//!   `ui.perfetto.dev` (or `chrome://tracing`) to see one track per
//!   worker, every batched task as a slice annotated with its batch
//!   size and the Algorithm 1 branch that formed it, and flow arrows
//!   following each request across workers;
//! - `trace_<run>.timelines.txt` — plain-text per-request timelines
//!   reconstructed by [`bm_metrics::timeline`].
//!
//! The returned tables summarise what was captured (event counts by
//! kind, batch-formation reasons, migrations).

use std::path::Path;
use std::sync::Arc;

use bm_metrics::{reconstruct_timelines, render_timelines, Table};
use bm_model::{LstmLm, LstmLmConfig, Model, Seq2Seq};
use bm_sim::{simulate, CellularServer, SimOptions};
use bm_trace::{chrome_trace_with_meta, EventKind, RingBufferSink, TraceEvent};
use bm_workload::{Dataset, LengthDistribution};

use crate::experiments::serving::arrivals;
use crate::experiments::Scale;

/// Events the capture buffer holds; large enough that short recorded
/// runs never wrap.
const CAPACITY: usize = 1 << 20;

fn record_run(
    name: &str,
    model: Arc<dyn Model>,
    ds: &Dataset,
    rate: f64,
    n: usize,
    workers: usize,
    out_dir: &Path,
) -> Table {
    let sink = Arc::new(RingBufferSink::new(CAPACITY));
    let mut server = CellularServer::paper_scale(model).with_trace(sink.clone());
    let arr = arrivals(ds, rate, n, 0x7ace ^ n as u64);
    let out = simulate(
        &mut server,
        &arr,
        SimOptions::new().workers(workers).trace(sink.clone()),
    );
    let events = sink.events();

    std::fs::create_dir_all(out_dir).expect("create results dir");
    let chrome_path = out_dir.join(format!("trace_{name}.chrome.json"));
    std::fs::write(
        &chrome_path,
        chrome_trace_with_meta(&events, sink.dropped()),
    )
    .expect("write chrome trace");
    let timelines = reconstruct_timelines(&events);
    let text_path = out_dir.join(format!("trace_{name}.timelines.txt"));
    std::fs::write(&text_path, render_timelines(&timelines)).expect("write timelines");
    eprintln!(
        "wrote {} and {}",
        chrome_path.display(),
        text_path.display()
    );

    summarize(
        name,
        &events,
        timelines.len(),
        out.recorder.len(),
        sink.dropped(),
    )
}

fn summarize(
    name: &str,
    events: &[TraceEvent],
    timelines: usize,
    completed: usize,
    dropped: u64,
) -> Table {
    let mut batches = 0u64;
    let mut by_reason = [0u64; 3];
    let mut migrations = 0u64;
    let mut counts = [0u64; bm_trace::NUM_EVENT_KINDS];
    // Per-worker busy time from task slices: each task's wall time is
    // the span between its TaskStarted and TaskCompleted events.
    let mut task_start: std::collections::HashMap<u64, u64> = Default::default();
    let mut busy_us: std::collections::BTreeMap<u32, u64> = Default::default();
    let (mut span_lo, mut span_hi) = (u64::MAX, 0u64);
    for ev in events {
        counts[ev.kind.index()] += 1;
        span_lo = span_lo.min(ev.ts_us);
        span_hi = span_hi.max(ev.ts_us);
        match &ev.kind {
            EventKind::BatchFormed { reason, .. } => {
                batches += 1;
                by_reason[*reason as usize] += 1;
            }
            EventKind::SubgraphMigrated { .. } => migrations += 1,
            EventKind::TaskStarted { task, .. } => {
                task_start.insert(*task, ev.ts_us);
            }
            EventKind::TaskCompleted { task, worker } => {
                if let Some(start) = task_start.remove(task) {
                    *busy_us.entry(*worker).or_default() += ev.ts_us.saturating_sub(start);
                }
            }
            _ => {}
        }
    }
    let span_us = span_hi.saturating_sub(span_lo).max(1);
    let mut t = Table::new(format!("Trace summary: {name}"), &["metric", "value"]);
    let mut row = |metric: &str, value: String| t.push_row(vec![metric.to_string(), value]);
    row("events_captured", events.len().to_string());
    row("events_dropped", dropped.to_string());
    row("request_timelines", timelines.to_string());
    row("requests_completed", completed.to_string());
    row("batches_formed", batches.to_string());
    row("batches_saturation", by_reason[0].to_string());
    row("batches_starvation", by_reason[1].to_string());
    row("batches_priority", by_reason[2].to_string());
    row("subgraph_migrations", migrations.to_string());
    for (w, b) in &busy_us {
        // Busy fraction of the captured span; workers run tasks
        // serially, so this is true utilization, not oversubscription.
        let util = *b as f64 / span_us as f64 * 100.0;
        row(
            &format!("worker_{w}_utilization_pct"),
            format!(
                "{util:.1} ({:.1} ms busy / {:.1} ms span)",
                *b as f64 / 1e3,
                span_us as f64 / 1e3
            ),
        );
    }
    for (i, c) in counts.iter().enumerate() {
        // Per-kind counts for kinds not already summarised above.
        if i != 3 && i != 7 {
            row(bm_trace::KIND_NAMES[i], c.to_string());
        }
    }
    t
}

/// Records and exports both runs; artifacts land in `out_dir`.
pub fn run(scale: Scale, out_dir: &Path) -> Vec<Table> {
    let (n_lstm, n_s2s) = match scale {
        Scale::Quick => (80, 60),
        Scale::Full => (600, 400),
    };
    let lstm = Arc::new(LstmLm::new(LstmLmConfig {
        max_batch: 512,
        ..Default::default()
    }));
    let ds_lstm = Dataset::lstm(n_lstm, LengthDistribution::wmt15_clipped(30), 900, 0x1a7);
    let t_lstm = record_run("lstm", lstm, &ds_lstm, 2_000.0, n_lstm, 2, out_dir);

    let s2s = Arc::new(Seq2Seq::small());
    let ds_s2s = Dataset::seq2seq(n_s2s, LengthDistribution::wmt15_clipped(12), 450, 0x2b8);
    let t_s2s = record_run("seq2seq", s2s, &ds_s2s, 1_000.0, n_s2s, 2, out_dir);

    vec![t_lstm, t_s2s]
}
