//! Figure 14: TreeLSTM on the TreeBank-like dataset, maximum batch 64.
//!
//! BatchMaker vs TensorFlow Fold and DyNet. Padding cannot batch trees
//! (§2.3), so the baselines are the dynamic graph-merging systems.

use std::sync::Arc;

use bm_metrics::Table;
use bm_model::{TreeLstm, TreeLstmConfig};
use bm_workload::{Dataset, LengthDistribution};

use crate::experiments::serving::{sweep, sweep_table, SweepPoint};
use crate::experiments::Scale;
use crate::systems::{ServerFactory, SystemKind};

/// Offered-load points, req/s.
pub const RATES: &[f64] = &[
    250.0, 500.0, 750.0, 1_000.0, 1_500.0, 2_000.0, 2_500.0, 3_000.0, 3_500.0, 4_000.0, 5_000.0,
    6_000.0, 7_000.0,
];

/// The TreeBank-like parse-tree dataset (10k trees in the paper).
pub fn dataset() -> Dataset {
    Dataset::trees(10_000, LengthDistribution::treebank(), 900, 0x7ee5)
}

/// Runs the sweep.
pub fn run_points(scale: Scale) -> (Vec<SweepPoint>, Table) {
    let model = Arc::new(TreeLstm::new(TreeLstmConfig {
        max_batch: 64,
        ..Default::default()
    }));
    let mut factory = ServerFactory::paper(model);
    factory.dyn_max_batch = 64;
    let ds = dataset();
    let points = sweep(
        &factory,
        &[SystemKind::BatchMaker, SystemKind::Fold, SystemKind::Dynet],
        &ds,
        &scale.rates(RATES),
        1,
        scale,
    );
    let table = sweep_table("Figure 14: TreeLSTM on TreeBank-like, bmax=64", &points);
    (points, table)
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    vec![run_points(scale).1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::serving::{p90_at, peak_throughput};

    #[test]
    fn ordering_matches_paper() {
        let (points, _) = run_points(Scale::Quick);
        let bm = peak_throughput(&points, "BatchMaker");
        let dynet = peak_throughput(&points, "DyNet");
        let fold = peak_throughput(&points, "TF Fold");
        // Paper: BatchMaker 3.1k > DyNet 2.1k > Fold ~0.8k.
        assert!(bm > dynet, "bm {bm} vs dynet {dynet}");
        assert!(dynet > fold, "dynet {dynet} vs fold {fold}");
        // At moderate load BatchMaker's p90 beats DyNet's
        // (paper: 6.8 ms vs 9.5 ms at 1k req/s).
        let r = 1_000.0;
        if let (Some(b), Some(d)) = (
            p90_at(&points, "BatchMaker", r),
            p90_at(&points, "DyNet", r),
        ) {
            assert!(b < d, "p90 at {r}: bm {b} vs dynet {d}");
        }
    }
}
