//! The paper's headline numbers (§1, §7 highlights): latency reductions
//! and throughput improvements of BatchMaker over each baseline,
//! derived from the same sweeps as Figures 7, 13 and 14.

use bm_metrics::Table;

use crate::experiments::serving::{p90_at, peak_throughput, SweepPoint};
use crate::experiments::{fig13, fig14, fig7, Scale};

/// Latency reduction (%) of BatchMaker's p90 vs `base` at `rate`.
fn latency_reduction(points: &[SweepPoint], bm: &str, base: &str, rate: f64) -> Option<f64> {
    let b = p90_at(points, bm, rate)?;
    let x = p90_at(points, base, rate)?;
    Some((1.0 - b / x) * 100.0)
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "Headline comparison (paper §7 highlights vs measured)",
        &["metric", "paper", "measured"],
    );

    // LSTM (Figure 7a data).
    let (lstm, _) = fig7::run_sub(scale, 512);
    let bm_peak = peak_throughput(&lstm, "BatchMaker");
    let mx_peak = peak_throughput(&lstm, "MXNet");
    let tf_peak = peak_throughput(&lstm, "TensorFlow");
    t.push_row(vec![
        "LSTM throughput vs MXNet/TF".into(),
        "+25%".into(),
        format!(
            "+{:.0}% / +{:.0}%",
            (bm_peak / mx_peak - 1.0) * 100.0,
            (bm_peak / tf_peak - 1.0) * 100.0
        ),
    ]);
    // Moderate load = half the baseline peak (the paper's definition).
    let moderate = mx_peak / 2.0;
    t.push_row(vec![
        "LSTM p90 latency reduction (moderate load)".into(),
        "37.5-90.5%".into(),
        format!(
            "{:.0}% vs MXNet, {:.0}% vs TF",
            latency_reduction(&lstm, "BatchMaker", "MXNet", moderate).unwrap_or(f64::NAN),
            latency_reduction(&lstm, "BatchMaker", "TensorFlow", moderate).unwrap_or(f64::NAN)
        ),
    ]);

    // Seq2Seq (Figure 13, 2 GPUs).
    let (s2s, _) = fig13::run_points(scale, 2);
    let by = |name: &str| &s2s.iter().find(|(n, _)| n == name).unwrap().1;
    let bm_s2s = peak_throughput(by("BatchMaker-512,256"), "BatchMaker");
    let mx_s2s = peak_throughput(by("MXNet"), "MXNet");
    t.push_row(vec![
        "Seq2Seq throughput vs MXNet".into(),
        "+60%".into(),
        format!("+{:.0}%", (bm_s2s / mx_s2s - 1.0) * 100.0),
    ]);
    let moderate_s2s = mx_s2s / 2.0;
    let bm_p90 = p90_at(by("BatchMaker-512,256"), "BatchMaker", moderate_s2s);
    let mx_p90 = p90_at(by("MXNet"), "MXNet", moderate_s2s);
    t.push_row(vec![
        "Seq2Seq p90 latency reduction (moderate load)".into(),
        "17.5-82.6%".into(),
        match (bm_p90, mx_p90) {
            (Some(b), Some(m)) => format!("{:.0}% vs MXNet", (1.0 - b / m) * 100.0),
            _ => "-".into(),
        },
    ]);

    // TreeLSTM (Figure 14).
    let (tree, _) = fig14::run_points(scale);
    let bm_tree = peak_throughput(&tree, "BatchMaker");
    let fold = peak_throughput(&tree, "TF Fold");
    let dynet = peak_throughput(&tree, "DyNet");
    t.push_row(vec![
        "TreeLSTM throughput vs Fold".into(),
        "4x".into(),
        format!("{:.1}x", bm_tree / fold),
    ]);
    t.push_row(vec![
        "TreeLSTM throughput vs DyNet".into(),
        "1.8x".into(),
        format!("{:.1}x", bm_tree / dynet),
    ]);
    let r = 1_000.0;
    t.push_row(vec![
        "TreeLSTM p90 latency reduction vs DyNet (1k req/s)".into(),
        "28%".into(),
        latency_reduction(&tree, "BatchMaker", "DyNet", r)
            .map(|v| format!("{v:.0}%"))
            .unwrap_or_else(|| "-".into()),
    ]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_table_has_all_rows() {
        let tables = run(Scale::Quick);
        assert_eq!(tables[0].row_count(), 7);
        let csv = tables[0].to_csv();
        // Every measured cell is populated.
        for line in csv.lines().skip(1) {
            assert!(!line.ends_with(",-"), "missing measurement: {line}");
        }
    }
}
