//! Experiment harness regenerating every figure of the paper.
//!
//! Each submodule of [`experiments`] reproduces one figure of the
//! evaluation (§7). The `repro` binary dispatches to them and writes
//! markdown/CSV output under `results/`.
//!
//! The experiments run the *same* `bm_core::CellularEngine` that the
//! correctness tests exercise, under the discrete-event driver of
//! `bm-sim` with the Figure-3-calibrated `bm_device::GpuCostModel`.
//! Baselines implement the batching policies of MXNet/TensorFlow
//! (padding + bucketing), TensorFlow Fold and DyNet (dynamic graph
//! merging), and the Figure 15 ideal static graph.

pub mod experiments;
pub mod output;
pub mod systems;

pub use output::write_results;
pub use systems::{ServerFactory, SystemKind};
