//! A minimal JSON parser used to validate exporter output in tests.
//!
//! The build environment vendors no JSON crate, and the exporter writes
//! JSON by hand — so round-trip tests need an independent reader. This
//! is a strict recursive-descent parser over the full JSON grammar
//! (objects, arrays, strings with escapes, numbers, booleans, null);
//! it favours clarity over speed and is not exposed on any hot path.

use std::collections::HashMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Duplicate keys keep the last value.
    Obj(HashMap<String, Value>),
}

impl Value {
    /// Member lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = HashMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(map)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err(self.err("truncated \\u escape"));
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| self.err("non-utf8 \\u escape"))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
                        self.pos += 4;
                        // Surrogate pairs are not needed by our exporter;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(c) => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let len = match c {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return Err(self.err("invalid utf-8")),
                        };
                        if start + len > self.bytes.len() {
                            return Err(self.err("truncated utf-8"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..start + len])
                            .map_err(|_| self.err("invalid utf-8"))?;
                        out.push_str(s);
                        self.pos = start + len;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny","d":true,"e":null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = parse(r#""A\t""#).unwrap();
        assert_eq!(v.as_str(), Some("A\t"));
    }
}
