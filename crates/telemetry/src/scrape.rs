//! A periodic snapshot scraper thread.
//!
//! [`Scraper::start`] spawns a background thread that snapshots a
//! [`Telemetry`] registry every `period`, keeps the most recent
//! snapshot for [`Scraper::latest`], and optionally hands each one to a
//! callback (the harness uses this to print live stats lines during a
//! load run). [`Scraper::stop`] joins the thread and returns one final,
//! fresh snapshot so callers always end with a complete view.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::registry::Telemetry;
use crate::snapshot::Snapshot;

/// Handle to a running scraper thread.
#[derive(Debug)]
pub struct Scraper {
    stop: Arc<AtomicBool>,
    latest: Arc<Mutex<Option<Snapshot>>>,
    handle: Option<thread::JoinHandle<()>>,
    tel: Arc<Telemetry>,
}

impl Scraper {
    /// Starts a scraper that snapshots `tel` every `period`.
    pub fn start(tel: Arc<Telemetry>, period: Duration) -> Scraper {
        Scraper::start_with(tel, period, |_| {})
    }

    /// Starts a scraper that also passes each snapshot to `observer`.
    pub fn start_with<F>(tel: Arc<Telemetry>, period: Duration, mut observer: F) -> Scraper
    where
        F: FnMut(&Snapshot) + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let latest = Arc::new(Mutex::new(None));
        let handle = {
            let tel = Arc::clone(&tel);
            let stop = Arc::clone(&stop);
            let latest = Arc::clone(&latest);
            thread::Builder::new()
                .name("bm-telemetry-scraper".into())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        // Sleep in short slices so stop() returns
                        // promptly even with a long scrape period.
                        let deadline = Instant::now() + period;
                        while Instant::now() < deadline {
                            if stop.load(Ordering::Acquire) {
                                return;
                            }
                            let left = deadline.saturating_duration_since(Instant::now());
                            thread::sleep(left.min(Duration::from_millis(5)));
                        }
                        let snap = tel.snapshot();
                        observer(&snap);
                        *latest.lock().unwrap() = Some(snap);
                    }
                })
                .expect("spawn scraper thread")
        };
        Scraper {
            stop,
            latest,
            handle: Some(handle),
            tel,
        }
    }

    /// The most recent periodic snapshot, if one has been taken yet.
    pub fn latest(&self) -> Option<Snapshot> {
        self.latest.lock().unwrap().clone()
    }

    /// Stops the thread, joins it, and returns a final fresh snapshot.
    pub fn stop(mut self) -> Snapshot {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.tel.snapshot()
    }
}

impl Drop for Scraper {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scraper_observes_and_final_snapshot_is_fresh() {
        let tel = Telemetry::new();
        let c = tel.counter("ticks");
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let scraper = Scraper::start_with(Arc::clone(&tel), Duration::from_millis(5), move |_| {
            seen2.fetch_add(1, Ordering::Relaxed);
        });
        c.add(7);
        // Wait for at least one periodic scrape.
        let t0 = Instant::now();
        while seen.load(Ordering::Relaxed) == 0 && t0.elapsed() < Duration::from_secs(5) {
            thread::sleep(Duration::from_millis(2));
        }
        assert!(seen.load(Ordering::Relaxed) >= 1, "scraper never ticked");
        c.add(1);
        let last = scraper.stop();
        // The final snapshot is taken after join, so it must see both adds.
        assert_eq!(last.counter_sum("ticks"), 8);
    }

    #[test]
    fn stop_is_prompt_with_long_period() {
        let tel = Telemetry::new();
        let scraper = Scraper::start(tel, Duration::from_secs(3600));
        let t0 = Instant::now();
        let _ = scraper.stop();
        assert!(t0.elapsed() < Duration::from_secs(2), "stop was not prompt");
    }
}
