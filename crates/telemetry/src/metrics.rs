//! Lock-free sharded metric primitives.
//!
//! Every handle fans writes out across [`SHARDS`] cache-line-padded
//! atomic cells indexed by a thread-local shard id, so concurrent
//! recorders on different threads never contend on one cache line.
//! Reads (snapshots) sum the shards; they are racy-by-design and see a
//! value that was true at *some* interleaving, which is all a scrape
//! needs. All atomics use relaxed ordering — metrics carry no
//! happens-before obligations.

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::snapshot::HistogramSnapshot;

/// Write shards per metric. Eight covers the worker counts this
/// workspace runs (2–8) without making snapshot sums expensive.
pub const SHARDS: usize = 8;

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The calling thread's shard index, assigned round-robin on first use.
#[inline]
fn shard_index() -> usize {
    SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(v);
            v
        }
    })
}

/// One atomic on its own cache line, so shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

#[repr(align(64))]
#[derive(Default)]
struct PaddedI64(AtomicI64);

#[derive(Default)]
struct CounterCore {
    shards: [PaddedU64; SHARDS],
}

/// A monotonically increasing counter. Cloning shares the underlying
/// shards — handles are cheap to clone and `Send + Sync`.
#[derive(Clone, Default)]
pub struct Counter(Arc<CounterCore>);

impl Counter {
    /// A fresh zeroed counter (normally obtained from the registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the calling thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.shards[shard_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total across all shards.
    pub fn value(&self) -> u64 {
        self.0
            .shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.value()).finish()
    }
}

#[derive(Default)]
struct GaugeCore {
    shards: [PaddedI64; SHARDS],
}

/// A signed instantaneous value (queue depth, active requests).
///
/// [`Gauge::add`]/[`Gauge::sub`] are sharded and safe from any thread.
/// [`Gauge::set`] overwrites the whole gauge and is only meaningful
/// when a single thread owns the value (e.g. the engine's manager
/// thread publishing a level it computes itself) — do not mix `set`
/// with concurrent `add`/`sub` from other threads.
#[derive(Clone, Default)]
pub struct Gauge(Arc<GaugeCore>);

impl Gauge {
    /// A fresh zeroed gauge (normally obtained from the registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` (may be negative) to the calling thread's shard.
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.shards[shard_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` from the calling thread's shard.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Sets the gauge to `v` (single-writer: stores `v` in shard 0 and
    /// zeroes the rest).
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.shards[0].0.store(v, Ordering::Relaxed);
        for s in &self.0.shards[1..] {
            // Loads are far cheaper than stores here: after the first
            // `set`, the non-owner shards stay zero, so a steady-state
            // single-writer `set` touches one cache line, not eight.
            if s.0.load(Ordering::Relaxed) != 0 {
                s.0.store(0, Ordering::Relaxed);
            }
        }
    }

    /// The current level across all shards.
    pub fn value(&self) -> i64 {
        self.0
            .shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.value()).finish()
    }
}

// ---------------------------------------------------------------------------
// Log-bucketed histogram
// ---------------------------------------------------------------------------

/// Sub-bucket resolution bits: 8 sub-buckets per power of two, bounding
/// relative quantile error below 1/8 = 12.5%.
const SUB_BITS: u32 = 3;
const SUB_BUCKETS: usize = 1 << SUB_BITS; // 8

/// Values below this are bucketed exactly (one bucket per value).
const EXACT_LIMIT: u64 = 16;

/// Total buckets: 16 exact + 60 magnitudes (2^4 .. 2^63) × 8 sub-buckets.
pub const NUM_BUCKETS: usize = EXACT_LIMIT as usize + 60 * SUB_BUCKETS; // 496

/// The bucket index a value lands in. Monotone in `v`, so the
/// rank-order of samples survives bucketing exactly.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < EXACT_LIMIT {
        v as usize
    } else {
        let m = 63 - v.leading_zeros() as usize; // 4..=63
        let sub = ((v >> (m - SUB_BITS as usize)) & (SUB_BUCKETS as u64 - 1)) as usize;
        EXACT_LIMIT as usize + (m - 4) * SUB_BUCKETS + sub
    }
}

/// Inclusive `(lo, hi)` value range of bucket `i`. For every value `v`
/// in the range, `hi <= v * 1.125` (the HDR error bound the proptest
/// suite asserts).
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < NUM_BUCKETS, "bucket index {i} out of range");
    if i < EXACT_LIMIT as usize {
        (i as u64, i as u64)
    } else {
        let m = (i - EXACT_LIMIT as usize) / SUB_BUCKETS + 4;
        let sub = (i - EXACT_LIMIT as usize) % SUB_BUCKETS;
        let width = 1u64 << (m - SUB_BITS as usize);
        let lo = (SUB_BUCKETS as u64 + sub as u64) * width;
        // `lo + (width - 1)`: the top bucket ends exactly at u64::MAX,
        // so add the already-decremented width to avoid overflow.
        (lo, lo + (width - 1))
    }
}

struct HistShard {
    buckets: Box<[AtomicU64]>, // NUM_BUCKETS long
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistShard {
    fn default() -> Self {
        let mut v = Vec::with_capacity(NUM_BUCKETS);
        v.resize_with(NUM_BUCKETS, AtomicU64::default);
        HistShard {
            buckets: v.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

struct HistogramCore {
    shards: [HistShard; SHARDS],
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            shards: Default::default(),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A log-bucketed (HDR-style) histogram of `u64` samples.
///
/// Bucket layout: values `< 16` get exact buckets; above that, each
/// power of two is split into 8 sub-buckets, so any quantile estimate
/// overshoots the exact sample by at most 12.5% (`sum`, `count`, `min`
/// and `max` stay exact). Recording touches one shard's bucket, count
/// and sum plus the shared min/max pair — no locks, no allocation.
#[derive(Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// A fresh empty histogram (normally obtained from the registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let shard = &self.0.shards[shard_index()];
        shard.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
        // Check before the RMW: once min/max have settled (almost every
        // record in steady state), the shared pair costs two loads
        // instead of two cross-core atomic RMWs. Racing improvements
        // still land — fetch_min/fetch_max re-check atomically.
        if v < self.0.min.load(Ordering::Relaxed) {
            self.0.min.fetch_min(v, Ordering::Relaxed);
        }
        if v > self.0.max.load(Ordering::Relaxed) {
            self.0.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.0
            .shards
            .iter()
            .map(|s| s.count.load(Ordering::Relaxed))
            .sum()
    }

    /// Exact sum of all samples (wrapping on overflow past `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.0
            .shards
            .iter()
            .map(|s| s.sum.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }

    /// Merges the shards into an immutable [`HistogramSnapshot`]
    /// (only non-empty buckets are retained).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut merged = [0u64; NUM_BUCKETS];
        let mut count = 0u64;
        let mut sum = 0u64;
        for shard in &self.0.shards {
            count += shard.count.load(Ordering::Relaxed);
            sum = sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
            for (m, b) in merged.iter_mut().zip(shard.buckets.iter()) {
                *m += b.load(Ordering::Relaxed);
            }
        }
        let buckets: Vec<(u64, u64)> = merged
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (bucket_bounds(i).1, *c))
            .collect();
        let min = if count == 0 {
            0
        } else {
            self.0.min.load(Ordering::Relaxed)
        };
        HistogramSnapshot {
            count,
            sum,
            min,
            max: self.0.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_shards() {
        let c = Counter::new();
        c.add(3);
        c.inc();
        assert_eq!(c.value(), 4);
    }

    #[test]
    fn gauge_add_sub_set() {
        let g = Gauge::new();
        g.add(5);
        g.sub(2);
        assert_eq!(g.value(), 3);
        g.set(-7);
        assert_eq!(g.value(), -7);
    }

    #[test]
    fn bucket_index_is_monotone_and_bounds_tile() {
        // Exhaustive over small values, then spot-check magnitudes.
        for v in 0..4096u64 {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} i={i} lo={lo} hi={hi}");
            if v > 0 {
                assert!(bucket_index(v - 1) <= i);
            }
        }
        // Buckets tile the line with no gaps or overlap.
        let mut expect = 0u64;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expect, "bucket {i} starts at {lo}, expected {expect}");
            assert!(hi >= lo);
            if hi == u64::MAX {
                assert_eq!(i, NUM_BUCKETS - 1);
                break;
            }
            expect = hi + 1;
        }
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, u64::MAX);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_error_is_bounded() {
        for v in [16u64, 100, 1000, 123_456, u32::MAX as u64, 1 << 60] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(hi as f64 <= lo as f64 * 1.125, "v={v} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn histogram_records_exact_sums_and_extremes() {
        let h = Histogram::new();
        for v in [0u64, 1, 15, 16, 17, 1000, 65_536] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1 + 15 + 16 + 17 + 1000 + 65_536);
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 65_536);
        assert_eq!(snap.buckets.iter().map(|(_, c)| c).sum::<u64>(), 7);
    }

    #[test]
    fn empty_histogram_snapshot_is_sane() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
        assert!(snap.buckets.is_empty());
        assert_eq!(snap.quantile(0.5), None);
    }
}
