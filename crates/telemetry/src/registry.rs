//! The process-wide metric registry.
//!
//! [`Telemetry`] hands out cheap clonable [`Counter`]/[`Gauge`]/
//! [`Histogram`] handles keyed by `(name, labels)`. Registration takes
//! a mutex; recording through a handle never does — instrumented code
//! registers once at startup and holds the handles. A *disabled*
//! registry still hands out working handles, but reports
//! [`Telemetry::enabled`]` == false` so instrumentation layers skip
//! registration entirely and pay one branch (or one `Option` check)
//! per call site, mirroring `TraceSink::enabled`.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{MetricEntry, MetricValue, Snapshot};

type Key = (String, Vec<(String, String)>);

#[derive(Default)]
struct Registry {
    counters: BTreeMap<Key, Counter>,
    gauges: BTreeMap<Key, Gauge>,
    histograms: BTreeMap<Key, Histogram>,
}

/// A registry of named metrics shared across the serving stack.
///
/// Always used behind `Arc`; every layer (engine, runtime, simulator,
/// trace sinks, harness) holds the same instance, so one
/// [`Telemetry::snapshot`] sees the whole process. Metric names must be
/// unique across types: registering `foo` as both a counter and a gauge
/// panics.
pub struct Telemetry {
    enabled: bool,
    inner: Mutex<Registry>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled)
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// A fresh enabled registry.
    pub fn new() -> Arc<Telemetry> {
        Arc::new(Telemetry {
            enabled: true,
            inner: Mutex::new(Registry::default()),
        })
    }

    /// The disabled default: handles still work if requested, but
    /// instrumentation layers check [`Telemetry::enabled`] and skip
    /// wiring entirely.
    pub fn disabled() -> Arc<Telemetry> {
        Arc::new(Telemetry {
            enabled: false,
            inner: Mutex::new(Registry::default()),
        })
    }

    /// Whether instrumentation should register handles and record.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The unlabelled counter `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// The counter `name{labels}`, creating it on first use. Repeated
    /// calls with the same key return handles to the same shards.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = make_key(name, labels);
        let mut g = self.inner.lock().unwrap();
        assert_unique(name, &key, &g.gauges, "gauge");
        assert_unique(name, &key, &g.histograms, "histogram");
        g.counters.entry(key).or_default().clone()
    }

    /// The unlabelled gauge `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// The gauge `name{labels}`, creating it on first use.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = make_key(name, labels);
        let mut g = self.inner.lock().unwrap();
        assert_unique(name, &key, &g.counters, "counter");
        assert_unique(name, &key, &g.histograms, "histogram");
        g.gauges.entry(key).or_default().clone()
    }

    /// The unlabelled histogram `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// The histogram `name{labels}`, creating it on first use.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = make_key(name, labels);
        let mut g = self.inner.lock().unwrap();
        assert_unique(name, &key, &g.counters, "counter");
        assert_unique(name, &key, &g.gauges, "gauge");
        g.histograms.entry(key).or_default().clone()
    }

    /// A point-in-time snapshot of every registered metric, entries
    /// sorted by `(name, labels)`.
    pub fn snapshot(&self) -> Snapshot {
        let g = self.inner.lock().unwrap();
        let mut entries: Vec<MetricEntry> =
            Vec::with_capacity(g.counters.len() + g.gauges.len() + g.histograms.len());
        for ((name, labels), c) in &g.counters {
            entries.push(MetricEntry {
                name: name.clone(),
                labels: labels.clone(),
                value: MetricValue::Counter(c.value()),
            });
        }
        for ((name, labels), gauge) in &g.gauges {
            entries.push(MetricEntry {
                name: name.clone(),
                labels: labels.clone(),
                value: MetricValue::Gauge(gauge.value()),
            });
        }
        for ((name, labels), h) in &g.histograms {
            entries.push(MetricEntry {
                name: name.clone(),
                labels: labels.clone(),
                value: MetricValue::Histogram(h.snapshot()),
            });
        }
        entries.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        Snapshot { entries }
    }
}

fn make_key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut l: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    (name.to_string(), l)
}

fn assert_unique<V>(name: &str, key: &Key, other: &BTreeMap<Key, V>, other_type: &str) {
    assert!(
        !other.contains_key(key),
        "metric {name:?} already registered as a {other_type}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_shards() {
        let tel = Telemetry::new();
        let a = tel.counter("hits");
        let b = tel.counter("hits");
        a.inc();
        b.add(2);
        assert_eq!(tel.counter("hits").value(), 3);
    }

    #[test]
    fn labels_distinguish_series_and_order_does_not() {
        let tel = Telemetry::new();
        tel.counter_with("c", &[("a", "1"), ("b", "2")]).inc();
        tel.counter_with("c", &[("b", "2"), ("a", "1")]).inc();
        tel.counter_with("c", &[("a", "2")]).inc();
        let snap = tel.snapshot();
        assert_eq!(
            snap.get_with("c", &[("a", "1"), ("b", "2")]),
            Some(&MetricValue::Counter(2))
        );
        assert_eq!(
            snap.get_with("c", &[("a", "2")]),
            Some(&MetricValue::Counter(1))
        );
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let tel = Telemetry::new();
        tel.gauge("z_depth").set(4);
        tel.counter("a_total").inc();
        tel.histogram("m_lat").record(10);
        let snap = tel.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a_total", "m_lat", "z_depth"]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn cross_type_name_collision_panics() {
        let tel = Telemetry::new();
        tel.counter("x");
        tel.gauge("x");
    }

    #[test]
    fn disabled_registry_reports_disabled() {
        assert!(!Telemetry::disabled().enabled());
        assert!(Telemetry::new().enabled());
    }
}
