//! Always-on serving telemetry for the cellular-batching stack.
//!
//! The paper's claims are latency distributions under load; this crate
//! is the live view of them. It provides a process-wide metric registry
//! ([`Telemetry`]) cheap enough to leave enabled on the serving hot
//! path:
//!
//! - [`Counter`] / [`Gauge`] — sharded relaxed atomics, one
//!   cache-line-padded cell per write shard, summed at snapshot time;
//! - [`Histogram`] — log-bucketed HDR-style buckets (exact below 16,
//!   then 8 sub-buckets per power of two, ≤ 12.5% quantile error) with
//!   exact `sum`/`count`/`min`/`max`, mergeable across shards;
//! - [`Snapshot`] — an immutable sorted view with a strict
//!   `bm-telemetry/v1` JSON encoding ([`Snapshot::to_json`] /
//!   [`Snapshot::from_json`]) and Prometheus text exposition
//!   ([`Snapshot::to_prometheus`]);
//! - [`Scraper`] — a periodic snapshot thread for live stats.
//!
//! Disabled telemetry ([`Telemetry::disabled`], every options struct's
//! default) costs one branch per instrumentation site and allocates
//! nothing, mirroring `bm_trace::TraceSink::enabled` — asserted by the
//! zero-overhead test suite.
//!
//! This crate sits at the bottom of the workspace dependency graph
//! (below even `bm-trace`, which uses a [`Counter`] for dropped-event
//! accounting), so every layer can share one registry without cycles.
//! The strict [`json`] parser lives here for the same reason;
//! `bm_trace::json` re-exports it.

pub mod json;
mod metrics;
mod registry;
mod scrape;
mod snapshot;

pub use metrics::{bucket_bounds, bucket_index, Counter, Gauge, Histogram, NUM_BUCKETS, SHARDS};
pub use registry::Telemetry;
pub use scrape::Scraper;
pub use snapshot::{HistogramSnapshot, MetricEntry, MetricValue, Snapshot, SNAPSHOT_SCHEMA};
