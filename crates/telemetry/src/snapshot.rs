//! Immutable point-in-time snapshots of the registry, with strict JSON
//! (`bm-telemetry/v1`) and Prometheus text exposition encodings.
//!
//! A snapshot is plain data: entries sorted by `(name, labels)` so two
//! snapshots of identical registry state compare equal with `==`, which
//! is what the JSON round-trip test (serialize → strict-parse →
//! compare) relies on.

use std::fmt::Write as _;

use crate::json::{self, Value};

/// Schema tag written into and required from the JSON encoding.
pub const SNAPSHOT_SCHEMA: &str = "bm-telemetry/v1";

/// The merged, immutable form of a [`crate::Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Exact smallest sample (0 when empty).
    pub min: u64,
    /// Exact largest sample (0 when empty).
    pub max: u64,
    /// `(upper_bound_inclusive, count)` per non-empty bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Nearest-rank quantile estimate, `q` in `[0, 1]`: the upper bound
    /// of the bucket containing the rank-`⌈q·n⌉` sample. Matches
    /// `bm_metrics::Cdf::quantile`'s rank convention, overshooting the
    /// exact sample by at most 12.5% (the bucket width bound). `None`
    /// when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(hi, c) in &self.buckets {
            cum += c;
            if cum >= rank {
                return Some(hi);
            }
        }
        self.buckets.last().map(|&(hi, _)| hi)
    }

    /// Mean of the recorded samples (exact, from `sum`/`count`); `None`
    /// when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

/// One metric's value inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotone counter total.
    Counter(u64),
    /// An instantaneous gauge level.
    Gauge(i64),
    /// A merged histogram.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// One named, labelled metric inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    /// Metric name, e.g. `bm_requests_admitted_total`.
    pub name: String,
    /// Sorted `(key, value)` label pairs; empty for unlabelled metrics.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// A point-in-time view of every registered metric, sorted by
/// `(name, labels)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// All metric entries.
    pub entries: Vec<MetricEntry>,
}

impl Snapshot {
    /// The first entry matching `name` with no labels.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.get_with(name, &[])
    }

    /// The entry matching `name` and exactly these labels
    /// (order-insensitive).
    pub fn get_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        let mut want: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        want.sort();
        self.entries
            .iter()
            .find(|e| e.name == name && e.labels == want)
            .map(|e| &e.value)
    }

    /// Sum of all counter entries with this name, any labels.
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.name == name)
            .filter_map(|e| match &e.value {
                MetricValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// Sum of the exact `sum` fields of all histogram entries with this
    /// name, any labels.
    pub fn histogram_sum(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.name == name)
            .filter_map(|e| match &e.value {
                MetricValue::Histogram(h) => Some(h.sum),
                _ => None,
            })
            .fold(0u64, u64::wrapping_add)
    }

    /// Returns this snapshot with a `(key, value)` label added to every
    /// entry (labels stay sorted). Used to tag per-source snapshots —
    /// e.g. one registry per scheduler shard — before merging them with
    /// [`Snapshot::merge`].
    pub fn with_label(mut self, key: &str, value: &str) -> Snapshot {
        for e in &mut self.entries {
            let pair = (key.to_string(), value.to_string());
            let at = e.labels.partition_point(|l| *l < pair);
            e.labels.insert(at, pair);
        }
        self.entries
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        self
    }

    /// Merges several snapshots into one sorted snapshot. Entries are
    /// concatenated, not summed: callers distinguishing sources (e.g.
    /// per-shard registries) tag each part with [`Snapshot::with_label`]
    /// first, and aggregate views come from [`Snapshot::counter_sum`] /
    /// [`Snapshot::histogram_sum`] over the merged result.
    pub fn merge(parts: impl IntoIterator<Item = Snapshot>) -> Snapshot {
        let mut entries: Vec<MetricEntry> = parts.into_iter().flat_map(|s| s.entries).collect();
        entries.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        Snapshot { entries }
    }

    /// Strict JSON encoding under the [`SNAPSHOT_SCHEMA`] tag.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.entries.len() * 64);
        out.push_str("{\"schema\":\"");
        out.push_str(SNAPSHOT_SCHEMA);
        out.push_str("\",\"metrics\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json_string(&mut out, &e.name);
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in e.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json_string(&mut out, k);
                out.push(':');
                json_string(&mut out, v);
            }
            out.push_str("},\"type\":\"");
            out.push_str(e.value.type_name());
            out.push_str("\",");
            match &e.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "\"value\":{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "\"value\":{v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                        h.count, h.sum, h.min, h.max
                    );
                    for (j, (hi, c)) in h.buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{hi},{c}]");
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Strict decoder for [`Snapshot::to_json`] output: rejects unknown
    /// schema tags, missing fields and malformed values, so the
    /// `bm-telemetry/v1` wire format cannot drift silently.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let schema = doc
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing schema tag")?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(format!(
                "schema mismatch: got {schema:?}, want {SNAPSHOT_SCHEMA:?}"
            ));
        }
        let metrics = doc
            .get("metrics")
            .and_then(Value::as_arr)
            .ok_or("missing metrics array")?;
        let mut entries = Vec::with_capacity(metrics.len());
        for m in metrics {
            let name = m
                .get("name")
                .and_then(Value::as_str)
                .ok_or("metric missing name")?
                .to_string();
            let mut labels: Vec<(String, String)> = match m.get("labels") {
                Some(Value::Obj(map)) => map
                    .iter()
                    .map(|(k, v)| {
                        v.as_str()
                            .map(|s| (k.clone(), s.to_string()))
                            .ok_or_else(|| format!("{name}: non-string label value"))
                    })
                    .collect::<Result<_, _>>()?,
                _ => return Err(format!("{name}: missing labels object")),
            };
            labels.sort();
            let ty = m
                .get("type")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{name}: missing type"))?;
            let value = match ty {
                "counter" => MetricValue::Counter(
                    m.get("value")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("{name}: counter missing value"))?,
                ),
                "gauge" => {
                    let v = m
                        .get("value")
                        .and_then(Value::as_f64)
                        .filter(|v| v.fract() == 0.0)
                        .ok_or_else(|| format!("{name}: gauge missing integral value"))?;
                    MetricValue::Gauge(v as i64)
                }
                "histogram" => {
                    let field = |f: &str| {
                        m.get(f)
                            .and_then(Value::as_u64)
                            .ok_or_else(|| format!("{name}: histogram missing {f}"))
                    };
                    let buckets = m
                        .get("buckets")
                        .and_then(Value::as_arr)
                        .ok_or_else(|| format!("{name}: histogram missing buckets"))?
                        .iter()
                        .map(|pair| {
                            let pair = pair
                                .as_arr()
                                .filter(|p| p.len() == 2)
                                .ok_or_else(|| format!("{name}: bucket is not a pair"))?;
                            let hi = pair[0]
                                .as_u64()
                                .ok_or_else(|| format!("{name}: bad bucket bound"))?;
                            let c = pair[1]
                                .as_u64()
                                .ok_or_else(|| format!("{name}: bad bucket count"))?;
                            Ok::<(u64, u64), String>((hi, c))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    MetricValue::Histogram(HistogramSnapshot {
                        count: field("count")?,
                        sum: field("sum")?,
                        min: field("min")?,
                        max: field("max")?,
                        buckets,
                    })
                }
                other => return Err(format!("{name}: unknown metric type {other:?}")),
            };
            entries.push(MetricEntry {
                name,
                labels,
                value,
            });
        }
        entries.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        Ok(Snapshot { entries })
    }

    /// Prometheus text exposition format (0.0.4): `# TYPE` lines, one
    /// sample line per counter/gauge, and cumulative
    /// `_bucket{le=...}`/`_sum`/`_count` series per histogram.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(256 + self.entries.len() * 96);
        let mut last_name = "";
        for e in &self.entries {
            if e.name != last_name {
                let _ = writeln!(out, "# TYPE {} {}", e.name, e.value.type_name());
                last_name = &e.name;
            }
            match &e.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {v}", e.name, prom_labels(&e.labels, None));
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {v}", e.name, prom_labels(&e.labels, None));
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for &(hi, c) in &h.buckets {
                        cum += c;
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cum}",
                            e.name,
                            prom_labels(&e.labels, Some(&hi.to_string()))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        e.name,
                        prom_labels(&e.labels, Some("+Inf")),
                        h.count
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        e.name,
                        prom_labels(&e.labels, None),
                        h.sum
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        e.name,
                        prom_labels(&e.labels, None),
                        h.count
                    );
                }
            }
        }
        out
    }
}

fn prom_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{k}=\"{}\"",
            v.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    if let Some(le) = le {
        if !labels.is_empty() {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            entries: vec![
                MetricEntry {
                    name: "bm_active_requests".into(),
                    labels: vec![],
                    value: MetricValue::Gauge(-2),
                },
                MetricEntry {
                    name: "bm_requests_admitted_total".into(),
                    labels: vec![("cell".into(), "lstm".into())],
                    value: MetricValue::Counter(42),
                },
                MetricEntry {
                    name: "bm_stage_us".into(),
                    labels: vec![("stage".into(), "compute".into())],
                    value: MetricValue::Histogram(HistogramSnapshot {
                        count: 3,
                        sum: 1234,
                        min: 100,
                        max: 900,
                        buckets: vec![(103, 1), (511, 1), (959, 1)],
                    }),
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_identity() {
        let snap = sample_snapshot();
        let parsed = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn from_json_rejects_drift() {
        assert!(Snapshot::from_json("{}").is_err());
        assert!(Snapshot::from_json(r#"{"schema":"bm-telemetry/v2","metrics":[]}"#).is_err());
        assert!(Snapshot::from_json(
            r#"{"schema":"bm-telemetry/v1","metrics":[{"name":"x","labels":{},"type":"ramp","value":1}]}"#
        )
        .is_err());
        assert!(Snapshot::from_json(
            r#"{"schema":"bm-telemetry/v1","metrics":[{"name":"x","type":"counter","value":1}]}"#
        )
        .is_err());
    }

    #[test]
    fn labeled_merge_tags_sources_and_stays_sorted() {
        let a = sample_snapshot().with_label("shard", "0");
        let b = sample_snapshot().with_label("shard", "1");
        let merged = Snapshot::merge([a, b]);
        assert_eq!(merged.entries.len(), 6);
        assert!(merged
            .entries
            .windows(2)
            .all(|w| (&w[0].name, &w[0].labels) <= (&w[1].name, &w[1].labels)));
        assert_eq!(
            merged.get_with(
                "bm_requests_admitted_total",
                &[("cell", "lstm"), ("shard", "1")]
            ),
            Some(&MetricValue::Counter(42))
        );
        assert_eq!(merged.counter_sum("bm_requests_admitted_total"), 84);
        // The rollup still encodes as strict bm-telemetry/v1.
        assert_eq!(Snapshot::from_json(&merged.to_json()).unwrap(), merged);
    }

    #[test]
    fn quantile_is_nearest_rank_on_bucket_bounds() {
        let h = HistogramSnapshot {
            count: 4,
            sum: 100,
            min: 1,
            max: 50,
            buckets: vec![(1, 1), (10, 2), (50, 1)],
        };
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.25), Some(1));
        assert_eq!(h.quantile(0.5), Some(10));
        assert_eq!(h.quantile(0.75), Some(10));
        assert_eq!(h.quantile(1.0), Some(50));
        assert_eq!(h.mean(), Some(25.0));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = sample_snapshot().to_prometheus();
        assert!(text.contains("# TYPE bm_requests_admitted_total counter"));
        assert!(text.contains("bm_requests_admitted_total{cell=\"lstm\"} 42"));
        assert!(text.contains("# TYPE bm_active_requests gauge"));
        assert!(text.contains("bm_active_requests -2"));
        assert!(text.contains("bm_stage_us_bucket{stage=\"compute\",le=\"511\"} 2"));
        assert!(text.contains("bm_stage_us_bucket{stage=\"compute\",le=\"+Inf\"} 3"));
        assert!(text.contains("bm_stage_us_sum{stage=\"compute\"} 1234"));
        assert!(text.contains("bm_stage_us_count{stage=\"compute\"} 3"));
    }
}
