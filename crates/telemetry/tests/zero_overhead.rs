//! Zero-overhead assertions for the hot path, backed by a counting
//! global allocator.
//!
//! Isolated in its own integration-test binary because the allocator
//! hook is process-global. Two properties:
//!
//! - recording into `Counter`/`Gauge`/`Histogram` never allocates once
//!   the handle exists (the per-thread shard assignment happens on the
//!   first touch, which the warm-up absorbs);
//! - the disabled path is a `None` handle, so an instrumented call site
//!   costs one branch and zero allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bm_telemetry::{Counter, Telemetry};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn recording_allocates_nothing() {
    let tel = Telemetry::new();
    let counter = tel.counter("hot_total");
    let gauge = tel.gauge("hot_depth");
    let hist = tel.histogram("hot_us");
    // Warm up: first touch assigns this thread its shard index.
    counter.inc();
    gauge.add(1);
    hist.record(1);

    let before = allocations();
    for i in 0..100_000u64 {
        counter.add(i & 7);
        gauge.add(1);
        gauge.sub(1);
        hist.record(i * 31);
    }
    assert_eq!(
        allocations(),
        before,
        "metric recording must not allocate on the hot path"
    );
}

#[test]
fn disabled_path_is_branch_only() {
    let tel = Telemetry::disabled();
    assert!(!tel.enabled());

    // The instrumentation idiom: resolve handles once, `None` when
    // disabled, so the steady state is a single `is_some` branch.
    let counter: Option<Counter> = tel.enabled().then(|| tel.counter("never"));
    assert!(counter.is_none(), "disabled registry must yield no handle");

    let before = allocations();
    let mut observed = 0u64;
    for _ in 0..100_000 {
        if let Some(c) = &counter {
            c.inc();
            observed += 1;
        }
    }
    assert_eq!(observed, 0);
    assert_eq!(
        allocations(),
        before,
        "the disabled branch must not allocate"
    );

    // And a disabled registry records nothing even if probed directly.
    assert!(tel.snapshot().entries.is_empty());
}
