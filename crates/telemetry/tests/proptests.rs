//! Property tests: the log-bucketed histogram against the exact
//! empirical CDF from `bm-metrics`.
//!
//! The histogram promises ≤ 12.5% relative quantile error (each bucket
//! spans `[lo, hi]` with `hi/lo < 9/8`, values below 16 are exact) while
//! keeping exact `count`/`sum`/`min`/`max`. Both promises are checked
//! here on arbitrary value sets, alongside agreement of the two
//! nearest-rank quantile conventions.

use bm_metrics::Cdf;
use bm_telemetry::{bucket_bounds, bucket_index, Telemetry, NUM_BUCKETS};
use proptest::prelude::*;

proptest! {
    /// Every value lands in a bucket that contains it, and the bucket's
    /// width obeys the advertised relative-error bound.
    #[test]
    fn buckets_contain_their_values(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        if lo >= 16 {
            // hi <= lo * 9/8 - 1 for all log-spaced buckets.
            prop_assert!(hi - lo <= lo / 8, "bucket [{lo}, {hi}] too wide");
        } else {
            prop_assert_eq!(lo, hi, "exact range must have unit buckets");
        }
    }

    /// Histogram quantiles bound the exact CDF quantiles from above,
    /// within the 12.5% relative-error budget.
    #[test]
    fn quantiles_match_exact_cdf_within_error(
        values in collection::vec(0u64..1_000_000_000, 1..400),
        qs in collection::vec(0.0f64..=1.0, 1..8),
    ) {
        let tel = Telemetry::new();
        let h = tel.histogram("lat");
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();

        // Exact fields are exact, not approximations.
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snap.min, *values.iter().min().expect("nonempty"));
        prop_assert_eq!(snap.max, *values.iter().max().expect("nonempty"));

        let exact = Cdf::new(values.iter().map(|&v| v as f64).collect());
        for &q in &qs {
            let est = snap.quantile(q).expect("nonempty") as f64;
            let want = exact.quantile(q);
            // Both sides use the nearest-rank convention, so the
            // estimate is the upper bucket bound of the *same* ranked
            // element: exact <= estimate <= exact * 9/8.
            prop_assert!(
                want <= est && est <= want * 1.125,
                "q={q}: exact {want} vs histogram {est}"
            );
        }
    }

    /// The approximate bucket counts still sum to the exact count, and
    /// reported buckets are sorted and non-empty.
    #[test]
    fn bucket_counts_are_consistent(
        values in collection::vec(any::<u64>(), 1..200),
    ) {
        let tel = Telemetry::new();
        let h = tel.histogram("lat");
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let total: u64 = snap.buckets.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total, values.len() as u64);
        for w in snap.buckets.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "bucket bounds must be sorted");
        }
        prop_assert!(snap.buckets.iter().all(|&(_, c)| c > 0));
    }
}
