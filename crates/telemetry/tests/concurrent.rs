//! Concurrent-merge test: many threads hammer shared handles; the
//! merged totals must be exact, not approximate — the sharding must
//! never lose an update.

use std::sync::Arc;
use std::thread;

use bm_telemetry::Telemetry;

const THREADS: usize = 8;
const OPS: u64 = 20_000;

#[test]
fn concurrent_updates_merge_exactly() {
    let tel = Telemetry::new();
    let counter = tel.counter("ops_total");
    let gauge = tel.gauge("in_flight");
    let hist = tel.histogram("latency_us");

    let mut joins = Vec::new();
    for t in 0..THREADS {
        let (c, g, h) = (counter.clone(), gauge.clone(), hist.clone());
        joins.push(thread::spawn(move || {
            for i in 0..OPS {
                c.add(2);
                g.add(3);
                g.sub(3);
                // Distinct per-thread value streams so the exact sum
                // would expose any lost or double-counted record.
                h.record(t as u64 * OPS + i);
            }
        }));
    }
    for j in joins {
        j.join().expect("worker thread");
    }

    assert_eq!(counter.value(), THREADS as u64 * OPS * 2);
    assert_eq!(gauge.value(), 0, "adds and subs must cancel exactly");

    let snap = hist.snapshot();
    let n = THREADS as u64 * OPS;
    assert_eq!(snap.count, n);
    // Sum of 0..THREADS*OPS since the per-thread streams tile the range.
    assert_eq!(snap.sum, n * (n - 1) / 2);
    assert_eq!(snap.min, 0);
    assert_eq!(snap.max, n - 1);
    let bucket_total: u64 = snap.buckets.iter().map(|&(_, c)| c).sum();
    assert_eq!(bucket_total, n);
}

#[test]
fn concurrent_registry_lookup_yields_shared_metric() {
    // Threads that look up the same name must all get the same
    // underlying metric, even when racing on first registration.
    let tel = Telemetry::new();
    let mut joins = Vec::new();
    for _ in 0..THREADS {
        let tel = Arc::clone(&tel);
        joins.push(thread::spawn(move || {
            let c = tel.counter("races_total");
            for _ in 0..OPS {
                c.inc();
            }
        }));
    }
    for j in joins {
        j.join().expect("worker thread");
    }
    assert_eq!(
        tel.counter("races_total").value(),
        THREADS as u64 * OPS,
        "racing registrations must converge on one counter"
    );
}
