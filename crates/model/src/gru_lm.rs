//! A GRU language model — an extension beyond the paper's three
//! applications.
//!
//! Structurally identical to [`crate::LstmLm`] but built on a cell whose
//! recurrent state has no memory component. It exists to demonstrate
//! (and test) that nothing in the scheduler, runtime or simulator
//! assumes LSTM state layout: the cell abstraction of §3.1 is generic.

use bm_cell::{Cell, CellRegistry, CellTypeId, GruCell};

use crate::graph::{CellGraph, TokenSource};
use crate::{Model, RequestInput};

/// Configuration of a [`GruLm`].
#[derive(Debug, Clone, Copy)]
pub struct GruLmConfig {
    /// Embedding width.
    pub embed_size: usize,
    /// Hidden state width.
    pub hidden_size: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Weight seed.
    pub seed: u64,
    /// Desired maximum batch size.
    pub max_batch: usize,
    /// Minimum non-head batch size.
    pub min_batch: usize,
}

impl Default for GruLmConfig {
    fn default() -> Self {
        GruLmConfig {
            embed_size: 64,
            hidden_size: 64,
            vocab: 1000,
            seed: 0x941,
            max_batch: 512,
            min_batch: 1,
        }
    }
}

/// The GRU language model.
#[derive(Debug)]
pub struct GruLm {
    registry: CellRegistry,
    cell_type: CellTypeId,
    vocab: usize,
}

impl GruLm {
    /// Builds the model, registering its single cell type.
    pub fn new(cfg: GruLmConfig) -> Self {
        let mut registry = CellRegistry::new();
        let cell = Cell::Gru(GruCell::seeded(
            cfg.embed_size,
            cfg.hidden_size,
            cfg.vocab,
            cfg.seed,
        ));
        let cell_type = registry.register("gru", cell, 0, cfg.min_batch, cfg.max_batch);
        GruLm {
            registry,
            cell_type,
            vocab: cfg.vocab,
        }
    }

    /// Builds the model with default (test-sized) configuration.
    pub fn small() -> Self {
        Self::new(GruLmConfig::default())
    }

    /// The model's single cell type.
    pub fn cell_type(&self) -> CellTypeId {
        self.cell_type
    }
}

impl Model for GruLm {
    fn registry(&self) -> &CellRegistry {
        &self.registry
    }

    fn unfold(&self, input: &RequestInput) -> CellGraph {
        let RequestInput::Sequence(tokens) = input else {
            panic!("GruLm expects RequestInput::Sequence");
        };
        assert!(!tokens.is_empty(), "empty sequence");
        let mut g = CellGraph::new();
        let mut prev = None;
        for &t in tokens {
            let deps = prev.map(|p| vec![p]).unwrap_or_default();
            prev = Some(g.add_node(self.cell_type, deps, TokenSource::Fixed(t)));
        }
        g
    }

    fn validate(&self, input: &RequestInput) -> Result<(), String> {
        match input {
            RequestInput::Sequence(tokens) => {
                if tokens.is_empty() {
                    return Err("empty sequence".into());
                }
                let vocab = self.vocab as u32;
                if let Some(&bad) = tokens.iter().find(|&&t| t >= vocab) {
                    return Err(format!("token {bad} out of vocabulary ({vocab})"));
                }
                Ok(())
            }
            other => Err(format!("GruLm cannot serve {other:?}")),
        }
    }

    fn name(&self) -> &str {
        "gru-lm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unfolds_to_chain() {
        let m = GruLm::small();
        let g = m.unfold(&RequestInput::Sequence(vec![1, 2, 3]));
        g.validate(m.registry()).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.critical_path_len(), 3);
    }

    #[test]
    fn reference_execution_has_empty_memory_cell() {
        use crate::reference::execute_graph;
        let m = GruLm::small();
        let g = m.unfold(&RequestInput::Sequence(vec![4, 5, 6]));
        let r = execute_graph(&g, m.registry());
        assert_eq!(r.executed_count(), 3);
        let out = r.outputs.last().unwrap().as_ref().unwrap();
        assert!(out.state.c.is_empty(), "GRU carries no memory cell");
    }

    #[test]
    fn validate_behaves_like_lstm_lm() {
        let m = GruLm::small();
        assert!(m.validate(&RequestInput::Sequence(vec![])).is_err());
        assert!(m.validate(&RequestInput::Sequence(vec![1])).is_ok());
        assert!(m
            .validate(&RequestInput::Pair {
                src: vec![1],
                decode_len: 1
            })
            .is_err());
    }
}
