//! Sequence-to-sequence translation model (paper §7.4, Figure 12).
//!
//! Two cell types: encoder and decoder, with separate weights. The
//! encoder chain consumes the source tokens; the first decoder step takes
//! the final encoder state and the `<go>` token; each subsequent decoder
//! step consumes the token produced by its predecessor ("feed previous").

use bm_cell::{Cell, CellRegistry, CellTypeId, DecoderCell, EncoderCell};

use crate::graph::{CellGraph, TokenSource};
use crate::{Model, RequestInput, EOS_TOKEN, GO_TOKEN};

/// Configuration of a [`Seq2Seq`] model.
#[derive(Debug, Clone, Copy)]
pub struct Seq2SeqConfig {
    /// Embedding width.
    pub embed_size: usize,
    /// Hidden state width (1024 in the paper).
    pub hidden_size: usize,
    /// Vocabulary size (30k in the paper).
    pub vocab: usize,
    /// Weight seed.
    pub seed: u64,
    /// Maximum batch size for encoder cells (512 or 256 in §7.4).
    pub encoder_max_batch: usize,
    /// Maximum batch size for decoder cells (256 in §7.4).
    pub decoder_max_batch: usize,
    /// Minimum non-head batch size for both cell types.
    pub min_batch: usize,
    /// If true, decoder nodes terminate the request early on `<eos>`
    /// (extension; the paper's experiments use fixed decode lengths).
    pub eos_terminates: bool,
    /// Whether decoder cells get scheduling priority over encoder cells
    /// (§4.3). On by default; turning it off gives the *encoder* the
    /// higher priority, so the ablation measures the cost of inverting
    /// the paper's later-cells-first rule.
    pub decoder_priority: bool,
}

impl Default for Seq2SeqConfig {
    fn default() -> Self {
        Seq2SeqConfig {
            embed_size: 64,
            hidden_size: 64,
            vocab: 500,
            seed: 0x5e25,
            encoder_max_batch: 512,
            decoder_max_batch: 256,
            min_batch: 1,
            eos_terminates: false,
            decoder_priority: true,
        }
    }
}

/// The Seq2Seq model.
#[derive(Debug)]
pub struct Seq2Seq {
    registry: CellRegistry,
    encoder: CellTypeId,
    decoder: CellTypeId,
    vocab: usize,
    eos_terminates: bool,
}

impl Seq2Seq {
    /// Builds the model, registering encoder and decoder cell types.
    ///
    /// The decoder gets the higher scheduling priority: "in Seq2Seq
    /// models, decoder nodes should have priority over encoder nodes"
    /// (§4.3).
    pub fn new(cfg: Seq2SeqConfig) -> Self {
        let mut registry = CellRegistry::new();
        let encoder = registry.register(
            "encoder",
            Cell::Encoder(EncoderCell::seeded(
                cfg.embed_size,
                cfg.hidden_size,
                cfg.vocab,
                cfg.seed,
            )),
            if cfg.decoder_priority { 0 } else { 1 },
            cfg.min_batch,
            cfg.encoder_max_batch,
        );
        let decoder = registry.register(
            "decoder",
            Cell::Decoder(DecoderCell::seeded(
                cfg.embed_size,
                cfg.hidden_size,
                cfg.vocab,
                cfg.seed,
            )),
            if cfg.decoder_priority { 1 } else { 0 },
            cfg.min_batch,
            cfg.decoder_max_batch,
        );
        Seq2Seq {
            registry,
            encoder,
            decoder,
            vocab: cfg.vocab,
            eos_terminates: cfg.eos_terminates,
        }
    }

    /// Builds the model with default (test-sized) configuration.
    pub fn small() -> Self {
        Self::new(Seq2SeqConfig::default())
    }

    /// The encoder cell type.
    pub fn encoder_type(&self) -> CellTypeId {
        self.encoder
    }

    /// The decoder cell type.
    pub fn decoder_type(&self) -> CellTypeId {
        self.decoder
    }

    /// Saves both cells' weights to one file, name-prefixed (§4.2).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), String> {
        let mut packed = bm_tensor::io::WeightBundle::new();
        packed.merge_prefixed("encoder", &self.registry.cell(self.encoder).to_bundle());
        packed.merge_prefixed("decoder", &self.registry.cell(self.decoder).to_bundle());
        packed.save(path).map_err(|e| e.to_string())
    }

    /// Loads a model from saved weights; shapes are inferred from the
    /// file, batching/priority parameters come from `cfg` (its size/seed
    /// fields are ignored).
    pub fn load(path: impl AsRef<std::path::Path>, cfg: Seq2SeqConfig) -> Result<Self, String> {
        let packed = bm_tensor::io::WeightBundle::load(path).map_err(|e| e.to_string())?;
        let enc = Cell::from_bundle("encoder", &packed.sub_bundle("encoder"))?;
        let dec = Cell::from_bundle("decoder", &packed.sub_bundle("decoder"))?;
        let vocab = match &dec {
            Cell::Decoder(d) => d.vocab_size(),
            _ => unreachable!(),
        };
        let mut registry = CellRegistry::new();
        let encoder = registry.register(
            "encoder",
            enc,
            if cfg.decoder_priority { 0 } else { 1 },
            cfg.min_batch,
            cfg.encoder_max_batch,
        );
        let decoder = registry.register(
            "decoder",
            dec,
            if cfg.decoder_priority { 1 } else { 0 },
            cfg.min_batch,
            cfg.decoder_max_batch,
        );
        Ok(Seq2Seq {
            registry,
            encoder,
            decoder,
            vocab,
            eos_terminates: cfg.eos_terminates,
        })
    }
}

impl Model for Seq2Seq {
    fn registry(&self) -> &CellRegistry {
        &self.registry
    }

    fn unfold(&self, input: &RequestInput) -> CellGraph {
        let RequestInput::Pair { src, decode_len } = input else {
            panic!("Seq2Seq expects RequestInput::Pair");
        };
        assert!(!src.is_empty(), "empty source sequence");
        assert!(*decode_len > 0, "zero decode length");
        let mut g = CellGraph::new();
        let mut prev = None;
        for &t in src {
            let deps = prev.map(|p| vec![p]).unwrap_or_default();
            prev = Some(g.add_node(self.encoder, deps, TokenSource::Fixed(t)));
        }
        let enc_last = prev.expect("nonempty encoder chain");
        // First decoder step: final encoder state + <go>.
        let mut dec_prev = g.add_node(self.decoder, vec![enc_last], TokenSource::Fixed(GO_TOKEN));
        if self.eos_terminates {
            g.set_eos(dec_prev, EOS_TOKEN);
        }
        for _ in 1..*decode_len {
            let n = g.add_node(self.decoder, vec![dec_prev], TokenSource::FromDep(0));
            if self.eos_terminates {
                g.set_eos(n, EOS_TOKEN);
            }
            dec_prev = n;
        }
        g
    }

    fn validate(&self, input: &RequestInput) -> Result<(), String> {
        match input {
            RequestInput::Pair { src, decode_len } => {
                if src.is_empty() {
                    return Err("empty source sequence".into());
                }
                if *decode_len == 0 {
                    return Err("zero decode length".into());
                }
                let vocab = self.vocab as u32;
                if let Some(&bad) = src.iter().find(|&&t| t >= vocab) {
                    return Err(format!("token {bad} out of vocabulary ({vocab})"));
                }
                Ok(())
            }
            other => Err(format!("Seq2Seq cannot serve {other:?}")),
        }
    }

    fn name(&self) -> &str {
        "seq2seq"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn unfolds_encoder_then_decoder() {
        let m = Seq2Seq::small();
        let g = m.unfold(&RequestInput::Pair {
            src: vec![2, 3, 4],
            decode_len: 2,
        });
        g.validate(m.registry()).unwrap();
        assert_eq!(g.len(), 5);
        let hist = g.type_histogram(m.registry().len());
        assert_eq!(hist[m.encoder_type().index()], 3);
        assert_eq!(hist[m.decoder_type().index()], 2);
        // The whole graph is one dependency chain.
        assert_eq!(g.critical_path_len(), 5);
        // First decoder consumes <go>; later ones feed-previous.
        assert_eq!(g.node(NodeId(3)).token, TokenSource::Fixed(GO_TOKEN));
        assert_eq!(g.node(NodeId(4)).token, TokenSource::FromDep(0));
    }

    #[test]
    fn decoder_priority_above_encoder() {
        let m = Seq2Seq::small();
        let reg = m.registry();
        assert!(reg.meta(m.decoder_type()).priority > reg.meta(m.encoder_type()).priority);
    }

    #[test]
    fn eos_flag_set_when_configured() {
        let m = Seq2Seq::new(Seq2SeqConfig {
            eos_terminates: true,
            ..Seq2SeqConfig::default()
        });
        let g = m.unfold(&RequestInput::Pair {
            src: vec![2],
            decode_len: 3,
        });
        for (_, n) in g.iter().skip(1) {
            assert_eq!(n.eos, Some(EOS_TOKEN));
        }
    }

    #[test]
    fn validate_rejects_malformed() {
        let m = Seq2Seq::small();
        assert!(m
            .validate(&RequestInput::Pair {
                src: vec![],
                decode_len: 1
            })
            .is_err());
        assert!(m
            .validate(&RequestInput::Pair {
                src: vec![1],
                decode_len: 0
            })
            .is_err());
        assert!(m.validate(&RequestInput::Sequence(vec![1])).is_err());
        assert!(m
            .validate(&RequestInput::Pair {
                src: vec![1, 2],
                decode_len: 2
            })
            .is_ok());
    }
}
