//! The chain-structured LSTM language model (paper §2.1 Figure 1, §7.2).
//!
//! Each request is a token sequence; the unfolded graph is a single chain
//! of LSTM cells, all of one type. The output is the final hidden state
//! (from which "the most likely next word" would be derived).

use bm_cell::{Cell, CellRegistry, CellTypeId, LstmCell};

use crate::graph::{CellGraph, TokenSource};
use crate::{Model, RequestInput};

/// Configuration of an [`LstmLm`].
#[derive(Debug, Clone, Copy)]
pub struct LstmLmConfig {
    /// Embedding width.
    pub embed_size: usize,
    /// Hidden state width (1024 in the paper).
    pub hidden_size: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Weight seed.
    pub seed: u64,
    /// Desired maximum batch size for the LSTM cell (512 in Figure 7a).
    pub max_batch: usize,
    /// Minimum non-head batch size (`Bsizes.Min()`).
    pub min_batch: usize,
}

impl Default for LstmLmConfig {
    fn default() -> Self {
        LstmLmConfig {
            embed_size: 64,
            hidden_size: 64,
            vocab: 1000,
            seed: 0x15f1,
            max_batch: 512,
            min_batch: 1,
        }
    }
}

/// The LSTM language model.
#[derive(Debug)]
pub struct LstmLm {
    registry: CellRegistry,
    cell_type: CellTypeId,
}

impl LstmLm {
    /// Builds the model, registering its single cell type.
    pub fn new(cfg: LstmLmConfig) -> Self {
        let mut registry = CellRegistry::new();
        let cell = Cell::Lstm(LstmCell::seeded(
            cfg.embed_size,
            cfg.hidden_size,
            cfg.vocab,
            cfg.seed,
        ));
        let cell_type = registry.register("lstm", cell, 0, cfg.min_batch, cfg.max_batch);
        LstmLm {
            registry,
            cell_type,
        }
    }

    /// Builds the model with default (test-sized) configuration.
    pub fn small() -> Self {
        Self::new(LstmLmConfig::default())
    }

    /// The model's single cell type.
    pub fn cell_type(&self) -> CellTypeId {
        self.cell_type
    }

    /// Vocabulary size of the underlying cell.
    pub fn vocab(&self) -> usize {
        match self.registry.cell(self.cell_type).as_ref() {
            Cell::Lstm(c) => c.vocab_size(),
            _ => unreachable!("LstmLm registers an Lstm cell"),
        }
    }

    /// Saves the model's pre-trained weights to a file (§4.2).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), String> {
        self.registry
            .cell(self.cell_type)
            .to_bundle()
            .save(path)
            .map_err(|e| e.to_string())
    }

    /// Loads a model from saved weights; shapes are inferred from the
    /// file, batching parameters come from `cfg` (its size/seed fields
    /// are ignored).
    pub fn load(path: impl AsRef<std::path::Path>, cfg: LstmLmConfig) -> Result<Self, String> {
        let bundle = bm_tensor::io::WeightBundle::load(path).map_err(|e| e.to_string())?;
        let cell = Cell::from_bundle("lstm", &bundle)?;
        let mut registry = CellRegistry::new();
        let cell_type = registry.register("lstm", cell, 0, cfg.min_batch, cfg.max_batch);
        Ok(LstmLm {
            registry,
            cell_type,
        })
    }
}

impl Model for LstmLm {
    fn registry(&self) -> &CellRegistry {
        &self.registry
    }

    fn unfold(&self, input: &RequestInput) -> CellGraph {
        let RequestInput::Sequence(tokens) = input else {
            panic!("LstmLm expects RequestInput::Sequence");
        };
        assert!(!tokens.is_empty(), "empty sequence");
        let mut g = CellGraph::new();
        let mut prev = None;
        for &t in tokens {
            let deps = prev.map(|p| vec![p]).unwrap_or_default();
            prev = Some(g.add_node(self.cell_type, deps, TokenSource::Fixed(t)));
        }
        g
    }

    fn validate(&self, input: &RequestInput) -> Result<(), String> {
        match input {
            RequestInput::Sequence(tokens) => {
                if tokens.is_empty() {
                    return Err("empty sequence".into());
                }
                let vocab = self.vocab() as u32;
                if let Some(&bad) = tokens.iter().find(|&&t| t >= vocab) {
                    return Err(format!("token {bad} out of vocabulary ({vocab})"));
                }
                Ok(())
            }
            other => Err(format!("LstmLm cannot serve {other:?}")),
        }
    }

    fn name(&self) -> &str {
        "lstm-lm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unfolds_to_chain() {
        let m = LstmLm::small();
        let g = m.unfold(&RequestInput::Sequence(vec![1, 2, 3, 4]));
        g.validate(m.registry()).unwrap();
        assert_eq!(g.len(), 4);
        assert_eq!(g.critical_path_len(), 4);
        assert_eq!(g.sinks().len(), 1);
        // Every node is the single lstm type.
        assert!(g.nodes().iter().all(|n| n.cell_type == m.cell_type()));
    }

    #[test]
    fn validate_rejects_bad_inputs() {
        let m = LstmLm::small();
        assert!(m.validate(&RequestInput::Sequence(vec![])).is_err());
        assert!(m.validate(&RequestInput::Sequence(vec![u32::MAX])).is_err());
        assert!(m
            .validate(&RequestInput::Pair {
                src: vec![1],
                decode_len: 1
            })
            .is_err());
        assert!(m.validate(&RequestInput::Sequence(vec![0, 1, 2])).is_ok());
    }

    #[test]
    fn single_token_sequence() {
        let m = LstmLm::small();
        let g = m.unfold(&RequestInput::Sequence(vec![7]));
        assert_eq!(g.len(), 1);
        assert!(g.node(crate::NodeId(0)).deps.is_empty());
    }
}
