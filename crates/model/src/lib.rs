//! RNN models unfolded into cell graphs.
//!
//! A BatchMaker user provides "the definition of each cell … and a
//! user-defined function that unfolds each request/input into its
//! corresponding cell graph" (§4.1). This crate is that user code for the
//! paper's three applications:
//!
//! - [`LstmLm`] — the chain-structured LSTM benchmark (§7.2);
//! - [`Seq2Seq`] — encoder/decoder translation with feed-previous
//!   decoding (§7.4, Figure 12);
//! - [`TreeLstm`] — binary constituency TreeLSTM (§7.5, Figure 2).
//!
//! It also provides the [`graph::CellGraph`] representation those
//! unfolders produce, and [`reference::execute_graph`] — a trivially
//! correct, unbatched executor used as the oracle that the cellular
//! batching runtime must match bit-for-bit.

pub mod graph;
mod gru_lm;
mod lstm_lm;
pub mod reference;
mod seq2seq;
mod treelstm;

pub use graph::{CellGraph, GraphNode, NodeId, TokenSource};
pub use gru_lm::{GruLm, GruLmConfig};
pub use lstm_lm::{LstmLm, LstmLmConfig};
pub use seq2seq::{Seq2Seq, Seq2SeqConfig};
pub use treelstm::{TreeLstm, TreeLstmConfig, TreeShape};

use bm_cell::CellRegistry;

/// Token id conventionally used for the Seq2Seq `<go>` symbol.
pub const GO_TOKEN: u32 = 0;
/// Token id conventionally used for the Seq2Seq `<eos>` symbol.
pub const EOS_TOKEN: u32 = 1;

/// The input payload of one inference request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestInput {
    /// A token sequence (LSTM language model).
    Sequence(Vec<u32>),
    /// A translation pair: source tokens plus the number of decode steps.
    ///
    /// Following §7.4, "we decode for a number of steps equal to the
    /// corresponding English sequence length" — the decode length is part
    /// of the workload, but is never visible to batching or scheduling
    /// decisions.
    Pair {
        /// Source-language token ids.
        src: Vec<u32>,
        /// Number of decoder steps to run.
        decode_len: usize,
    },
    /// A binary parse tree with tokens at the leaves (TreeLSTM).
    Tree(TreeShape),
}

impl RequestInput {
    /// Total number of cell invocations this input unfolds into.
    pub fn cell_count(&self) -> usize {
        match self {
            RequestInput::Sequence(s) => s.len(),
            RequestInput::Pair { src, decode_len } => src.len() + decode_len,
            RequestInput::Tree(t) => t.node_count(),
        }
    }
}

/// A model: a set of registered cell types plus the unfolding function.
pub trait Model: Send + Sync {
    /// The registry holding this model's cell types.
    fn registry(&self) -> &CellRegistry;

    /// Unfolds a request into its cell graph.
    ///
    /// # Panics
    ///
    /// Implementations panic on inputs of the wrong variant or on empty
    /// inputs — malformed requests should be rejected beforehand via
    /// [`Model::validate`].
    fn unfold(&self, input: &RequestInput) -> CellGraph;

    /// Checks that an input is acceptable for this model.
    fn validate(&self, input: &RequestInput) -> Result<(), String>;

    /// Human-readable model name.
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_count_per_variant() {
        assert_eq!(RequestInput::Sequence(vec![1, 2, 3]).cell_count(), 3);
        assert_eq!(
            RequestInput::Pair {
                src: vec![1, 2],
                decode_len: 4
            }
            .cell_count(),
            6
        );
        let t = TreeShape::leaf(5);
        assert_eq!(RequestInput::Tree(t).cell_count(), 1);
    }
}
