//! The unfolded cell graph of one request.
//!
//! "Grouping operators into cells allows us to make the unfolded dataflow
//! graph coarse-grained, where each node represents a cell and each edge
//! depicts the direction in which data flows from one cell to another."
//! (§3.1)
//!
//! Nodes are identified by dense per-request indices, are labelled with
//! their [`CellTypeId`], and list their state dependencies in
//! cell-defined order (e.g. `[left, right]` for tree internal cells).
//! Token inputs are either fixed at unfold time (model inputs) or
//! produced at runtime by a dependency (the Seq2Seq feed-previous
//! decoder).

use std::fmt;
use std::sync::Arc;

use bm_cell::{CellRegistry, CellTypeId};

/// Index of a node within one request's cell graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Where a node's token input comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenSource {
    /// The node takes no token (tree internal cells).
    None,
    /// A token fixed at unfold time (model inputs, `<go>`).
    Fixed(u32),
    /// The token produced at runtime by dependency `deps[i]`
    /// (feed-previous decoding).
    FromDep(usize),
}

/// One cell invocation in the unfolded graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphNode {
    /// The cell type this node invokes.
    pub cell_type: CellTypeId,
    /// State dependencies, in the order the cell consumes them.
    ///
    /// Shared (`Arc`) so schedulers can hand the list to task entries
    /// with a refcount bump instead of cloning it per batched task.
    pub deps: Arc<[NodeId]>,
    /// Token input specification.
    pub token: TokenSource,
    /// If set, a runtime token equal to this value terminates the request
    /// early, cancelling all nodes downstream of this one (used for
    /// `<eos>`-terminated decoding, an extension over the paper's
    /// fixed-length decoding).
    pub eos: Option<u32>,
}

/// The unfolded cell graph of a single request.
///
/// Nodes must be listed in a topological order (every dependency precedes
/// its dependents); [`CellGraph::validate`] enforces this along with
/// arity and token constraints.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CellGraph {
    nodes: Vec<GraphNode>,
}

impl CellGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a node, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if a dependency refers to a not-yet-added node (which would
    /// break topological ordering).
    pub fn add_node(
        &mut self,
        cell_type: CellTypeId,
        deps: Vec<NodeId>,
        token: TokenSource,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        for d in &deps {
            assert!(
                d.index() < self.nodes.len(),
                "dependency {d} of node {id} is not yet defined"
            );
        }
        self.nodes.push(GraphNode {
            cell_type,
            deps: deps.into(),
            token,
            eos: None,
        });
        id
    }

    /// Marks `node` as an `<eos>`-terminating decoder step.
    pub fn set_eos(&mut self, node: NodeId, eos_token: u32) {
        self.nodes[node.index()].eos = Some(eos_token);
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &GraphNode {
        &self.nodes[id.index()]
    }

    /// All nodes in topological (insertion) order.
    pub fn nodes(&self) -> &[GraphNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates `(NodeId, &GraphNode)` in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &GraphNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Ids of sink nodes (nodes no other node depends on).
    pub fn sinks(&self) -> Vec<NodeId> {
        let mut has_dependent = vec![false; self.nodes.len()];
        for n in &self.nodes {
            for d in n.deps.iter() {
                has_dependent[d.index()] = true;
            }
        }
        has_dependent
            .iter()
            .enumerate()
            .filter(|(_, &h)| !h)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Validates the graph against a registry: dependencies in range and
    /// topologically ordered, state arity and token sources consistent
    /// with each node's cell type.
    pub fn validate(&self, registry: &CellRegistry) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("empty cell graph".into());
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.cell_type.index() >= registry.len() {
                return Err(format!("node n{i}: unknown cell type {}", n.cell_type));
            }
            let cell = registry.cell(n.cell_type);
            for d in n.deps.iter() {
                if d.index() >= i {
                    return Err(format!("node n{i}: dependency {d} not before it"));
                }
            }
            if n.deps.len() > cell.state_arity() {
                return Err(format!(
                    "node n{i}: {} deps but cell arity {}",
                    n.deps.len(),
                    cell.state_arity()
                ));
            }
            // Tree-internal nodes must have exactly two children.
            if cell.state_arity() == 2 && n.deps.len() != 2 {
                return Err(format!(
                    "node n{i}: internal cell requires 2 deps, has {}",
                    n.deps.len()
                ));
            }
            match n.token {
                TokenSource::None => {
                    if cell.takes_token() {
                        return Err(format!("node n{i}: cell requires a token"));
                    }
                }
                TokenSource::Fixed(_) => {
                    if !cell.takes_token() {
                        return Err(format!("node n{i}: cell takes no token"));
                    }
                }
                TokenSource::FromDep(k) => {
                    if !cell.takes_token() {
                        return Err(format!("node n{i}: cell takes no token"));
                    }
                    let Some(dep) = n.deps.get(k) else {
                        return Err(format!("node n{i}: FromDep({k}) out of range"));
                    };
                    let dep_cell = registry.cell(self.nodes[dep.index()].cell_type);
                    if !dep_cell.emits_token() {
                        return Err(format!(
                            "node n{i}: FromDep({k}) but dependency {dep} emits no token"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of nodes of each cell type, indexed by `CellTypeId`.
    pub fn type_histogram(&self, num_types: usize) -> Vec<usize> {
        let mut h = vec![0usize; num_types];
        for n in &self.nodes {
            h[n.cell_type.index()] += 1;
        }
        h
    }

    /// Length of the longest dependency chain (the graph's critical path),
    /// in nodes.
    pub fn critical_path_len(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        let mut max = 0;
        for (i, n) in self.nodes.iter().enumerate() {
            let d = n
                .deps
                .iter()
                .map(|d| depth[d.index()] + 1)
                .max()
                .unwrap_or(1);
            depth[i] = d;
            max = max.max(d);
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_cell::{Cell, CellRegistry, LstmCell, TreeInternalCell, TreeLeafCell};

    fn chain_registry() -> (CellRegistry, CellTypeId) {
        let mut reg = CellRegistry::new();
        let id = reg.register("lstm", Cell::Lstm(LstmCell::seeded(4, 6, 10, 1)), 0, 1, 64);
        (reg, id)
    }

    fn chain_graph(ct: CellTypeId, tokens: &[u32]) -> CellGraph {
        let mut g = CellGraph::new();
        let mut prev: Option<NodeId> = None;
        for &t in tokens {
            let deps = prev.map(|p| vec![p]).unwrap_or_default();
            prev = Some(g.add_node(ct, deps, TokenSource::Fixed(t)));
        }
        g
    }

    #[test]
    fn chain_graph_validates() {
        let (reg, ct) = chain_registry();
        let g = chain_graph(ct, &[1, 2, 3]);
        g.validate(&reg).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.sinks(), vec![NodeId(2)]);
        assert_eq!(g.critical_path_len(), 3);
    }

    #[test]
    fn empty_graph_rejected() {
        let (reg, _) = chain_registry();
        assert!(CellGraph::new().validate(&reg).is_err());
    }

    #[test]
    #[should_panic]
    fn forward_dependency_panics() {
        let (_, ct) = chain_registry();
        let mut g = CellGraph::new();
        g.add_node(ct, vec![NodeId(5)], TokenSource::Fixed(0));
    }

    #[test]
    fn missing_token_detected() {
        let (reg, ct) = chain_registry();
        let mut g = CellGraph::new();
        g.add_node(ct, vec![], TokenSource::None);
        assert!(g.validate(&reg).is_err());
    }

    #[test]
    fn tree_arity_enforced() {
        let mut reg = CellRegistry::new();
        let leaf = reg.register(
            "leaf",
            Cell::TreeLeaf(TreeLeafCell::seeded(4, 6, 10, 1)),
            0,
            1,
            64,
        );
        let internal = reg.register(
            "internal",
            Cell::TreeInternal(TreeInternalCell::seeded(6, 1)),
            1,
            1,
            64,
        );
        let mut g = CellGraph::new();
        let a = g.add_node(leaf, vec![], TokenSource::Fixed(1));
        // Internal node with a single child: invalid.
        g.add_node(internal, vec![a], TokenSource::None);
        assert!(g.validate(&reg).is_err());

        let mut g2 = CellGraph::new();
        let a = g2.add_node(leaf, vec![], TokenSource::Fixed(1));
        let b = g2.add_node(leaf, vec![], TokenSource::Fixed(2));
        g2.add_node(internal, vec![a, b], TokenSource::None);
        g2.validate(&reg).unwrap();
        assert_eq!(g2.critical_path_len(), 2);
    }

    #[test]
    fn from_dep_requires_token_emitter() {
        let (reg, ct) = chain_registry();
        let mut g = CellGraph::new();
        let a = g.add_node(ct, vec![], TokenSource::Fixed(1));
        // LSTM emits no token, so FromDep(0) is invalid.
        g.add_node(ct, vec![a], TokenSource::FromDep(0));
        assert!(g.validate(&reg).is_err());
    }

    #[test]
    fn type_histogram_counts() {
        let (_, ct) = chain_registry();
        let g = chain_graph(ct, &[1, 2, 3, 4]);
        assert_eq!(g.type_histogram(1), vec![4]);
    }

    #[test]
    fn sinks_of_diamond() {
        let mut reg = CellRegistry::new();
        let leaf = reg.register(
            "leaf",
            Cell::TreeLeaf(TreeLeafCell::seeded(4, 6, 10, 1)),
            0,
            1,
            64,
        );
        let mut g = CellGraph::new();
        let a = g.add_node(leaf, vec![], TokenSource::Fixed(1));
        let b = g.add_node(leaf, vec![], TokenSource::Fixed(2));
        assert_eq!(g.sinks(), vec![a, b]);
    }
}
