//! Binary TreeLSTM model (paper §7.5, Figure 2).
//!
//! A request is a binary parse tree with tokens at the leaves. The
//! unfolded graph has one leaf-cell node per leaf and one internal-cell
//! node per internal tree node. As in the paper's TreeLSTM example
//! (§4.4), internal nodes are "given preference over leaf nodes" via
//! cell priority.

use bm_cell::{Cell, CellRegistry, CellTypeId, TreeInternalCell, TreeLeafCell};

use crate::graph::{CellGraph, NodeId, TokenSource};
use crate::{Model, RequestInput};

/// A binary tree shape with tokens at the leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeShape {
    /// A leaf holding a token id.
    Leaf(u32),
    /// An internal node with two children.
    Internal(Box<TreeShape>, Box<TreeShape>),
}

impl TreeShape {
    /// A leaf node.
    pub fn leaf(token: u32) -> Self {
        TreeShape::Leaf(token)
    }

    /// An internal node over two subtrees.
    pub fn internal(left: TreeShape, right: TreeShape) -> Self {
        TreeShape::Internal(Box::new(left), Box::new(right))
    }

    /// A complete binary tree with `leaves` leaf nodes (must be a power
    /// of two), tokens assigned round-robin from `vocab`.
    ///
    /// This is the Figure 15 synthetic input ("a complete binary tree of
    /// 16 leaf nodes").
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is zero or not a power of two.
    pub fn complete(leaves: usize, vocab: u32) -> Self {
        assert!(leaves > 0 && leaves.is_power_of_two(), "leaves must be 2^k");
        fn build(lo: usize, hi: usize, vocab: u32) -> TreeShape {
            if hi - lo == 1 {
                TreeShape::Leaf(lo as u32 % vocab)
            } else {
                let mid = (lo + hi) / 2;
                TreeShape::internal(build(lo, mid, vocab), build(mid, hi, vocab))
            }
        }
        build(0, leaves, vocab)
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        match self {
            TreeShape::Leaf(_) => 1,
            TreeShape::Internal(l, r) => l.leaf_count() + r.leaf_count(),
        }
    }

    /// Total number of nodes (leaves + internal).
    pub fn node_count(&self) -> usize {
        match self {
            TreeShape::Leaf(_) => 1,
            TreeShape::Internal(l, r) => 1 + l.node_count() + r.node_count(),
        }
    }

    /// Height of the tree in nodes (a lone leaf has height 1).
    pub fn height(&self) -> usize {
        match self {
            TreeShape::Leaf(_) => 1,
            TreeShape::Internal(l, r) => 1 + l.height().max(r.height()),
        }
    }

    /// Largest token id used by any leaf.
    pub fn max_token(&self) -> u32 {
        match self {
            TreeShape::Leaf(t) => *t,
            TreeShape::Internal(l, r) => l.max_token().max(r.max_token()),
        }
    }
}

/// Configuration of a [`TreeLstm`] model.
#[derive(Debug, Clone, Copy)]
pub struct TreeLstmConfig {
    /// Embedding width.
    pub embed_size: usize,
    /// Hidden state width (1024 in the paper).
    pub hidden_size: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Weight seed.
    pub seed: u64,
    /// Maximum batch size for both cell types (64 in §7.5).
    pub max_batch: usize,
    /// Minimum non-head batch size.
    pub min_batch: usize,
}

impl Default for TreeLstmConfig {
    fn default() -> Self {
        TreeLstmConfig {
            embed_size: 64,
            hidden_size: 64,
            vocab: 1000,
            seed: 0x73ee,
            max_batch: 64,
            min_batch: 1,
        }
    }
}

/// The TreeLSTM model.
#[derive(Debug)]
pub struct TreeLstm {
    registry: CellRegistry,
    leaf: CellTypeId,
    internal: CellTypeId,
    vocab: usize,
}

impl TreeLstm {
    /// Builds the model, registering leaf and internal cell types.
    pub fn new(cfg: TreeLstmConfig) -> Self {
        let mut registry = CellRegistry::new();
        let leaf = registry.register(
            "tree_leaf",
            Cell::TreeLeaf(TreeLeafCell::seeded(
                cfg.embed_size,
                cfg.hidden_size,
                cfg.vocab,
                cfg.seed,
            )),
            0,
            cfg.min_batch,
            cfg.max_batch,
        );
        let internal = registry.register(
            "tree_internal",
            Cell::TreeInternal(TreeInternalCell::seeded(cfg.hidden_size, cfg.seed)),
            1,
            cfg.min_batch,
            cfg.max_batch,
        );
        TreeLstm {
            registry,
            leaf,
            internal,
            vocab: cfg.vocab,
        }
    }

    /// Builds the model with default (test-sized) configuration.
    pub fn small() -> Self {
        Self::new(TreeLstmConfig::default())
    }

    /// The leaf cell type.
    pub fn leaf_type(&self) -> CellTypeId {
        self.leaf
    }

    /// The internal cell type.
    pub fn internal_type(&self) -> CellTypeId {
        self.internal
    }

    /// Saves both cells' weights to one file, name-prefixed (§4.2).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), String> {
        let mut packed = bm_tensor::io::WeightBundle::new();
        packed.merge_prefixed("leaf", &self.registry.cell(self.leaf).to_bundle());
        packed.merge_prefixed("internal", &self.registry.cell(self.internal).to_bundle());
        packed.save(path).map_err(|e| e.to_string())
    }

    /// Loads a model from saved weights; shapes are inferred from the
    /// file, batching parameters come from `cfg` (its size/seed fields
    /// are ignored).
    pub fn load(path: impl AsRef<std::path::Path>, cfg: TreeLstmConfig) -> Result<Self, String> {
        let packed = bm_tensor::io::WeightBundle::load(path).map_err(|e| e.to_string())?;
        let leaf_cell = Cell::from_bundle("tree_leaf", &packed.sub_bundle("leaf"))?;
        let internal_cell = Cell::from_bundle("tree_internal", &packed.sub_bundle("internal"))?;
        let vocab = match &leaf_cell {
            Cell::TreeLeaf(c) => c.vocab_size(),
            _ => unreachable!(),
        };
        let mut registry = CellRegistry::new();
        let leaf = registry.register("tree_leaf", leaf_cell, 0, cfg.min_batch, cfg.max_batch);
        let internal = registry.register(
            "tree_internal",
            internal_cell,
            1,
            cfg.min_batch,
            cfg.max_batch,
        );
        Ok(TreeLstm {
            registry,
            leaf,
            internal,
            vocab,
        })
    }

    fn unfold_into(&self, shape: &TreeShape, g: &mut CellGraph) -> NodeId {
        match shape {
            TreeShape::Leaf(t) => self.registry_leaf(g, *t),
            TreeShape::Internal(l, r) => {
                let left = self.unfold_into(l, g);
                let right = self.unfold_into(r, g);
                g.add_node(self.internal, vec![left, right], TokenSource::None)
            }
        }
    }

    fn registry_leaf(&self, g: &mut CellGraph, token: u32) -> NodeId {
        g.add_node(self.leaf, vec![], TokenSource::Fixed(token))
    }
}

impl Model for TreeLstm {
    fn registry(&self) -> &CellRegistry {
        &self.registry
    }

    fn unfold(&self, input: &RequestInput) -> CellGraph {
        let RequestInput::Tree(shape) = input else {
            panic!("TreeLstm expects RequestInput::Tree");
        };
        let mut g = CellGraph::new();
        self.unfold_into(shape, &mut g);
        g
    }

    fn validate(&self, input: &RequestInput) -> Result<(), String> {
        match input {
            RequestInput::Tree(shape) => {
                if shape.max_token() as usize >= self.vocab {
                    return Err(format!(
                        "leaf token {} out of vocabulary ({})",
                        shape.max_token(),
                        self.vocab
                    ));
                }
                Ok(())
            }
            other => Err(format!("TreeLstm cannot serve {other:?}")),
        }
    }

    fn name(&self) -> &str {
        "tree-lstm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_tree_counts() {
        let t = TreeShape::complete(16, 100);
        assert_eq!(t.leaf_count(), 16);
        assert_eq!(t.node_count(), 31);
        assert_eq!(t.height(), 5);
    }

    #[test]
    fn unfold_complete_tree() {
        let m = TreeLstm::small();
        let g = m.unfold(&RequestInput::Tree(TreeShape::complete(8, 100)));
        g.validate(m.registry()).unwrap();
        assert_eq!(g.len(), 15);
        let hist = g.type_histogram(m.registry().len());
        assert_eq!(hist[m.leaf_type().index()], 8);
        assert_eq!(hist[m.internal_type().index()], 7);
        assert_eq!(g.sinks().len(), 1);
        assert_eq!(g.critical_path_len(), 4); // 3 internal levels + leaf.
    }

    #[test]
    fn unbalanced_tree_unfolds() {
        // ((a b) c): left-deep tree of 3 leaves.
        let t = TreeShape::internal(
            TreeShape::internal(TreeShape::leaf(1), TreeShape::leaf(2)),
            TreeShape::leaf(3),
        );
        let m = TreeLstm::small();
        let g = m.unfold(&RequestInput::Tree(t));
        g.validate(m.registry()).unwrap();
        assert_eq!(g.len(), 5);
        assert_eq!(g.critical_path_len(), 3);
    }

    #[test]
    fn single_leaf_tree() {
        let m = TreeLstm::small();
        let g = m.unfold(&RequestInput::Tree(TreeShape::leaf(9)));
        g.validate(m.registry()).unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn internal_cells_have_priority() {
        let m = TreeLstm::small();
        let reg = m.registry();
        assert!(reg.meta(m.internal_type()).priority > reg.meta(m.leaf_type()).priority);
    }

    #[test]
    fn validate_checks_vocab() {
        let m = TreeLstm::small();
        assert!(m
            .validate(&RequestInput::Tree(TreeShape::leaf(999_999)))
            .is_err());
        assert!(m.validate(&RequestInput::Tree(TreeShape::leaf(0))).is_ok());
        assert!(m.validate(&RequestInput::Sequence(vec![0])).is_err());
    }

    #[test]
    #[should_panic]
    fn complete_requires_power_of_two() {
        let _ = TreeShape::complete(6, 10);
    }
}
