//! A trivially correct, unbatched reference executor for cell graphs.
//!
//! This executor runs one node at a time (batch size 1) in topological
//! order. It exists purely as a correctness oracle: the cellular batching
//! runtime — which executes the same nodes in dynamically formed batches,
//! interleaved with other requests — must produce bit-identical outputs,
//! because batched cell execution is transparent (see the `bm-cell`
//! property tests).

use bm_cell::{CellOutput, CellRegistry, InvocationInput};

use crate::graph::{CellGraph, NodeId, TokenSource};

/// The full result of executing one request's cell graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphResult {
    /// Per-node outputs in node order; `None` for nodes cancelled by an
    /// upstream `<eos>` termination.
    pub outputs: Vec<Option<CellOutput>>,
}

impl GraphResult {
    /// Tokens emitted by token-emitting nodes, in node order.
    ///
    /// For a Seq2Seq graph this is the decoded sentence.
    pub fn decoded_tokens(&self) -> Vec<u32> {
        self.outputs
            .iter()
            .flatten()
            .filter_map(|o| o.token)
            .collect()
    }

    /// The final hidden state of the last executed node, if any.
    pub fn final_h(&self) -> Option<&[f32]> {
        self.outputs
            .iter()
            .rev()
            .flatten()
            .next()
            .map(|o| o.state.h.as_slice())
    }

    /// Number of nodes actually executed (not cancelled).
    pub fn executed_count(&self) -> usize {
        self.outputs.iter().flatten().count()
    }
}

/// Executes `graph` one node at a time.
///
/// # Panics
///
/// Panics if the graph is invalid for `registry` (call
/// [`CellGraph::validate`] first) or if a `FromDep` token source points
/// at a cancelled dependency.
pub fn execute_graph(graph: &CellGraph, registry: &CellRegistry) -> GraphResult {
    let mut outputs: Vec<Option<CellOutput>> = Vec::with_capacity(graph.len());
    // Nodes transitively downstream of an <eos> hit are cancelled.
    let mut cancelled = vec![false; graph.len()];
    for (id, node) in graph.iter() {
        if node.deps.iter().any(|d| cancelled[d.index()]) {
            cancelled[id.index()] = true;
            outputs.push(None);
            continue;
        }
        let states: Vec<_> = node
            .deps
            .iter()
            .map(|d| {
                &outputs[d.index()]
                    .as_ref()
                    .expect("dependency executed")
                    .state
            })
            .collect();
        let token = resolve_token(node.token, &node.deps, &outputs);
        let inv = InvocationInput { token, states };
        let out = registry
            .cell(node.cell_type)
            .execute_batch(std::slice::from_ref(&inv))
            .into_iter()
            .next()
            .expect("batch of one yields one output");
        // <eos> termination: this node still completes, but everything
        // downstream of it is cancelled.
        if let (Some(eos), Some(tok)) = (node.eos, out.token) {
            if tok == eos {
                cancelled[id.index()] = true;
                outputs.push(Some(out));
                continue;
            }
        }
        outputs.push(Some(out));
    }
    GraphResult { outputs }
}

/// Resolves a node's token input given the outputs computed so far.
pub fn resolve_token(
    source: TokenSource,
    deps: &[NodeId],
    outputs: &[Option<CellOutput>],
) -> Option<u32> {
    match source {
        TokenSource::None => None,
        TokenSource::Fixed(t) => Some(t),
        TokenSource::FromDep(k) => {
            let dep = deps[k];
            Some(
                outputs[dep.index()]
                    .as_ref()
                    .expect("token dependency executed")
                    .token
                    .expect("token dependency emitted a token"),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LstmLm, Model, RequestInput, Seq2Seq, TreeLstm, TreeShape};

    #[test]
    fn lstm_chain_executes_all_nodes() {
        let m = LstmLm::small();
        let g = m.unfold(&RequestInput::Sequence(vec![1, 2, 3]));
        let r = execute_graph(&g, m.registry());
        assert_eq!(r.executed_count(), 3);
        assert!(r.final_h().is_some());
        assert!(r.decoded_tokens().is_empty());
    }

    #[test]
    fn seq2seq_decodes_expected_length() {
        let m = Seq2Seq::small();
        let g = m.unfold(&RequestInput::Pair {
            src: vec![2, 3],
            decode_len: 4,
        });
        let r = execute_graph(&g, m.registry());
        assert_eq!(r.executed_count(), 6);
        assert_eq!(r.decoded_tokens().len(), 4);
    }

    #[test]
    fn treelstm_root_state_depends_on_all_leaves() {
        let m = TreeLstm::small();
        let t1 = TreeShape::internal(TreeShape::leaf(1), TreeShape::leaf(2));
        let t2 = TreeShape::internal(TreeShape::leaf(1), TreeShape::leaf(3));
        let r1 = execute_graph(&m.unfold(&RequestInput::Tree(t1)), m.registry());
        let r2 = execute_graph(&m.unfold(&RequestInput::Tree(t2)), m.registry());
        assert_ne!(r1.final_h(), r2.final_h());
    }

    #[test]
    fn execution_is_deterministic() {
        let m = Seq2Seq::small();
        let input = RequestInput::Pair {
            src: vec![5, 6, 7],
            decode_len: 3,
        };
        let r1 = execute_graph(&m.unfold(&input), m.registry());
        let r2 = execute_graph(&m.unfold(&input), m.registry());
        assert_eq!(r1, r2);
    }

    #[test]
    fn eos_cancels_downstream() {
        use crate::seq2seq::Seq2SeqConfig;
        // Force every decoded token to terminate: with eos matching
        // whatever the decoder emits is data-dependent, so instead build
        // a model where eos_terminates is on and scan until we find an
        // input whose first decoded token repeats. Simpler: mark eos as
        // the token the first decode step emits.
        let m = Seq2Seq::new(Seq2SeqConfig {
            eos_terminates: false,
            ..Seq2SeqConfig::default()
        });
        let input = RequestInput::Pair {
            src: vec![2],
            decode_len: 5,
        };
        let base = execute_graph(&m.unfold(&input), m.registry());
        let first_tok = base.decoded_tokens()[0];

        // Rebuild the graph with eos = first emitted token.
        let mut g = m.unfold(&input);
        for i in 1..g.len() {
            g.set_eos(crate::NodeId(i as u32), first_tok);
        }
        let r = execute_graph(&g, m.registry());
        // Encoder (1 node) + first decoder execute; the rest cancel.
        assert_eq!(r.executed_count(), 2);
        assert_eq!(r.decoded_tokens(), vec![first_tok]);
    }
}
