//! Weight persistence round trips: the §4.2 startup flow ("BatchMaker
//! loads each cell's definition and its pre-trained weights from files")
//! must reproduce the original model bit-for-bit.

use bm_model::{
    reference, LstmLm, LstmLmConfig, Model, RequestInput, Seq2Seq, Seq2SeqConfig, TreeLstm,
    TreeLstmConfig, TreeShape,
};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("bm_model_persistence");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name)
}

#[test]
fn lstm_lm_round_trip() {
    let cfg = LstmLmConfig::default();
    let original = LstmLm::new(cfg);
    let path = tmp("lstm.bmt");
    original.save(&path).unwrap();
    let loaded = LstmLm::load(&path, cfg).unwrap();

    // Same cell type identity (weights bit-identical).
    assert_eq!(
        original.registry().cell(original.cell_type()).signature(),
        loaded.registry().cell(loaded.cell_type()).signature(),
    );
    // Same inference results.
    let input = RequestInput::Sequence(vec![3, 5, 8, 13]);
    let a = reference::execute_graph(&original.unfold(&input), original.registry());
    let b = reference::execute_graph(&loaded.unfold(&input), loaded.registry());
    assert_eq!(a, b);
    std::fs::remove_file(&path).ok();
}

#[test]
fn seq2seq_round_trip_preserves_decoded_tokens() {
    let cfg = Seq2SeqConfig::default();
    let original = Seq2Seq::new(cfg);
    let path = tmp("seq2seq.bmt");
    original.save(&path).unwrap();
    let loaded = Seq2Seq::load(&path, cfg).unwrap();

    let input = RequestInput::Pair {
        src: vec![7, 9, 11],
        decode_len: 5,
    };
    let a = reference::execute_graph(&original.unfold(&input), original.registry());
    let b = reference::execute_graph(&loaded.unfold(&input), loaded.registry());
    assert_eq!(a.decoded_tokens(), b.decoded_tokens());
    assert_eq!(a, b);
    std::fs::remove_file(&path).ok();
}

#[test]
fn treelstm_round_trip() {
    let cfg = TreeLstmConfig::default();
    let original = TreeLstm::new(cfg);
    let path = tmp("tree.bmt");
    original.save(&path).unwrap();
    let loaded = TreeLstm::load(&path, cfg).unwrap();

    let input = RequestInput::Tree(TreeShape::complete(8, 100));
    let a = reference::execute_graph(&original.unfold(&input), original.registry());
    let b = reference::execute_graph(&loaded.unfold(&input), loaded.registry());
    assert_eq!(a, b);
    std::fs::remove_file(&path).ok();
}

#[test]
fn load_rejects_corrupt_and_missing_weights() {
    let path = tmp("bad.bmt");
    std::fs::write(&path, b"not a bundle").unwrap();
    assert!(LstmLm::load(&path, LstmLmConfig::default()).is_err());

    // A bundle missing required entries is rejected with a clear error.
    let empty = bm_tensor::io::WeightBundle::new();
    let path2 = tmp("empty.bmt");
    empty.save(&path2).unwrap();
    let err = LstmLm::load(&path2, LstmLmConfig::default()).unwrap_err();
    assert!(err.contains("missing"), "{err}");
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&path2).ok();
}

#[test]
fn loaded_model_serves_through_runtime() {
    // End-to-end: save, load, serve under the threaded runtime, compare
    // to the original model's reference execution.
    use bm_core::{Runtime, RuntimeOptions};
    use std::sync::Arc;

    let cfg = LstmLmConfig::default();
    let original = LstmLm::new(cfg);
    let path = tmp("served.bmt");
    original.save(&path).unwrap();
    let loaded = Arc::new(LstmLm::load(&path, cfg).unwrap());

    let rt = Runtime::start(
        Arc::clone(&loaded) as Arc<dyn Model>,
        RuntimeOptions::new().workers(1),
    );
    let input = RequestInput::Sequence(vec![1, 2, 3, 4, 5]);
    let served = rt
        .submit_request(&input)
        .expect("submit")
        .wait()
        .completed();
    let expect = reference::execute_graph(&original.unfold(&input), original.registry());
    assert_eq!(served.result, expect);
    rt.shutdown();
    std::fs::remove_file(&path).ok();
}
