//! The TCP front door: non-blocking ingest over a [`ShardedRuntime`].
//!
//! One **ingest thread** owns the listener and every connection's read
//! half: it accepts (with admission control — past
//! [`NetServerOptions::max_connections`] new sockets are closed
//! immediately), drains readable sockets into per-connection buffers,
//! decodes frames incrementally, applies per-tenant token-bucket rate
//! limits ([`bm_core::ServeConfig::tenant_rate`]), and submits decoded requests
//! to the sharded runtime. The vendored dependency set has no epoll
//! wrapper, so readiness is a polled scan of non-blocking sockets with
//! an adaptive idle backoff — at the connection counts the harness
//! drives (tens), the scan is cheaper than a syscall-per-wakeup
//! reactor.
//!
//! Each connection gets a **reaper thread** that resolves that
//! connection's pending [`ResponseHandle`]s in submission order (via
//! [`ResponseHandle::wait_timeout`]) and writes response frames back.
//! Responses to one connection are therefore FIFO by submission;
//! clients match concurrent submits by correlation id.
//!
//! **Backpressure** is per-connection: while a connection has
//! [`NetServerOptions::max_inflight`] unresolved requests, the ingest
//! thread stops reading its socket, so the kernel receive buffer fills
//! and TCP flow control pushes back on the client. A protocol error on
//! a connection closes it (the stream can never re-synchronise).

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use bm_core::{
    Request, ResponseHandle, RuntimeOptions, ServedOutcome, ShardedRuntime, SubmitError,
};
use bm_model::Model;
use bm_telemetry::Snapshot;

use crate::wire::{self, Message, NetReject, NetResponse};

/// How long a reaper sleeps between polls of its channel / a pending
/// handle, and the write-retry backoff on `WouldBlock`.
const REAPER_TICK: Duration = Duration::from_millis(20);
const WRITE_BACKOFF: Duration = Duration::from_micros(100);

/// Bytes read from a socket per scan pass.
const READ_CHUNK: usize = 64 * 1024;

/// Front-door configuration on top of the runtime's own options.
#[derive(Clone)]
#[non_exhaustive]
pub struct NetServerOptions {
    /// Options for the backing [`ShardedRuntime`] (shard count, worker
    /// threads, policy, deadlines, tenant rate limits — all via the
    /// embedded [`bm_core::ServeConfig`]).
    pub runtime: RuntimeOptions,
    /// Admission control: connections accepted beyond this cap are
    /// closed immediately without reading a byte.
    pub max_connections: usize,
    /// Per-connection backpressure window: with this many unresolved
    /// requests, the connection's socket is not read.
    pub max_inflight: usize,
}

impl Default for NetServerOptions {
    fn default() -> Self {
        NetServerOptions {
            runtime: RuntimeOptions::new(),
            max_connections: 1024,
            max_inflight: 1024,
        }
    }
}

impl NetServerOptions {
    /// Defaults: 1024 connections, 1024 in-flight per connection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the runtime options.
    pub fn runtime(mut self, runtime: RuntimeOptions) -> Self {
        self.runtime = runtime;
        self
    }

    /// Sets the connection admission cap.
    pub fn max_connections(mut self, cap: usize) -> Self {
        self.max_connections = cap;
        self
    }

    /// Sets the per-connection in-flight window.
    pub fn max_inflight(mut self, cap: usize) -> Self {
        self.max_inflight = cap;
        self
    }
}

/// Monotonic front-door counters, updated lock-free by the ingest and
/// reaper threads. Read a consistent-enough view with
/// [`NetServer::stats`].
#[derive(Default)]
struct NetStats {
    accepted: AtomicU64,
    refused: AtomicU64,
    frames_in: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    expired: AtomicU64,
    rejected: AtomicU64,
    rate_limited: AtomicU64,
    protocol_errors: AtomicU64,
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct NetStatsView {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections refused at the admission cap.
    pub refused: u64,
    /// Well-formed frames decoded.
    pub frames_in: u64,
    /// Requests admitted into the runtime.
    pub submitted: u64,
    /// Responses that completed.
    pub completed: u64,
    /// Responses that expired at their deadline.
    pub expired: u64,
    /// Submissions the runtime refused (invalid / queue full / at
    /// capacity).
    pub rejected: u64,
    /// Submissions refused by a tenant token bucket.
    pub rate_limited: u64,
    /// Connections closed for undecodable bytes.
    pub protocol_errors: u64,
}

/// A token bucket: `tokens` refills at `per_sec` up to `burst`.
struct Bucket {
    tokens: f64,
    last: Instant,
}

impl Bucket {
    fn admit(&mut self, per_sec: f64, burst: f64, now: Instant) -> bool {
        let dt = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * per_sec).min(burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// What a reaper must turn into a response frame.
enum Pending {
    /// Wait for the runtime to resolve this handle.
    Handle(ResponseHandle),
    /// Already decided at ingest (rate limit, submit refusal).
    Immediate(NetResponse),
}

/// Ingest-side connection state. The write half lives in the reaper.
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    inflight: Arc<AtomicUsize>,
    to_reaper: Sender<(u32, Pending)>,
    dead: bool,
}

/// The serving front door. Binds, serves until [`NetServer::shutdown`],
/// and owns the backing [`ShardedRuntime`].
pub struct NetServer {
    local_addr: std::net::SocketAddr,
    runtime: Arc<ShardedRuntime>,
    stats: Arc<NetStats>,
    stop: Arc<AtomicBool>,
    ingest: Option<JoinHandle<()>>,
    reapers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Starts a sharded runtime for `model` and binds the front door to
    /// `addr` (use port 0 for an ephemeral port, then
    /// [`local_addr`](Self::local_addr)).
    pub fn bind<A: ToSocketAddrs>(
        model: Arc<dyn Model>,
        opts: NetServerOptions,
        addr: A,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let runtime = Arc::new(ShardedRuntime::start(model, opts.runtime.clone()));
        let stats = Arc::new(NetStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let reapers = Arc::new(Mutex::new(Vec::new()));

        let ingest = {
            let runtime = Arc::clone(&runtime);
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let reapers = Arc::clone(&reapers);
            thread::Builder::new()
                .name("bm-net-ingest".into())
                .spawn(move || ingest_loop(listener, &opts, &runtime, &stats, &stop, &reapers))?
        };

        Ok(NetServer {
            local_addr,
            runtime,
            stats,
            stop,
            ingest: Some(ingest),
            reapers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The backing sharded runtime (placement observability, telemetry
    /// snapshots).
    pub fn runtime(&self) -> &ShardedRuntime {
        &self.runtime
    }

    /// A point-in-time copy of the front-door counters.
    pub fn stats(&self) -> NetStatsView {
        let s = &self.stats;
        NetStatsView {
            accepted: s.accepted.load(Ordering::Relaxed),
            refused: s.refused.load(Ordering::Relaxed),
            frames_in: s.frames_in.load(Ordering::Relaxed),
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            expired: s.expired.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            rate_limited: s.rate_limited.load(Ordering::Relaxed),
            protocol_errors: s.protocol_errors.load(Ordering::Relaxed),
        }
    }

    /// The rolled-up per-shard telemetry snapshot (empty unless the
    /// serve config enabled telemetry).
    pub fn snapshot(&self) -> Snapshot {
        self.runtime.snapshot()
    }

    /// Stops accepting, drains every pending response to its client,
    /// then shuts the runtime down, joining all threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.ingest.take() {
            let _ = h.join();
        }
        // Reapers drain their channels (the runtime is still up, so
        // pending handles resolve) before the runtime is torn down.
        let handles = {
            let mut guard = self.reapers.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *guard)
        };
        for h in handles {
            let _ = h.join();
        }
        if let Ok(rt) = Arc::try_unwrap(self.runtime) {
            rt.shutdown();
        }
    }
}

/// The key `None`-tenant requests share one bucket under.
fn tenant_key(tenant: Option<u32>) -> u64 {
    match tenant {
        None => 0,
        Some(t) => u64::from(t) + 1,
    }
}

fn ingest_loop(
    listener: TcpListener,
    opts: &NetServerOptions,
    runtime: &Arc<ShardedRuntime>,
    stats: &Arc<NetStats>,
    stop: &Arc<AtomicBool>,
    reapers: &Mutex<Vec<JoinHandle<()>>>,
) {
    let rate = runtime.serve().tenant_rate;
    let mut buckets: HashMap<u64, Bucket> = HashMap::new();
    let mut conns: Vec<Conn> = Vec::new();
    let mut chunk = vec![0u8; READ_CHUNK];
    let mut idle_passes: u32 = 0;

    while !stop.load(Ordering::Relaxed) {
        let mut progressed = false;

        // Accept with admission control.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    progressed = true;
                    if conns.len() >= opts.max_connections {
                        stats.refused.fetch_add(1, Ordering::Relaxed);
                        drop(stream); // refuse by closing
                        continue;
                    }
                    match spawn_conn(stream, stats) {
                        Ok((conn, reaper)) => {
                            stats.accepted.fetch_add(1, Ordering::Relaxed);
                            conns.push(conn);
                            reapers
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push(reaper);
                        }
                        Err(_) => {
                            stats.refused.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }

        // Read, decode, submit.
        for conn in &mut conns {
            if conn.dead {
                continue;
            }
            // Backpressure: stop reading while the window is full, so
            // TCP flow control reaches the client.
            if conn.inflight.load(Ordering::Relaxed) >= opts.max_inflight {
                continue;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => conn.dead = true, // peer closed
                Ok(n) => {
                    progressed = true;
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    drain_frames(conn, runtime, stats, rate.as_ref(), &mut buckets);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => conn.dead = true,
            }
        }

        // Dropping a dead Conn drops its reaper sender: the reaper
        // drains what is queued, then exits.
        conns.retain(|c| !c.dead);

        if progressed {
            idle_passes = 0;
        } else {
            idle_passes = idle_passes.saturating_add(1);
            // Adaptive backoff: 50 µs after one idle pass, growing to a
            // 2 ms cap so an idle server costs ~500 wakeups/s.
            let us = (50u64 << idle_passes.min(6)).min(2_000);
            thread::sleep(Duration::from_micros(us));
        }
    }
    // Loop exit drops every Conn → reaper senders close → reapers drain.
}

/// Accepts one connection: non-blocking read half for the ingest scan,
/// a cloned write half owned by a dedicated reaper thread.
fn spawn_conn(stream: TcpStream, stats: &Arc<NetStats>) -> std::io::Result<(Conn, JoinHandle<()>)> {
    stream.set_nonblocking(true)?;
    stream.set_nodelay(true)?;
    let write_half = stream.try_clone()?;
    let inflight = Arc::new(AtomicUsize::new(0));
    let (tx, rx) = channel::<(u32, Pending)>();
    let reaper = {
        let inflight = Arc::clone(&inflight);
        let stats = Arc::clone(stats);
        thread::Builder::new()
            .name("bm-net-reaper".into())
            .spawn(move || reaper_loop(write_half, rx, &inflight, &stats))?
    };
    Ok((
        Conn {
            stream,
            rbuf: Vec::new(),
            inflight,
            to_reaper: tx,
            dead: false,
        },
        reaper,
    ))
}

/// Decodes every complete frame in `conn.rbuf`, submitting requests and
/// queueing their (eventual) responses on the connection's reaper.
fn drain_frames(
    conn: &mut Conn,
    runtime: &ShardedRuntime,
    stats: &NetStats,
    rate: Option<&bm_core::TenantRate>,
    buckets: &mut HashMap<u64, Bucket>,
) {
    loop {
        match wire::decode_frame(&conn.rbuf) {
            Ok(None) => break,
            Ok(Some((frame, consumed))) => {
                conn.rbuf.drain(..consumed);
                stats.frames_in.fetch_add(1, Ordering::Relaxed);
                let req = match frame.message {
                    Message::Submit(req) => req,
                    // A server never receives responses; the stream is
                    // out of protocol.
                    Message::Response(_) => {
                        stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        conn.dead = true;
                        return;
                    }
                };
                let pending = admit(req, runtime, stats, rate, buckets);
                conn.inflight.fetch_add(1, Ordering::Relaxed);
                if conn.to_reaper.send((frame.correlation, pending)).is_err() {
                    conn.dead = true; // reaper gone (write side failed)
                    return;
                }
            }
            Err(_) => {
                // Framing is unrecoverable; close the connection.
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                conn.dead = true;
                return;
            }
        }
    }
}

/// Rate-limits and submits one request, producing either a live handle
/// or an immediately-decided response.
fn admit(
    req: Request,
    runtime: &ShardedRuntime,
    stats: &NetStats,
    rate: Option<&bm_core::TenantRate>,
    buckets: &mut HashMap<u64, Bucket>,
) -> Pending {
    if let Some(r) = rate {
        let now = Instant::now();
        let bucket = buckets.entry(tenant_key(req.tenant)).or_insert(Bucket {
            tokens: f64::from(r.burst),
            last: now,
        });
        if !bucket.admit(r.per_sec, f64::from(r.burst), now) {
            stats.rate_limited.fetch_add(1, Ordering::Relaxed);
            return Pending::Immediate(NetResponse::Rejected(NetReject::RateLimited));
        }
    }
    match runtime.submit_request(req) {
        Ok(handle) => {
            stats.submitted.fetch_add(1, Ordering::Relaxed);
            Pending::Handle(handle)
        }
        Err(e) => {
            stats.rejected.fetch_add(1, Ordering::Relaxed);
            let resp = match e {
                SubmitError::Invalid(msg) => NetResponse::Rejected(NetReject::Invalid(msg)),
                SubmitError::QueueFull => NetResponse::Rejected(NetReject::QueueFull),
                SubmitError::AtCapacity => NetResponse::Rejected(NetReject::AtCapacity),
                SubmitError::ShuttingDown => NetResponse::ShutDown,
                // SubmitError is non-exhaustive-ready; treat unknown
                // refusals as capacity.
                _ => NetResponse::Rejected(NetReject::AtCapacity),
            };
            Pending::Immediate(resp)
        }
    }
}

/// Resolves one connection's pending responses in order and writes them
/// back. Exits when the ingest side drops the sender (connection closed
/// or server stopping) and the queue is drained.
fn reaper_loop(
    mut stream: TcpStream,
    rx: Receiver<(u32, Pending)>,
    inflight: &AtomicUsize,
    stats: &NetStats,
) {
    let mut wbuf = Vec::with_capacity(4096);
    // Once a write fails the peer is gone: keep draining (handles must
    // be consumed and `inflight` decremented) but stop writing.
    let mut writable = true;
    loop {
        let (corr, pending) = match rx.recv_timeout(REAPER_TICK) {
            Ok(item) => item,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let resp = match pending {
            Pending::Immediate(r) => r,
            Pending::Handle(h) => resolve(h),
        };
        match &resp {
            NetResponse::Completed { .. } => stats.completed.fetch_add(1, Ordering::Relaxed),
            NetResponse::Expired { .. } => stats.expired.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        };
        if writable {
            wbuf.clear();
            wire::encode_response(&mut wbuf, corr, &resp);
            if write_all_nb(&mut stream, &wbuf).is_err() {
                writable = false;
            }
        }
        inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Blocks (in reaper context) until the runtime resolves the handle.
fn resolve(handle: ResponseHandle) -> NetResponse {
    loop {
        match handle.wait_timeout(REAPER_TICK) {
            Err(_) => continue, // timed out; runtime still working
            Ok(ServedOutcome::Completed(res)) => {
                let executed = res.result.outputs.iter().flatten().count() as u32;
                let tokens = res
                    .result
                    .outputs
                    .iter()
                    .map(|o| o.as_ref().and_then(|c| c.token))
                    .collect();
                return NetResponse::Completed {
                    timing: res.timing,
                    executed,
                    tokens,
                };
            }
            Ok(ServedOutcome::Expired(timing)) => return NetResponse::Expired { timing },
            Ok(_) => return NetResponse::ShutDown,
        }
    }
}

/// `write_all` over a non-blocking socket: retries `WouldBlock` with a
/// short backoff. Gives up (reporting the error) only on a real I/O
/// failure — shutdown still flushes queued responses.
fn write_all_nb(stream: &mut TcpStream, mut buf: &[u8]) -> std::io::Result<()> {
    while !buf.is_empty() {
        match stream.write(buf) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "socket closed mid-frame",
                ))
            }
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(WRITE_BACKOFF),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}
