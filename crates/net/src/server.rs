//! The TCP front door: a single event loop over a [`ShardedRuntime`].
//!
//! One **event thread** owns the listener, every connection (both
//! halves), and the runtime's completion queue. Per pass it accepts
//! (with admission control — past
//! [`NetServerOptions::max_connections`] new sockets are closed
//! immediately), drains readable sockets into per-connection buffers,
//! decodes frames incrementally, applies per-tenant token-bucket rate
//! limits ([`bm_core::ServeConfig::tenant_rate`]), and submits **every
//! request decoded in the pass as one batch**
//! ([`ShardedRuntime::submit_batch_tagged`]) so a manager wakeup
//! amortizes across the burst. Responses come back tagged on one
//! [`bm_core::CompletionQueue`] — there are no per-connection reaper
//! threads and no per-request channels — and are written back in
//! submission order per connection (clients match concurrent submits
//! by correlation id).
//!
//! How the loop learns that sockets and completions are ready is the
//! [`crate::readiness`] backend, selected by
//! [`bm_core::ServeConfig::readiness`]:
//!
//! - **epoll** (Linux x86_64): one blocked `epoll_wait` covers the
//!   listener, every connection and an eventfd the completion queue's
//!   waker signals. Idle connections cost nothing; write-blocked
//!   connections register write interest instead of sleeping;
//!   backpressured connections drop read interest instead of being
//!   re-scanned.
//! - **polled** (portable fallback and bit-identity oracle): a scan of
//!   non-blocking sockets with an adaptive exponential idle backoff
//!   (50 µs doubling to a 2 ms cap). The same backoff paces write
//!   retries after `WouldBlock` — there is no constant-sleep retry
//!   loop.
//!
//! **Backpressure** is per-connection: while a connection has
//! [`NetServerOptions::max_inflight`] unresolved requests, its socket
//! is not read, so the kernel receive buffer fills and TCP flow
//! control pushes back on the client. A protocol error on a connection
//! closes it (the stream can never re-synchronise).

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use bm_core::{
    completion_queue, CompletionQueue, CompletionReceiver, ReadinessMode, Request, ServedOutcome,
    ShardedRuntime, SubmitError,
};
use bm_model::Model;
use bm_telemetry::Snapshot;

use crate::readiness::{self, Epoll, EventFd, Events, Interest};
use crate::wire::{self, Message, NetReject, NetResponse};

/// Bytes read from a socket per `read` call.
const READ_CHUNK: usize = 64 * 1024;

/// Events buffered per `epoll_wait`.
const EVENTS_CAP: usize = 256;

/// Safety-net timeout for `epoll_wait`: every wake source (sockets,
/// listener, completion eventfd, shutdown wake) is registered, so this
/// only bounds how stale a missed edge could get.
const EPOLL_TIMEOUT_MS: i32 = 100;

/// How long shutdown keeps flushing pending responses to clients that
/// have stopped reading before giving up on them.
const SHUTDOWN_FLUSH: Duration = Duration::from_secs(5);

/// Epoll token for the listener (connection ids are `u32`, so the top
/// two `u64` values can never collide with one).
const TOKEN_LISTENER: u64 = u64::MAX;
/// Epoll token for the completion-queue eventfd.
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// Front-door configuration on top of the runtime's own options.
///
/// The readiness backend is chosen by the embedded serve config:
/// `opts.runtime(RuntimeOptions::new().serve_config(
///     ServeConfig::new().readiness(ReadinessMode::Epoll)))`.
#[derive(Clone)]
#[non_exhaustive]
pub struct NetServerOptions {
    /// Options for the backing [`ShardedRuntime`] (shard count, worker
    /// threads, policy, deadlines, tenant rate limits, readiness
    /// backend — all via the embedded [`bm_core::ServeConfig`]).
    pub runtime: bm_core::RuntimeOptions,
    /// Admission control: connections accepted beyond this cap are
    /// closed immediately without reading a byte.
    pub max_connections: usize,
    /// Per-connection backpressure window: with this many unresolved
    /// requests, the connection's socket is not read.
    pub max_inflight: usize,
}

impl Default for NetServerOptions {
    fn default() -> Self {
        NetServerOptions {
            runtime: bm_core::RuntimeOptions::new(),
            max_connections: 1024,
            max_inflight: 1024,
        }
    }
}

impl NetServerOptions {
    /// Defaults: 1024 connections, 1024 in-flight per connection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the runtime options.
    pub fn runtime(mut self, runtime: bm_core::RuntimeOptions) -> Self {
        self.runtime = runtime;
        self
    }

    /// Sets the connection admission cap.
    pub fn max_connections(mut self, cap: usize) -> Self {
        self.max_connections = cap;
        self
    }

    /// Sets the per-connection in-flight window.
    pub fn max_inflight(mut self, cap: usize) -> Self {
        self.max_inflight = cap;
        self
    }
}

/// Monotonic front-door counters, updated lock-free by the event
/// thread. Read a consistent-enough view with [`NetServer::stats`].
#[derive(Default)]
struct NetStats {
    accepted: AtomicU64,
    refused: AtomicU64,
    frames_in: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    expired: AtomicU64,
    rejected: AtomicU64,
    rate_limited: AtomicU64,
    protocol_errors: AtomicU64,
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct NetStatsView {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections refused at the admission cap.
    pub refused: u64,
    /// Well-formed frames decoded.
    pub frames_in: u64,
    /// Requests admitted into the runtime.
    pub submitted: u64,
    /// Responses that completed.
    pub completed: u64,
    /// Responses that expired at their deadline.
    pub expired: u64,
    /// Submissions the runtime refused (invalid / queue full / at
    /// capacity).
    pub rejected: u64,
    /// Submissions refused by a tenant token bucket.
    pub rate_limited: u64,
    /// Connections closed for undecodable bytes.
    pub protocol_errors: u64,
}

/// A token bucket: `tokens` refills at `per_sec` up to `burst`.
struct Bucket {
    tokens: f64,
    last: Instant,
}

impl Bucket {
    fn admit(&mut self, per_sec: f64, burst: f64, now: Instant) -> bool {
        let dt = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * per_sec).min(burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// One response slot in a connection's FIFO. `ready` is `None` while
/// the runtime still owns the request; responses are written strictly
/// in submission order, so a resolved entry behind an unresolved one
/// waits its turn.
struct PendingResp {
    corr: u32,
    seq: u32,
    ready: Option<NetResponse>,
}

/// Per-connection state, all owned by the event thread.
struct Conn {
    stream: TcpStream,
    fd: readiness::RawFd,
    /// Incoming bytes not yet forming a complete frame.
    rbuf: Vec<u8>,
    /// Encoded response bytes not yet accepted by the socket.
    wbuf: Vec<u8>,
    /// Responses owed to this connection, in submission order.
    pending: VecDeque<PendingResp>,
    /// Next per-connection sequence number (the low half of the
    /// completion tag).
    next_seq: u32,
    /// Read side finished: peer EOF, read error, or protocol error.
    /// The connection stays alive until its owed responses flush.
    dead: bool,
    /// Write side failed: responses are discarded (the counts still
    /// tick) and the connection is retired immediately.
    write_broken: bool,
    /// The interest currently registered with the epoll (unused by
    /// the polled backend).
    cur_interest: Interest,
}

impl Conn {
    /// The completion tag for this connection's next request:
    /// connection id in the high 32 bits, per-connection sequence in
    /// the low 32.
    fn next_tag(&mut self, conn_id: u32) -> (u32, u64) {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        (seq, (u64::from(conn_id) << 32) | u64::from(seq))
    }
}

/// The readiness backend driving the event loop.
enum Backend {
    /// Portable polled scan with adaptive idle backoff.
    Polled,
    /// Linux x86_64 epoll + eventfd (see [`crate::readiness`]).
    Epoll {
        ep: Epoll,
        efd: Arc<EventFd>,
        events: Events,
    },
}

impl Backend {
    fn label(&self) -> &'static str {
        match self {
            Backend::Polled => "polled",
            Backend::Epoll { .. } => "epoll",
        }
    }

    fn epoll(&self) -> Option<&Epoll> {
        match self {
            Backend::Polled => None,
            Backend::Epoll { ep, .. } => Some(ep),
        }
    }
}

/// The serving front door. Binds, serves until [`NetServer::shutdown`],
/// and owns the backing [`ShardedRuntime`].
pub struct NetServer {
    local_addr: std::net::SocketAddr,
    runtime: Arc<ShardedRuntime>,
    stats: Arc<NetStats>,
    stop: Arc<AtomicBool>,
    /// Wakes the epoll loop out of `epoll_wait` for shutdown; `None`
    /// on the polled backend (its sleep is bounded at 2 ms).
    waker: Option<Arc<EventFd>>,
    ingest: Option<JoinHandle<()>>,
    backend: &'static str,
}

impl NetServer {
    /// Starts a sharded runtime for `model` and binds the front door to
    /// `addr` (use port 0 for an ephemeral port, then
    /// [`local_addr`](Self::local_addr)).
    ///
    /// The readiness backend follows
    /// [`bm_core::ServeConfig::readiness`]: `Auto` uses epoll where
    /// supported and the polled scan elsewhere; an explicit `Epoll` on
    /// a platform without the backend fails with
    /// [`std::io::ErrorKind::Unsupported`].
    pub fn bind<A: ToSocketAddrs>(
        model: Arc<dyn Model>,
        opts: NetServerOptions,
        addr: A,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let (queue, completions) = completion_queue();
        let (backend, queue, waker) =
            build_backend(opts.runtime.serve().readiness, &listener, queue)?;
        let backend_label = backend.label();

        let runtime = Arc::new(ShardedRuntime::start(model, opts.runtime.clone()));
        let stats = Arc::new(NetStats::default());
        let stop = Arc::new(AtomicBool::new(false));

        let ingest = {
            let runtime = Arc::clone(&runtime);
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("bm-net-events".into())
                .spawn(move || {
                    event_loop(EventLoop {
                        listener: Some(listener),
                        backend,
                        opts,
                        runtime,
                        stats,
                        stop,
                        queue,
                        completions,
                    })
                })?
        };

        Ok(NetServer {
            local_addr,
            runtime,
            stats,
            stop,
            waker,
            ingest: Some(ingest),
            backend: backend_label,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The readiness backend the event loop actually runs on:
    /// `"epoll"` or `"polled"` (`Auto` resolves at bind time).
    pub fn readiness_backend(&self) -> &'static str {
        self.backend
    }

    /// The backing sharded runtime (placement observability, telemetry
    /// snapshots).
    pub fn runtime(&self) -> &ShardedRuntime {
        &self.runtime
    }

    /// A point-in-time copy of the front-door counters.
    pub fn stats(&self) -> NetStatsView {
        let s = &self.stats;
        NetStatsView {
            accepted: s.accepted.load(Ordering::Relaxed),
            refused: s.refused.load(Ordering::Relaxed),
            frames_in: s.frames_in.load(Ordering::Relaxed),
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            expired: s.expired.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            rate_limited: s.rate_limited.load(Ordering::Relaxed),
            protocol_errors: s.protocol_errors.load(Ordering::Relaxed),
        }
    }

    /// The rolled-up per-shard telemetry snapshot (empty unless the
    /// serve config enabled telemetry).
    pub fn snapshot(&self) -> Snapshot {
        self.runtime.snapshot()
    }

    /// Stops accepting, drains every pending response to its client,
    /// then shuts the runtime down, joining all threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(w) = &self.waker {
            w.wake();
        }
        if let Some(h) = self.ingest.take() {
            let _ = h.join();
        }
        if let Ok(rt) = Arc::try_unwrap(self.runtime) {
            rt.shutdown();
        }
    }
}

/// Resolves the configured [`ReadinessMode`] into a live backend,
/// wiring the completion queue's waker to the epoll eventfd.
fn build_backend(
    mode: ReadinessMode,
    listener: &TcpListener,
    queue: CompletionQueue,
) -> std::io::Result<(Backend, CompletionQueue, Option<Arc<EventFd>>)> {
    let explicit = match mode {
        ReadinessMode::Polled => return Ok((Backend::Polled, queue, None)),
        ReadinessMode::Epoll => true,
        ReadinessMode::Auto => false,
    };
    if !readiness::SUPPORTED {
        return if explicit {
            Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "epoll readiness backend requires Linux x86_64",
            ))
        } else {
            Ok((Backend::Polled, queue, None))
        };
    }
    let assemble = || -> Result<(Epoll, Arc<EventFd>), readiness::SysError> {
        let ep = Epoll::new()?;
        let efd = Arc::new(EventFd::new()?);
        ep.register(
            readiness::raw_fd_of_listener(listener),
            TOKEN_LISTENER,
            Interest::READ,
        )?;
        ep.register(efd.raw_fd(), TOKEN_WAKER, Interest::READ)?;
        Ok((ep, efd))
    };
    match assemble() {
        Ok((ep, efd)) => {
            // Completions wake the event loop out of `epoll_wait`;
            // multiple wakes coalesce in the eventfd counter.
            let wake_efd = Arc::clone(&efd);
            let queue = queue.with_waker(Arc::new(move || wake_efd.wake()));
            let events = Events::with_capacity(EVENTS_CAP);
            Ok((
                Backend::Epoll {
                    ep,
                    efd: Arc::clone(&efd),
                    events,
                },
                queue,
                Some(efd),
            ))
        }
        Err(e) if !explicit => {
            // Auto mode: a kernel refusing epoll (fd limits, seccomp)
            // falls back to the polled scan.
            let _ = e;
            Ok((Backend::Polled, queue, None))
        }
        Err(e) => Err(e.into()),
    }
}

/// The key `None`-tenant requests share one bucket under.
fn tenant_key(tenant: Option<u32>) -> u64 {
    match tenant {
        None => 0,
        Some(t) => u64::from(t) + 1,
    }
}

/// Everything the event thread owns.
struct EventLoop {
    listener: Option<TcpListener>,
    backend: Backend,
    opts: NetServerOptions,
    runtime: Arc<ShardedRuntime>,
    stats: Arc<NetStats>,
    stop: Arc<AtomicBool>,
    queue: CompletionQueue,
    completions: CompletionReceiver,
}

fn event_loop(ctx: EventLoop) {
    let EventLoop {
        mut listener,
        mut backend,
        opts,
        runtime,
        stats,
        stop,
        queue,
        completions,
    } = ctx;
    let rate = runtime.serve().tenant_rate;
    let mut buckets: HashMap<u64, Bucket> = HashMap::new();
    let mut conns: HashMap<u32, Conn> = HashMap::new();
    let mut next_conn_id: u32 = 0;
    let mut chunk = vec![0u8; READ_CHUNK];
    // Requests decoded this pass, submitted as one batch below.
    let mut batch: Vec<(u64, Request)> = Vec::new();
    // Tagged submissions the runtime has accepted but not yet
    // resolved; shutdown drains to zero before exiting.
    let mut outstanding: usize = 0;
    let mut idle_passes: u32 = 0;
    let mut stop_deadline: Option<Instant> = None;

    loop {
        let stopping = stop.load(Ordering::Relaxed);
        if stopping && listener.is_some() {
            // Stop accepting: close the listener (which also removes
            // it from the epoll set) and start the flush deadline.
            if let (Some(ep), Some(l)) = (backend.epoll(), &listener) {
                let _ = ep.deregister(readiness::raw_fd_of_listener(l));
            }
            listener = None;
            stop_deadline = Some(Instant::now() + SHUTDOWN_FLUSH);
        }

        let mut progressed = false;

        // ── Input phase: learn what is ready; read and decode it. ──
        match &mut backend {
            Backend::Polled => {
                if let Some(l) = &listener {
                    progressed |= accept_all(l, None, &mut conns, &mut next_conn_id, &opts, &stats);
                }
                let ids: Vec<u32> = conns.keys().copied().collect();
                for id in ids {
                    let Some(c) = conns.get_mut(&id) else {
                        continue;
                    };
                    // Backpressure: stop reading while the window is
                    // full, so TCP flow control reaches the client.
                    if c.dead || stopping || c.pending.len() >= opts.max_inflight {
                        continue;
                    }
                    progressed |= read_conn(
                        id,
                        c,
                        &mut chunk,
                        &mut batch,
                        &stats,
                        rate.as_ref(),
                        &mut buckets,
                        opts.max_inflight,
                    );
                }
            }
            Backend::Epoll { ep, efd, events } => {
                let timeout = if stopping { 1 } else { EPOLL_TIMEOUT_MS };
                let _ = ep.wait(events, timeout);
                // Drain the wakeup counter *before* the completion
                // pump below: a wake posted after the pump empties the
                // queue then stays pending and re-triggers the next
                // wait, so no completion is ever stranded.
                efd.drain();
                let ready: Vec<readiness::Event> = events.iter().collect();
                for ev in ready {
                    match ev.token {
                        TOKEN_WAKER => {}
                        TOKEN_LISTENER => {
                            if let Some(l) = &listener {
                                progressed |= accept_all(
                                    l,
                                    Some(ep),
                                    &mut conns,
                                    &mut next_conn_id,
                                    &opts,
                                    &stats,
                                );
                            }
                        }
                        token => {
                            let id = token as u32;
                            let Some(c) = conns.get_mut(&id) else {
                                continue;
                            };
                            if ev.readable && !c.dead && !stopping {
                                progressed |= read_conn(
                                    id,
                                    c,
                                    &mut chunk,
                                    &mut batch,
                                    &stats,
                                    rate.as_ref(),
                                    &mut buckets,
                                    opts.max_inflight,
                                );
                            } else if ev.error {
                                // Error/hangup with nothing readable:
                                // the peer is gone.
                                c.dead = true;
                            }
                            if ev.writable && !c.wbuf.is_empty() {
                                progressed |= flush_wbuf(c);
                            }
                        }
                    }
                }
            }
        }

        // ── Submit phase: the whole pass's decode in one batch. ──
        if !batch.is_empty() {
            progressed = true;
            let tags: Vec<u64> = batch.iter().map(|(t, _)| *t).collect();
            let results = runtime.submit_batch_tagged(batch.drain(..), &queue);
            for (tag, res) in tags.into_iter().zip(results) {
                match res {
                    Ok(()) => {
                        outstanding += 1;
                        stats.submitted.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        stats.rejected.fetch_add(1, Ordering::Relaxed);
                        mark_ready(&mut conns, tag, submit_error_response(e));
                    }
                }
            }
        }

        // ── Completion pump: everything the runtime resolved. ──
        while let Some((tag, outcome)) = completions.try_recv() {
            progressed = true;
            outstanding = outstanding.saturating_sub(1);
            let resp = outcome_response(outcome);
            match &resp {
                NetResponse::Completed { .. } => stats.completed.fetch_add(1, Ordering::Relaxed),
                NetResponse::Expired { .. } => stats.expired.fetch_add(1, Ordering::Relaxed),
                _ => 0,
            };
            mark_ready(&mut conns, tag, resp);
        }

        // ── Flush phase: release resolved FIFO heads, write. ──
        for c in conns.values_mut() {
            while let Some(front) = c.pending.front_mut() {
                let Some(resp) = front.ready.take() else {
                    break;
                };
                if !c.write_broken {
                    wire::encode_response(&mut c.wbuf, front.corr, &resp);
                }
                c.pending.pop_front();
                progressed = true;
            }
            if !c.wbuf.is_empty() && !c.write_broken {
                progressed |= flush_wbuf(c);
            }
        }

        // ── Retire finished connections. ──
        let ep = backend.epoll();
        conns.retain(|_, c| {
            let finished = c.write_broken || (c.dead && c.pending.is_empty() && c.wbuf.is_empty());
            if finished {
                if let Some(ep) = ep {
                    // Tolerant deregister: closing the fd (on drop
                    // below) removes it from the set anyway.
                    let _ = ep.deregister(c.fd);
                }
            }
            !finished
        });

        // ── Interest maintenance (epoll only): read unless paused,
        // write while bytes are queued. ──
        if let Some(ep) = ep {
            for (id, c) in conns.iter_mut() {
                let read_on = !c.dead && !stopping && c.pending.len() < opts.max_inflight;
                let write_on = !c.wbuf.is_empty() && !c.write_broken;
                let want = Interest::new(read_on, write_on);
                if want != c.cur_interest && ep.reregister(c.fd, u64::from(*id), want).is_ok() {
                    c.cur_interest = want;
                }
            }
        }

        if stopping {
            let drained = outstanding == 0
                && conns
                    .values()
                    .all(|c| c.pending.is_empty() && (c.wbuf.is_empty() || c.write_broken));
            if drained || stop_deadline.is_some_and(|d| Instant::now() >= d) {
                break;
            }
        }

        // The polled scan's pacing: adaptive exponential backoff from
        // 50 µs to a 2 ms cap whenever a pass makes no progress. This
        // is also the write-retry backoff — a `WouldBlock`ed write
        // with nothing else moving retries on this schedule instead
        // of a constant-sleep spin.
        if let Backend::Polled = &backend {
            if progressed {
                idle_passes = 0;
            } else {
                idle_passes = idle_passes.saturating_add(1);
                let us = (50u64 << idle_passes.min(6)).min(2_000);
                thread::sleep(Duration::from_micros(us));
            }
        }
    }
}

/// Accepts until the listener would block, applying the admission cap
/// and (in epoll mode) registering each new socket.
fn accept_all(
    listener: &TcpListener,
    ep: Option<&Epoll>,
    conns: &mut HashMap<u32, Conn>,
    next_conn_id: &mut u32,
    opts: &NetServerOptions,
    stats: &NetStats,
) -> bool {
    let mut progressed = false;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                progressed = true;
                if conns.len() >= opts.max_connections {
                    stats.refused.fetch_add(1, Ordering::Relaxed);
                    drop(stream); // refuse by closing
                    continue;
                }
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    stats.refused.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let id = *next_conn_id;
                *next_conn_id = next_conn_id.wrapping_add(1);
                let fd = readiness::raw_fd_of(&stream);
                if let Some(ep) = ep {
                    if ep.register(fd, u64::from(id), Interest::READ).is_err() {
                        stats.refused.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                }
                stats.accepted.fetch_add(1, Ordering::Relaxed);
                conns.insert(
                    id,
                    Conn {
                        stream,
                        fd,
                        rbuf: Vec::new(),
                        wbuf: Vec::new(),
                        pending: VecDeque::new(),
                        next_seq: 0,
                        dead: false,
                        write_broken: false,
                        cur_interest: Interest::READ,
                    },
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    progressed
}

/// Reads a connection until it would block (or its backpressure window
/// fills), decoding frames as they complete.
#[allow(clippy::too_many_arguments)]
fn read_conn(
    conn_id: u32,
    c: &mut Conn,
    chunk: &mut [u8],
    batch: &mut Vec<(u64, Request)>,
    stats: &NetStats,
    rate: Option<&bm_core::TenantRate>,
    buckets: &mut HashMap<u64, Bucket>,
    max_inflight: usize,
) -> bool {
    let mut progressed = false;
    loop {
        match c.stream.read(chunk) {
            Ok(0) => {
                c.dead = true; // peer closed
                break;
            }
            Ok(n) => {
                progressed = true;
                c.rbuf.extend_from_slice(&chunk[..n]);
                drain_frames(conn_id, c, batch, stats, rate, buckets);
                if c.dead || c.pending.len() >= max_inflight {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                c.dead = true;
                break;
            }
        }
    }
    progressed
}

/// Decodes every complete frame in `conn.rbuf`: each submit either
/// joins the pass's batch (tagged, response slot queued) or is
/// rejected on the spot (rate limit), which still occupies its FIFO
/// slot so response order matches submission order.
fn drain_frames(
    conn_id: u32,
    c: &mut Conn,
    batch: &mut Vec<(u64, Request)>,
    stats: &NetStats,
    rate: Option<&bm_core::TenantRate>,
    buckets: &mut HashMap<u64, Bucket>,
) {
    loop {
        match wire::decode_frame(&c.rbuf) {
            Ok(None) => break,
            Ok(Some((frame, consumed))) => {
                c.rbuf.drain(..consumed);
                stats.frames_in.fetch_add(1, Ordering::Relaxed);
                let req = match frame.message {
                    Message::Submit(req) => req,
                    // A server never receives responses; the stream is
                    // out of protocol.
                    Message::Response(_) => {
                        stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        c.dead = true;
                        return;
                    }
                };
                let (seq, tag) = c.next_tag(conn_id);
                if let Some(r) = rate {
                    let now = Instant::now();
                    let bucket = buckets.entry(tenant_key(req.tenant)).or_insert(Bucket {
                        tokens: f64::from(r.burst),
                        last: now,
                    });
                    if !bucket.admit(r.per_sec, f64::from(r.burst), now) {
                        stats.rate_limited.fetch_add(1, Ordering::Relaxed);
                        c.pending.push_back(PendingResp {
                            corr: frame.correlation,
                            seq,
                            ready: Some(NetResponse::Rejected(NetReject::RateLimited)),
                        });
                        continue;
                    }
                }
                c.pending.push_back(PendingResp {
                    corr: frame.correlation,
                    seq,
                    ready: None,
                });
                batch.push((tag, req));
            }
            Err(_) => {
                // Framing is unrecoverable; close the connection.
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                c.dead = true;
                return;
            }
        }
    }
}

/// Routes a resolved response to its FIFO slot. A missing connection
/// (retired after a write failure or mid-stream disconnect) just drops
/// the response — the runtime already did the work and the counters
/// already ticked.
fn mark_ready(conns: &mut HashMap<u32, Conn>, tag: u64, resp: NetResponse) {
    let conn_id = (tag >> 32) as u32;
    let seq = tag as u32;
    let Some(c) = conns.get_mut(&conn_id) else {
        return;
    };
    let Some(front) = c.pending.front() else {
        return;
    };
    // Sequences are assigned contiguously and only released from the
    // front, so the slot's index is its distance from the head.
    let idx = seq.wrapping_sub(front.seq) as usize;
    if let Some(entry) = c.pending.get_mut(idx) {
        if entry.seq == seq {
            entry.ready = Some(resp);
        }
    }
}

/// Writes as much queued output as the socket accepts right now.
/// `WouldBlock` leaves the remainder queued (the epoll backend
/// registers write interest; the polled backend retries next pass
/// under the adaptive backoff). A hard error marks the write side
/// broken.
fn flush_wbuf(c: &mut Conn) -> bool {
    let mut written = 0usize;
    while written < c.wbuf.len() {
        match c.stream.write(&c.wbuf[written..]) {
            Ok(0) => {
                c.write_broken = true;
                break;
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                c.write_broken = true;
                break;
            }
        }
    }
    if written > 0 {
        c.wbuf.drain(..written);
    }
    if c.write_broken {
        c.wbuf.clear();
    }
    written > 0
}

/// Maps a runtime refusal onto the wire.
fn submit_error_response(e: SubmitError) -> NetResponse {
    match e {
        SubmitError::Invalid(msg) => NetResponse::Rejected(NetReject::Invalid(msg)),
        SubmitError::QueueFull => NetResponse::Rejected(NetReject::QueueFull),
        SubmitError::AtCapacity => NetResponse::Rejected(NetReject::AtCapacity),
        SubmitError::ShuttingDown => NetResponse::ShutDown,
        // SubmitError is non-exhaustive-ready; treat unknown refusals
        // as capacity.
        _ => NetResponse::Rejected(NetReject::AtCapacity),
    }
}

/// Maps a resolved outcome onto the wire.
fn outcome_response(outcome: ServedOutcome) -> NetResponse {
    match outcome {
        ServedOutcome::Completed(res) => {
            let executed = res.result.outputs.iter().flatten().count() as u32;
            let tokens = res
                .result
                .outputs
                .iter()
                .map(|o| o.as_ref().and_then(|c| c.token))
                .collect();
            NetResponse::Completed {
                timing: res.timing,
                executed,
                tokens,
            }
        }
        ServedOutcome::Expired(timing) => NetResponse::Expired { timing },
        _ => NetResponse::ShutDown,
    }
}
