//! The network front door for the batching runtime.
//!
//! Three pieces, mirroring the paper's serving deployment:
//!
//! - [`wire`]: a length-prefixed little-endian binary protocol carrying
//!   [`Request`](bm_core::Request)s in and typed [`NetResponse`]s out.
//!   Decoding is incremental and total — malformed bytes yield a
//!   [`WireError`], never a panic.
//! - [`NetServer`]: a hand-rolled non-blocking TCP event loop over a
//!   [`ShardedRuntime`](bm_core::ShardedRuntime), with admission
//!   control at accept time, per-tenant token-bucket rate limiting and
//!   per-connection backpressure, running on a pluggable [`readiness`]
//!   backend — raw-syscall epoll + eventfd completion wakeups on Linux
//!   x86_64, a portable polled scan everywhere else.
//! - [`NetClient`]: a blocking, pipeline-capable client used by the
//!   tests and the `repro serve` load generator.
//!
//! ```no_run
//! use std::sync::Arc;
//! use bm_core::{Request, RuntimeOptions};
//! use bm_model::RequestInput;
//! use bm_net::{NetClient, NetServer, NetServerOptions};
//! # fn demo(model: Arc<dyn bm_model::Model>) -> Result<(), Box<dyn std::error::Error>> {
//! let server = NetServer::bind(model, NetServerOptions::new(), "127.0.0.1:0")?;
//! let mut client = NetClient::connect(server.local_addr())?;
//! let resp = client.call(&Request::new(RequestInput::Sequence(vec![1, 2, 3])))?;
//! println!("{resp:?}");
//! server.shutdown();
//! # Ok(())
//! # }
//! ```
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![deny(missing_docs)]

pub mod client;
pub mod readiness;
pub mod server;
pub mod wire;

pub use client::{NetClient, NetError};
pub use readiness::{Epoll, Event, EventFd, Events, Interest, SysError, SysErrorKind};
pub use server::{NetServer, NetServerOptions, NetStatsView};
pub use wire::{
    decode_frame, encode_response, encode_submit, Frame, Message, NetReject, NetResponse,
    WireError, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
