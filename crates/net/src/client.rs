//! A blocking client for the wire protocol.
//!
//! [`NetClient`] is deliberately simple — one blocking socket, explicit
//! [`send`](NetClient::send)/[`recv`](NetClient::recv) halves so a
//! caller can pipeline many submits before collecting responses (the
//! load generator does), plus a [`call`](NetClient::call) convenience
//! for one-at-a-time use. Responses are matched by correlation id; the
//! server answers one connection's requests in submission order, but
//! callers should not rely on that beyond a single connection.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use bm_core::Request;

use crate::wire::{self, Message, NetResponse};

/// Why a client call failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server's bytes did not decode.
    Wire(wire::WireError),
    /// The server closed the connection.
    Closed,
    /// The server sent a submit frame (protocol violation).
    UnexpectedMessage,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Closed => write!(f, "connection closed by server"),
            NetError::UnexpectedMessage => write!(f, "server sent a non-response frame"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<wire::WireError> for NetError {
    fn from(e: wire::WireError) -> Self {
        NetError::Wire(e)
    }
}

/// A blocking connection to a [`NetServer`](crate::NetServer).
pub struct NetClient {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    next_corr: u32,
}

impl NetClient {
    /// Connects (blocking socket, `TCP_NODELAY`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::with_capacity(4096),
            next_corr: 0,
        })
    }

    /// Submits `req` without waiting, returning the correlation id the
    /// response will carry. Pipeline-friendly: send many, then
    /// [`recv`](Self::recv) as many.
    pub fn send(&mut self, req: &Request) -> Result<u32, NetError> {
        let corr = self.next_corr;
        self.next_corr = self.next_corr.wrapping_add(1);
        self.wbuf.clear();
        wire::encode_submit(&mut self.wbuf, corr, req);
        self.stream.write_all(&self.wbuf)?;
        Ok(corr)
    }

    /// Blocks until the next response frame arrives.
    pub fn recv(&mut self) -> Result<(u32, NetResponse), NetError> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some((frame, consumed)) = wire::decode_frame(&self.rbuf)? {
                self.rbuf.drain(..consumed);
                return match frame.message {
                    Message::Response(resp) => Ok((frame.correlation, resp)),
                    Message::Submit(_) => Err(NetError::UnexpectedMessage),
                };
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(NetError::Closed),
                Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }

    /// Submits `req` and blocks for its response (correlation checked).
    pub fn call(&mut self, req: &Request) -> Result<NetResponse, NetError> {
        let want = self.send(req)?;
        loop {
            let (corr, resp) = self.recv()?;
            if corr == want {
                return Ok(resp);
            }
            // A pipelined response from an earlier send; with `call`'s
            // lock-step use this does not happen, but be tolerant.
        }
    }
}
