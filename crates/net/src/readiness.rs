//! Readiness backends for the network front door's event loop.
//!
//! The polled scan in [`crate::server`] is portable but pays one
//! `read()` syscall per connection per pass even when every socket is
//! idle — with hundreds of idle connections the scan itself becomes
//! the ingest bottleneck. This module provides the alternative: a
//! Linux x86_64 **epoll** backend built directly on raw syscalls
//! (`core::arch::asm!`), because the vendored dependency set contains
//! no libc. One blocked `epoll_wait` replaces the O(connections) scan,
//! and an [`EventFd`] registered alongside the sockets lets the
//! runtime's completion queue wake the same loop — no sleeping, no
//! reaper threads.
//!
//! ## Syscall ABI contract (Linux x86_64)
//!
//! Every raw syscall in this module goes through the private
//! `sys::syscall4` shim, which encodes the Linux x86_64 syscall
//! convention:
//!
//! - syscall number in `rax`; arguments in `rdi`, `rsi`, `rdx`, `r10`
//!   (the 5th/6th args `r8`/`r9` are unused here and not passed);
//! - the `syscall` instruction enters the kernel; the kernel clobbers
//!   `rcx` (saved return RIP) and `r11` (saved RFLAGS) and preserves
//!   all other registers; RFLAGS is restored from `r11` on `sysret`,
//!   so flags are preserved across the call;
//! - the result comes back in `rax`: values in `[-4095, -1]` are
//!   `-errno`, anything else is success.
//!
//! The per-syscall contracts (argument meaning, memory the kernel
//! reads or writes) are documented on each wrapper in the `sys`
//! module.
//!
//! ## Portability
//!
//! [`SUPPORTED`] is `true` only on Linux x86_64. Everywhere else the
//! same API exists but every constructor fails with
//! [`SysErrorKind::Unsupported`], and callers (the server's `Auto`
//! mode) fall back to the polled scan. The polled scan remains the
//! bit-identity oracle: `crates/net/tests` assert both backends
//! produce byte-identical responses.

#![deny(clippy::undocumented_unsafe_blocks)]

use std::fmt;
use std::io;

/// Whether the epoll backend is available on this target. When
/// `false`, [`Epoll::new`] and [`EventFd::new`] fail with
/// [`SysErrorKind::Unsupported`] and callers must use the polled scan.
pub const SUPPORTED: bool = cfg!(all(target_os = "linux", target_arch = "x86_64"));

/// A raw file descriptor as the kernel sees it. Mirrors
/// `std::os::fd::RawFd` without committing the crate's public API to a
/// unix-only std module on non-unix targets.
pub type RawFd = i32;

/// What a registered descriptor should be watched for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    read: bool,
    write: bool,
}

impl Interest {
    /// Readable-only interest (`EPOLLIN`).
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Writable-only interest (`EPOLLOUT`).
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Readable-and-writable interest (`EPOLLIN | EPOLLOUT`).
    pub const READ_WRITE: Interest = Interest {
        read: true,
        write: true,
    };
    /// No interest: the descriptor stays registered (keeping its
    /// token) but only reports error/hangup conditions. Used to pause
    /// reading a backpressured connection without the ADD/DEL churn of
    /// full deregistration.
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };

    /// Composes an interest from its parts (e.g. "read unless paused,
    /// write while the output buffer is non-empty").
    pub fn new(read: bool, write: bool) -> Interest {
        Interest { read, write }
    }

    fn events(self) -> u32 {
        let mut ev = 0;
        if self.read {
            ev |= sys::EPOLLIN;
        }
        if self.write {
            ev |= sys::EPOLLOUT;
        }
        ev
    }
}

/// One readiness event out of [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// Readable (or a peer hangup, which reads as EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup condition (`EPOLLERR`/`EPOLLHUP`); the owner
    /// should read to observe the error and retire the descriptor.
    pub error: bool,
}

/// The classified cause of a failed syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysErrorKind {
    /// `EINTR`: a signal interrupted the call; retry it.
    Interrupted,
    /// `EBADF`: the descriptor is not open — a lifecycle bug in the
    /// caller, never retryable.
    BadDescriptor,
    /// `EAGAIN`/`EWOULDBLOCK`: a non-blocking op found nothing to do.
    WouldBlock,
    /// The backend does not exist on this target (stub build) or the
    /// kernel lacks the syscall (`ENOSYS`).
    Unsupported,
    /// Any other errno; inspect [`SysError::errno`].
    Other,
}

/// A failed syscall, carrying the raw errno and its classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SysError {
    errno: i32,
}

impl SysError {
    /// Wraps a raw errno value (positive, e.g. `4` for `EINTR`).
    pub fn from_errno(errno: i32) -> SysError {
        SysError { errno }
    }

    /// The error for targets without the epoll backend (`ENOSYS`).
    pub fn unsupported() -> SysError {
        SysError { errno: sys::ENOSYS }
    }

    /// The raw errno.
    pub fn errno(self) -> i32 {
        self.errno
    }

    /// Classifies the errno into the cases callers branch on.
    pub fn kind(self) -> SysErrorKind {
        match self.errno {
            sys::EINTR => SysErrorKind::Interrupted,
            sys::EBADF => SysErrorKind::BadDescriptor,
            sys::EAGAIN => SysErrorKind::WouldBlock,
            sys::ENOSYS => SysErrorKind::Unsupported,
            _ => SysErrorKind::Other,
        }
    }
}

impl fmt::Display for SysError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "syscall failed: {:?} (errno {})",
            self.kind(),
            self.errno
        )
    }
}

impl std::error::Error for SysError {}

impl From<SysError> for io::Error {
    fn from(e: SysError) -> io::Error {
        io::Error::from_raw_os_error(e.errno)
    }
}

/// Interprets a raw syscall return: `[-4095, -1]` is `-errno`, any
/// other value is success. This is the whole kernel error ABI on
/// x86_64 — there is no `errno` variable without libc.
fn check(ret: i64) -> Result<u64, SysError> {
    if (-4095..0).contains(&ret) {
        Err(SysError::from_errno(-ret as i32))
    } else {
        Ok(ret as u64)
    }
}

/// Calls `f` until it returns anything other than `EINTR`. Blocking
/// syscalls (`epoll_wait`) are restarted transparently; genuine errors
/// and successes pass through untouched.
pub fn retry_eintr<T>(mut f: impl FnMut() -> Result<T, SysError>) -> Result<T, SysError> {
    loop {
        match f() {
            Err(e) if e.kind() == SysErrorKind::Interrupted => continue,
            other => return other,
        }
    }
}

/// An epoll instance: register descriptors with a `u64` token, then
/// [`Epoll::wait`] blocks until at least one is ready. Level-triggered
/// (the default epoll mode): a ready descriptor keeps reporting until
/// the condition is consumed, so the event loop never needs to
/// exhaustively drain a socket per event. The instance is closed on
/// drop.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates an epoll instance (`epoll_create1(EPOLL_CLOEXEC)`).
    pub fn new() -> Result<Epoll, SysError> {
        let fd = sys::epoll_create1(sys::EPOLL_CLOEXEC)?;
        Ok(Epoll { fd: fd as RawFd })
    }

    /// Starts watching `fd` with `interest`; readiness events for it
    /// carry `token` (`EPOLL_CTL_ADD`).
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> Result<(), SysError> {
        sys::epoll_ctl(self.fd, sys::EPOLL_CTL_ADD, fd, interest.events(), token)
    }

    /// Changes the interest set of an already-registered `fd`
    /// (`EPOLL_CTL_MOD`).
    pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> Result<(), SysError> {
        sys::epoll_ctl(self.fd, sys::EPOLL_CTL_MOD, fd, interest.events(), token)
    }

    /// Stops watching `fd` (`EPOLL_CTL_DEL`). Safe to call for a
    /// descriptor the kernel already dropped (closing an fd removes it
    /// from every epoll set): `EBADF`/`ENOENT` are not errors here.
    pub fn deregister(&self, fd: RawFd) -> Result<(), SysError> {
        match sys::epoll_ctl(self.fd, sys::EPOLL_CTL_DEL, fd, 0, 0) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == SysErrorKind::BadDescriptor || e.errno() == sys::ENOENT => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Blocks until a registered descriptor is ready or `timeout_ms`
    /// elapses (`-1` blocks forever, `0` polls), then fills `events`.
    /// Returns the number of events. `EINTR` is retried internally.
    pub fn wait(&self, events: &mut Events, timeout_ms: i32) -> Result<usize, SysError> {
        let n = retry_eintr(|| sys::epoll_wait(self.fd, &mut events.buf, timeout_ms))?;
        events.len = n;
        Ok(n)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        let _ = sys::close(self.fd);
    }
}

/// A reusable buffer of kernel epoll events plus the decoded view
/// [`Events::iter`] exposes.
#[derive(Debug)]
pub struct Events {
    buf: Vec<sys::EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per wait.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            buf: vec![sys::EpollEvent::default(); capacity.max(1)],
            len: 0,
        }
    }

    /// The events produced by the last [`Epoll::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|raw| {
            // Copy out of the packed struct by value; references into
            // packed fields would be unaligned.
            let events = { raw.events };
            Event {
                token: { raw.data },
                readable: events & (sys::EPOLLIN | sys::EPOLLHUP) != 0,
                writable: events & sys::EPOLLOUT != 0,
                error: events & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            }
        })
    }
}

/// An eventfd wakeup channel: any thread calls [`EventFd::wake`], and
/// the descriptor becomes readable to the epoll (or polled) loop
/// watching it. The kernel object is a saturating 64-bit counter —
/// multiple wakes before a drain coalesce into one readable event,
/// which is exactly the amortization the batched completion pump
/// wants. Created non-blocking; closed on drop.
#[derive(Debug)]
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Creates the counter at zero
    /// (`eventfd2(0, EFD_CLOEXEC | EFD_NONBLOCK)`).
    pub fn new() -> Result<EventFd, SysError> {
        let fd = sys::eventfd2(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK)?;
        Ok(EventFd { fd: fd as RawFd })
    }

    /// The descriptor, for registration with an [`Epoll`].
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Adds 1 to the counter, waking any waiter. A full counter
    /// (`EAGAIN`) is fine — the waiter is already pending a wake.
    pub fn wake(&self) {
        let _ = sys::write_u64(self.fd, 1);
    }

    /// Resets the counter to zero so the descriptor stops reading as
    /// ready. `EAGAIN` (already zero) is fine: wakes may coalesce.
    pub fn drain(&self) {
        let _ = sys::read_u64(self.fd);
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        let _ = sys::close(self.fd);
    }
}

/// The real Linux x86_64 syscall layer.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    use super::{check, SysError};

    // Errno values (asm-generic/errno-base.h; identical on x86_64).
    pub const EINTR: i32 = 4;
    pub const EBADF: i32 = 9;
    pub const EAGAIN: i32 = 11;
    pub const ENOENT: i32 = 2;
    pub const ENOSYS: i32 = 38;

    // Syscall numbers (arch/x86/entry/syscalls/syscall_64.tbl).
    const SYS_READ: i64 = 0;
    const SYS_WRITE: i64 = 1;
    const SYS_CLOSE: i64 = 3;
    const SYS_EPOLL_WAIT: i64 = 232;
    const SYS_EPOLL_CTL: i64 = 233;
    const SYS_EVENTFD2: i64 = 290;
    const SYS_EPOLL_CREATE1: i64 = 291;

    // epoll_ctl ops and event bits (uapi/linux/eventpoll.h).
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLL_CLOEXEC: i32 = 0x8_0000;

    // eventfd2 flags (uapi/linux/eventfd.h).
    pub const EFD_CLOEXEC: i32 = 0x8_0000;
    pub const EFD_NONBLOCK: i32 = 0x800;

    /// The kernel's `struct epoll_event`. On x86_64 the kernel
    /// declares it `__attribute__((packed))` (12 bytes, `data`
    /// unaligned) — `repr(C, packed)` matches that layout exactly;
    /// fields must be copied out by value, never referenced.
    #[derive(Debug, Clone, Copy, Default)]
    #[repr(C, packed)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    /// One raw syscall with up to four arguments, per the ABI contract
    /// in the module docs: number in `rax`, args in
    /// `rdi`/`rsi`/`rdx`/`r10`, result in `rax`, `rcx`/`r11`
    /// kernel-clobbered, flags preserved across `sysret`, no stack use.
    ///
    /// # Safety
    ///
    /// The caller must uphold the invoked syscall's own contract: any
    /// pointer argument must be valid for the access the kernel
    /// performs (e.g. `epoll_wait`'s buffer writable for `maxevents`
    /// entries) for the duration of the call.
    unsafe fn syscall4(nr: i64, a1: i64, a2: i64, a3: i64, a4: i64) -> i64 {
        let ret: i64;
        // SAFETY: the `syscall` instruction with the register
        // assignments above is exactly the Linux x86_64 ABI; rcx/r11
        // are declared clobbered, no Rust memory is touched except
        // through the kernel per the caller's contract, and the stack
        // is not used (`nostack`).
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") nr => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                in("r10") a4,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack, preserves_flags)
            );
        }
        ret
    }

    /// `epoll_create1(flags)` → epoll fd. No pointers; always safe to
    /// issue.
    pub fn epoll_create1(flags: i32) -> Result<u64, SysError> {
        // SAFETY: no pointer arguments; the kernel only allocates an
        // fd in this process's table.
        check(unsafe { syscall4(SYS_EPOLL_CREATE1, flags as i64, 0, 0, 0) })
    }

    /// `epoll_ctl(epfd, op, fd, &event)`. The kernel *reads*
    /// `struct epoll_event` for ADD/MOD and ignores the pointer for
    /// DEL (since Linux 2.6.9 a null pointer is allowed for DEL; a
    /// valid zeroed one is passed anyway for older-kernel safety).
    pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, events: u32, data: u64) -> Result<(), SysError> {
        let ev = EpollEvent { events, data };
        // SAFETY: `&ev` is a live, initialized epoll_event for the
        // whole call; the kernel only reads it.
        check(unsafe {
            syscall4(
                SYS_EPOLL_CTL,
                epfd as i64,
                op as i64,
                fd as i64,
                &ev as *const EpollEvent as i64,
            )
        })
        .map(|_| ())
    }

    /// `epoll_wait(epfd, buf.as_mut_ptr(), buf.len(), timeout_ms)` →
    /// number of events. The kernel *writes* up to `buf.len()`
    /// `epoll_event` entries into the buffer.
    pub fn epoll_wait(
        epfd: i32,
        buf: &mut [EpollEvent],
        timeout_ms: i32,
    ) -> Result<usize, SysError> {
        // SAFETY: `buf` is a live &mut slice, so its pointer is valid
        // for writes of `buf.len()` entries for the whole (blocking)
        // call; `EpollEvent` is plain old data, so any bytes the
        // kernel writes are valid values.
        let n = check(unsafe {
            syscall4(
                SYS_EPOLL_WAIT,
                epfd as i64,
                buf.as_mut_ptr() as i64,
                buf.len() as i64,
                timeout_ms as i64,
            )
        })?;
        Ok(n as usize)
    }

    /// `eventfd2(initval, flags)` → eventfd. No pointers.
    pub fn eventfd2(initval: u32, flags: i32) -> Result<u64, SysError> {
        // SAFETY: no pointer arguments.
        check(unsafe { syscall4(SYS_EVENTFD2, initval as i64, flags as i64, 0, 0) })
    }

    /// `write(fd, &val, 8)`: adds `val` to an eventfd counter. The
    /// kernel *reads* 8 bytes.
    pub fn write_u64(fd: i32, val: u64) -> Result<(), SysError> {
        let buf = val.to_ne_bytes();
        // SAFETY: `buf` is 8 live bytes on our stack; the kernel only
        // reads them.
        check(unsafe { syscall4(SYS_WRITE, fd as i64, buf.as_ptr() as i64, 8, 0) }).map(|_| ())
    }

    /// `read(fd, &mut val, 8)`: reads-and-resets an eventfd counter.
    /// The kernel *writes* 8 bytes.
    pub fn read_u64(fd: i32) -> Result<u64, SysError> {
        let mut buf = [0u8; 8];
        // SAFETY: `buf` is 8 writable bytes on our stack, valid for
        // the whole call.
        check(unsafe { syscall4(SYS_READ, fd as i64, buf.as_mut_ptr() as i64, 8, 0) })?;
        Ok(u64::from_ne_bytes(buf))
    }

    /// `close(fd)`. No pointers. Only called from `Drop` impls that
    /// own the descriptor.
    pub fn close(fd: i32) -> Result<(), SysError> {
        // SAFETY: no pointer arguments; closing an owned fd.
        check(unsafe { syscall4(SYS_CLOSE, fd as i64, 0, 0, 0) }).map(|_| ())
    }
}

/// Stub syscall layer for targets without the epoll backend: the same
/// API, with every entry point failing `Unsupported` (constants kept
/// so the portable wrapper types compile unchanged).
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod sys {
    use super::SysError;

    pub const EINTR: i32 = 4;
    pub const EBADF: i32 = 9;
    pub const EAGAIN: i32 = 11;
    pub const ENOENT: i32 = 2;
    pub const ENOSYS: i32 = 38;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLL_CLOEXEC: i32 = 0x8_0000;
    pub const EFD_CLOEXEC: i32 = 0x8_0000;
    pub const EFD_NONBLOCK: i32 = 0x800;

    /// Layout-compatible placeholder; never passed to a kernel here.
    #[derive(Debug, Clone, Copy, Default)]
    #[repr(C, packed)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub fn epoll_create1(_flags: i32) -> Result<u64, SysError> {
        Err(SysError::unsupported())
    }

    pub fn epoll_ctl(
        _epfd: i32,
        _op: i32,
        _fd: i32,
        _events: u32,
        _data: u64,
    ) -> Result<(), SysError> {
        Err(SysError::unsupported())
    }

    pub fn epoll_wait(
        _epfd: i32,
        _buf: &mut [EpollEvent],
        _timeout_ms: i32,
    ) -> Result<usize, SysError> {
        Err(SysError::unsupported())
    }

    pub fn eventfd2(_initval: u32, _flags: i32) -> Result<u64, SysError> {
        Err(SysError::unsupported())
    }

    pub fn write_u64(_fd: i32, _val: u64) -> Result<(), SysError> {
        Err(SysError::unsupported())
    }

    pub fn read_u64(_fd: i32) -> Result<u64, SysError> {
        Err(SysError::unsupported())
    }

    pub fn close(_fd: i32) -> Result<(), SysError> {
        Err(SysError::unsupported())
    }
}

/// The raw descriptor of a TCP socket, for registration with an
/// [`Epoll`]. On targets without the backend this returns `-1`, which
/// is never used because [`Epoll::new`] fails first.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub fn raw_fd_of(sock: &std::net::TcpStream) -> RawFd {
    std::os::fd::AsRawFd::as_raw_fd(sock)
}

/// Stub for targets without the epoll backend (see the real impl).
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub fn raw_fd_of(_sock: &std::net::TcpStream) -> RawFd {
    -1
}

/// Same as [`raw_fd_of`] but for a listener socket.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub fn raw_fd_of_listener(sock: &std::net::TcpListener) -> RawFd {
    std::os::fd::AsRawFd::as_raw_fd(sock)
}

/// Stub for targets without the epoll backend (see the real impl).
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub fn raw_fd_of_listener(_sock: &std::net::TcpListener) -> RawFd {
    -1
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn check_maps_the_kernel_error_window() {
        assert_eq!(check(0), Ok(0));
        assert_eq!(check(7), Ok(7));
        // The top of the error window is -4095; just above it is a
        // valid success value (e.g. a mmap address).
        assert_eq!(check(-4096), Ok(-4096i64 as u64));
        assert_eq!(
            check(-4).expect_err("must fail").kind(),
            SysErrorKind::Interrupted
        );
        assert_eq!(
            check(-9).expect_err("must fail").kind(),
            SysErrorKind::BadDescriptor
        );
        assert_eq!(
            check(-11).expect_err("must fail").kind(),
            SysErrorKind::WouldBlock
        );
        assert_eq!(
            check(-38).expect_err("must fail").kind(),
            SysErrorKind::Unsupported
        );
        assert_eq!(
            check(-95).expect_err("must fail").kind(),
            SysErrorKind::Other
        );
        assert_eq!(check(-95).expect_err("must fail").errno(), 95);
    }

    #[test]
    fn retry_eintr_restarts_only_on_eintr() {
        let calls = Cell::new(0);
        let out: Result<i32, SysError> = retry_eintr(|| {
            calls.set(calls.get() + 1);
            if calls.get() < 3 {
                Err(SysError::from_errno(4)) // EINTR, EINTR, then Ok
            } else {
                Ok(42)
            }
        });
        assert_eq!(out, Ok(42));
        assert_eq!(calls.get(), 3);

        let calls = Cell::new(0);
        let out: Result<i32, SysError> = retry_eintr(|| {
            calls.set(calls.get() + 1);
            Err(SysError::from_errno(9)) // EBADF must NOT retry
        });
        assert_eq!(
            out.expect_err("must fail").kind(),
            SysErrorKind::BadDescriptor
        );
        assert_eq!(calls.get(), 1);
    }

    #[test]
    fn sys_error_converts_to_io_error() {
        let io: std::io::Error = SysError::from_errno(9).into();
        assert_eq!(io.raw_os_error(), Some(9));
        let io: std::io::Error = SysError::unsupported().into();
        assert_eq!(io.kind(), std::io::ErrorKind::Unsupported);
    }

    #[test]
    fn unsupported_targets_fail_closed() {
        if SUPPORTED {
            return;
        }
        assert_eq!(
            Epoll::new().expect_err("must fail").kind(),
            SysErrorKind::Unsupported
        );
        assert_eq!(
            EventFd::new().expect_err("must fail").kind(),
            SysErrorKind::Unsupported
        );
    }

    #[test]
    fn live_register_of_closed_fd_is_typed_ebadf() {
        if !SUPPORTED {
            return;
        }
        let ep = Epoll::new().expect("epoll_create1");
        // An fd nothing in this process holds open: a fresh eventfd
        // dropped immediately (its Drop closes it).
        let dead = {
            let efd = EventFd::new().expect("eventfd");
            efd.raw_fd()
        };
        let err = ep.register(dead, 1, Interest::READ).expect_err("must fail");
        assert_eq!(err.kind(), SysErrorKind::BadDescriptor);
        // Deregistering a dead fd is explicitly tolerated.
        assert!(ep.deregister(dead).is_ok());
    }

    #[test]
    fn live_eventfd_wakes_epoll_and_coalesces() {
        if !SUPPORTED {
            return;
        }
        let ep = Epoll::new().expect("epoll_create1");
        let efd = EventFd::new().expect("eventfd");
        ep.register(efd.raw_fd(), 99, Interest::READ)
            .expect("register");
        let mut events = Events::with_capacity(8);

        // Not yet woken: a zero-timeout wait sees nothing.
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0);

        // Three wakes coalesce into one readable event.
        efd.wake();
        efd.wake();
        efd.wake();
        assert_eq!(ep.wait(&mut events, 1000).expect("wait"), 1);
        let ev = events.iter().next().expect("one event");
        assert_eq!(ev.token, 99);
        assert!(ev.readable);
        assert!(!ev.writable);

        // Drained: level-triggered readiness clears.
        efd.drain();
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0);
    }

    #[test]
    fn live_write_interest_reports_writable() {
        if !SUPPORTED {
            return;
        }
        use std::io::Read;
        use std::net::{TcpListener, TcpStream};
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (_server_end, _) = listener.accept().expect("accept");
        client.set_nonblocking(true).expect("nonblocking");

        let ep = Epoll::new().expect("epoll_create1");
        let fd = raw_fd_of(&client);
        ep.register(fd, 7, Interest::READ_WRITE).expect("register");
        let mut events = Events::with_capacity(8);
        // A fresh socket with an empty send buffer is immediately
        // writable but not readable.
        assert!(ep.wait(&mut events, 1000).expect("wait") >= 1);
        let ev = events.iter().find(|e| e.token == 7).expect("event");
        assert!(ev.writable);
        assert!(!ev.readable);
        // Narrow to read interest: nothing to read, so a zero-timeout
        // wait is empty.
        ep.reregister(fd, 7, Interest::READ).expect("reregister");
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0);
        // Sanity: the socket really has nothing buffered.
        let mut probe = [0u8; 1];
        let mut c = &client;
        assert!(c.read(&mut probe).is_err());
    }
}
