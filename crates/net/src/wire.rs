//! The length-prefixed binary wire protocol.
//!
//! Every frame is `[u32 len][payload]` (all integers little-endian),
//! where `len` counts payload bytes and is capped at
//! [`MAX_FRAME_LEN`]. The payload is `[u8 version][u8 msg][u32
//! correlation][body]`:
//!
//! - **Submit** (client → server): a full [`Request`] — deadline spec,
//!   priority, tenant, then the input payload (sequence, seq2seq pair,
//!   or preorder-encoded tree).
//! - **Response** (server → client): the correlation id of the submit
//!   it answers plus a [`NetResponse`] — completed (timing, executed
//!   node count, decoded tokens), expired (timing), a typed rejection,
//!   or shutdown.
//!
//! Decoding is incremental ([`decode_frame`] returns `Ok(None)` on a
//! partial buffer) and total: truncated frames, oversized lengths and
//! junk bytes produce a typed [`WireError`], never a panic — adversarial
//! sizes are validated against the remaining buffer before any
//! allocation, and tree decoding is iterative with explicit node and
//! depth caps.

use bm_core::{DeadlineSpec, Request, ServedTiming};
use bm_model::{RequestInput, TreeShape};

/// Protocol version carried in every frame.
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on a frame's payload length. A `len` prefix above this
/// is rejected as [`WireError::Oversized`] before any buffering.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Upper bound on sequence/source token counts.
pub const MAX_TOKENS: u32 = 1 << 16;

/// Upper bound on tree nodes per request.
pub const MAX_TREE_NODES: u32 = 1 << 16;

const MSG_SUBMIT: u8 = 1;
const MSG_RESPONSE: u8 = 2;

/// Why a buffer failed to decode. Every variant is a protocol fault in
/// the peer's bytes; none abort the process.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// A complete frame's body ended before `field` could be read.
    Truncated {
        /// The field being read when the bytes ran out.
        field: &'static str,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The declared payload length.
        len: u32,
    },
    /// An enum tag byte had no defined meaning.
    UnknownTag {
        /// The field the tag belongs to.
        field: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A value was structurally valid but out of range (token counts,
    /// tree size/depth, non-UTF-8 text).
    BadValue {
        /// The offending field.
        field: &'static str,
    },
    /// The frame's version byte does not match [`PROTOCOL_VERSION`].
    BadVersion {
        /// The version byte received.
        got: u8,
    },
    /// A frame's body decoded fully but bytes were left over.
    TrailingBytes {
        /// How many bytes remained.
        extra: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { field } => write!(f, "frame truncated reading {field}"),
            WireError::Oversized { len } => {
                write!(f, "frame length {len} exceeds cap {MAX_FRAME_LEN}")
            }
            WireError::UnknownTag { field, tag } => write!(f, "unknown tag {tag} for {field}"),
            WireError::BadValue { field } => write!(f, "out-of-range value for {field}"),
            WireError::BadVersion { got } => {
                write!(f, "protocol version {got}, want {PROTOCOL_VERSION}")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after frame body")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Why the server refused a request without serving it.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetReject {
    /// The input failed model validation; carries the message.
    Invalid(String),
    /// A scheduler shard's manager queue was full.
    QueueFull,
    /// The concurrent-request cap was reached.
    AtCapacity,
    /// The tenant's token bucket was empty.
    RateLimited,
}

/// The server's answer to one submit.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetResponse {
    /// Served to completion.
    Completed {
        /// Request timing on the server clock.
        timing: ServedTiming,
        /// Graph nodes actually executed.
        executed: u32,
        /// Decoded tokens in node order (`None` for non-emitting or
        /// `<eos>`-cancelled nodes).
        tokens: Vec<Option<u32>>,
    },
    /// Admitted but expired at its deadline.
    Expired {
        /// Admission-to-expiry timing on the server clock.
        timing: ServedTiming,
    },
    /// Refused without serving.
    Rejected(NetReject),
    /// The server shut down before resolving the request.
    ShutDown,
}

/// One decoded frame body.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → server: submit this request.
    Submit(Request),
    /// Server → client: the outcome of the correlated submit.
    Response(NetResponse),
}

/// A decoded frame: correlation id plus message.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Client-chosen id echoed back in the response frame.
    pub correlation: u32,
    /// The message body.
    pub message: Message,
}

// --------------------------------------------------------------------------
// Encoding
// --------------------------------------------------------------------------

fn frame_header(buf: &mut Vec<u8>, msg: u8, correlation: u32) -> usize {
    let len_at = buf.len();
    buf.extend_from_slice(&[0; 4]); // length backpatched below
    buf.push(PROTOCOL_VERSION);
    buf.push(msg);
    buf.extend_from_slice(&correlation.to_le_bytes());
    len_at
}

fn backpatch_len(buf: &mut [u8], len_at: usize) {
    let len = (buf.len() - len_at - 4) as u32;
    buf[len_at..len_at + 4].copy_from_slice(&len.to_le_bytes());
}

fn put_tree(buf: &mut Vec<u8>, t: &TreeShape) {
    // Iterative preorder: an explicit stack instead of recursion, so an
    // adversarially deep tree cannot overflow the encoder either.
    let mut stack = vec![t];
    while let Some(node) = stack.pop() {
        match node {
            TreeShape::Leaf(tok) => {
                buf.push(0);
                buf.extend_from_slice(&tok.to_le_bytes());
            }
            TreeShape::Internal(l, r) => {
                buf.push(1);
                stack.push(r);
                stack.push(l);
            }
        }
    }
}

/// Appends one submit frame for `req` to `buf`.
pub fn encode_submit(buf: &mut Vec<u8>, correlation: u32, req: &Request) {
    let len_at = frame_header(buf, MSG_SUBMIT, correlation);
    match req.deadline {
        DeadlineSpec::Default => buf.push(0),
        DeadlineSpec::None => buf.push(1),
        DeadlineSpec::RelativeUs(d) => {
            buf.push(2);
            buf.extend_from_slice(&d.to_le_bytes());
        }
    }
    buf.push(req.priority);
    match req.tenant {
        None => buf.push(0),
        Some(t) => {
            buf.push(1);
            buf.extend_from_slice(&t.to_le_bytes());
        }
    }
    match &req.input {
        RequestInput::Sequence(tokens) => {
            buf.push(0);
            buf.extend_from_slice(&(tokens.len() as u32).to_le_bytes());
            for t in tokens {
                buf.extend_from_slice(&t.to_le_bytes());
            }
        }
        RequestInput::Pair { src, decode_len } => {
            buf.push(1);
            buf.extend_from_slice(&(src.len() as u32).to_le_bytes());
            for t in src {
                buf.extend_from_slice(&t.to_le_bytes());
            }
            buf.extend_from_slice(&(*decode_len as u32).to_le_bytes());
        }
        RequestInput::Tree(shape) => {
            buf.push(2);
            buf.extend_from_slice(&(shape.node_count() as u32).to_le_bytes());
            put_tree(buf, shape);
        }
    }
    backpatch_len(buf, len_at);
}

fn put_timing(buf: &mut Vec<u8>, t: &ServedTiming) {
    buf.extend_from_slice(&t.arrival_us.to_le_bytes());
    buf.extend_from_slice(&t.start_us.to_le_bytes());
    buf.extend_from_slice(&t.completion_us.to_le_bytes());
}

/// Appends one response frame to `buf`.
pub fn encode_response(buf: &mut Vec<u8>, correlation: u32, resp: &NetResponse) {
    let len_at = frame_header(buf, MSG_RESPONSE, correlation);
    match resp {
        NetResponse::Completed {
            timing,
            executed,
            tokens,
        } => {
            buf.push(0);
            put_timing(buf, timing);
            buf.extend_from_slice(&executed.to_le_bytes());
            buf.extend_from_slice(&(tokens.len() as u32).to_le_bytes());
            for t in tokens {
                match t {
                    None => buf.push(0),
                    Some(tok) => {
                        buf.push(1);
                        buf.extend_from_slice(&tok.to_le_bytes());
                    }
                }
            }
        }
        NetResponse::Expired { timing } => {
            buf.push(1);
            put_timing(buf, timing);
        }
        NetResponse::Rejected(NetReject::Invalid(msg)) => {
            buf.push(2);
            let bytes = msg.as_bytes();
            let len = bytes.len().min(1024);
            buf.extend_from_slice(&(len as u32).to_le_bytes());
            buf.extend_from_slice(&bytes[..len]);
        }
        NetResponse::Rejected(NetReject::QueueFull) => buf.push(3),
        NetResponse::Rejected(NetReject::AtCapacity) => buf.push(4),
        NetResponse::Rejected(NetReject::RateLimited) => buf.push(5),
        NetResponse::ShutDown => buf.push(6),
    }
    backpatch_len(buf, len_at);
}

// --------------------------------------------------------------------------
// Decoding
// --------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { field });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, WireError> {
        Ok(self.bytes(1, field)?[0])
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, WireError> {
        let b = self.bytes(4, field)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, WireError> {
        let b = self.bytes(8, field)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Reads a `u32` count and validates it against a cap *and* the bytes
/// actually remaining (`per_item` bytes each), so a forged count can
/// neither over-allocate nor over-read.
fn checked_count(
    r: &mut Reader<'_>,
    cap: u32,
    per_item: usize,
    field: &'static str,
) -> Result<usize, WireError> {
    let n = r.u32(field)?;
    if n > cap {
        return Err(WireError::BadValue { field });
    }
    let n = n as usize;
    if r.remaining() < n.saturating_mul(per_item) {
        return Err(WireError::Truncated { field });
    }
    Ok(n)
}

fn read_tree(r: &mut Reader<'_>, declared_nodes: u32) -> Result<TreeShape, WireError> {
    if declared_nodes == 0 || declared_nodes > MAX_TREE_NODES {
        return Err(WireError::BadValue {
            field: "tree node count",
        });
    }
    // Iterative preorder parse: `stack` holds internal nodes whose left
    // subtree is still being read (`None`) or is complete (`Some`).
    let mut stack: Vec<Option<TreeShape>> = Vec::new();
    let mut nodes_read = 0u32;
    loop {
        nodes_read += 1;
        if nodes_read > declared_nodes {
            return Err(WireError::BadValue {
                field: "tree node count",
            });
        }
        match r.u8("tree node tag")? {
            1 => stack.push(None),
            0 => {
                let mut node = TreeShape::Leaf(r.u32("leaf token")?);
                loop {
                    match stack.pop() {
                        None => {
                            if nodes_read != declared_nodes {
                                return Err(WireError::BadValue {
                                    field: "tree node count",
                                });
                            }
                            return Ok(node);
                        }
                        Some(None) => {
                            stack.push(Some(node));
                            break;
                        }
                        Some(Some(left)) => {
                            node = TreeShape::internal(left, node);
                        }
                    }
                }
            }
            tag => {
                return Err(WireError::UnknownTag {
                    field: "tree node tag",
                    tag,
                })
            }
        }
    }
}

fn read_request(r: &mut Reader<'_>) -> Result<Request, WireError> {
    let deadline = match r.u8("deadline tag")? {
        0 => DeadlineSpec::Default,
        1 => DeadlineSpec::None,
        2 => DeadlineSpec::RelativeUs(r.u64("deadline")?),
        tag => {
            return Err(WireError::UnknownTag {
                field: "deadline tag",
                tag,
            })
        }
    };
    let priority = r.u8("priority")?;
    let tenant = match r.u8("tenant tag")? {
        0 => None,
        1 => Some(r.u32("tenant")?),
        tag => {
            return Err(WireError::UnknownTag {
                field: "tenant tag",
                tag,
            })
        }
    };
    let input = match r.u8("input tag")? {
        0 => {
            let n = checked_count(r, MAX_TOKENS, 4, "sequence length")?;
            let mut tokens = Vec::with_capacity(n);
            for _ in 0..n {
                tokens.push(r.u32("sequence token")?);
            }
            RequestInput::Sequence(tokens)
        }
        1 => {
            let n = checked_count(r, MAX_TOKENS, 4, "source length")?;
            let mut src = Vec::with_capacity(n);
            for _ in 0..n {
                src.push(r.u32("source token")?);
            }
            let decode_len = r.u32("decode length")?;
            if decode_len > MAX_TOKENS {
                return Err(WireError::BadValue {
                    field: "decode length",
                });
            }
            RequestInput::Pair {
                src,
                decode_len: decode_len as usize,
            }
        }
        2 => {
            let declared = r.u32("tree node count")?;
            RequestInput::Tree(read_tree(r, declared)?)
        }
        tag => {
            return Err(WireError::UnknownTag {
                field: "input tag",
                tag,
            })
        }
    };
    let mut req = Request::new(input).priority(priority);
    req.deadline = deadline;
    req.tenant = tenant;
    Ok(req)
}

fn read_timing(r: &mut Reader<'_>) -> Result<ServedTiming, WireError> {
    Ok(ServedTiming {
        arrival_us: r.u64("arrival")?,
        start_us: r.u64("start")?,
        completion_us: r.u64("completion")?,
    })
}

fn read_response(r: &mut Reader<'_>) -> Result<NetResponse, WireError> {
    match r.u8("response status")? {
        0 => {
            let timing = read_timing(r)?;
            let executed = r.u32("executed count")?;
            let n = checked_count(r, MAX_TOKENS, 1, "token count")?;
            let mut tokens = Vec::with_capacity(n);
            for _ in 0..n {
                tokens.push(match r.u8("token tag")? {
                    0 => None,
                    1 => Some(r.u32("token")?),
                    tag => {
                        return Err(WireError::UnknownTag {
                            field: "token tag",
                            tag,
                        })
                    }
                });
            }
            Ok(NetResponse::Completed {
                timing,
                executed,
                tokens,
            })
        }
        1 => Ok(NetResponse::Expired {
            timing: read_timing(r)?,
        }),
        2 => {
            let n = checked_count(r, 1024, 1, "reject message length")?;
            let bytes = r.bytes(n, "reject message")?;
            let msg = std::str::from_utf8(bytes)
                .map_err(|_| WireError::BadValue {
                    field: "reject message",
                })?
                .to_string();
            Ok(NetResponse::Rejected(NetReject::Invalid(msg)))
        }
        3 => Ok(NetResponse::Rejected(NetReject::QueueFull)),
        4 => Ok(NetResponse::Rejected(NetReject::AtCapacity)),
        5 => Ok(NetResponse::Rejected(NetReject::RateLimited)),
        6 => Ok(NetResponse::ShutDown),
        tag => Err(WireError::UnknownTag {
            field: "response status",
            tag,
        }),
    }
}

/// Attempts to decode one frame from the front of `buf`.
///
/// Returns `Ok(None)` when `buf` holds only a partial frame (read more
/// bytes and retry), `Ok(Some((frame, consumed)))` on success — the
/// caller drains `consumed` bytes — and a typed [`WireError`] when the
/// bytes can never become a valid frame (close the connection).
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized { len });
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let mut r = Reader::new(&buf[4..total]);
    let version = r.u8("version")?;
    if version != PROTOCOL_VERSION {
        return Err(WireError::BadVersion { got: version });
    }
    let msg = r.u8("message tag")?;
    let correlation = r.u32("correlation")?;
    let message = match msg {
        MSG_SUBMIT => Message::Submit(read_request(&mut r)?),
        MSG_RESPONSE => Message::Response(read_response(&mut r)?),
        tag => {
            return Err(WireError::UnknownTag {
                field: "message tag",
                tag,
            })
        }
    };
    r.finish()?;
    Ok(Some((
        Frame {
            correlation,
            message,
        },
        total,
    )))
}
