//! Polled-vs-epoll readiness backend identity.
//!
//! The polled scan is the portable oracle; the raw-syscall epoll
//! backend must be a pure transport optimization. These tests drive
//! the same deterministic workload through servers on each backend —
//! including under idle-connection load and mid-stream disconnects —
//! and assert the response streams are **byte-identical** once
//! run-dependent timing is zeroed (wall-clock timing is the one field
//! that legitimately differs between two runs of anything).

use std::net::TcpStream;
use std::sync::Arc;

use bm_core::{ReadinessMode, Request, RuntimeOptions, SchedulerConfig, ServeConfig};
use bm_model::{LstmLm, LstmLmConfig, Model, RequestInput};
use bm_net::readiness::SUPPORTED;
use bm_net::{encode_response, NetClient, NetResponse, NetServer, NetServerOptions};

fn model() -> Arc<dyn Model> {
    Arc::new(LstmLm::new(LstmLmConfig::default()))
}

fn opts(mode: ReadinessMode) -> NetServerOptions {
    NetServerOptions::new().runtime(
        RuntimeOptions::new()
            .workers(2)
            .scheduler(SchedulerConfig::new().serve(ServeConfig::new().shards(2).readiness(mode))),
    )
}

/// Re-encodes a response with its (run-dependent) timing zeroed so two
/// runs can be byte-compared: everything else — status tags, executed
/// counts, every decoded token — must match exactly.
fn canonical_bytes(corr: u32, resp: &NetResponse) -> Vec<u8> {
    let mut resp = resp.clone();
    match &mut resp {
        NetResponse::Completed { timing, .. } | NetResponse::Expired { timing } => {
            timing.arrival_us = 0;
            timing.start_us = 0;
            timing.completion_us = 0;
        }
        _ => {}
    }
    let mut buf = Vec::new();
    encode_response(&mut buf, corr, &resp);
    buf
}

/// The deterministic request mix both backends serve.
fn request(i: usize) -> Request {
    let len = 2 + (i % 7);
    Request::new(RequestInput::Sequence(vec![1 + (i as u32 % 50); len]))
}

/// Runs one server on `mode` under the shared workload and returns the
/// canonical response bytes in submission order. `idle_conns` sockets
/// connect and stay silent for the whole run; with
/// `disconnect_midstream`, an extra client submits requests and
/// vanishes without reading any responses.
fn run_workload(
    mode: ReadinessMode,
    idle_conns: usize,
    disconnect_midstream: bool,
) -> Vec<Vec<u8>> {
    let server = NetServer::bind(model(), opts(mode), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let _idle: Vec<TcpStream> = (0..idle_conns)
        .map(|_| TcpStream::connect(addr).expect("idle connect"))
        .collect();

    if disconnect_midstream {
        let mut ghost = NetClient::connect(addr).expect("ghost connect");
        for i in 0..8 {
            ghost.send(&request(i)).expect("ghost send");
        }
        drop(ghost); // mid-stream disconnect with responses in flight
    }

    let mut client = NetClient::connect(addr).expect("connect");
    let n = 48;
    let corrs: Vec<u32> = (0..n)
        .map(|i| client.send(&request(i)).expect("send"))
        .collect();
    let mut by_corr: Vec<Option<Vec<u8>>> = vec![None; n];
    for _ in 0..n {
        let (corr, resp) = client.recv().expect("recv");
        let idx = corrs.iter().position(|&c| c == corr).expect("known corr");
        assert!(by_corr[idx].is_none(), "duplicate response for {corr}");
        assert!(
            matches!(resp, NetResponse::Completed { .. }),
            "expected completion, got {resp:?}"
        );
        by_corr[idx] = Some(canonical_bytes(corr, &resp));
    }

    let stats = server.stats();
    assert_eq!(stats.protocol_errors, 0);
    assert!(stats.completed >= n as u64);
    server.shutdown();
    by_corr
        .into_iter()
        .map(|b| b.expect("all answered"))
        .collect()
}

#[test]
fn backends_byte_identical_on_clean_workload() {
    let polled = run_workload(ReadinessMode::Polled, 0, false);
    if !SUPPORTED {
        return; // no epoll to compare against on this platform
    }
    let epoll = run_workload(ReadinessMode::Epoll, 0, false);
    assert_eq!(polled, epoll, "backends diverged on a clean workload");
}

#[test]
fn backends_byte_identical_under_idle_load_and_disconnects() {
    let polled = run_workload(ReadinessMode::Polled, 64, true);
    if !SUPPORTED {
        return;
    }
    let epoll = run_workload(ReadinessMode::Epoll, 64, true);
    assert_eq!(
        polled, epoll,
        "backends diverged under idle connections + mid-stream disconnect"
    );
}

#[test]
fn explicit_epoll_mode_is_honest_about_support() {
    if SUPPORTED {
        let server =
            NetServer::bind(model(), opts(ReadinessMode::Epoll), "127.0.0.1:0").expect("bind");
        assert_eq!(server.readiness_backend(), "epoll");
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        let resp = client.call(&request(0)).expect("call");
        assert!(matches!(resp, NetResponse::Completed { .. }));
        server.shutdown();
    } else {
        match NetServer::bind(model(), opts(ReadinessMode::Epoll), "127.0.0.1:0") {
            Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::Unsupported),
            Ok(_) => panic!("explicit epoll must fail where unsupported"),
        }
    }
}

#[test]
fn auto_mode_resolves_to_the_best_backend() {
    let server = NetServer::bind(model(), opts(ReadinessMode::Auto), "127.0.0.1:0").expect("bind");
    let expected = if SUPPORTED { "epoll" } else { "polled" };
    assert_eq!(server.readiness_backend(), expected);
    server.shutdown();

    let server =
        NetServer::bind(model(), opts(ReadinessMode::Polled), "127.0.0.1:0").expect("bind");
    assert_eq!(server.readiness_backend(), "polled");
    server.shutdown();
}
