//! Wire-protocol properties: encode/decode round-trips for every
//! message shape, and totality under adversarial bytes — truncation,
//! oversized lengths and junk must produce typed errors, never panics.

use bm_core::{DeadlineSpec, Request, ServedTiming};
use bm_model::{RequestInput, TreeShape};
use bm_net::wire::{
    decode_frame, encode_response, encode_submit, Message, NetReject, NetResponse, WireError,
    MAX_FRAME_LEN,
};
use proptest::collection::vec;
use proptest::prelude::*;

fn tree_strategy() -> impl Strategy<Value = TreeShape> {
    (0u32..1000).prop_map(TreeShape::Leaf).prop_recursive(
        6,  // depth
        64, // total nodes
        2,  // branches per internal
        |inner| (inner.clone(), inner).prop_map(|(l, r)| TreeShape::internal(l, r)),
    )
}

fn input_strategy() -> impl Strategy<Value = RequestInput> {
    prop_oneof![
        vec(any::<u32>(), 1..60).prop_map(RequestInput::Sequence),
        (vec(any::<u32>(), 1..40), 1usize..30)
            .prop_map(|(src, decode_len)| RequestInput::Pair { src, decode_len }),
        tree_strategy().prop_map(RequestInput::Tree),
    ]
}

fn deadline_strategy() -> impl Strategy<Value = DeadlineSpec> {
    prop_oneof![
        Just(DeadlineSpec::Default),
        Just(DeadlineSpec::None),
        any::<u64>().prop_map(DeadlineSpec::RelativeUs),
    ]
}

fn request_strategy() -> impl Strategy<Value = Request> {
    (
        input_strategy(),
        deadline_strategy(),
        any::<u8>(),
        prop_oneof![Just(None), any::<u32>().prop_map(Some)],
    )
        .prop_map(|(input, deadline, priority, tenant)| {
            let mut req = Request::new(input).priority(priority);
            req.deadline = deadline;
            req.tenant = tenant;
            req
        })
}

fn timing_strategy() -> impl Strategy<Value = ServedTiming> {
    (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(a, s, c)| ServedTiming {
        arrival_us: a,
        start_us: s,
        completion_us: c,
    })
}

fn response_strategy() -> impl Strategy<Value = NetResponse> {
    prop_oneof![
        (
            timing_strategy(),
            any::<u32>(),
            vec(prop_oneof![Just(None), any::<u32>().prop_map(Some)], 0..40),
        )
            .prop_map(|(timing, executed, tokens)| NetResponse::Completed {
                timing,
                executed,
                tokens,
            }),
        timing_strategy().prop_map(|timing| NetResponse::Expired { timing }),
        vec(any::<u8>(), 0..40).prop_map(|b| {
            let msg: String = b.iter().map(|&x| char::from(b'a' + x % 26)).collect();
            NetResponse::Rejected(NetReject::Invalid(msg))
        }),
        Just(NetResponse::Rejected(NetReject::QueueFull)),
        Just(NetResponse::Rejected(NetReject::AtCapacity)),
        Just(NetResponse::Rejected(NetReject::RateLimited)),
        Just(NetResponse::ShutDown),
    ]
}

proptest! {
    #[test]
    fn submit_round_trips(req in request_strategy(), corr in any::<u32>()) {
        let mut buf = Vec::new();
        encode_submit(&mut buf, corr, &req);
        let (frame, consumed) = decode_frame(&buf)
            .expect("well-formed")
            .expect("complete");
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(frame.correlation, corr);
        prop_assert_eq!(frame.message, Message::Submit(req));
    }

    #[test]
    fn response_round_trips(resp in response_strategy(), corr in any::<u32>()) {
        let mut buf = Vec::new();
        encode_response(&mut buf, corr, &resp);
        let (frame, consumed) = decode_frame(&buf)
            .expect("well-formed")
            .expect("complete");
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(frame.correlation, corr);
        prop_assert_eq!(frame.message, Message::Response(resp));
    }

    #[test]
    fn back_to_back_frames_decode_in_order(
        reqs in vec(request_strategy(), 1..8),
    ) {
        // A stream of concatenated frames decodes one frame per call,
        // preserving order — the server's ingest loop relies on this.
        let mut buf = Vec::new();
        for (i, req) in reqs.iter().enumerate() {
            encode_submit(&mut buf, i as u32, req);
        }
        let mut decoded = Vec::new();
        let mut off = 0usize;
        while let Some((frame, consumed)) = decode_frame(&buf[off..]).expect("well-formed") {
            off += consumed;
            decoded.push(frame);
        }
        prop_assert_eq!(off, buf.len());
        prop_assert_eq!(decoded.len(), reqs.len());
        for (i, (frame, req)) in decoded.into_iter().zip(reqs).enumerate() {
            prop_assert_eq!(frame.correlation, i as u32);
            prop_assert_eq!(frame.message, Message::Submit(req));
        }
    }

    #[test]
    fn truncated_prefixes_never_panic(req in request_strategy(), cut in any::<usize>()) {
        // Every proper prefix of a valid frame is "incomplete", never a
        // crash: decode asks for more bytes.
        let mut buf = Vec::new();
        encode_submit(&mut buf, 7, &req);
        let cut = cut % buf.len();
        prop_assert_eq!(decode_frame(&buf[..cut]).expect("prefix is incomplete, not invalid"), None);
    }

    #[test]
    fn arbitrary_junk_never_panics(junk in vec(any::<u8>(), 0..256)) {
        // Totality: any byte soup either decodes, wants more bytes, or
        // fails with a typed error. (The call simply must not panic.)
        let _ = decode_frame(&junk);
    }

    #[test]
    fn bit_flips_never_panic(
        req in request_strategy(),
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let mut buf = Vec::new();
        encode_submit(&mut buf, 3, &req);
        let at = flip_at % buf.len();
        buf[at] ^= 1 << flip_bit;
        let _ = decode_frame(&buf);
    }
}

#[test]
fn oversized_length_is_rejected_before_buffering() {
    let bad = (MAX_FRAME_LEN + 1).to_le_bytes();
    assert_eq!(
        decode_frame(&bad),
        Err(WireError::Oversized {
            len: MAX_FRAME_LEN + 1
        })
    );
}

#[test]
fn trailing_bytes_inside_a_frame_are_an_error() {
    let mut buf = Vec::new();
    encode_submit(&mut buf, 0, &Request::new(RequestInput::Sequence(vec![1])));
    // Grow the declared length by one and append a stray byte: the body
    // now has trailing garbage.
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) + 1;
    buf[..4].copy_from_slice(&len.to_le_bytes());
    buf.push(0xEE);
    assert_eq!(
        decode_frame(&buf),
        Err(WireError::TrailingBytes { extra: 1 })
    );
}

#[test]
fn wrong_version_is_rejected() {
    let mut buf = Vec::new();
    encode_submit(&mut buf, 0, &Request::new(RequestInput::Sequence(vec![1])));
    buf[4] = 99; // version byte
    assert_eq!(decode_frame(&buf), Err(WireError::BadVersion { got: 99 }));
}

#[test]
fn forged_token_count_cannot_over_allocate() {
    // A sequence claiming u32::MAX tokens with a 12-byte body must fail
    // on the count check, not attempt a 16 GiB allocation.
    let mut frame = vec![
        1, // version
        1, // MSG_SUBMIT
        0, 0, 0, 0, // correlation
        0, // deadline: default
        0, // priority
        0, // tenant: none
        0, // input: sequence
    ];
    frame.extend_from_slice(&u32::MAX.to_le_bytes());
    let mut buf = (frame.len() as u32).to_le_bytes().to_vec();
    buf.extend_from_slice(&frame);
    assert_eq!(
        decode_frame(&buf),
        Err(WireError::BadValue {
            field: "sequence length"
        })
    );
}

#[test]
fn deep_tree_decode_does_not_overflow_the_stack() {
    // A maximally left-leaning tree (every internal's right child is a
    // leaf) near the node cap: encode and decode are both iterative, so
    // depth costs heap, not stack. TreeShape's *derived* PartialEq and
    // Drop do recurse, so the comparison/cleanup runs on a thread with
    // a large stack — the codec itself must not need one.
    let run = std::thread::Builder::new()
        .stack_size(256 * 1024 * 1024)
        .spawn(|| {
            let mut t = TreeShape::leaf(0);
            for i in 1..=20_000u32 {
                t = TreeShape::internal(t, TreeShape::leaf(i % 1000));
            }
            let req = Request::new(RequestInput::Tree(t));
            let mut buf = Vec::new();
            encode_submit(&mut buf, 5, &req);
            let (frame, _) = decode_frame(&buf).expect("valid").expect("complete");
            assert_eq!(frame.message, Message::Submit(req));
        })
        .expect("spawn");
    run.join().expect("deep tree round-trip");
}
