//! End-to-end over a real socket: bind the front door on loopback,
//! drive it with [`NetClient`], and check completions, bit-identity
//! with the in-process runtime, rate limiting, admission control, and
//! protocol-error handling.

use std::sync::Arc;

use bm_core::{Request, RuntimeOptions, SchedulerConfig, ServeConfig, ServedOutcome, TenantRate};
use bm_model::{LstmLm, LstmLmConfig, Model, RequestInput, TreeShape};
use bm_net::{NetClient, NetError, NetReject, NetResponse, NetServer, NetServerOptions};

fn model() -> Arc<dyn Model> {
    Arc::new(LstmLm::new(LstmLmConfig::default()))
}

fn opts(shards: usize) -> NetServerOptions {
    NetServerOptions::new().runtime(
        RuntimeOptions::new()
            .workers(2)
            .scheduler(SchedulerConfig::new().serve(ServeConfig::new().shards(shards))),
    )
}

#[test]
fn pipelined_submits_all_complete() {
    let server = NetServer::bind(model(), opts(2), "127.0.0.1:0").expect("bind");
    let mut client = NetClient::connect(server.local_addr()).expect("connect");

    let n = 64;
    let mut corrs = Vec::new();
    for i in 0..n {
        let len = 3 + (i % 7);
        let req = Request::new(RequestInput::Sequence(vec![1 + (i as u32 % 50); len]));
        corrs.push(client.send(&req).expect("send"));
    }
    let mut done = vec![false; n];
    for _ in 0..n {
        let (corr, resp) = client.recv().expect("recv");
        let idx = corrs.iter().position(|&c| c == corr).expect("known corr");
        assert!(!done[idx], "duplicate response for {corr}");
        done[idx] = true;
        match resp {
            NetResponse::Completed {
                timing, executed, ..
            } => {
                assert!(executed > 0);
                assert!(timing.arrival_us <= timing.start_us);
                assert!(timing.start_us <= timing.completion_us);
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }
    assert!(done.iter().all(|&d| d));

    let stats = server.stats();
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.frames_in, n as u64);
    assert_eq!(stats.submitted, n as u64);
    assert_eq!(stats.completed, n as u64);
    assert_eq!(stats.protocol_errors, 0);
    server.shutdown();
}

#[test]
fn socket_results_match_in_process_runtime() {
    // The same request served over the socket and in-process must
    // produce identical decoded tokens — the wire adds transport, not
    // semantics.
    let inputs = [
        RequestInput::Sequence(vec![5, 6, 7, 8]),
        RequestInput::Pair {
            src: vec![9, 10, 11],
            decode_len: 4,
        },
        RequestInput::Tree(TreeShape::internal(
            TreeShape::internal(TreeShape::leaf(3), TreeShape::leaf(4)),
            TreeShape::leaf(5),
        )),
    ];
    // LstmLm only accepts sequences; use it for the sequence case and
    // skip inputs the model rejects identically on both paths.
    let server = NetServer::bind(model(), opts(2), "127.0.0.1:0").expect("bind");
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let local = bm_core::Runtime::start(model(), RuntimeOptions::new().workers(1));

    for input in &inputs {
        let over_socket = client.call(&Request::from(input)).expect("call");
        let in_process = local.submit_request(Request::from(input));
        match (over_socket, in_process) {
            (NetResponse::Completed { tokens, .. }, Ok(handle)) => {
                let ServedOutcome::Completed(res) = handle.wait() else {
                    panic!("local runtime did not complete");
                };
                let local_tokens: Vec<Option<u32>> = res
                    .result
                    .outputs
                    .iter()
                    .map(|o| o.as_ref().and_then(|c| c.token))
                    .collect();
                assert_eq!(tokens, local_tokens, "socket vs in-process divergence");
            }
            (NetResponse::Rejected(NetReject::Invalid(_)), Err(e)) => {
                assert!(matches!(e, bm_core::SubmitError::Invalid(_)));
            }
            (sock, local) => panic!("paths diverged: socket={sock:?} local={local:?}"),
        }
    }
    local.shutdown();
    server.shutdown();
}

#[test]
fn tenant_rate_limit_rejects_excess() {
    let options = NetServerOptions::new().runtime(
        RuntimeOptions::new().workers(1).scheduler(
            SchedulerConfig::new().serve(
                ServeConfig::new()
                    .shards(1)
                    .tenant_rate(TenantRate::new(1.0, 3)),
            ),
        ),
    );
    let server = NetServer::bind(model(), options, "127.0.0.1:0").expect("bind");
    let mut client = NetClient::connect(server.local_addr()).expect("connect");

    let mut limited = 0;
    let mut served = 0;
    for _ in 0..10 {
        let req = Request::new(RequestInput::Sequence(vec![1, 2])).tenant(42);
        match client.call(&req).expect("call") {
            NetResponse::Rejected(NetReject::RateLimited) => limited += 1,
            NetResponse::Completed { .. } => served += 1,
            other => panic!("unexpected {other:?}"),
        }
    }
    // Burst of 3 at ~1 token/s: the burst serves, the tail is limited.
    assert!(served >= 3, "burst should be admitted (served {served})");
    assert!(limited >= 5, "steady excess should be limited ({limited})");
    assert_eq!(server.stats().rate_limited, limited as u64);
    server.shutdown();
}

#[test]
fn junk_bytes_close_the_connection_but_not_the_server() {
    use std::io::{Read, Write};
    let server = NetServer::bind(model(), opts(1), "127.0.0.1:0").expect("bind");

    // A connection spewing garbage gets closed...
    let mut bad = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    bad.write_all(&[0xFF; 64]).expect("write junk");
    let mut sink = [0u8; 16];
    // The read returns 0 (server closed) rather than hanging.
    bad.set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .expect("timeout");
    let got = bad.read(&mut sink).unwrap_or(0);
    assert_eq!(got, 0, "server should close a junk connection");

    // ...while a well-behaved connection still gets service.
    let mut good = NetClient::connect(server.local_addr()).expect("connect");
    let resp = good
        .call(&Request::new(RequestInput::Sequence(vec![1, 2, 3])))
        .expect("call");
    assert!(matches!(resp, NetResponse::Completed { .. }));
    assert!(server.stats().protocol_errors >= 1);
    server.shutdown();
}

#[test]
fn admission_cap_refuses_excess_connections() {
    let server = NetServer::bind(model(), opts(1).max_connections(1), "127.0.0.1:0").expect("bind");
    let mut first = NetClient::connect(server.local_addr()).expect("connect");
    // Prove the first connection is established server-side.
    let resp = first
        .call(&Request::new(RequestInput::Sequence(vec![1])))
        .expect("call");
    assert!(matches!(resp, NetResponse::Completed { .. }));

    // The second connect succeeds at TCP level (kernel backlog) but the
    // server closes it at accept: the first interaction fails.
    let mut second = NetClient::connect(server.local_addr()).expect("tcp connect");
    let err = second.call(&Request::new(RequestInput::Sequence(vec![1])));
    match err {
        Err(NetError::Closed) | Err(NetError::Io(_)) => {}
        other => panic!("expected refusal, got {other:?}"),
    }
    assert!(server.stats().refused >= 1);
    server.shutdown();
}
