//! Property tests for the workload generators.

use bm_model::RequestInput;
use bm_workload::{Dataset, LengthDistribution, PoissonArrivals};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn lengths_respect_bounds(max in 1usize..400, seed in any::<u64>()) {
        let d = LengthDistribution::wmt15_clipped(max);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let len = d.sample(&mut rng);
            prop_assert!(len >= 1 && len <= max);
        }
        prop_assert_eq!(d.max_len(), max);
    }

    #[test]
    fn arrivals_nondecreasing_for_any_rate(rate in 1.0f64..100_000.0, seed in any::<u64>()) {
        let arr: Vec<u64> = PoissonArrivals::new(rate, seed).take(100).collect();
        for w in arr.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn tree_datasets_are_structurally_valid(
        n in 1usize..50,
        seed in any::<u64>(),
        leaves in 1usize..40,
    ) {
        let ds = Dataset::trees(n, LengthDistribution::Fixed(leaves), 100, seed);
        prop_assert_eq!(ds.len(), n);
        for item in ds.items() {
            let RequestInput::Tree(t) = item else {
                prop_assert!(false, "wrong variant");
                unreachable!()
            };
            prop_assert_eq!(t.leaf_count(), leaves);
            prop_assert_eq!(t.node_count(), 2 * leaves - 1);
            prop_assert!(t.height() <= leaves);
            prop_assert!(t.max_token() < 100);
        }
    }

    #[test]
    fn seq2seq_pairs_always_valid(n in 1usize..50, seed in any::<u64>()) {
        let ds = Dataset::seq2seq(n, LengthDistribution::wmt15_clipped(50), 100, seed);
        for item in ds.items() {
            let RequestInput::Pair { src, decode_len } = item else {
                prop_assert!(false, "wrong variant");
                unreachable!()
            };
            prop_assert!(!src.is_empty());
            prop_assert!(*decode_len >= 1);
            prop_assert!(src.iter().all(|&t| (2..100).contains(&t)));
        }
    }

    #[test]
    fn datasets_deterministic_in_seed(seed in any::<u64>()) {
        let a = Dataset::lstm(20, LengthDistribution::wmt15(), 100, seed);
        let b = Dataset::lstm(20, LengthDistribution::wmt15(), 100, seed);
        prop_assert_eq!(a.items(), b.items());
    }
}
