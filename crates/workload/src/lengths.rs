//! Sequence-length distributions (paper Figure 10 and §7.3).
//!
//! The WMT-15 Europarl sample has mean length 24, maximum 330 and 99 %
//! of sentences shorter than 100. Figure 11 additionally evaluates an
//! artificial fixed-length dataset (length 24) and WMT variants clipped
//! at 50 and 100.

use rand::Rng;

use crate::dist;

/// A distribution over sequence lengths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LengthDistribution {
    /// Every sequence has exactly this length (Figure 11 top).
    Fixed(usize),
    /// Log-normal with the given parameters, rounded and clamped to
    /// `[1, max]`.
    LogNormalClipped {
        /// Location parameter of the underlying normal.
        mu: f64,
        /// Scale parameter of the underlying normal.
        sigma: f64,
        /// Inclusive maximum length.
        max: usize,
    },
}

impl LengthDistribution {
    /// The WMT-15-like distribution: mean 24, p99 ≈ 100, clipped at 330.
    pub fn wmt15() -> Self {
        let (mu, sigma) = dist::fit_log_normal(24.0, 100.0);
        LengthDistribution::LogNormalClipped {
            mu,
            sigma,
            max: 330,
        }
    }

    /// The WMT-15-like distribution clipped at `max` (Figure 11 middle
    /// and bottom use 50 and 100).
    pub fn wmt15_clipped(max: usize) -> Self {
        let (mu, sigma) = dist::fit_log_normal(24.0, 100.0);
        LengthDistribution::LogNormalClipped { mu, sigma, max }
    }

    /// A TreeBank-like sentence-length distribution: mean ≈ 20, clipped
    /// at 64 (TreeBank parse trees are short sentences).
    pub fn treebank() -> Self {
        let (mu, sigma) = dist::fit_log_normal(20.0, 50.0);
        LengthDistribution::LogNormalClipped { mu, sigma, max: 64 }
    }

    /// Samples one length.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        match *self {
            LengthDistribution::Fixed(n) => n,
            LengthDistribution::LogNormalClipped { mu, sigma, max } => {
                let v = dist::log_normal(rng, mu, sigma).round() as i64;
                v.clamp(1, max as i64) as usize
            }
        }
    }

    /// The maximum length this distribution can produce.
    pub fn max_len(&self) -> usize {
        match *self {
            LengthDistribution::Fixed(n) => n,
            LengthDistribution::LogNormalClipped { max, .. } => max,
        }
    }
}

/// An empirical CDF over `usize` samples; Figure 10 plots one of these.
#[derive(Debug, Clone)]
pub struct EmpiricalCdf {
    sorted: Vec<usize>,
}

impl EmpiricalCdf {
    /// Builds a CDF from samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn new(mut samples: Vec<usize>) -> Self {
        assert!(!samples.is_empty(), "empty sample set");
        samples.sort_unstable();
        EmpiricalCdf { sorted: samples }
    }

    /// Fraction of samples `<= x`.
    pub fn fraction_le(&self, x: usize) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`0 <= q <= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> usize {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<usize>() as f64 / self.sorted.len() as f64
    }

    /// Largest sample.
    pub fn max(&self) -> usize {
        *self.sorted.last().expect("nonempty")
    }

    /// Smallest sample.
    pub fn min(&self) -> usize {
        self.sorted[0]
    }

    /// `(x, F(x))` points suitable for plotting, thinned to at most
    /// `points` entries.
    pub fn curve(&self, points: usize) -> Vec<(usize, f64)> {
        let n = self.sorted.len();
        let step = (n / points.max(1)).max(1);
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            out.push((self.sorted[i], (i + 1) as f64 / n as f64));
            i += step;
        }
        if out.last().map(|&(x, _)| x) != Some(self.max()) {
            out.push((self.max(), 1.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn samples(d: LengthDistribution, n: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(42);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn wmt15_matches_paper_statistics() {
        // "The maximum sentence length is 330 and the average length is
        // 24 … about 99 percent of sequences have length less than 100."
        let cdf = EmpiricalCdf::new(samples(LengthDistribution::wmt15(), 100_000));
        assert!((cdf.mean() - 24.0).abs() < 1.0, "mean {}", cdf.mean());
        assert!(cdf.max() <= 330);
        assert!(
            cdf.fraction_le(100) > 0.985,
            "p(<=100) {}",
            cdf.fraction_le(100)
        );
        assert!(cdf.min() >= 1);
    }

    #[test]
    fn clipped_variants_respect_max() {
        for max in [50, 100] {
            let cdf = EmpiricalCdf::new(samples(LengthDistribution::wmt15_clipped(max), 20_000));
            assert!(cdf.max() <= max);
        }
    }

    #[test]
    fn fixed_is_degenerate() {
        let cdf = EmpiricalCdf::new(samples(LengthDistribution::Fixed(24), 100));
        assert_eq!(cdf.min(), 24);
        assert_eq!(cdf.max(), 24);
    }

    #[test]
    fn quantiles_are_ordered() {
        let cdf = EmpiricalCdf::new(samples(LengthDistribution::wmt15(), 10_000));
        assert!(cdf.quantile(0.5) <= cdf.quantile(0.9));
        assert!(cdf.quantile(0.9) <= cdf.quantile(0.99));
        assert_eq!(cdf.quantile(1.0), cdf.max());
    }

    #[test]
    fn curve_is_monotone() {
        let cdf = EmpiricalCdf::new(samples(LengthDistribution::wmt15(), 5_000));
        let curve = cdf.curve(50);
        for w in curve.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1 + 1e-12);
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let a = samples(LengthDistribution::wmt15(), 100);
        let b = samples(LengthDistribution::wmt15(), 100);
        assert_eq!(a, b);
    }
}
