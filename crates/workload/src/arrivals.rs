//! Open-loop Poisson arrival process (§7.1).
//!
//! "We sample a request from the dataset and issue it to the system with
//! Poisson inter-arrival times. We adjust the average inter-arrival time
//! to test the system's performance under varying load."
//!
//! Times are expressed in microseconds of virtual (or wall) time, the
//! time unit used throughout the simulation.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dist;

/// An iterator over Poisson arrival timestamps in microseconds.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rng: StdRng,
    rate_per_sec: f64,
    next_us: f64,
}

impl PoissonArrivals {
    /// Creates a process with the given average rate (requests/second).
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive and finite.
    pub fn new(rate_per_sec: f64, seed: u64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "rate must be positive"
        );
        PoissonArrivals {
            rng: StdRng::seed_from_u64(seed),
            rate_per_sec,
            next_us: 0.0,
        }
    }

    /// The configured arrival rate in requests/second.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }
}

impl Iterator for PoissonArrivals {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let gap_s = dist::exponential(&mut self.rng, self.rate_per_sec);
        self.next_us += gap_s * 1e6;
        Some(self.next_us.round() as u64)
    }
}

/// Replays a virtual-microsecond arrival schedule in wall-clock time.
///
/// The simulator consumes `(at_us, request)` schedules directly; the
/// socket load generator must instead *pace* real submissions to the
/// same timestamps. A `Pacer` anchors µs-zero at its creation instant;
/// [`wait_until`](Pacer::wait_until) sleeps until a scheduled timestamp
/// and reports how late the caller is running — open-loop lateness is
/// the load generator's own saturation signal (the server's queueing
/// shows up in response latency, not here).
#[derive(Debug, Clone, Copy)]
pub struct Pacer {
    start: std::time::Instant,
}

impl Default for Pacer {
    fn default() -> Self {
        Self::new()
    }
}

impl Pacer {
    /// Starts the wall clock: virtual µs 0 is *now*.
    pub fn new() -> Self {
        Pacer {
            start: std::time::Instant::now(),
        }
    }

    /// Wall-clock microseconds since the pacer started.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Sleeps until virtual time `at_us`, returning the lateness in µs
    /// (0 when the sleep happened; positive when the caller was already
    /// past the scheduled instant — the open-loop generator can't keep
    /// up).
    pub fn wait_until(&self, at_us: u64) -> u64 {
        let now = self.elapsed_us();
        if now < at_us {
            std::thread::sleep(std::time::Duration::from_micros(at_us - now));
            0
        } else {
            now - at_us
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pacer_tracks_schedule_and_reports_lateness() {
        let p = Pacer::new();
        assert_eq!(p.wait_until(2_000), 0, "future timestamps sleep");
        let elapsed = p.elapsed_us();
        assert!(elapsed >= 2_000, "woke early: {elapsed}");
        let late = p.wait_until(1_000);
        assert!(late >= 1_000, "past timestamps report lateness: {late}");
    }

    #[test]
    fn arrival_times_are_nondecreasing() {
        let arr: Vec<u64> = PoissonArrivals::new(1000.0, 1).take(1000).collect();
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empirical_rate_matches() {
        let n = 100_000;
        let arr: Vec<u64> = PoissonArrivals::new(5000.0, 2).take(n).collect();
        let span_s = *arr.last().unwrap() as f64 / 1e6;
        let rate = n as f64 / span_s;
        assert!((rate - 5000.0).abs() / 5000.0 < 0.02, "rate {rate}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = PoissonArrivals::new(100.0, 3).take(50).collect();
        let b: Vec<u64> = PoissonArrivals::new(100.0, 3).take(50).collect();
        let c: Vec<u64> = PoissonArrivals::new(100.0, 4).take(50).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn inter_arrival_cv_is_poisson_like() {
        // Coefficient of variation of exponential gaps is 1.
        let arr: Vec<u64> = PoissonArrivals::new(10_000.0, 5).take(50_000).collect();
        let gaps: Vec<f64> = arr.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "cv {cv}");
    }

    #[test]
    #[should_panic]
    fn zero_rate_panics() {
        let _ = PoissonArrivals::new(0.0, 0);
    }
}
