//! Seeded dataset generators for the three applications.
//!
//! A [`Dataset`] is a pool of `RequestInput`s from which the load driver
//! samples uniformly ("we sample a request from the dataset and issue it
//! to the system with Poisson inter-arrival times", §7.1).

use bm_model::{RequestInput, TreeShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::lengths::LengthDistribution;

/// Which application a dataset targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Token sequences for the LSTM language model.
    LstmSequences,
    /// Source/target pairs for Seq2Seq.
    Seq2SeqPairs,
    /// Binary parse trees for TreeLSTM.
    Trees,
}

/// A pool of request inputs.
#[derive(Debug, Clone)]
pub struct Dataset {
    kind: DatasetKind,
    items: Vec<RequestInput>,
}

/// First token id usable for data (0 and 1 are reserved for
/// `<go>`/`<eos>`).
const FIRST_DATA_TOKEN: u32 = 2;

fn random_tokens(rng: &mut StdRng, len: usize, vocab: u32) -> Vec<u32> {
    (0..len)
        .map(|_| rng.gen_range(FIRST_DATA_TOKEN..vocab))
        .collect()
}

/// Builds a random binary parse tree over `leaves` tokens.
///
/// The split point at each level is uniform, which produces the mix of
/// balanced and skewed shapes typical of constituency parse trees.
fn random_parse_tree(rng: &mut StdRng, tokens: &[u32]) -> TreeShape {
    match tokens {
        [] => unreachable!("random_parse_tree on empty token slice"),
        [t] => TreeShape::leaf(*t),
        _ => {
            let split = rng.gen_range(1..tokens.len());
            TreeShape::internal(
                random_parse_tree(rng, &tokens[..split]),
                random_parse_tree(rng, &tokens[split..]),
            )
        }
    }
}

impl Dataset {
    /// Token sequences with lengths drawn from `lengths`
    /// (the §7.2 LSTM workload when `lengths = wmt15()`).
    pub fn lstm(n: usize, lengths: LengthDistribution, vocab: u32, seed: u64) -> Self {
        assert!(n > 0, "empty dataset");
        let mut rng = StdRng::seed_from_u64(seed);
        let items = (0..n)
            .map(|_| {
                let len = lengths.sample(&mut rng);
                RequestInput::Sequence(random_tokens(&mut rng, len, vocab))
            })
            .collect();
        Dataset {
            kind: DatasetKind::LstmSequences,
            items,
        }
    }

    /// Translation pairs (the §7.4 Seq2Seq workload).
    ///
    /// Source lengths come from `lengths`; the decode length is the
    /// "target" length — correlated with the source length via a mild
    /// log-normal length ratio, as German/English pairs are.
    pub fn seq2seq(n: usize, lengths: LengthDistribution, vocab: u32, seed: u64) -> Self {
        assert!(n > 0, "empty dataset");
        let mut rng = StdRng::seed_from_u64(seed);
        let items = (0..n)
            .map(|_| {
                let src_len = lengths.sample(&mut rng);
                // Target/source length ratio: centered on 1.0, sd ~15 %.
                let ratio = crate::dist::log_normal(&mut rng, 0.0, 0.15);
                let decode_len = ((src_len as f64 * ratio).round() as i64)
                    .clamp(1, lengths.max_len() as i64) as usize;
                RequestInput::Pair {
                    src: random_tokens(&mut rng, src_len, vocab),
                    decode_len,
                }
            })
            .collect();
        Dataset {
            kind: DatasetKind::Seq2SeqPairs,
            items,
        }
    }

    /// Random binary parse trees (the §7.5 TreeBank workload).
    pub fn trees(n: usize, lengths: LengthDistribution, vocab: u32, seed: u64) -> Self {
        assert!(n > 0, "empty dataset");
        let mut rng = StdRng::seed_from_u64(seed);
        let items = (0..n)
            .map(|_| {
                let leaves = lengths.sample(&mut rng).max(1);
                let tokens = random_tokens(&mut rng, leaves, vocab);
                RequestInput::Tree(random_parse_tree(&mut rng, &tokens))
            })
            .collect();
        Dataset {
            kind: DatasetKind::Trees,
            items,
        }
    }

    /// `n` copies of the identical complete binary tree with `leaves`
    /// leaves (the Figure 15 synthetic dataset).
    pub fn identical_trees(n: usize, leaves: usize, vocab: u32) -> Self {
        assert!(n > 0, "empty dataset");
        let shape = TreeShape::complete(leaves, vocab.max(1));
        Dataset {
            kind: DatasetKind::Trees,
            items: vec![RequestInput::Tree(shape); n],
        }
    }

    /// The dataset's kind.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// All items.
    pub fn items(&self) -> &[RequestInput] {
        &self.items
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the dataset has no items (never true: constructors
    /// require `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Samples one item uniformly.
    pub fn sample<'a>(&'a self, rng: &mut impl Rng) -> &'a RequestInput {
        &self.items[rng.gen_range(0..self.items.len())]
    }

    /// The lengths (cell counts) of all items — what Figure 10 plots for
    /// the LSTM dataset.
    pub fn cell_counts(&self) -> Vec<usize> {
        self.items.iter().map(|i| i.cell_count()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lstm_dataset_lengths_in_range() {
        let d = Dataset::lstm(500, LengthDistribution::wmt15(), 100, 7);
        assert_eq!(d.len(), 500);
        for item in d.items() {
            let RequestInput::Sequence(s) = item else {
                panic!("wrong variant")
            };
            assert!(!s.is_empty() && s.len() <= 330);
            assert!(s.iter().all(|&t| (2..100).contains(&t)));
        }
    }

    #[test]
    fn seq2seq_pairs_have_correlated_lengths() {
        let d = Dataset::seq2seq(500, LengthDistribution::wmt15(), 100, 8);
        let mut ratios = Vec::new();
        for item in d.items() {
            let RequestInput::Pair { src, decode_len } = item else {
                panic!("wrong variant")
            };
            assert!(!src.is_empty() && *decode_len >= 1);
            ratios.push(*decode_len as f64 / src.len() as f64);
        }
        let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!((mean_ratio - 1.0).abs() < 0.15, "mean ratio {mean_ratio}");
    }

    #[test]
    fn tree_dataset_matches_leaf_distribution() {
        let d = Dataset::trees(300, LengthDistribution::treebank(), 100, 9);
        for item in d.items() {
            let RequestInput::Tree(t) = item else {
                panic!("wrong variant")
            };
            assert!(t.leaf_count() >= 1 && t.leaf_count() <= 64);
            // A binary tree over n leaves has 2n - 1 nodes.
            assert_eq!(t.node_count(), 2 * t.leaf_count() - 1);
        }
    }

    #[test]
    fn identical_trees_are_identical() {
        let d = Dataset::identical_trees(10, 16, 100);
        let first = &d.items()[0];
        assert!(d.items().iter().all(|i| i == first));
        let RequestInput::Tree(t) = first else {
            panic!("wrong variant")
        };
        assert_eq!(t.leaf_count(), 16);
        assert_eq!(t.node_count(), 31);
    }

    #[test]
    fn datasets_are_seed_deterministic() {
        let a = Dataset::lstm(50, LengthDistribution::wmt15(), 100, 1);
        let b = Dataset::lstm(50, LengthDistribution::wmt15(), 100, 1);
        let c = Dataset::lstm(50, LengthDistribution::wmt15(), 100, 2);
        assert_eq!(a.items(), b.items());
        assert_ne!(a.items(), c.items());
    }

    #[test]
    fn sample_draws_from_pool() {
        let d = Dataset::lstm(20, LengthDistribution::Fixed(5), 100, 1);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let item = d.sample(&mut rng);
            assert!(d.items().contains(item));
        }
    }

    #[test]
    fn parse_trees_vary_in_shape() {
        let d = Dataset::trees(100, LengthDistribution::Fixed(16), 100, 3);
        let heights: std::collections::HashSet<usize> = d
            .items()
            .iter()
            .map(|i| {
                let RequestInput::Tree(t) = i else {
                    unreachable!()
                };
                t.height()
            })
            .collect();
        // Random splits should produce multiple distinct heights.
        assert!(heights.len() > 1, "heights {heights:?}");
    }
}
