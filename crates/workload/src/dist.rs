//! From-scratch random samplers.
//!
//! Implemented here rather than pulling `rand_distr`: the reproduction
//! needs exactly three samplers (uniform, exponential, log-normal), each
//! a few lines, and keeping the dependency set minimal is a stated goal
//! (DESIGN.md §6). All samplers take `&mut impl Rng` so callers control
//! seeding.

use rand::Rng;

/// Samples `Exp(rate)` via inverse CDF: `-ln(U) / rate`.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive and finite.
pub fn exponential(rng: &mut impl Rng, rate: f64) -> f64 {
    assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
    // Uniform in (0, 1]: avoids ln(0).
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

/// Samples a standard normal via the Box–Muller transform.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples `LogNormal(mu, sigma)`: `exp(mu + sigma * Z)`.
///
/// # Panics
///
/// Panics if `sigma` is negative or not finite.
pub fn log_normal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be >= 0");
    (mu + sigma * standard_normal(rng)).exp()
}

/// Fits `(mu, sigma)` of a log-normal from a target mean and a target
/// p99 quantile.
///
/// Solves `exp(mu + sigma^2 / 2) = mean` and
/// `exp(mu + z99 * sigma) = p99` with `z99 = 2.3263`, taking the smaller
/// sigma root (the one giving a unimodal, sub-exponential body).
///
/// # Panics
///
/// Panics if the system has no real solution (p99 too close to the mean).
pub fn fit_log_normal(mean: f64, p99: f64) -> (f64, f64) {
    const Z99: f64 = 2.326_347_9;
    let a = mean.ln();
    let b = p99.ln();
    // mu = a - sigma^2/2 ; substitute into mu + Z99 sigma = b:
    //   sigma^2/2 - Z99 sigma + (b - a) = 0.
    let disc = Z99 * Z99 - 2.0 * (b - a);
    assert!(disc >= 0.0, "no log-normal matches mean {mean}, p99 {p99}");
    let sigma = Z99 - disc.sqrt();
    let mu = a - sigma * sigma / 2.0;
    (mu, sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xd157)
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = rng();
        let n = 200_000;
        let rate = 2.5;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exponential_is_positive() {
        let mut r = rng();
        assert!((0..10_000).all(|_| exponential(&mut r, 0.1) > 0.0));
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn fit_log_normal_recovers_targets() {
        let (mu, sigma) = fit_log_normal(24.0, 100.0);
        let mean = (mu + sigma * sigma / 2.0).exp();
        let p99 = (mu + 2.326_347_9 * sigma).exp();
        assert!((mean - 24.0).abs() < 1e-6, "mean {mean}");
        assert!((p99 - 100.0).abs() < 1e-4, "p99 {p99}");
    }

    #[test]
    fn log_normal_empirical_mean() {
        let (mu, sigma) = fit_log_normal(24.0, 100.0);
        let mut r = rng();
        let n = 400_000;
        let mean: f64 = (0..n).map(|_| log_normal(&mut r, mu, sigma)).sum::<f64>() / n as f64;
        assert!((mean - 24.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    #[should_panic]
    fn bad_rate_panics() {
        let mut r = rng();
        let _ = exponential(&mut r, 0.0);
    }
}
