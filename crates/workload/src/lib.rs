//! Synthetic datasets, length distributions and arrival processes.
//!
//! The paper evaluates on WMT-15 Europarl (100k sampled sentences, mean
//! length 24, maximum 330, 99 % shorter than 100 — §7.1/Figure 10) and
//! the Stanford TreeBank (10k binary parse trees — §7.5), issuing
//! requests "with Poisson inter-arrival times" (§7.1).
//!
//! We do not have the datasets (and do not need the word identities —
//! only lengths and tree shapes drive scheduling), so this crate
//! synthesizes statistically matched equivalents:
//!
//! - [`dist`] — from-scratch samplers (exponential via inverse CDF,
//!   normal via Box–Muller, log-normal) so no distribution crate is
//!   needed;
//! - [`lengths`] — the WMT-like length distribution (log-normal fitted
//!   to mean 24 / p99 ≈ 100, clipped at 330), plus the Figure 11
//!   variants (fixed length, clipped at 50 / 100);
//! - [`datasets`] — seeded generators producing `RequestInput`s for all
//!   three applications, including random binary parse trees and the
//!   Figure 15 identical-tree dataset;
//! - [`arrivals`] — the open-loop Poisson arrival process, plus the
//!   wall-clock [`Pacer`] the socket load generator uses to replay a
//!   virtual-µs schedule in real time.

pub mod arrivals;
pub mod datasets;
pub mod dist;
pub mod lengths;

pub use arrivals::{Pacer, PoissonArrivals};
pub use datasets::{Dataset, DatasetKind};
pub use lengths::LengthDistribution;
