//! Criterion benchmarks for the BatchMaker reproduction.
//!
//! The benchmark targets live in `benches/`:
//!
//! - `tensor` — matmul/gather/softmax kernels of the tensor substrate;
//! - `cells` — batched cell execution across batch sizes (the measured
//!   CPU analogue of Figure 3);
//! - `scheduler` — the cellular-batching engine's per-task scheduling
//!   overhead (the paper measures ~65 µs of scheduling + gathering per
//!   step, §7.3);
//! - `figures` — one benchmark per reproduced figure, running the
//!   corresponding experiment at `Scale::Quick`.
//!
//! Run with `cargo bench --workspace`.
