//! Batched cell execution across batch sizes — the measured CPU
//! analogue of the paper's Figure 3 microbenchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bm_cell::{
    Cell, DecoderCell, EncoderCell, InvocationInput, LstmCell, TreeInternalCell, TreeLeafCell,
};

const HIDDEN: usize = 128;
const VOCAB: usize = 512;

fn invocations(n: usize) -> Vec<InvocationInput<'static>> {
    (0..n)
        .map(|i| InvocationInput::token_only((i % VOCAB) as u32))
        .collect()
}

fn bench_lstm_step_batches(c: &mut Criterion) {
    let cell = LstmCell::seeded(HIDDEN, HIDDEN, VOCAB, 1);
    let mut g = c.benchmark_group("fig3_cpu_lstm_step");
    for &b in &[2usize, 8, 32, 128] {
        let invs = invocations(b);
        g.throughput(Throughput::Elements(b as u64));
        g.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, _| {
            bench.iter(|| std::hint::black_box(cell.execute_batch(&invs)));
        });
    }
    g.finish();
}

fn bench_cell_kinds(c: &mut Criterion) {
    let mut g = c.benchmark_group("cell_kinds_batch32");
    let invs = invocations(32);
    let cells: Vec<(&str, Cell)> = vec![
        (
            "lstm",
            Cell::Lstm(LstmCell::seeded(HIDDEN, HIDDEN, VOCAB, 1)),
        ),
        (
            "encoder",
            Cell::Encoder(EncoderCell::seeded(HIDDEN, HIDDEN, VOCAB, 2)),
        ),
        (
            "decoder",
            Cell::Decoder(DecoderCell::seeded(HIDDEN, HIDDEN, VOCAB, 3)),
        ),
        (
            "tree_leaf",
            Cell::TreeLeaf(TreeLeafCell::seeded(HIDDEN, HIDDEN, VOCAB, 4)),
        ),
    ];
    g.throughput(Throughput::Elements(32));
    for (name, cell) in &cells {
        g.bench_function(*name, |bench| {
            bench.iter(|| std::hint::black_box(cell.execute_batch(&invs)));
        });
    }
    // Tree internal needs child states.
    let leaf = TreeLeafCell::seeded(HIDDEN, HIDDEN, VOCAB, 4);
    let kids: Vec<_> = leaf
        .execute_batch(&invocations(2))
        .into_iter()
        .map(|o| o.state)
        .collect();
    let internal = Cell::TreeInternal(TreeInternalCell::seeded(HIDDEN, 5));
    let tree_invs: Vec<InvocationInput<'_>> = (0..32)
        .map(|_| InvocationInput::tree(&kids[0], &kids[1]))
        .collect();
    g.bench_function("tree_internal", |bench| {
        bench.iter(|| std::hint::black_box(internal.execute_batch(&tree_invs)));
    });
    g.finish();
}

criterion_group!(benches, bench_lstm_step_batches, bench_cell_kinds);
criterion_main!(benches);
