//! Scheduler-overhead benchmarks: how much host time the cellular
//! batching engine spends per task and per node. The paper attributes
//! ~65 µs per step to "scheduling and gathering overhead" (§7.3); these
//! benches measure our engine's share of it.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bm_core::{CellularEngine, RequestId, SchedulerConfig, WorkerId};
use bm_model::{LstmLm, LstmLmConfig, Model, RequestInput, TreeLstm, TreeShape};

/// Admits `n` chain requests and drains the engine to completion,
/// returning the number of tasks processed.
fn drain_chains(n: usize, len: usize) -> usize {
    let model = LstmLm::new(LstmLmConfig {
        max_batch: 512,
        ..Default::default()
    });
    let mut engine = CellularEngine::new(
        Arc::new(model.registry().clone()),
        SchedulerConfig::default(),
    );
    for i in 0..n {
        engine.on_arrival(
            RequestId(i as u64),
            model.unfold(&RequestInput::Sequence(vec![1; len])),
            0,
        );
    }
    let mut tasks = 0;
    let mut now = 0;
    while engine.active_requests() > 0 {
        let ts = engine.dispatch(WorkerId(0));
        assert!(!ts.is_empty());
        for t in ts {
            now += 1;
            tasks += 1;
            engine.on_task_started(t.id, now);
            let tokens = vec![None; t.entries.len()];
            engine.on_task_completed(t.id, &tokens, now);
        }
    }
    tasks
}

fn bench_chain_scheduling(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_chain_drain");
    for &n in &[16usize, 64, 256] {
        // n requests x 8 steps each.
        g.throughput(Throughput::Elements((n * 8) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| std::hint::black_box(drain_chains(n, 8)));
        });
    }
    g.finish();
}

fn bench_tree_scheduling(c: &mut Criterion) {
    let model = TreeLstm::small();
    let graph_proto = model.unfold(&RequestInput::Tree(TreeShape::complete(16, 100)));
    let mut g = c.benchmark_group("engine_tree_drain");
    g.throughput(Throughput::Elements((31 * 64) as u64));
    g.bench_function("64x16leaf", |bench| {
        bench.iter(|| {
            let mut engine = CellularEngine::new(
                Arc::new(model.registry().clone()),
                SchedulerConfig::default(),
            );
            for i in 0..64u64 {
                engine.on_arrival(RequestId(i), graph_proto.clone(), 0);
            }
            let mut now = 0;
            while engine.active_requests() > 0 {
                for t in engine.dispatch(WorkerId(0)) {
                    now += 1;
                    engine.on_task_started(t.id, now);
                    let tokens = vec![None; t.entries.len()];
                    engine.on_task_completed(t.id, &tokens, now);
                }
            }
            std::hint::black_box(now)
        });
    });
    g.finish();
}

fn bench_arrival_processing(c: &mut Criterion) {
    // Unfold + partition + admission cost per request.
    let model = LstmLm::small();
    let mut g = c.benchmark_group("engine_admission");
    g.throughput(Throughput::Elements(64));
    g.bench_function("64_chains_len24", |bench| {
        bench.iter(|| {
            let mut engine = CellularEngine::new(
                Arc::new(model.registry().clone()),
                SchedulerConfig::default(),
            );
            for i in 0..64u64 {
                engine.on_arrival(
                    RequestId(i),
                    model.unfold(&RequestInput::Sequence(vec![1; 24])),
                    0,
                );
            }
            std::hint::black_box(engine.total_ready_nodes())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_chain_scheduling,
    bench_tree_scheduling,
    bench_arrival_processing
);
criterion_main!(benches);
