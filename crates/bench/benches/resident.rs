//! Resident-state plane vs the gather path for chain cells.
//!
//! Same comparison the `repro bench` harness records, under Criterion's
//! statistics: per step the gather side rebuilds row invocations over
//! per-request state rows and the cell copies them into a contiguous
//! batch before the full `[x|h]·W` affine; the resident side places
//! rows already parked in a [`ResidentBatch`] (a no-op when fresh) and
//! runs the split affine — cached token projection plus the `h·Wh`
//! fold continuation. A churn variant adds one leave/join per tick.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bm_cell::{Cell, CellState, InvocationInput, LstmCell, RowInvocation, Scratch, StateRef};
use bm_core::{RequestId, ResidentBatch};
use bm_model::NodeId;

const HIDDEN: usize = 256;
const VOCAB: usize = 1000;

struct Fixture {
    cell: Cell,
    states: Vec<CellState>,
    tokens: Vec<u32>,
    tokens_opt: Vec<Option<u32>>,
}

fn fixture(batch: usize) -> Fixture {
    let cell = Cell::Lstm(LstmCell::seeded(HIDDEN, HIDDEN, VOCAB, 71));
    let states: Vec<CellState> = (0..batch)
        .map(|r| {
            let o = cell.execute_batch(&[InvocationInput::token_only((r % VOCAB) as u32)]);
            o.into_iter().next().unwrap().state
        })
        .collect();
    let tokens: Vec<u32> = (0..batch).map(|r| ((r * 13 + 5) % VOCAB) as u32).collect();
    let tokens_opt = tokens.iter().map(|&t| Some(t)).collect();
    Fixture {
        cell,
        states,
        tokens,
        tokens_opt,
    }
}

fn bench_resident_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("resident_step_h256");
    for &batch in &[16usize, 64] {
        let f = fixture(batch);
        g.throughput(Throughput::Elements(batch as u64));

        // Gather: rebuild invocations over scattered rows every step.
        let mut scratch = Scratch::new();
        let mut prev = f.states.clone();
        let mut next = f.states.clone();
        g.bench_with_input(BenchmarkId::new("gather", batch), &batch, |b, _| {
            b.iter(|| {
                let invs: Vec<RowInvocation<'_>> = prev
                    .iter()
                    .zip(&f.tokens)
                    .map(|(s, &t)| RowInvocation::chain(t, StateRef::of(s)))
                    .collect();
                f.cell
                    .execute_rows_in(&invs, &mut scratch, |row, h, cs, _| {
                        next[row].h.copy_from_slice(h);
                        next[row].c.copy_from_slice(cs);
                    });
                std::mem::swap(&mut prev, &mut next);
                std::hint::black_box(&prev);
            });
        });

        // Resident: rows stay parked; place() is the fresh fast path.
        let layout = f.cell.resident_layout().expect("chain cell");
        let mut rb = ResidentBatch::new(layout);
        for (i, s) in f.states.iter().enumerate() {
            rb.place(i, RequestId(i as u64), NodeId(1), Some(NodeId(0)), || {
                StateRef::of(s)
            });
        }
        let mut scratch_res = Scratch::new();
        let mut out = f.states.clone();
        let mut t_node: u32 = 1;
        g.bench_with_input(BenchmarkId::new("resident", batch), &batch, |b, _| {
            b.iter(|| {
                t_node += 1;
                for i in 0..batch {
                    rb.place(
                        i,
                        RequestId(i as u64),
                        NodeId(t_node),
                        Some(NodeId(t_node - 1)),
                        || unreachable!("steady-state rows are always fresh"),
                    );
                }
                rb.step(
                    &f.cell,
                    batch,
                    &f.tokens_opt,
                    &mut scratch_res,
                    |row, h, cs, _| {
                        out[row].h.copy_from_slice(h);
                        out[row].c.copy_from_slice(cs);
                    },
                );
                std::hint::black_box(&out);
            });
        });

        // Churn: one swap-remove + join-with-fetch per tick on top.
        let mut rb_churn = ResidentBatch::new(layout);
        let mut scratch_churn = Scratch::new();
        let zero = CellState::zeros(HIDDEN);
        let mut churn_out = f.states.clone();
        let mut ct: u32 = 0;
        let mut victim = 0u64;
        g.bench_with_input(BenchmarkId::new("resident_churn", batch), &batch, |b, _| {
            b.iter(|| {
                ct += 1;
                rb_churn.remove(RequestId(victim));
                victim = (victim + 1) % batch as u64;
                for i in 0..batch {
                    rb_churn.place(
                        i,
                        RequestId(i as u64),
                        NodeId(ct),
                        ct.checked_sub(1).map(NodeId),
                        || StateRef::of(&zero),
                    );
                }
                rb_churn.step(
                    &f.cell,
                    batch,
                    &f.tokens_opt,
                    &mut scratch_churn,
                    |row, h, cs, _| {
                        churn_out[row].h.copy_from_slice(h);
                        churn_out[row].c.copy_from_slice(cs);
                    },
                );
                std::hint::black_box(&churn_out);
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_resident_step);
criterion_main!(benches);
