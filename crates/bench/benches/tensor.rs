//! Tensor-substrate kernel benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bm_cell::{Cell, InvocationInput, LstmCell, Scratch};
use bm_tensor::{ops, xavier_uniform, Matrix};

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for &n in &[64usize, 128, 256] {
        let a = xavier_uniform(n, n, 1);
        let b = xavier_uniform(n, n, 2);
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        g.bench_with_input(BenchmarkId::new("square", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)));
        });
    }
    // The LSTM shape: (batch, 2h) x (2h, 4h) with h = 128.
    for &batch in &[4usize, 64, 256] {
        let a = xavier_uniform(batch, 256, 3);
        let b = xavier_uniform(256, 512, 4);
        g.throughput(Throughput::Elements((2 * batch * 256 * 512) as u64));
        g.bench_with_input(BenchmarkId::new("lstm_shape", batch), &batch, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)));
        });
    }
    g.finish();
}

fn bench_gather_scatter(c: &mut Criterion) {
    let mut g = c.benchmark_group("gather");
    let x = xavier_uniform(1024, 256, 5);
    let idx: Vec<usize> = (0..512).map(|i| (i * 7) % 1024).collect();
    g.throughput(Throughput::Elements((512 * 256) as u64));
    g.bench_function("gather_rows_512x256", |bench| {
        bench.iter(|| std::hint::black_box(ops::gather_rows(&x, &idx)));
    });
    let src = xavier_uniform(512, 256, 6);
    g.bench_function("scatter_rows_512x256", |bench| {
        let mut dst = Matrix::zeros(1024, 256);
        bench.iter(|| {
            ops::scatter_rows(&mut dst, &src, &idx);
            std::hint::black_box(&dst);
        });
    });
    g.finish();
}

fn bench_elementwise(c: &mut Criterion) {
    let mut g = c.benchmark_group("elementwise");
    let x = xavier_uniform(256, 1024, 7);
    g.throughput(Throughput::Elements(x.len() as u64));
    g.bench_function("sigmoid_256x1024", |bench| {
        bench.iter(|| std::hint::black_box(ops::sigmoid(&x)));
    });
    g.bench_function("tanh_256x1024", |bench| {
        bench.iter(|| std::hint::black_box(ops::tanh(&x)));
    });
    g.bench_function("softmax_256x1024", |bench| {
        bench.iter(|| std::hint::black_box(ops::softmax(&x)));
    });
    g.bench_function("argmax_256x1024", |bench| {
        bench.iter(|| std::hint::black_box(ops::argmax(&x)));
    });
    g.finish();
}

fn bench_packed_vs_serial(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    // The headline kernel shape: batched LSTM step at batch 64,
    // hidden 512 — (64, 1024) x (1024, 2048).
    let a = xavier_uniform(64, 1024, 11);
    let b = xavier_uniform(1024, 2048, 12);
    let bias = Matrix::zeros(1, 2048);
    g.throughput(Throughput::Elements((2usize * 64 * 1024 * 2048) as u64));
    g.bench_function("packed_b64_h512", |bench| {
        bench.iter(|| std::hint::black_box(a.matmul(&b)));
    });
    g.bench_function("serial_reference_b64_h512", |bench| {
        bench.iter(|| std::hint::black_box(a.matmul_serial(&b)));
    });
    g.bench_function("fused_affine_b64_h512", |bench| {
        let mut out = Matrix::zeros(64, 2048);
        bench.iter(|| {
            ops::affine_into(&a, &b, &bias, &mut out);
            std::hint::black_box(&out);
        });
    });
    g.finish();
}

fn bench_inplace_activations(c: &mut Criterion) {
    let mut g = c.benchmark_group("inplace");
    let x = xavier_uniform(256, 1024, 13);
    g.throughput(Throughput::Elements(x.len() as u64));
    g.bench_function("sigmoid_inplace_256x1024", |bench| {
        let mut y = x.clone();
        bench.iter(|| {
            ops::sigmoid_inplace(&mut y);
            std::hint::black_box(&y);
        });
    });
    g.bench_function("tanh_inplace_256x1024", |bench| {
        let mut y = x.clone();
        bench.iter(|| {
            ops::tanh_inplace(&mut y);
            std::hint::black_box(&y);
        });
    });
    g.finish();
}

fn bench_lstm_cell_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("lstm_cell");
    // Figure-3 scale cell step: batch 64, embed 512, hidden 512.
    let cell = Cell::Lstm(LstmCell::seeded(512, 512, 1024, 21));
    let state = {
        let out = cell.execute_batch(&[InvocationInput::token_only(1)]);
        out.into_iter().next().unwrap().state
    };
    let invs: Vec<InvocationInput<'_>> = (0..64)
        .map(|i| InvocationInput::chain(i as u32 % 1024, &state))
        .collect();
    g.throughput(Throughput::Elements(cell.flops(64)));
    g.bench_function("step_b64_h512", |bench| {
        let mut scratch = Scratch::new();
        bench.iter(|| std::hint::black_box(cell.execute_batch_in(&invs, &mut scratch)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_gather_scatter,
    bench_elementwise,
    bench_packed_vs_serial,
    bench_inplace_activations,
    bench_lstm_cell_step
);
criterion_main!(benches);
