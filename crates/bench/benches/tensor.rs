//! Tensor-substrate kernel benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bm_tensor::{ops, xavier_uniform, Matrix};

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for &n in &[64usize, 128, 256] {
        let a = xavier_uniform(n, n, 1);
        let b = xavier_uniform(n, n, 2);
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        g.bench_with_input(BenchmarkId::new("square", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)));
        });
    }
    // The LSTM shape: (batch, 2h) x (2h, 4h) with h = 128.
    for &batch in &[4usize, 64, 256] {
        let a = xavier_uniform(batch, 256, 3);
        let b = xavier_uniform(256, 512, 4);
        g.throughput(Throughput::Elements((2 * batch * 256 * 512) as u64));
        g.bench_with_input(BenchmarkId::new("lstm_shape", batch), &batch, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)));
        });
    }
    g.finish();
}

fn bench_gather_scatter(c: &mut Criterion) {
    let mut g = c.benchmark_group("gather");
    let x = xavier_uniform(1024, 256, 5);
    let idx: Vec<usize> = (0..512).map(|i| (i * 7) % 1024).collect();
    g.throughput(Throughput::Elements((512 * 256) as u64));
    g.bench_function("gather_rows_512x256", |bench| {
        bench.iter(|| std::hint::black_box(ops::gather_rows(&x, &idx)));
    });
    let src = xavier_uniform(512, 256, 6);
    g.bench_function("scatter_rows_512x256", |bench| {
        let mut dst = Matrix::zeros(1024, 256);
        bench.iter(|| {
            ops::scatter_rows(&mut dst, &src, &idx);
            std::hint::black_box(&dst);
        });
    });
    g.finish();
}

fn bench_elementwise(c: &mut Criterion) {
    let mut g = c.benchmark_group("elementwise");
    let x = xavier_uniform(256, 1024, 7);
    g.throughput(Throughput::Elements(x.len() as u64));
    g.bench_function("sigmoid_256x1024", |bench| {
        bench.iter(|| std::hint::black_box(ops::sigmoid(&x)));
    });
    g.bench_function("tanh_256x1024", |bench| {
        bench.iter(|| std::hint::black_box(ops::tanh(&x)));
    });
    g.bench_function("softmax_256x1024", |bench| {
        bench.iter(|| std::hint::black_box(ops::softmax(&x)));
    });
    g.bench_function("argmax_256x1024", |bench| {
        bench.iter(|| std::hint::black_box(ops::argmax(&x)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_gather_scatter,
    bench_elementwise
);
criterion_main!(benches);
