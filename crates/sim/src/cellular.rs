//! BatchMaker under simulation: the real [`CellularEngine`] driven in
//! virtual time with task durations from the calibrated GPU cost model.

use std::collections::HashMap;
use std::sync::Arc;

use bm_core::{CellularEngine, RequestId, SchedulerConfig, TaskId, WorkerId};
use bm_device::{CostProfile, GpuCostModel};
use bm_model::Model;

use crate::server::{Server, SimRequest, WorkItem};

/// Cellular batching as a simulated server.
pub struct CellularServer {
    model: Arc<dyn Model>,
    engine: CellularEngine,
    cost: GpuCostModel,
    profile: CostProfile,
    inflight: HashMap<u64, usize>,
    completions: Vec<(u64, u64, u64, u64)>,
}

impl CellularServer {
    /// Creates a server for `model` with the given scheduler config,
    /// cost model and FLOP profile.
    pub fn new(
        model: Arc<dyn Model>,
        cfg: SchedulerConfig,
        cost: GpuCostModel,
        profile: CostProfile,
    ) -> Self {
        assert_eq!(
            profile.len(),
            model.registry().len(),
            "profile must cover every cell type"
        );
        let registry = Arc::new(model.registry().clone());
        CellularServer {
            model,
            engine: CellularEngine::new(registry, cfg),
            cost,
            profile,
            inflight: HashMap::new(),
            completions: Vec::new(),
        }
    }

    /// Creates a server with default scheduler config, the V100 cost
    /// model, and paper-scale pricing (hidden 1024, vocabulary 30k).
    pub fn paper_scale(model: Arc<dyn Model>) -> Self {
        let profile = CostProfile::paper_scale(model.registry(), 1024, 30_000);
        Self::new(
            model,
            SchedulerConfig::default(),
            GpuCostModel::v100(),
            profile,
        )
    }

    /// Creates a server priced by the model's actual (small) shapes.
    pub fn with_defaults(model: Arc<dyn Model>) -> Self {
        let profile = CostProfile::from_registry(model.registry());
        Self::new(
            model,
            SchedulerConfig::default(),
            GpuCostModel::v100(),
            profile,
        )
    }

    /// Routes the engine's scheduler trace events (batch formation,
    /// pinning, migration, task lifecycle) to `sink`, stamped in virtual
    /// time. Pair with `SimOptions::trace` to also capture driver-level
    /// rejections and expiries.
    pub fn with_trace(mut self, sink: Arc<dyn bm_trace::TraceSink>) -> Self {
        self.engine.set_trace_sink(sink);
        self
    }

    /// Records the engine's scheduler metrics (admissions, batch sizes,
    /// per-stage latency decomposition) into `tel`, in virtual time.
    /// Pair with `SimOptions::telemetry` to also capture driver-level
    /// rejections, expiries, and worker busy time.
    pub fn with_telemetry(mut self, tel: &bm_telemetry::Telemetry) -> Self {
        self.engine.set_telemetry(tel);
        self
    }
}

impl Server for CellularServer {
    fn on_arrival(&mut self, req: SimRequest, now_us: u64) {
        let graph = self.model.unfold(&req.input);
        self.engine.on_arrival_full(
            RequestId(req.id),
            graph,
            now_us,
            req.deadline_us,
            req.priority,
        );
    }

    fn next_work(&mut self, worker: usize, now_us: u64) -> Vec<WorkItem> {
        // Batch-formation trace events are stamped with the engine's
        // internal clock; keep it in step with virtual time.
        self.engine.advance_clock(now_us);
        let tasks = self.engine.dispatch(WorkerId(worker as u32));
        tasks
            .into_iter()
            .map(|t| {
                let flops = self.profile.flops(t.cell_type, t.batch_size());
                let cost = self
                    .cost
                    .task_cost_from_flops(flops, t.gather_rows, t.transfer_rows);
                let duration = cost.total_us() + self.cost.completion_poll_us;
                self.inflight.insert(t.id.0, t.batch_size());
                WorkItem {
                    id: t.id.0,
                    duration_us: duration.round() as u64,
                }
            })
            .collect()
    }

    fn on_work_started(&mut self, item: u64, now_us: u64) {
        self.engine.on_task_started(TaskId(item), now_us);
    }

    fn on_work_done(&mut self, _worker: usize, item: u64, now_us: u64) {
        let batch = self.inflight.remove(&item).expect("known task");
        // Under simulation no real tokens are produced; decode lengths
        // are fixed by the workload, as in the paper's experiments.
        let tokens = vec![None; batch];
        let done = self.engine.on_task_completed(TaskId(item), &tokens, now_us);
        for c in done {
            // Cancelled requests resolve through the driver's expiry
            // accounting, not as completions.
            if !c.cancelled {
                self.completions
                    .push((c.id.0, c.arrival_us, c.start_us, c.completion_us));
            }
        }
    }

    fn drain_completions(&mut self) -> Vec<(u64, u64, u64, u64)> {
        std::mem::take(&mut self.completions)
    }

    fn pending_requests(&self) -> usize {
        self.engine.active_requests()
    }

    fn next_wakeup(&self, now_us: u64) -> Option<u64> {
        self.engine.next_wakeup(now_us)
    }

    fn set_policy(&mut self, kind: bm_core::PolicyKind) -> bool {
        self.engine.set_policy_kind(kind);
        true
    }

    fn cancel(&mut self, id: u64, now_us: u64) -> bool {
        !matches!(
            self.engine.cancel_request(RequestId(id), now_us),
            bm_core::CancelOutcome::Unknown
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{simulate, SimOptions};
    use bm_model::{LstmLm, LstmLmConfig, RequestInput};
    use bm_workload::PoissonArrivals;

    /// Small weights, paper-scale pricing.
    fn paper_lstm() -> Arc<LstmLm> {
        Arc::new(LstmLm::new(LstmLmConfig {
            max_batch: 512,
            ..Default::default()
        }))
    }

    fn fixed_len_arrivals(n: usize, len: usize, rate: f64) -> Vec<(u64, RequestInput)> {
        PoissonArrivals::new(rate, 42)
            .take(n)
            .map(|t| (t, RequestInput::Sequence(vec![1; len])))
            .collect()
    }

    #[test]
    fn low_load_latency_is_near_service_time() {
        // At 100 req/s a length-10 request should see little queueing:
        // ~10 steps x ~210 µs (kernel floor + overhead) ≈ 2 ms.
        let mut srv = CellularServer::paper_scale(paper_lstm());
        let out = simulate(
            &mut srv,
            &fixed_len_arrivals(300, 10, 100.0),
            SimOptions::default(),
        );
        assert!(!out.saturated);
        let s = out.recorder.summary();
        assert!(s.p50_ms > 1.0 && s.p50_ms < 6.0, "p50 {}", s.p50_ms);
    }

    #[test]
    fn batching_sustains_high_load() {
        // 512-way batching at ~800 µs per step over length-24 requests
        // supports >> 1000 req/s on one simulated GPU.
        let mut srv = CellularServer::paper_scale(paper_lstm());
        let out = simulate(
            &mut srv,
            &fixed_len_arrivals(4000, 24, 8000.0),
            SimOptions::default(),
        );
        assert!(!out.saturated, "8k req/s should be sustainable");
        assert!(out.throughput_rps() > 7000.0);
    }

    #[test]
    fn latency_grows_with_load_but_stays_bounded_below_peak() {
        let mut low = CellularServer::paper_scale(paper_lstm());
        let out_low = simulate(
            &mut low,
            &fixed_len_arrivals(1000, 24, 1000.0),
            SimOptions::default(),
        );
        let mut high = CellularServer::paper_scale(paper_lstm());
        let out_high = simulate(
            &mut high,
            &fixed_len_arrivals(4000, 24, 10_000.0),
            SimOptions::default(),
        );
        let (l, h) = (
            out_low.recorder.summary().p90_ms,
            out_high.recorder.summary().p90_ms,
        );
        assert!(h > l, "latency should grow with load ({l} -> {h})");
        assert!(h < 100.0, "but remain bounded below saturation ({h})");
    }

    #[test]
    fn multi_worker_scales_throughput() {
        let rate = 16_000.0;
        let mut one = CellularServer::paper_scale(paper_lstm());
        let out1 = simulate(
            &mut one,
            &fixed_len_arrivals(4000, 24, rate),
            SimOptions {
                workers: 1,
                max_sim_us: 30_000_000,
                ..Default::default()
            },
        );
        let mut four = CellularServer::paper_scale(paper_lstm());
        let out4 = simulate(
            &mut four,
            &fixed_len_arrivals(4000, 24, rate),
            SimOptions {
                workers: 4,
                max_sim_us: 30_000_000,
                ..Default::default()
            },
        );
        // One worker saturates at 16k req/s of length-24 LSTM; four keep up.
        assert!(out4.recorder.summary().p90_ms <= out1.recorder.summary().p90_ms);
        assert!(!out4.saturated);
    }

    #[test]
    fn small_scale_pricing_differs_from_paper_scale() {
        let mut small = CellularServer::with_defaults(paper_lstm());
        let mut paper = CellularServer::paper_scale(paper_lstm());
        let arr = fixed_len_arrivals(500, 24, 20_000.0);
        let out_small = simulate(&mut small, &arr, SimOptions::default());
        let out_paper = simulate(&mut paper, &arr, SimOptions::default());
        // Tiny cells are cheap: the small-profile run should show lower
        // latency at this load.
        assert!(out_small.recorder.summary().p90_ms <= out_paper.recorder.summary().p90_ms);
    }
}
