//! Discrete-event simulation of RNN serving.
//!
//! The serving experiments (Figures 7–9, 11, 13–15) measure
//! latency/throughput under open-loop Poisson load on V100 GPUs. Without
//! the hardware, we replay the same experiments in virtual time: workers
//! are modelled as serial executors whose task durations come from the
//! calibrated [`bm_device::GpuCostModel`], and the *same*
//! `bm_core::CellularEngine` that the real threaded runtime drives makes
//! every scheduling decision.
//!
//! - [`Server`] — the protocol a simulated serving system implements
//!   (cellular batching here; the graph-batching baselines in
//!   `bm-baseline`);
//! - [`CellularServer`] — BatchMaker under simulation;
//! - [`simulate`] — the open-loop driver: injects Poisson arrivals,
//!   tracks worker busy/idle state, and collects per-request timings.

mod cellular;
mod driver;
mod event;
mod server;

pub use cellular::CellularServer;
pub use driver::{simulate, simulate_requests, SimOptions, SimOutcome};
pub use event::EventQueue;
pub use server::{Server, SimRequest, WorkItem};
