//! The open-loop simulation driver.

use std::sync::Arc;

use bm_core::{Request, ServeConfig};
use bm_metrics::{LatencyRecorder, RequestTiming};
use bm_model::RequestInput;
use bm_telemetry::Telemetry;
use bm_trace::{EventKind, RejectReason, TraceEvent, TraceSink};

use crate::event::EventQueue;
use crate::server::{Server, SimRequest};

/// Options controlling one simulation run.
///
/// The serving knobs shared with the threaded runtime — policy,
/// deadlines, admission cap, pipeline depth, observability sinks — live
/// in the embedded [`ServeConfig`] (`serve`), so a deployment
/// configures them once for simulator and runtime alike; the fluent
/// setters below delegate into it. The remaining fields are
/// simulation-only. (`queue_cap`, `shards` and `tenant_rate` in the
/// serve config have no simulator equivalent and are ignored.)
///
/// Built fluently (`#[non_exhaustive]` forbids out-of-crate literal
/// construction so new knobs can be added compatibly):
///
/// ```
/// use bm_sim::SimOptions;
///
/// let opts = SimOptions::new().workers(4).deadline_us(50_000).warmup(100);
/// assert_eq!(opts.workers, 4);
/// assert_eq!(opts.serve.deadline_us, Some(50_000));
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SimOptions {
    /// Number of simulated GPU workers.
    pub workers: usize,
    /// Stop after this much virtual time even if arrivals remain
    /// (overload guard). `u64::MAX` disables the cap.
    pub max_sim_us: u64,
    /// Warm-up completions excluded from the recorder.
    pub warmup: usize,
    /// Optional per-worker speed factors (1.0 = nominal; 0.5 = a
    /// straggler at half speed). Work-item durations divide by the
    /// factor. Useful for stall/imbalance injection experiments.
    /// `None` means all workers run at nominal speed.
    pub worker_speeds: Option<Vec<f64>>,
    /// Shared serving knobs (see [`ServeConfig`]):
    ///
    /// - `pipeline_depth` — in-flight window per worker; the driver
    ///   keeps asking the server for work until a worker has this many
    ///   queued items. Depth 1 (the simulator default) is the classic
    ///   dispatch-on-idle model used by the paper experiments.
    /// - `deadline_us` — default relative deadline; a request not
    ///   completed by its deadline is cancelled on the server (see
    ///   [`Server::cancel`]) and counted in [`SimOutcome::expired`].
    /// - `max_active` — admission cap; arrivals beyond it are dropped
    ///   before reaching the server, counted in [`SimOutcome::rejected`].
    /// - `policy` — installed via [`Server::set_policy`] at run start;
    ///   `None` leaves the server as constructed.
    /// - `trace` / `telemetry` — driver-level sinks (virtual-time
    ///   stamps). Engine-level events need the sink installed on the
    ///   server too (e.g. [`crate::CellularServer::with_trace`],
    ///   [`crate::CellularServer::with_telemetry`]).
    pub serve: ServeConfig,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            workers: 1,
            max_sim_us: 600_000_000, // 10 virtual minutes.
            warmup: 0,
            worker_speeds: None,
            // The simulator's historical default is the classic
            // dispatch-on-idle model, not the runtime's depth-2 window.
            serve: ServeConfig::new().pipeline_depth(1),
        }
    }
}

impl SimOptions {
    /// Default options: one nominal-speed worker, 10 virtual minutes, no
    /// warm-up trim, no deadline, no admission cap, tracing off.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of simulated workers.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Replaces the embedded [`ServeConfig`] wholesale; call it before
    /// the delegating setters below (they edit it in place).
    pub fn serve_config(mut self, serve: ServeConfig) -> Self {
        self.serve = serve;
        self
    }

    /// Sets the per-worker in-flight window (must be ≥ 1).
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.serve.pipeline_depth = depth;
        self
    }

    /// Sets the virtual-time cap, µs.
    pub fn max_sim_us(mut self, t: u64) -> Self {
        self.max_sim_us = t;
        self
    }

    /// Excludes the first `n` completions from the recorder.
    pub fn warmup(mut self, n: usize) -> Self {
        self.warmup = n;
        self
    }

    /// Sets per-worker speed factors.
    pub fn worker_speeds(mut self, speeds: Vec<f64>) -> Self {
        self.worker_speeds = Some(speeds);
        self
    }

    /// Applies a default relative deadline to every request, µs from
    /// arrival (overridable per request via [`Request::deadline_us`]).
    pub fn deadline_us(mut self, d: u64) -> Self {
        self.serve.deadline_us = Some(d);
        self
    }

    /// Caps concurrently admitted requests.
    pub fn max_active(mut self, cap: usize) -> Self {
        self.serve.max_active = Some(cap);
        self
    }

    /// Installs a batch-formation policy on the server at run start.
    pub fn policy(mut self, kind: bm_core::PolicyKind) -> Self {
        self.serve.policy = Some(kind);
        self
    }

    /// Routes driver-level trace events to `sink`.
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.serve.trace = sink;
        self
    }

    /// Records driver-level metrics into `tel`.
    pub fn telemetry(mut self, tel: Arc<Telemetry>) -> Self {
        self.serve.telemetry = tel;
        self
    }
}

/// The outcome of a simulation run.
#[derive(Debug)]
pub struct SimOutcome {
    /// Per-request timings of completed requests (after warm-up trim).
    pub recorder: LatencyRecorder,
    /// Raw completion records `(request id, arrival, start, completion)`
    /// in completion order, untrimmed.
    pub completions: Vec<(u64, u64, u64, u64)>,
    /// Virtual time at which the run ended, µs.
    pub end_us: u64,
    /// Requests still in the system at the end (nonzero under overload).
    pub unfinished: usize,
    /// Whether the run hit the virtual-time cap before completing all
    /// arrivals — the saturation signal for load sweeps.
    pub saturated: bool,
    /// Requests whose deadline passed before completion.
    pub expired: usize,
    /// Requests dropped by the admission cap before reaching the server.
    pub rejected: usize,
}

impl SimOutcome {
    /// Offered load actually served, requests/second.
    pub fn throughput_rps(&self) -> f64 {
        if self.recorder.is_empty() {
            return 0.0;
        }
        self.recorder.summary().throughput_rps
    }
}

#[derive(Debug)]
enum Event {
    Arrival(usize),
    WorkDone {
        worker: usize,
        item: u64,
    },
    Wake,
    /// Deadline check for one request (index into `arrivals`).
    Expire(usize),
}

/// Per-request lifecycle tracked by the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqStatus {
    NotArrived,
    Admitted,
    Completed,
    Expired,
    Rejected,
}

/// Runs one open-loop simulation: `arrivals` are `(time_us, input)`
/// pairs injected into `server`; workers execute the server's work items
/// serially. Convenience wrapper over [`simulate_requests`] for
/// workloads with uniform (options-level) metadata.
///
/// # Panics
///
/// Panics if `opts.workers` is zero or `arrivals` is empty.
pub fn simulate(
    server: &mut dyn Server,
    arrivals: &[(u64, RequestInput)],
    opts: SimOptions,
) -> SimOutcome {
    let reqs: Vec<(u64, Request)> = arrivals
        .iter()
        .map(|(at, input)| (*at, Request::from(input)))
        .collect();
    simulate_requests(server, &reqs, opts)
}

/// [`simulate`] with full per-request metadata: each arrival is a
/// `(time_us, Request)` pair, so individual requests can carry their
/// own deadline ([`Request::deadline_us`], resolved against the serve
/// config's default) and scheduling priority — the same submission type
/// the threaded runtime and the network protocol accept.
///
/// # Panics
///
/// Panics if `opts.workers` is zero or `arrivals` is empty.
pub fn simulate_requests(
    server: &mut dyn Server,
    arrivals: &[(u64, Request)],
    opts: SimOptions,
) -> SimOutcome {
    assert!(opts.workers > 0, "need at least one worker");
    assert!(opts.serve.pipeline_depth > 0, "pipeline depth must be >= 1");
    assert!(!arrivals.is_empty(), "no arrivals");
    if let Some(kind) = opts.serve.policy {
        assert!(
            server.set_policy(kind),
            "server does not support pluggable scheduling policies"
        );
    }

    let mut events: EventQueue<Event> = EventQueue::new();
    for (idx, (at, _)) in arrivals.iter().enumerate() {
        events.push(*at, Event::Arrival(idx));
    }

    // Driver-level metric handles, resolved once; `None` when telemetry
    // is disabled so the hot path pays a single branch per site.
    let tel = &opts.serve.telemetry;
    let rejected_ctr = tel
        .enabled()
        .then(|| tel.counter_with("bm_requests_rejected_total", &[("reason", "at_capacity")]));
    let expired_ctr = tel
        .enabled()
        .then(|| tel.counter("bm_requests_expired_total"));
    let busy_ctrs = tel.enabled().then(|| {
        (0..opts.workers)
            .map(|w| tel.counter_with("bm_worker_busy_us_total", &[("worker", &w.to_string())]))
            .collect::<Vec<_>>()
    });

    // Per-worker: remaining queued items (busy while nonzero) and the
    // virtual time its current backlog drains (items run serially, so a
    // refilled item starts when the backlog ends, not at `now`).
    let mut queued = vec![0usize; opts.workers];
    let mut busy_until = vec![0u64; opts.workers];
    let mut recorder = LatencyRecorder::new();
    let mut completions = Vec::new();
    let mut status = vec![ReqStatus::NotArrived; arrivals.len()];
    let mut expired = 0usize;
    let mut rejected = 0usize;
    let mut now = 0;
    let mut saturated = false;
    let mut next_wake: Option<u64> = None;

    while let Some((t, ev)) = events.pop() {
        now = t;
        if now > opts.max_sim_us {
            saturated = true;
            break;
        }
        // Process every event at this timestamp before scheduling new
        // work, so simultaneous arrivals can batch together.
        let mut batch_events = vec![ev];
        while events.peek_time() == Some(now) {
            batch_events.push(events.pop().expect("peeked").1);
        }
        for ev in batch_events {
            match ev {
                Event::Arrival(idx) => {
                    let (at, req) = &arrivals[idx];
                    if opts
                        .serve
                        .max_active
                        .is_some_and(|cap| server.pending_requests() >= cap)
                    {
                        status[idx] = ReqStatus::Rejected;
                        rejected += 1;
                        if let Some(c) = &rejected_ctr {
                            c.inc();
                        }
                        if opts.serve.trace.enabled() {
                            opts.serve.trace.record(TraceEvent {
                                ts_us: now,
                                kind: EventKind::RequestRejected {
                                    request: idx as u64,
                                    reason: RejectReason::AtCapacity,
                                },
                            });
                        }
                        continue;
                    }
                    status[idx] = ReqStatus::Admitted;
                    let deadline_us = req
                        .effective_deadline_us(opts.serve.deadline_us)
                        .map(|d| at.saturating_add(d));
                    server.on_arrival(
                        SimRequest {
                            id: idx as u64,
                            input: req.input.clone(),
                            arrival_us: *at,
                            deadline_us,
                            priority: req.priority,
                        },
                        now,
                    );
                    if let Some(d) = deadline_us {
                        events.push(d, Event::Expire(idx));
                    }
                }
                Event::WorkDone { worker, item } => {
                    queued[worker] -= 1;
                    server.on_work_done(worker, item, now);
                }
                Event::Wake => {
                    next_wake = None;
                }
                Event::Expire(idx) => {
                    if status[idx] == ReqStatus::Admitted {
                        status[idx] = ReqStatus::Expired;
                        expired += 1;
                        if let Some(c) = &expired_ctr {
                            c.inc();
                        }
                        if opts.serve.trace.enabled() {
                            opts.serve.trace.record(TraceEvent {
                                ts_us: now,
                                kind: EventKind::RequestExpired {
                                    request: idx as u64,
                                },
                            });
                        }
                        // Best-effort shed: a server without cancel
                        // support keeps the work but the request is
                        // still accounted as expired (its eventual
                        // completion is discarded below).
                        let _ = server.cancel(idx as u64, now);
                    }
                }
            }
        }
        // Refill workers whose in-flight window has room. At depth 1
        // this is the classic "refill when idle"; deeper windows model
        // the threaded runtime's pipelined dispatch.
        for (w, q) in queued.iter_mut().enumerate() {
            let speed = opts
                .worker_speeds
                .as_ref()
                .map_or(1.0, |s| s.get(w).copied().unwrap_or(1.0));
            assert!(speed > 0.0, "worker speed must be positive");
            let mut at = now.max(busy_until[w]);
            while *q < opts.serve.pipeline_depth {
                let items = server.next_work(w, now);
                if items.is_empty() {
                    break;
                }
                for it in items {
                    server.on_work_started(it.id, at);
                    let scaled = (it.duration_us as f64 / speed).round() as u64;
                    if let Some(cs) = &busy_ctrs {
                        cs[w].add(scaled);
                    }
                    at += scaled;
                    *q += 1;
                    events.push(
                        at,
                        Event::WorkDone {
                            worker: w,
                            item: it.id,
                        },
                    );
                }
                busy_until[w] = at;
            }
        }
        // Timeout-based servers may need a poll with no event pending.
        if let Some(t) = server.next_wakeup(now) {
            if t > now && next_wake.is_none_or(|w| t < w) {
                events.push(t, Event::Wake);
                next_wake = Some(t);
            }
        }
        for c in server.drain_completions() {
            let (id, arrival, start, completion) = c;
            let idx = id as usize;
            if status.get(idx) == Some(&ReqStatus::Expired) {
                // A server that could not shed the request finished it
                // after its deadline: useless work, not goodput.
                continue;
            }
            if let Some(s) = status.get_mut(idx) {
                *s = ReqStatus::Completed;
            }
            recorder.record(RequestTiming {
                arrival_us: arrival,
                start_us: start,
                completion_us: completion,
            });
            completions.push(c);
        }
    }

    let unfinished = server.pending_requests();
    SimOutcome {
        recorder: recorder.trimmed(opts.warmup, 0),
        completions,
        end_us: now,
        unfinished,
        saturated: saturated || unfinished > 0,
        expired,
        rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::WorkItem;
    use std::collections::VecDeque;

    /// A trivial server: each request is one work item of fixed duration;
    /// strict FIFO, no batching.
    struct FifoServer {
        duration: u64,
        queue: VecDeque<(u64, u64)>,           // (request id, arrival)
        running: Vec<Option<(u64, u64, u64)>>, // per item id: (req, arrival, start)
        items: std::collections::HashMap<u64, (u64, u64, u64)>,
        next_item: u64,
        done: Vec<(u64, u64, u64, u64)>,
        pending: usize,
    }

    impl FifoServer {
        fn new(duration: u64) -> Self {
            FifoServer {
                duration,
                queue: VecDeque::new(),
                running: Vec::new(),
                items: Default::default(),
                next_item: 0,
                done: Vec::new(),
                pending: 0,
            }
        }
    }

    impl Server for FifoServer {
        fn on_arrival(&mut self, req: SimRequest, _now: u64) {
            self.queue.push_back((req.id, req.arrival_us));
            self.pending += 1;
        }
        fn next_work(&mut self, _worker: usize, _now: u64) -> Vec<WorkItem> {
            let Some((req, arrival)) = self.queue.pop_front() else {
                return vec![];
            };
            let id = self.next_item;
            self.next_item += 1;
            self.items.insert(id, (req, arrival, 0));
            vec![WorkItem {
                id,
                duration_us: self.duration,
            }]
        }
        fn on_work_started(&mut self, item: u64, now: u64) {
            if let Some(e) = self.items.get_mut(&item) {
                e.2 = now;
            }
            let _ = &self.running;
        }
        fn on_work_done(&mut self, _worker: usize, item: u64, now: u64) {
            let (req, arrival, start) = self.items.remove(&item).expect("known item");
            self.done.push((req, arrival, start, now));
            self.pending -= 1;
        }
        fn drain_completions(&mut self) -> Vec<(u64, u64, u64, u64)> {
            std::mem::take(&mut self.done)
        }
        fn pending_requests(&self) -> usize {
            self.pending
        }
    }

    fn arrivals(n: usize, gap: u64) -> Vec<(u64, RequestInput)> {
        (0..n)
            .map(|i| (i as u64 * gap, RequestInput::Sequence(vec![1])))
            .collect()
    }

    #[test]
    fn underloaded_fifo_has_no_queueing() {
        // Service 100 µs, arrivals 200 µs apart: every request starts
        // immediately.
        let mut s = FifoServer::new(100);
        let out = simulate(&mut s, &arrivals(50, 200), SimOptions::default());
        assert_eq!(out.recorder.len(), 50);
        assert!(!out.saturated);
        let summary = out.recorder.summary();
        assert!((summary.p99_ms - 0.1).abs() < 1e-9, "{}", summary.p99_ms);
        assert_eq!(out.unfinished, 0);
    }

    #[test]
    fn overloaded_fifo_queues_linearly() {
        // Service 100 µs, arrivals 50 µs apart on one worker: latency of
        // the i-th request grows linearly.
        let mut s = FifoServer::new(100);
        let out = simulate(&mut s, &arrivals(100, 50), SimOptions::default());
        let lat = out.recorder.latency_cdf();
        assert!(lat.max() > 10.0 * lat.min(), "no queue growth observed");
    }

    #[test]
    fn two_workers_double_fifo_throughput() {
        let n = 2000;
        let mut s1 = FifoServer::new(100);
        let out1 = simulate(&mut s1, &arrivals(n, 100), SimOptions::default());
        let mut s2 = FifoServer::new(100);
        let out2 = simulate(
            &mut s2,
            &arrivals(n, 50),
            SimOptions {
                workers: 2,
                ..Default::default()
            },
        );
        // Both runs keep up with their offered load.
        assert!(!out1.saturated && !out2.saturated);
        assert!(out2.throughput_rps() > 1.8 * out1.throughput_rps());
    }

    #[test]
    fn deeper_pipeline_preserves_serial_fifo_schedule() {
        // Items on one worker run serially, so a depth-2 window must not
        // overlap them: the completion schedule is identical to depth 1.
        let mut s1 = FifoServer::new(100);
        let out1 = simulate(&mut s1, &arrivals(200, 50), SimOptions::default());
        let mut s2 = FifoServer::new(100);
        let out2 = simulate(
            &mut s2,
            &arrivals(200, 50),
            SimOptions::default().pipeline_depth(2),
        );
        assert_eq!(out1.completions, out2.completions);
    }

    #[test]
    fn time_cap_marks_saturation() {
        let mut s = FifoServer::new(10_000);
        let out = simulate(
            &mut s,
            &arrivals(1000, 10),
            SimOptions {
                max_sim_us: 50_000,
                ..Default::default()
            },
        );
        assert!(out.saturated);
        assert!(out.unfinished > 0);
    }
}
