//! The simulated-server protocol.

use bm_core::PolicyKind;
use bm_model::RequestInput;

/// One arriving request as seen by a simulated server.
#[derive(Debug, Clone)]
pub struct SimRequest {
    /// Driver-assigned id, unique per run.
    pub id: u64,
    /// The request payload (only its *shape* matters under simulation).
    pub input: RequestInput,
    /// Arrival time, µs.
    pub arrival_us: u64,
    /// Absolute completion deadline, µs (the request's own deadline or
    /// `SimOptions`' default, applied to the arrival time);
    /// deadline-aware schedulers may consult it, and the driver expires
    /// the request past it.
    pub deadline_us: Option<u64>,
    /// Scheduling priority (see `bm_core::Request::priority`):
    /// deadline-aware batch formation prefers higher priorities among
    /// equal deadlines.
    pub priority: u8,
}

/// A unit of device occupancy produced by a server: one batched kernel
/// sequence (cellular task, padded bucket graph, merged dynamic graph…).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkItem {
    /// Server-assigned id, echoed back in `on_work_done`.
    pub id: u64,
    /// Device time the item occupies, µs.
    pub duration_us: u64,
}

/// A simulated serving system.
///
/// The driver guarantees: `on_arrival` is called in arrival order;
/// `next_work` is called whenever a worker has drained its queue;
/// returned items execute serially on that worker in order, with
/// `on_work_started`/`on_work_done` callbacks at their virtual start and
/// finish times.
pub trait Server {
    /// Admits a request.
    fn on_arrival(&mut self, req: SimRequest, now_us: u64);

    /// Produces the next batch of work for an idle worker (empty if
    /// nothing schedulable for it).
    fn next_work(&mut self, worker: usize, now_us: u64) -> Vec<WorkItem>;

    /// A work item began executing.
    fn on_work_started(&mut self, item: u64, now_us: u64);

    /// A work item finished executing.
    fn on_work_done(&mut self, worker: usize, item: u64, now_us: u64);

    /// Drains `(request id, arrival, start, completion)` tuples of
    /// requests that completed since the last call.
    fn drain_completions(&mut self) -> Vec<(u64, u64, u64, u64)>;

    /// Number of requests admitted but not yet completed.
    fn pending_requests(&self) -> usize;

    /// Earliest future time at which the server wants `next_work`
    /// re-polled even if no arrival or completion occurs — used by
    /// timeout-based batch accumulation. Defaults to never.
    fn next_wakeup(&self, now_us: u64) -> Option<u64> {
        let _ = now_us;
        None
    }

    /// Installs a batch-formation policy ([`bm_core::policy`]).
    /// Returns `true` if the server honours it; servers without a
    /// pluggable scheduler return `false` (the default) and the driver
    /// surfaces the mismatch to the caller.
    fn set_policy(&mut self, kind: PolicyKind) -> bool {
        let _ = kind;
        false
    }

    /// Cancels an admitted request (deadline expiry): unscheduled work
    /// for it should be dropped; in-flight device work may drain.
    /// Returns `true` if the server shed the request — it will then no
    /// longer emit a completion tuple for it. Servers without
    /// load-shedding support return `false` (the default); the driver
    /// still accounts the request as expired but its work runs to
    /// completion and occupies the device.
    fn cancel(&mut self, id: u64, now_us: u64) -> bool {
        let _ = (id, now_us);
        false
    }
}
