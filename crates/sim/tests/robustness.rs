//! Simulator robustness: determinism, straggler workers, overload
//! behaviour and wake-up handling.

use std::sync::Arc;

use bm_model::{LstmLm, LstmLmConfig, RequestInput};
use bm_sim::{simulate, CellularServer, SimOptions};
use bm_workload::PoissonArrivals;

fn model() -> Arc<LstmLm> {
    Arc::new(LstmLm::new(LstmLmConfig {
        max_batch: 512,
        ..Default::default()
    }))
}

fn arrivals(n: usize, rate: f64, seed: u64) -> Vec<(u64, RequestInput)> {
    PoissonArrivals::new(rate, seed)
        .take(n)
        .map(|t| (t, RequestInput::Sequence(vec![1; 12])))
        .collect()
}

#[test]
fn identical_runs_are_bit_identical() {
    // The whole stack — engine, cost model, driver — is deterministic:
    // same inputs, same outcome, timestamp for timestamp.
    let run = || {
        let mut srv = CellularServer::paper_scale(model());
        simulate(&mut srv, &arrivals(800, 3_000.0, 7), SimOptions::default())
    };
    let a = run();
    let b = run();
    assert_eq!(a.completions, b.completions);
    assert_eq!(a.end_us, b.end_us);
}

#[test]
fn different_seeds_differ() {
    let mut s1 = CellularServer::paper_scale(model());
    let a = simulate(&mut s1, &arrivals(500, 3_000.0, 1), SimOptions::default());
    let mut s2 = CellularServer::paper_scale(model());
    let b = simulate(&mut s2, &arrivals(500, 3_000.0, 2), SimOptions::default());
    assert_ne!(a.completions, b.completions);
}

#[test]
fn straggler_worker_degrades_gracefully() {
    // Two workers, one at half speed: the system still completes all
    // requests, with throughput between the 1-worker and 2-worker
    // nominal configurations.
    let arr = arrivals(2_000, 20_000.0, 5);
    let run = |workers: usize, speeds: Option<Vec<f64>>| {
        let mut srv = CellularServer::paper_scale(model());
        simulate(&mut srv, &arr, {
            let mut o = SimOptions::new().workers(workers).max_sim_us(20_000_000);
            o.worker_speeds = speeds;
            o
        })
    };
    let one = run(1, None);
    let two = run(2, None);
    let straggler = run(2, Some(vec![1.0, 0.5]));
    assert_eq!(straggler.unfinished, 0, "straggler run must drain");
    let (t1, t2, ts) = (
        one.recorder.summary().p90_ms,
        two.recorder.summary().p90_ms,
        straggler.recorder.summary().p90_ms,
    );
    // A straggler can be worse than a single fast worker at this load
    // (splitting the work halves the batch sizes, and half of the tasks
    // run at half speed), but it must stay within a small factor of the
    // nominal configurations — the scheduler keeps routing work rather
    // than wedging on the slow device.
    assert!(ts >= t2 * 0.8, "straggler p90 {ts} vs 2-worker {t2}");
    assert!(
        ts <= 2.5 * t1.max(t2),
        "straggler p90 {ts} vs nominal {t1}/{t2}"
    );
}

#[test]
fn zero_capacity_overload_is_flagged() {
    // 100x the sustainable rate with a tight time cap: the run must be
    // marked saturated and report unfinished requests.
    let mut srv = CellularServer::paper_scale(model());
    let out = simulate(
        &mut srv,
        &arrivals(50_000, 2_000_000.0, 3),
        SimOptions::new().max_sim_us(200_000),
    );
    assert!(out.saturated);
    assert!(out.unfinished > 0);
}

#[test]
fn all_completions_have_sane_timestamps() {
    let mut srv = CellularServer::paper_scale(model());
    let arr = arrivals(1_000, 5_000.0, 11);
    let out = simulate(&mut srv, &arr, SimOptions::default());
    assert_eq!(out.completions.len(), arr.len());
    for &(id, arrival, start, completion) in &out.completions {
        assert!(arrival <= start && start <= completion, "request {id}");
        assert_eq!(arr[id as usize].0, arrival, "arrival stamp preserved");
    }
}

#[test]
fn sim_options_builder_preserves_defaults() {
    let opts = SimOptions::new();
    let defaults = SimOptions::default();
    assert_eq!(opts.workers, defaults.workers);
    assert_eq!(opts.max_sim_us, defaults.max_sim_us);
    assert_eq!(opts.warmup, defaults.warmup);
    assert_eq!(opts.serve.deadline_us, None);
    assert_eq!(opts.serve.max_active, None);
    assert_eq!(
        opts.serve.pipeline_depth, 1,
        "simulator default is dispatch-on-idle"
    );
    assert!(opts.worker_speeds.is_none());
    assert!(
        !opts.serve.trace.enabled(),
        "default sink must be the no-op"
    );

    let opts = SimOptions::new()
        .workers(4)
        .max_sim_us(1_000)
        .warmup(10)
        .deadline_us(99)
        .max_active(7);
    assert_eq!((opts.workers, opts.max_sim_us, opts.warmup), (4, 1_000, 10));
    assert_eq!(opts.serve.deadline_us, Some(99));
    assert_eq!(opts.serve.max_active, Some(7));
}
