//! Depth-level histograms of cell graphs.
//!
//! Dynamic graph batching (TensorFlow Fold, DyNet) merges a set of
//! graphs by fusing equivalent operators at the same depth: the merged
//! graph executes level by level, each level running one batched kernel
//! per cell type with batch size equal to the number of fused nodes.

use std::collections::BTreeMap;

use bm_cell::CellTypeId;
use bm_model::CellGraph;

/// Returns, per depth level (1-based from the sources), the node count
/// of each cell type: `levels[d][ct] = count`.
pub fn level_histogram(graph: &CellGraph) -> Vec<BTreeMap<CellTypeId, usize>> {
    let mut depth = vec![0usize; graph.len()];
    let mut levels: Vec<BTreeMap<CellTypeId, usize>> = Vec::new();
    for (id, node) in graph.iter() {
        let d = node
            .deps
            .iter()
            .map(|x| depth[x.index()] + 1)
            .max()
            .unwrap_or(1);
        depth[id.index()] = d;
        while levels.len() < d {
            levels.push(BTreeMap::new());
        }
        *levels[d - 1].entry(node.cell_type).or_insert(0) += 1;
    }
    levels
}

/// Merges per-graph level histograms by summing counts level-wise —
/// exactly what graph merging does to a set of requests.
pub fn merge_histograms(
    hists: &[Vec<BTreeMap<CellTypeId, usize>>],
) -> Vec<BTreeMap<CellTypeId, usize>> {
    let mut out: Vec<BTreeMap<CellTypeId, usize>> = Vec::new();
    for h in hists {
        for (d, level) in h.iter().enumerate() {
            while out.len() <= d {
                out.push(BTreeMap::new());
            }
            for (&ct, &n) in level {
                *out[d].entry(ct).or_insert(0) += n;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_model::{LstmLm, Model, RequestInput, TreeLstm, TreeShape};

    #[test]
    fn chain_levels_are_one_per_step() {
        let m = LstmLm::small();
        let g = m.unfold(&RequestInput::Sequence(vec![1, 2, 3]));
        let lv = level_histogram(&g);
        assert_eq!(lv.len(), 3);
        for level in &lv {
            assert_eq!(level.values().sum::<usize>(), 1);
        }
    }

    #[test]
    fn complete_tree_levels_halve() {
        let m = TreeLstm::small();
        let g = m.unfold(&RequestInput::Tree(TreeShape::complete(8, 100)));
        let lv = level_histogram(&g);
        assert_eq!(lv.len(), 4);
        assert_eq!(lv[0][&m.leaf_type()], 8);
        assert_eq!(lv[1][&m.internal_type()], 4);
        assert_eq!(lv[2][&m.internal_type()], 2);
        assert_eq!(lv[3][&m.internal_type()], 1);
    }

    #[test]
    fn merging_sums_counts() {
        let m = LstmLm::small();
        let g1 = m.unfold(&RequestInput::Sequence(vec![1, 2]));
        let g2 = m.unfold(&RequestInput::Sequence(vec![1, 2, 3, 4]));
        let merged = merge_histograms(&[level_histogram(&g1), level_histogram(&g2)]);
        assert_eq!(merged.len(), 4);
        assert_eq!(merged[0][&m.cell_type()], 2);
        assert_eq!(merged[1][&m.cell_type()], 2);
        assert_eq!(merged[2][&m.cell_type()], 1);
        assert_eq!(merged[3][&m.cell_type()], 1);
    }
}
