//! Graph-batching baselines (paper §2.3, §7.1).
//!
//! The paper compares BatchMaker against two families of serving
//! systems, both of which batch at the granularity of whole dataflow
//! graphs:
//!
//! - **Padding + bucketing** (MXNet, TensorFlow): requests of similar
//!   length share a bucket; a batch pads everything to the bucket's
//!   upper bound and the whole batch completes together. Buckets are
//!   served round-robin, and a non-full batch starts whenever a device
//!   is idle (§7.1 "batching configuration"). → [`PaddingServer`]
//! - **Dynamic graph merging** (TensorFlow Fold, DyNet): a set of
//!   pending requests' graphs are merged by depth level and executed as
//!   one conglomerate graph. Fold pays a large per-node graph
//!   construction cost (overlapped with execution, as the authors
//!   optimized); DyNet merges cheaply but batches at single-operator
//!   granularity, paying extra kernel launches per level. →
//!   [`DynGraphServer`] with [`DynGraphConfig::fold`] /
//!   [`DynGraphConfig::dynet`] presets.
//! - **Ideal** (Figure 15): a hard-coded static graph for a fixed input
//!   shape executing each cell at the full batch size with zero merge
//!   overhead. → [`IdealServer`]
//!
//! All baselines implement `bm_sim::Server` and run under the same
//! driver and cost model as the cellular server, so the comparisons
//! isolate the *batching policy*.

mod dyngraph;
mod ideal;
mod levels;
mod padding;

pub use dyngraph::{DynGraphConfig, DynGraphServer};
pub use ideal::IdealServer;
pub use levels::level_histogram;
pub use padding::{PadKind, PaddingConfig, PaddingServer};
