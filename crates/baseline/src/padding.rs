//! The padding + bucketing baseline (MXNet / TensorFlow, §2.3 and §7.1).
//!
//! Requests are assigned to buckets by length; a batch pads every
//! request to the bucket's upper bound, executes the whole padded
//! graph, and returns all requests together. Buckets are scheduled
//! round-robin, and a non-full bucket batch starts as soon as a device
//! is idle and it is the bucket's turn (the paper found this beats any
//! timeout configuration).

use std::collections::{HashMap, VecDeque};

use bm_cell::CellTypeId;
use bm_device::{CostProfile, GpuCostModel};
use bm_model::RequestInput;
use bm_sim::{Server, SimRequest, WorkItem};

/// Which chain application the server pads for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PadKind {
    /// Single-cell-type chain (the LSTM application).
    Lstm {
        /// The chain's cell type.
        cell: CellTypeId,
    },
    /// Encoder/decoder chains (the Seq2Seq application).
    Seq2Seq {
        /// Encoder cell type.
        encoder: CellTypeId,
        /// Decoder cell type.
        decoder: CellTypeId,
    },
}

/// Configuration of a [`PaddingServer`].
#[derive(Debug, Clone, Copy)]
pub struct PaddingConfig {
    /// Bucket width in tokens (10 is the paper's default; Figure 8
    /// sweeps 1..40).
    pub bucket_width: usize,
    /// Longest supported sequence (330 for the WMT-15 sample).
    pub max_len: usize,
    /// Maximum batch size (512 for LSTM, 256 for Seq2Seq in §7).
    pub max_batch: usize,
    /// The application being padded.
    pub kind: PadKind,
    /// Optional batch-accumulation timeout: a non-full bucket is not
    /// scheduled until its oldest request has waited this long. The
    /// paper evaluated this strategy and found that starting a smaller
    /// batch whenever a device is idle "achieves lower latency than any
    /// configuration of the timeout-based strategy" (§7.1) — the
    /// `ablation` experiment reproduces that comparison. `None` (the
    /// default behaviour) disables the timeout.
    pub accumulation_timeout_us: Option<u64>,
}

impl PaddingConfig {
    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.max_len.div_ceil(self.bucket_width)
    }

    /// The bucket index of a request with the given length.
    fn bucket_of(&self, len: usize) -> usize {
        ((len.max(1) - 1) / self.bucket_width).min(self.num_buckets() - 1)
    }

    /// The padded length of a bucket (its inclusive upper bound); the
    /// worst case a request admitted to `bucket` can be padded to.
    pub fn padded_len(&self, bucket: usize) -> usize {
        ((bucket + 1) * self.bucket_width).min(self.max_len)
    }
}

struct Pending {
    id: u64,
    arrival_us: u64,
    src_len: usize,
    dec_len: usize,
}

struct RunningBatch {
    requests: Vec<Pending>,
    started_us: u64,
}

/// The padding/bucketing baseline server.
pub struct PaddingServer {
    cfg: PaddingConfig,
    cost: GpuCostModel,
    profile: CostProfile,
    buckets: Vec<VecDeque<Pending>>,
    rr: usize,
    running: HashMap<u64, RunningBatch>,
    next_item: u64,
    completions: Vec<(u64, u64, u64, u64)>,
    pending: usize,
}

impl PaddingServer {
    /// Creates the server.
    pub fn new(cfg: PaddingConfig, cost: GpuCostModel, profile: CostProfile) -> Self {
        let buckets = (0..cfg.num_buckets()).map(|_| VecDeque::new()).collect();
        PaddingServer {
            cfg,
            cost,
            profile,
            buckets,
            rr: 0,
            running: HashMap::new(),
            next_item: 0,
            completions: Vec::new(),
            pending: 0,
        }
    }

    /// Execution time of one padded batch, µs.
    ///
    /// Sequences pad to the *bucket bound*: bucketing materializes one
    /// static unrolled graph per bucket (§2.3), so every batch admitted
    /// to a bucket executes the bucket's full step count no matter how
    /// short its members are. This is the compute waste that makes wide
    /// buckets lose the Figure 8 trade-off. Fixed-length workloads whose
    /// length is a bucket bound (e.g. length 60 with width 10) still pad
    /// nothing and reach the zero-padding theoretical maximum (§7.3).
    fn batch_duration_us(&self, padded: usize, batch: usize, dec_pad: usize) -> f64 {
        match self.cfg.kind {
            PadKind::Lstm { cell } => {
                let step = self
                    .cost
                    .task_cost_from_flops(self.profile.flops(cell, batch), 0, 0);
                // One graph launch: per-step kernels back to back, one
                // scheduling overhead for the whole materialized graph.
                padded as f64 * step.kernel_us + self.cost.sched_overhead_us
            }
            PadKind::Seq2Seq { encoder, decoder } => {
                let enc = self
                    .cost
                    .kernel_time_from_flops(self.profile.flops(encoder, batch));
                let dec = self
                    .cost
                    .kernel_time_from_flops(self.profile.flops(decoder, batch));
                padded as f64 * enc + dec_pad as f64 * dec + self.cost.sched_overhead_us
            }
        }
    }
}

impl Server for PaddingServer {
    fn on_arrival(&mut self, req: SimRequest, _now_us: u64) {
        let (src_len, dec_len) = match &req.input {
            RequestInput::Sequence(s) => (s.len(), 0),
            RequestInput::Pair { src, decode_len } => (src.len(), *decode_len),
            RequestInput::Tree(_) => {
                panic!("padding cannot batch tree-structured inputs (§2.3)")
            }
        };
        // Seq2Seq buckets on the longer of the two chains so padding
        // covers both.
        let bucket = self.cfg.bucket_of(src_len.max(dec_len));
        self.buckets[bucket].push_back(Pending {
            id: req.id,
            arrival_us: req.arrival_us,
            src_len,
            dec_len,
        });
        self.pending += 1;
    }

    fn next_work(&mut self, _worker: usize, now_us: u64) -> Vec<WorkItem> {
        let nb = self.buckets.len();
        // Round-robin scan for the next non-empty (and, with a timeout
        // configured, ripe) bucket.
        for step in 1..=nb {
            let b = (self.rr + step) % nb;
            if self.buckets[b].is_empty() {
                continue;
            }
            if let Some(timeout) = self.cfg.accumulation_timeout_us {
                let full = self.buckets[b].len() >= self.cfg.max_batch;
                let oldest = self.buckets[b].front().expect("nonempty").arrival_us;
                if !full && now_us < oldest.saturating_add(timeout) {
                    continue;
                }
            }
            self.rr = b;
            let take = self.buckets[b].len().min(self.cfg.max_batch);
            let requests: Vec<Pending> = self.buckets[b].drain(..take).collect();
            // Pad to the bucket's bound: the bucket's pre-compiled
            // unrolled graph runs its full step count regardless of the
            // batch's actual lengths.
            let padded = self.cfg.padded_len(b);
            let dec_pad = match self.cfg.kind {
                PadKind::Lstm { .. } => 0,
                PadKind::Seq2Seq { .. } => padded,
            };
            let duration = self.batch_duration_us(padded, requests.len(), dec_pad);
            let id = self.next_item;
            self.next_item += 1;
            self.running.insert(
                id,
                RunningBatch {
                    requests,
                    started_us: 0,
                },
            );
            return vec![WorkItem {
                id,
                duration_us: duration.round() as u64,
            }];
        }
        Vec::new()
    }

    fn on_work_started(&mut self, item: u64, now_us: u64) {
        if let Some(b) = self.running.get_mut(&item) {
            b.started_us = now_us;
        }
    }

    fn on_work_done(&mut self, _worker: usize, item: u64, now_us: u64) {
        let batch = self.running.remove(&item).expect("known batch");
        for r in &batch.requests {
            // All requests in a padded batch complete together (§2.3).
            self.completions
                .push((r.id, r.arrival_us, batch.started_us, now_us));
            let _ = (r.src_len, r.dec_len);
        }
        self.pending -= batch.requests.len();
    }

    fn drain_completions(&mut self) -> Vec<(u64, u64, u64, u64)> {
        std::mem::take(&mut self.completions)
    }

    fn pending_requests(&self) -> usize {
        self.pending
    }

    fn next_wakeup(&self, now_us: u64) -> Option<u64> {
        let timeout = self.cfg.accumulation_timeout_us?;
        self.buckets
            .iter()
            .filter_map(|b| b.front())
            .map(|p| p.arrival_us.saturating_add(timeout).max(now_us + 1))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_model::{LstmLm, Model, Seq2Seq};
    use bm_sim::{simulate, SimOptions};
    use bm_workload::PoissonArrivals;

    fn lstm_server(width: usize) -> PaddingServer {
        let m = LstmLm::small();
        let profile = CostProfile::paper_scale(m.registry(), 1024, 30_000);
        PaddingServer::new(
            PaddingConfig {
                bucket_width: width,
                max_len: 330,
                max_batch: 512,
                kind: PadKind::Lstm {
                    cell: m.cell_type(),
                },
                accumulation_timeout_us: None,
            },
            GpuCostModel::v100(),
            profile,
        )
    }

    fn arrivals(n: usize, lens: &[usize], rate: f64) -> Vec<(u64, RequestInput)> {
        PoissonArrivals::new(rate, 9)
            .take(n)
            .enumerate()
            .map(|(i, t)| (t, RequestInput::Sequence(vec![1; lens[i % lens.len()]])))
            .collect()
    }

    #[test]
    fn bucket_assignment_and_padding() {
        let cfg = PaddingConfig {
            bucket_width: 10,
            max_len: 330,
            max_batch: 512,
            kind: PadKind::Lstm {
                cell: CellTypeId(0),
            },
            accumulation_timeout_us: None,
        };
        assert_eq!(cfg.num_buckets(), 33);
        assert_eq!(cfg.bucket_of(1), 0);
        assert_eq!(cfg.bucket_of(10), 0);
        assert_eq!(cfg.bucket_of(11), 1);
        assert_eq!(cfg.bucket_of(330), 32);
        assert_eq!(cfg.padded_len(0), 10);
        assert_eq!(cfg.padded_len(32), 330);
    }

    #[test]
    fn batch_completes_together() {
        // A blocker keeps the device busy while two same-bucket requests
        // queue; they then form one padded batch and complete together.
        let mut srv = lstm_server(10);
        let arr = vec![
            (0, RequestInput::Sequence(vec![1; 100])), // blocker
            (1, RequestInput::Sequence(vec![1; 2])),
            (2, RequestInput::Sequence(vec![1; 9])),
        ];
        let out = simulate(&mut srv, &arr, SimOptions::default());
        let mut t = out.recorder.timings().to_vec();
        t.sort_by_key(|x| x.arrival_us);
        assert_eq!(t.len(), 3);
        assert_eq!(t[1].completion_us, t[2].completion_us);
        assert_eq!(t[1].start_us, t[2].start_us);
    }

    #[test]
    fn different_buckets_serialize_round_robin() {
        // Requests in two buckets on one device: the second bucket waits
        // for the first batch to finish.
        let mut srv = lstm_server(10);
        let arr = vec![
            (0, RequestInput::Sequence(vec![1; 5])),
            (1, RequestInput::Sequence(vec![1; 50])),
        ];
        let out = simulate(&mut srv, &arr, SimOptions::default());
        let mut t = out.recorder.timings().to_vec();
        t.sort_by_key(|x| x.completion_us);
        assert!(t[1].start_us >= t[0].completion_us);
    }

    #[test]
    fn sustains_moderate_lstm_load() {
        let mut srv = lstm_server(10);
        let out = simulate(
            &mut srv,
            &arrivals(3000, &[10, 24, 40], 4000.0),
            SimOptions::default(),
        );
        assert!(!out.saturated, "4k req/s should be sustainable");
    }

    #[test]
    fn coarse_buckets_waste_more_compute() {
        // Same overloaded workload, widths 10 vs 40: wide buckets mix
        // short and long sequences into one batch, so every short
        // request pays for the batch max and the measured capacity
        // drops.
        let arr = arrivals(8000, &[3, 12, 24, 37, 55], 60_000.0);
        let opts = SimOptions::new().max_sim_us(3_000_000);
        let mut narrow = lstm_server(10);
        let out_n = simulate(&mut narrow, &arr, opts.clone());
        let mut wide = lstm_server(40);
        let out_w = simulate(&mut wide, &arr, opts);
        let cap_n = out_n.recorder.summary().throughput_rps;
        let cap_w = out_w.recorder.summary().throughput_rps;
        assert!(
            cap_n > cap_w,
            "narrow capacity {cap_n} should beat wide {cap_w}"
        );
    }

    #[test]
    fn seq2seq_padding_includes_decoder() {
        let m = Seq2Seq::small();
        let profile = CostProfile::paper_scale(m.registry(), 1024, 30_000);
        let mut srv = PaddingServer::new(
            PaddingConfig {
                bucket_width: 10,
                max_len: 330,
                max_batch: 256,
                kind: PadKind::Seq2Seq {
                    encoder: m.encoder_type(),
                    decoder: m.decoder_type(),
                },
                accumulation_timeout_us: None,
            },
            GpuCostModel::v100(),
            profile,
        );
        let arr = vec![(
            0,
            RequestInput::Pair {
                src: vec![2; 8],
                decode_len: 6,
            },
        )];
        let out = simulate(&mut srv, &arr, SimOptions::default());
        let s = out.recorder.summary();
        // 10 padded encoder + 10 padded decoder kernel-floor steps at
        // batch 1: around 3 ms in total.
        assert!(s.p50_ms > 2.0, "p50 {}", s.p50_ms);
    }

    #[test]
    #[should_panic]
    fn trees_are_rejected() {
        use bm_model::TreeShape;
        let mut srv = lstm_server(10);
        srv.on_arrival(
            SimRequest {
                id: 0,
                input: RequestInput::Tree(TreeShape::leaf(1)),
                arrival_us: 0,
                deadline_us: None,
                priority: 0,
            },
            0,
        );
    }
}
