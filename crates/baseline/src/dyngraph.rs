//! Dynamic graph-merging baselines (TensorFlow Fold and DyNet, §2.3,
//! §7.5).
//!
//! Both systems "first generate the dataflow graph for each request and
//! then attempt to merge all dataflow graphs into one graph by combining
//! nodes corresponding to the same operation while maintaining the data
//! dependency". The merged graph executes level by level; batch size per
//! level equals the number of fused nodes, so batching degrades at the
//! higher tree levels (§7.5).
//!
//! The presets differ in where their overheads lie, per the paper's
//! measurements:
//!
//! - **Fold**: graph construction/merging "takes much longer than
//!   performing the actual computation"; the authors optimized it by
//!   overlapping construction with execution, so a batch occupies the
//!   device for `max(exec, merge)`.
//! - **DyNet**: much cheaper merging (not overlapped), but batching at
//!   single-operator granularity adds per-level kernel-launch overhead.

use std::collections::{HashMap, VecDeque};

use bm_device::{CostProfile, GpuCostModel};
use bm_model::Model;
use bm_sim::{Server, SimRequest, WorkItem};
use std::sync::Arc;

use crate::levels::{level_histogram, merge_histograms};

/// Tuning of a [`DynGraphServer`].
#[derive(Debug, Clone, Copy)]
pub struct DynGraphConfig {
    /// Maximum number of *input requests* merged into one batch (64 for
    /// TreeLSTM in §7.5 — note it bounds trees, not fused operators).
    pub max_batch: usize,
    /// Graph construction/merge cost per graph node, µs.
    pub merge_us_per_node: f64,
    /// Whether merging overlaps with the previous batch's execution
    /// (the authors' Fold optimization).
    pub overlap_merge: bool,
    /// Extra per-level launch overhead, µs (operator-granularity
    /// batching à la DyNet).
    pub per_level_extra_us: f64,
}

impl DynGraphConfig {
    /// TensorFlow Fold preset.
    pub fn fold(max_batch: usize) -> Self {
        DynGraphConfig {
            max_batch,
            merge_us_per_node: 32.0,
            overlap_merge: true,
            per_level_extra_us: 0.0,
        }
    }

    /// DyNet preset.
    pub fn dynet(max_batch: usize) -> Self {
        DynGraphConfig {
            max_batch,
            merge_us_per_node: 6.0,
            overlap_merge: false,
            per_level_extra_us: 25.0,
        }
    }
}

struct Pending {
    id: u64,
    arrival_us: u64,
}

struct RunningBatch {
    requests: Vec<Pending>,
    started_us: u64,
}

/// A dynamic graph-merging baseline server.
pub struct DynGraphServer {
    model: Arc<dyn Model>,
    cfg: DynGraphConfig,
    cost: GpuCostModel,
    profile: CostProfile,
    queue: VecDeque<(
        Pending,
        Vec<std::collections::BTreeMap<bm_cell::CellTypeId, usize>>,
    )>,
    running: HashMap<u64, RunningBatch>,
    next_item: u64,
    completions: Vec<(u64, u64, u64, u64)>,
    pending: usize,
    /// Execution time of the previous batch — the budget a Fold-style
    /// overlapped merge can hide under.
    last_exec_us: f64,
}

impl DynGraphServer {
    /// Creates the server.
    pub fn new(
        model: Arc<dyn Model>,
        cfg: DynGraphConfig,
        cost: GpuCostModel,
        profile: CostProfile,
    ) -> Self {
        DynGraphServer {
            model,
            cfg,
            cost,
            profile,
            queue: VecDeque::new(),
            running: HashMap::new(),
            next_item: 0,
            completions: Vec::new(),
            pending: 0,
            last_exec_us: 0.0,
        }
    }
}

impl Server for DynGraphServer {
    fn on_arrival(&mut self, req: SimRequest, _now_us: u64) {
        let graph = self.model.unfold(&req.input);
        let hist = level_histogram(&graph);
        self.queue.push_back((
            Pending {
                id: req.id,
                arrival_us: req.arrival_us,
            },
            hist,
        ));
        self.pending += 1;
    }

    fn next_work(&mut self, _worker: usize, _now_us: u64) -> Vec<WorkItem> {
        if self.queue.is_empty() {
            return Vec::new();
        }
        let take = self.queue.len().min(self.cfg.max_batch);
        let mut requests = Vec::with_capacity(take);
        let mut hists = Vec::with_capacity(take);
        let mut total_nodes = 0usize;
        for _ in 0..take {
            let (p, h) = self.queue.pop_front().expect("nonempty");
            total_nodes += h.iter().map(|l| l.values().sum::<usize>()).sum::<usize>();
            requests.push(p);
            hists.push(h);
        }
        // Execute the merged graph level by level.
        let merged = merge_histograms(&hists);
        let mut exec_us = self.cost.sched_overhead_us;
        for level in &merged {
            for (&ct, &count) in level {
                exec_us += self
                    .cost
                    .kernel_time_from_flops(self.profile.flops(ct, count));
                exec_us += self.cfg.per_level_extra_us;
            }
        }
        let merge_us = total_nodes as f64 * self.cfg.merge_us_per_node;
        let duration = if self.cfg.overlap_merge {
            // Construction of this batch overlapped the previous batch's
            // execution; only the excess shows, plus this batch's exec.
            exec_us + (merge_us - self.last_exec_us).max(0.0)
        } else {
            exec_us + merge_us
        };
        self.last_exec_us = exec_us;
        let id = self.next_item;
        self.next_item += 1;
        self.running.insert(
            id,
            RunningBatch {
                requests,
                started_us: 0,
            },
        );
        vec![WorkItem {
            id,
            duration_us: duration.round() as u64,
        }]
    }

    fn on_work_started(&mut self, item: u64, now_us: u64) {
        if let Some(b) = self.running.get_mut(&item) {
            b.started_us = now_us;
        }
    }

    fn on_work_done(&mut self, _worker: usize, item: u64, now_us: u64) {
        let batch = self.running.remove(&item).expect("known batch");
        for r in &batch.requests {
            self.completions
                .push((r.id, r.arrival_us, batch.started_us, now_us));
        }
        self.pending -= batch.requests.len();
    }

    fn drain_completions(&mut self) -> Vec<(u64, u64, u64, u64)> {
        std::mem::take(&mut self.completions)
    }

    fn pending_requests(&self) -> usize {
        self.pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_model::{RequestInput, TreeLstm};
    use bm_sim::{simulate, SimOptions};
    use bm_workload::{Dataset, LengthDistribution, PoissonArrivals};

    fn tree_arrivals(n: usize, rate: f64) -> Vec<(u64, RequestInput)> {
        let ds = Dataset::trees(200, LengthDistribution::treebank(), 900, 5);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        PoissonArrivals::new(rate, 8)
            .take(n)
            .map(|t| (t, ds.sample(&mut rng).clone()))
            .collect()
    }

    fn server(cfg: DynGraphConfig) -> DynGraphServer {
        let m = Arc::new(TreeLstm::small());
        let profile = CostProfile::paper_scale(m.registry(), 1024, 30_000);
        DynGraphServer::new(m, cfg, GpuCostModel::v100(), profile)
    }

    #[test]
    fn fold_sustains_low_tree_load() {
        let mut srv = server(DynGraphConfig::fold(64));
        let out = simulate(&mut srv, &tree_arrivals(400, 300.0), SimOptions::default());
        assert!(!out.saturated, "300 req/s is under Fold's peak");
    }

    #[test]
    fn fold_saturates_before_dynet() {
        // Paper §7.5: DyNet's peak throughput clearly exceeds Fold's.
        let arr = tree_arrivals(1500, 1500.0);
        let mut fold = server(DynGraphConfig::fold(64));
        let out_fold = simulate(&mut fold, &arr, SimOptions::default());
        let mut dynet = server(DynGraphConfig::dynet(64));
        let out_dynet = simulate(&mut dynet, &arr, SimOptions::default());
        let fold_lat = if out_fold.saturated {
            f64::INFINITY
        } else {
            out_fold.recorder.summary().p90_ms
        };
        let dynet_lat = out_dynet.recorder.summary().p90_ms;
        assert!(
            !out_dynet.saturated,
            "DyNet should sustain 1.5k req/s (peak ~2.1k)"
        );
        assert!(dynet_lat < fold_lat, "dynet {dynet_lat} vs fold {fold_lat}");
    }

    #[test]
    fn merged_batch_completes_together() {
        // A blocker keeps the device busy; the two trees behind it merge
        // into one batch and complete together.
        let trees = tree_arrivals(3, 100.0);
        let mut srv = server(DynGraphConfig::dynet(64));
        let arr = vec![
            (0, trees[0].1.clone()),
            (1, trees[1].1.clone()),
            (2, trees[2].1.clone()),
        ];
        let out = simulate(&mut srv, &arr, SimOptions::default());
        let mut t = out.recorder.timings().to_vec();
        t.sort_by_key(|x| x.arrival_us);
        assert_eq!(t.len(), 3);
        assert_eq!(t[1].completion_us, t[2].completion_us);
    }

    #[test]
    fn small_batches_at_low_load_keep_latency_low() {
        // At low load DyNet executes near-singleton batches: latency
        // stays in the low milliseconds rather than the tens.
        let mut srv = server(DynGraphConfig::dynet(64));
        let out = simulate(&mut srv, &tree_arrivals(300, 100.0), SimOptions::default());
        assert!(!out.saturated);
        assert!(out.recorder.summary().p50_ms < 20.0);
    }
}
