//! The "ideal" fixed-graph baseline of Figure 15.
//!
//! "We implement an ideal baseline system by hardcoding in TensorFlow a
//! dataflow graph matching the fixed binary tree structure. Each node in
//! this dataflow graph can execute up to 64 corresponding operations,
//! one for each input in a batch size of 64." Every identically-shaped
//! request executes the same static graph — one kernel per graph node at
//! the full batch size, zero merge overhead — so its throughput is an
//! upper bound for graph batching on fixed inputs.

use std::collections::{HashMap, VecDeque};

use bm_cell::CellTypeId;
use bm_device::{CostProfile, GpuCostModel};
use bm_model::{CellGraph, Model, RequestInput};
use bm_sim::{Server, SimRequest, WorkItem};
use std::sync::Arc;

/// The ideal static-graph baseline.
pub struct IdealServer {
    cfg_max_batch: usize,
    cost: GpuCostModel,
    profile: CostProfile,
    /// The hardcoded graph's node cell types, in execution order.
    node_types: Vec<CellTypeId>,
    /// The one input shape the static graph supports.
    expected: RequestInput,
    queue: VecDeque<(u64, u64)>,
    running: HashMap<u64, (Vec<(u64, u64)>, u64)>,
    next_item: u64,
    completions: Vec<(u64, u64, u64, u64)>,
    pending: usize,
}

impl IdealServer {
    /// Builds the server for the single input shape `expected`.
    pub fn new(
        model: Arc<dyn Model>,
        expected: RequestInput,
        max_batch: usize,
        cost: GpuCostModel,
        profile: CostProfile,
    ) -> Self {
        let graph: CellGraph = model.unfold(&expected);
        let node_types = graph.nodes().iter().map(|n| n.cell_type).collect();
        IdealServer {
            cfg_max_batch: max_batch,
            cost,
            profile,
            node_types,
            expected,
            queue: VecDeque::new(),
            running: HashMap::new(),
            next_item: 0,
            completions: Vec::new(),
            pending: 0,
        }
    }

    /// Device time of the static graph at batch size `b`: one kernel per
    /// node, batch `b` each (the Figure 15 description: "a series of 31
    /// TreeLSTM cells for a batch of inputs").
    fn duration_us(&self, b: usize) -> f64 {
        let mut t = self.cost.sched_overhead_us;
        for &ct in &self.node_types {
            t += self.cost.kernel_time_from_flops(self.profile.flops(ct, b));
        }
        t
    }
}

impl Server for IdealServer {
    fn on_arrival(&mut self, req: SimRequest, _now_us: u64) {
        assert_eq!(
            req.input, self.expected,
            "ideal baseline only serves its hardcoded input shape"
        );
        self.queue.push_back((req.id, req.arrival_us));
        self.pending += 1;
    }

    fn next_work(&mut self, _worker: usize, _now_us: u64) -> Vec<WorkItem> {
        if self.queue.is_empty() {
            return Vec::new();
        }
        let take = self.queue.len().min(self.cfg_max_batch);
        let requests: Vec<(u64, u64)> = self.queue.drain(..take).collect();
        let duration = self.duration_us(requests.len());
        let id = self.next_item;
        self.next_item += 1;
        self.running.insert(id, (requests, 0));
        vec![WorkItem {
            id,
            duration_us: duration.round() as u64,
        }]
    }

    fn on_work_started(&mut self, item: u64, now_us: u64) {
        if let Some(b) = self.running.get_mut(&item) {
            b.1 = now_us;
        }
    }

    fn on_work_done(&mut self, _worker: usize, item: u64, now_us: u64) {
        let (requests, started) = self.running.remove(&item).expect("known batch");
        for (id, arrival) in &requests {
            self.completions.push((*id, *arrival, started, now_us));
        }
        self.pending -= requests.len();
    }

    fn drain_completions(&mut self) -> Vec<(u64, u64, u64, u64)> {
        std::mem::take(&mut self.completions)
    }

    fn pending_requests(&self) -> usize {
        self.pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_model::{TreeLstm, TreeShape};
    use bm_sim::{simulate, SimOptions};
    use bm_workload::PoissonArrivals;

    fn fixed_tree() -> RequestInput {
        RequestInput::Tree(TreeShape::complete(16, 100))
    }

    fn server() -> IdealServer {
        let m = Arc::new(TreeLstm::small());
        let profile = CostProfile::paper_scale(m.registry(), 1024, 30_000);
        IdealServer::new(m, fixed_tree(), 64, GpuCostModel::v100(), profile)
    }

    fn arrivals(n: usize, rate: f64) -> Vec<(u64, RequestInput)> {
        PoissonArrivals::new(rate, 4)
            .take(n)
            .map(|t| (t, fixed_tree()))
            .collect()
    }

    #[test]
    fn executes_fixed_graph() {
        let mut srv = server();
        let out = simulate(&mut srv, &arrivals(100, 500.0), SimOptions::default());
        assert!(!out.saturated);
        assert_eq!(out.recorder.len(), 100);
        // 31 kernels at >= 150 µs floor each: at least ~4.7 ms.
        assert!(out.recorder.summary().p50_ms >= 4.0);
    }

    #[test]
    fn batch_completes_together() {
        // A blocker keeps the device busy; the next two requests batch.
        let mut srv = server();
        let arr = vec![(0, fixed_tree()), (1, fixed_tree()), (2, fixed_tree())];
        let out = simulate(&mut srv, &arr, SimOptions::default());
        let mut t = out.recorder.timings().to_vec();
        t.sort_by_key(|x| x.arrival_us);
        assert_eq!(t[1].completion_us, t[2].completion_us);
        assert!(t[1].start_us >= t[0].completion_us);
    }

    #[test]
    #[should_panic]
    fn rejects_other_shapes() {
        let mut srv = server();
        srv.on_arrival(
            SimRequest {
                id: 0,
                input: RequestInput::Tree(TreeShape::leaf(1)),
                arrival_us: 0,
                deadline_us: None,
                priority: 0,
            },
            0,
        );
    }

    #[test]
    fn high_load_sustained_by_full_batches() {
        let mut srv = server();
        let out = simulate(&mut srv, &arrivals(4000, 5000.0), SimOptions::default());
        assert!(!out.saturated, "ideal should sustain 5k identical trees/s");
    }
}
