//! Property tests for the metrics crate.

use bm_metrics::{Cdf, LatencyRecorder, RequestTiming};
use proptest::prelude::*;

fn timings() -> impl Strategy<Value = Vec<RequestTiming>> {
    proptest::collection::vec(
        (0u64..1_000_000, 0u64..10_000, 1u64..100_000).prop_map(|(a, q, c)| RequestTiming {
            arrival_us: a,
            start_us: a + q,
            completion_us: a + q + c,
        }),
        1..200,
    )
}

proptest! {
    #[test]
    fn quantiles_are_monotone(samples in proptest::collection::vec(0.0f64..1e6, 1..500)) {
        let cdf = Cdf::new(samples);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        for w in qs.windows(2) {
            prop_assert!(cdf.quantile(w[0]) <= cdf.quantile(w[1]));
        }
        prop_assert_eq!(cdf.quantile(1.0), cdf.max());
        prop_assert!(cdf.min() <= cdf.mean() && cdf.mean() <= cdf.max());
    }

    #[test]
    fn fraction_le_is_monotone_and_bounded(samples in proptest::collection::vec(0.0f64..1e3, 1..200)) {
        let cdf = Cdf::new(samples);
        let mut prev = 0.0;
        for x in [0.0, 1.0, 10.0, 100.0, 1e3, 1e4] {
            let f = cdf.fraction_le(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= prev);
            prev = f;
        }
        prop_assert_eq!(cdf.fraction_le(f64::MAX), 1.0);
    }

    #[test]
    fn recorder_decomposition_always_sums(ts in timings()) {
        let mut r = LatencyRecorder::new();
        for t in &ts {
            r.record(*t);
        }
        // Queueing + computation == latency for every request, so the
        // means must sum exactly.
        let q = r.queueing_cdf().mean();
        let c = r.computation_cdf().mean();
        let l = r.latency_cdf().mean();
        prop_assert!((q + c - l).abs() < 1e-6, "{q} + {c} != {l}");
        // Summary percentiles are ordered.
        let s = r.summary();
        prop_assert!(s.p50_ms <= s.p90_ms && s.p90_ms <= s.p99_ms);
        prop_assert!(s.count == ts.len());
        prop_assert!(s.throughput_rps > 0.0);
    }

    #[test]
    fn trimming_never_grows(ts in timings(), warm in 0usize..50, cool in 0usize..50) {
        let mut r = LatencyRecorder::new();
        for t in &ts {
            r.record(*t);
        }
        let trimmed = r.trimmed(warm, cool);
        prop_assert!(trimmed.len() <= r.len());
        prop_assert_eq!(trimmed.len(), r.len().saturating_sub(cool).saturating_sub(warm));
    }
}
