//! Plain-text result tables (markdown and CSV) for the harness output.

use std::fmt::Write as _;

/// A simple result table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders as column-aligned GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(s, " {c:w$} |");
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders as CSV (RFC-4180 quoting for cells containing commas or
    /// quotes).
    pub fn to_csv(&self) -> String {
        let quote = |c: &str| {
            if c.contains([',', '"', '\n']) {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float with 1 decimal place (latencies in ms).
pub fn fmt1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["long-name".into(), "22".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| long-name | 22    |") || md.contains("| long-name |"));
        assert_eq!(md.lines().count(), 5);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["has,comma".into(), "has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }
}
