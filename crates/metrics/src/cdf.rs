//! An empirical CDF over `f64` samples.

/// An empirical cumulative distribution function.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples, ignoring NaNs.
    ///
    /// # Panics
    ///
    /// Panics if no finite samples remain.
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|v| v.is_finite());
        assert!(!samples.is_empty(), "empty sample set");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `q`-quantile, `0 <= q <= 1` (nearest-rank).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// Fraction of samples `<= x`.
    pub fn fraction_le(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("nonempty")
    }

    /// `(x, F(x))` plot points, thinned to at most `points` entries.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let step = (n / points.max(1)).max(1);
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            out.push((self.sorted[i], (i + 1) as f64 / n as f64));
            i += step;
        }
        if out.last().map(|&(x, _)| x) != Some(self.max()) {
            out.push((self.max(), 1.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_data() {
        let c = Cdf::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(c.quantile(0.5), 50.0);
        assert_eq!(c.quantile(0.99), 99.0);
        assert_eq!(c.quantile(1.0), 100.0);
        assert_eq!(c.quantile(0.0), 1.0);
    }

    #[test]
    fn fraction_le_bounds() {
        let c = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.fraction_le(0.0), 0.0);
        assert_eq!(c.fraction_le(2.0), 0.5);
        assert_eq!(c.fraction_le(10.0), 1.0);
    }

    #[test]
    fn nan_filtered() {
        let c = Cdf::new(vec![1.0, f64::NAN, 3.0]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.mean(), 2.0);
    }

    #[test]
    #[should_panic]
    fn all_nan_panics() {
        Cdf::new(vec![f64::NAN]);
    }

    #[test]
    fn curve_ends_at_one() {
        let c = Cdf::new((0..1000).map(|i| i as f64).collect());
        let curve = c.curve(20);
        assert!(curve.len() <= 22);
        assert_eq!(curve.last().unwrap().1, 1.0);
        for w in curve.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
    }
}
