//! Latency recording, percentiles, CDFs and result table formatting.
//!
//! The paper reports, per offered load: 50/90/99-percentile latency and
//! throughput (Figures 7, 8, 11, 13, 14, 15), and CDFs of queueing and
//! computation time (Figure 9). This crate provides the measurement
//! plumbing all servers share, plus plain-text table/CSV rendering for
//! the harness.
//!
//! All timestamps are in **microseconds**; latencies are reported in
//! milliseconds.

mod cdf;
mod recorder;
mod sla;
mod table;
pub mod timeline;

pub use cdf::Cdf;
pub use recorder::{LatencyRecorder, RequestTiming, Summary};
pub use sla::SlaSummary;
pub use table::{fmt1, Table};
pub use timeline::{reconstruct_timelines, render_timelines, RequestTimeline, TimelineEntry};

/// Converts microseconds to milliseconds.
pub fn us_to_ms(us: u64) -> f64 {
    us as f64 / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversion() {
        assert_eq!(us_to_ms(1_500), 1.5);
        assert_eq!(us_to_ms(0), 0.0);
    }
}
