//! Per-request timeline reconstruction from scheduler trace events.
//!
//! A [`bm_trace::TraceSink`] captures a flat, interleaved event stream;
//! this module regroups it by request. Task-level events
//! (`task_started`, `task_completed`) carry no request id — the
//! `batch_formed` event that created the task does, so reconstruction
//! first builds a task → requests map and then attributes each task
//! event to every request batched into it.

use std::collections::HashMap;

use bm_trace::{EventKind, TraceEvent};

/// One step in a request's reconstructed lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEntry {
    /// Timestamp, µs on the driver's clock.
    pub ts_us: u64,
    /// Stable snake_case event name (see [`EventKind::name`]).
    pub label: &'static str,
    /// Human-readable detail, e.g. `"task 4 on worker 1 (batch 12, saturation)"`.
    pub detail: String,
}

/// The reconstructed lifecycle of one request, oldest entry first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTimeline {
    /// The request id.
    pub request: u64,
    /// Lifecycle steps ordered by timestamp (ties keep trace order).
    pub entries: Vec<TimelineEntry>,
}

impl RequestTimeline {
    /// Timestamp of the `request_arrived` entry, if captured.
    pub fn arrival_us(&self) -> Option<u64> {
        self.ts_of("request_arrived")
    }

    /// Timestamp of the first batch containing this request — when the
    /// scheduler first dispatched any of its nodes.
    pub fn first_dispatch_us(&self) -> Option<u64> {
        self.ts_of("batch_formed")
    }

    /// Timestamp of the terminal entry (`request_completed`,
    /// `request_expired` or `request_rejected`), if captured.
    pub fn end_us(&self) -> Option<u64> {
        self.entries
            .iter()
            .rev()
            .find(|e| {
                matches!(
                    e.label,
                    "request_completed" | "request_expired" | "request_rejected"
                )
            })
            .map(|e| e.ts_us)
    }

    fn ts_of(&self, label: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.label == label)
            .map(|e| e.ts_us)
    }

    /// Renders the timeline as aligned plain text, one entry per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let span = match (self.arrival_us(), self.end_us()) {
            (Some(a), Some(e)) => format!(" ({} µs in system)", e.saturating_sub(a)),
            _ => String::new(),
        };
        out.push_str(&format!("request {}{span}\n", self.request));
        for e in &self.entries {
            out.push_str(&format!(
                "  {:>12} µs  {:<18} {}\n",
                e.ts_us, e.label, e.detail
            ));
        }
        out
    }
}

/// Regroups a flat trace into per-request timelines, ordered by first
/// appearance in the trace. Events naming no request (and tasks whose
/// `batch_formed` fell outside the captured window) are skipped.
///
/// Each timeline is sorted by timestamp (stable, so simultaneous events
/// keep their trace order): under pipelined dispatch the manager learns
/// a task's worker-clock start time only when its completion drains, so
/// the raw stream can record a later dispatch before an earlier start.
pub fn reconstruct_timelines(events: &[TraceEvent]) -> Vec<RequestTimeline> {
    // Pass 1: task → (requests, worker, detail context) from batch_formed.
    let mut task_requests: HashMap<u64, Vec<u64>> = HashMap::new();
    for ev in events {
        if let EventKind::BatchFormed { task, requests, .. } = &ev.kind {
            task_requests.insert(*task, requests.clone());
        }
    }

    // Pass 2: attribute every event to its request(s), preserving order.
    let mut order: Vec<u64> = Vec::new();
    let mut by_request: HashMap<u64, Vec<TimelineEntry>> = HashMap::new();
    let mut push = |order: &mut Vec<u64>, req: u64, entry: TimelineEntry| {
        by_request
            .entry(req)
            .or_insert_with(|| {
                order.push(req);
                Vec::new()
            })
            .push(entry);
    };

    for ev in events {
        let label = ev.kind.name();
        match &ev.kind {
            EventKind::RequestArrived {
                request,
                nodes,
                subgraphs,
            } => push(
                &mut order,
                *request,
                TimelineEntry {
                    ts_us: ev.ts_us,
                    label,
                    detail: format!("{nodes} nodes in {subgraphs} subgraph(s)"),
                },
            ),
            EventKind::RequestRejected { request, reason } => push(
                &mut order,
                *request,
                TimelineEntry {
                    ts_us: ev.ts_us,
                    label,
                    detail: format!("reason={reason}"),
                },
            ),
            EventKind::NodesEnqueued {
                request,
                subgraph,
                cell_type,
                count,
            } => push(
                &mut order,
                *request,
                TimelineEntry {
                    ts_us: ev.ts_us,
                    label,
                    detail: format!(
                        "{count} node(s) of subgraph {subgraph} on cell type {cell_type}"
                    ),
                },
            ),
            EventKind::BatchFormed {
                task,
                worker,
                cell_type,
                batch,
                reason,
                requests,
                ..
            } => {
                for req in requests {
                    push(
                        &mut order,
                        *req,
                        TimelineEntry {
                            ts_us: ev.ts_us,
                            label,
                            detail: format!(
                                "task {task} on worker {worker} \
                                 (cell type {cell_type}, batch {batch}, {reason})"
                            ),
                        },
                    );
                }
            }
            EventKind::TaskStarted { task, worker } | EventKind::TaskCompleted { task, worker } => {
                if let Some(reqs) = task_requests.get(task) {
                    for req in reqs {
                        push(
                            &mut order,
                            *req,
                            TimelineEntry {
                                ts_us: ev.ts_us,
                                label,
                                detail: format!("task {task} on worker {worker}"),
                            },
                        );
                    }
                }
            }
            EventKind::SubgraphPinned {
                subgraph,
                request,
                worker,
            } => push(
                &mut order,
                *request,
                TimelineEntry {
                    ts_us: ev.ts_us,
                    label,
                    detail: format!("subgraph {subgraph} pinned to worker {worker}"),
                },
            ),
            EventKind::SubgraphMigrated {
                subgraph,
                request,
                from,
                to,
                rows,
            } => push(
                &mut order,
                *request,
                TimelineEntry {
                    ts_us: ev.ts_us,
                    label,
                    detail: format!(
                        "subgraph {subgraph} moved worker {from} -> {to} ({rows} row(s))"
                    ),
                },
            ),
            EventKind::CancelRequested {
                request,
                dropped_nodes,
                draining,
            } => push(
                &mut order,
                *request,
                TimelineEntry {
                    ts_us: ev.ts_us,
                    label,
                    detail: format!(
                        "{dropped_nodes} unsubmitted node(s) dropped{}",
                        if *draining {
                            ", in-flight tasks draining"
                        } else {
                            ""
                        }
                    ),
                },
            ),
            EventKind::RequestExpired { request } => push(
                &mut order,
                *request,
                TimelineEntry {
                    ts_us: ev.ts_us,
                    label,
                    detail: "deadline passed".to_string(),
                },
            ),
            EventKind::RequestCompleted {
                request,
                executed,
                total,
                cancelled,
            } => push(
                &mut order,
                *request,
                TimelineEntry {
                    ts_us: ev.ts_us,
                    label,
                    detail: format!(
                        "{executed}/{total} nodes executed{}",
                        if *cancelled { " (cancelled)" } else { "" }
                    ),
                },
            ),
            // Worker-scoped counter samples; not part of any request's
            // timeline (they render as a Chrome trace counter track).
            EventKind::WorkerQueueDepth { .. } => {}
        }
    }

    order
        .into_iter()
        .map(|request| {
            let mut entries = by_request.remove(&request).expect("collected above");
            entries.sort_by_key(|e| e.ts_us);
            RequestTimeline { request, entries }
        })
        .collect()
}

/// Renders every timeline, separated by blank lines — the plain-text
/// artifact written by the trace harness.
pub fn render_timelines(timelines: &[RequestTimeline]) -> String {
    let mut out = String::new();
    for (i, t) in timelines.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&t.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_trace::BatchReason;

    fn ev(ts_us: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { ts_us, kind }
    }

    fn sample_trace() -> Vec<TraceEvent> {
        vec![
            ev(
                10,
                EventKind::RequestArrived {
                    request: 7,
                    nodes: 4,
                    subgraphs: 1,
                },
            ),
            ev(
                10,
                EventKind::NodesEnqueued {
                    request: 7,
                    subgraph: 0,
                    cell_type: 0,
                    count: 1,
                },
            ),
            ev(
                20,
                EventKind::BatchFormed {
                    task: 0,
                    worker: 1,
                    cell_type: 0,
                    batch: 1,
                    reason: BatchReason::Starvation,
                    gather_rows: 1,
                    transfer_rows: 0,
                    requests: vec![7],
                },
            ),
            ev(25, EventKind::TaskStarted { task: 0, worker: 1 }),
            ev(90, EventKind::TaskCompleted { task: 0, worker: 1 }),
            ev(
                90,
                EventKind::RequestCompleted {
                    request: 7,
                    executed: 4,
                    total: 4,
                    cancelled: false,
                },
            ),
        ]
    }

    #[test]
    fn reconstructs_one_request_in_order() {
        let tl = reconstruct_timelines(&sample_trace());
        assert_eq!(tl.len(), 1);
        let t = &tl[0];
        assert_eq!(t.request, 7);
        let labels: Vec<&str> = t.entries.iter().map(|e| e.label).collect();
        assert_eq!(
            labels,
            vec![
                "request_arrived",
                "nodes_enqueued",
                "batch_formed",
                "task_started",
                "task_completed",
                "request_completed",
            ]
        );
        assert_eq!(t.arrival_us(), Some(10));
        assert_eq!(t.first_dispatch_us(), Some(20));
        assert_eq!(t.end_us(), Some(90));
    }

    #[test]
    fn task_events_fan_out_to_every_batched_request() {
        let events = vec![
            ev(
                5,
                EventKind::BatchFormed {
                    task: 3,
                    worker: 0,
                    cell_type: 0,
                    batch: 2,
                    reason: BatchReason::Saturation,
                    gather_rows: 0,
                    transfer_rows: 0,
                    requests: vec![1, 2],
                },
            ),
            ev(6, EventKind::TaskStarted { task: 3, worker: 0 }),
        ];
        let tl = reconstruct_timelines(&events);
        assert_eq!(tl.len(), 2);
        for t in &tl {
            assert_eq!(t.entries.len(), 2);
            assert_eq!(t.entries[1].label, "task_started");
        }
    }

    #[test]
    fn task_without_batch_context_is_skipped() {
        let events = vec![ev(6, EventKind::TaskStarted { task: 9, worker: 0 })];
        assert!(reconstruct_timelines(&events).is_empty());
    }

    #[test]
    fn render_is_stable_plain_text() {
        let tl = reconstruct_timelines(&sample_trace());
        let text = render_timelines(&tl);
        assert!(text.starts_with("request 7 (80 µs in system)"));
        assert!(text.contains("batch_formed"));
        assert!(text.contains("starvation"));
    }
}
