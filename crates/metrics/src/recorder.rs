//! Per-request timing capture and summary statistics.

use crate::cdf::Cdf;

/// The three timestamps of one request's life (§7.3):
///
/// - *queuing time* runs from arrival to start of execution;
/// - *computation time* runs from start of execution to the return of
///   the result;
/// - *latency* is their sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTiming {
    /// Arrival at the system, µs.
    pub arrival_us: u64,
    /// First cell of the request starts executing, µs.
    pub start_us: u64,
    /// Result returned, µs.
    pub completion_us: u64,
}

impl RequestTiming {
    /// Queueing time in µs.
    pub fn queueing_us(&self) -> u64 {
        self.start_us.saturating_sub(self.arrival_us)
    }

    /// Computation time in µs.
    pub fn computation_us(&self) -> u64 {
        self.completion_us.saturating_sub(self.start_us)
    }

    /// Total latency in µs.
    pub fn latency_us(&self) -> u64 {
        self.completion_us.saturating_sub(self.arrival_us)
    }
}

/// Collects request timings and produces summaries.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    timings: Vec<RequestTiming>,
}

/// Aggregate statistics of one measurement run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Completed requests.
    pub count: usize,
    /// Completed requests per second of measured span.
    pub throughput_rps: f64,
    /// Mean total latency, ms.
    pub mean_ms: f64,
    /// Median total latency, ms.
    pub p50_ms: f64,
    /// 90th-percentile total latency, ms.
    pub p90_ms: f64,
    /// 99th-percentile total latency, ms.
    pub p99_ms: f64,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed request.
    ///
    /// # Panics
    ///
    /// Panics if the timestamps are not ordered
    /// (`arrival <= start <= completion`).
    pub fn record(&mut self, t: RequestTiming) {
        assert!(
            t.arrival_us <= t.start_us && t.start_us <= t.completion_us,
            "out-of-order timestamps {t:?}"
        );
        self.timings.push(t);
    }

    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.timings.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.timings.is_empty()
    }

    /// All recorded timings.
    pub fn timings(&self) -> &[RequestTiming] {
        &self.timings
    }

    /// Drops the first `n` and last `m` requests *by completion time* —
    /// warm-up and cool-down trimming for open-loop runs.
    pub fn trimmed(&self, warmup: usize, cooldown: usize) -> LatencyRecorder {
        let mut t = self.timings.clone();
        t.sort_by_key(|x| x.completion_us);
        let end = t.len().saturating_sub(cooldown);
        let start = warmup.min(end);
        LatencyRecorder {
            timings: t[start..end].to_vec(),
        }
    }

    /// CDF of total latency in ms.
    pub fn latency_cdf(&self) -> Cdf {
        Cdf::new(
            self.timings
                .iter()
                .map(|t| t.latency_us() as f64 / 1e3)
                .collect(),
        )
    }

    /// CDF of queueing time in ms (Figure 9a).
    pub fn queueing_cdf(&self) -> Cdf {
        Cdf::new(
            self.timings
                .iter()
                .map(|t| t.queueing_us() as f64 / 1e3)
                .collect(),
        )
    }

    /// CDF of computation time in ms (Figure 9b).
    pub fn computation_cdf(&self) -> Cdf {
        Cdf::new(
            self.timings
                .iter()
                .map(|t| t.computation_us() as f64 / 1e3)
                .collect(),
        )
    }

    /// Aggregate summary.
    ///
    /// Throughput is measured over the span from first arrival to last
    /// completion.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been recorded.
    pub fn summary(&self) -> Summary {
        assert!(!self.timings.is_empty(), "summary of empty recorder");
        let lat = self.latency_cdf();
        let first_arrival = self.timings.iter().map(|t| t.arrival_us).min().unwrap();
        let last_completion = self.timings.iter().map(|t| t.completion_us).max().unwrap();
        let span_s = ((last_completion - first_arrival).max(1)) as f64 / 1e6;
        Summary {
            count: self.timings.len(),
            throughput_rps: self.timings.len() as f64 / span_s,
            mean_ms: lat.mean(),
            p50_ms: lat.quantile(0.50),
            p90_ms: lat.quantile(0.90),
            p99_ms: lat.quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(a: u64, s: u64, c: u64) -> RequestTiming {
        RequestTiming {
            arrival_us: a,
            start_us: s,
            completion_us: c,
        }
    }

    #[test]
    fn timing_decomposition() {
        let x = t(100, 150, 400);
        assert_eq!(x.queueing_us(), 50);
        assert_eq!(x.computation_us(), 250);
        assert_eq!(x.latency_us(), 300);
    }

    #[test]
    fn summary_basic() {
        let mut r = LatencyRecorder::new();
        // Two requests over a 1-second span.
        r.record(t(0, 0, 1_000));
        r.record(t(500_000, 500_100, 1_000_000));
        let s = r.summary();
        assert_eq!(s.count, 2);
        assert!((s.throughput_rps - 2.0).abs() < 1e-9);
        assert!(s.p99_ms >= s.p50_ms);
    }

    #[test]
    #[should_panic]
    fn out_of_order_rejected() {
        let mut r = LatencyRecorder::new();
        r.record(t(100, 50, 200));
    }

    #[test]
    fn trimming_drops_extremes() {
        let mut r = LatencyRecorder::new();
        for i in 0..10u64 {
            r.record(t(i * 100, i * 100, i * 100 + 10));
        }
        let trimmed = r.trimmed(2, 3);
        assert_eq!(trimmed.len(), 5);
        assert!(trimmed.timings().iter().all(|x| x.arrival_us >= 200));
        assert!(trimmed
            .timings()
            .iter()
            .all(|x| x.completion_us <= 6 * 100 + 10));
    }

    #[test]
    fn queueing_and_computation_cdfs_split_latency() {
        let mut r = LatencyRecorder::new();
        r.record(t(0, 40, 100));
        let q = r.queueing_cdf().mean();
        let c = r.computation_cdf().mean();
        let l = r.latency_cdf().mean();
        assert!((q + c - l).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn empty_summary_panics() {
        LatencyRecorder::new().summary();
    }
}
