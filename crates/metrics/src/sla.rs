//! SLA accounting: goodput vs raw throughput under deadlines.
//!
//! Under overload a serving system's raw completion rate stops being the
//! interesting number — what matters is how many requests finish *within
//! their latency SLA* (goodput) and what fraction of offered load that
//! represents (attainment). This module aggregates the per-run drop
//! counters (expired, rejected) with the recorder's completion count
//! into one summary row.

/// Per-run SLA accounting for one offered-load point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlaSummary {
    /// Requests offered to the system (admitted + rejected).
    pub offered: usize,
    /// Requests completed within their deadline.
    pub completed: usize,
    /// Requests whose deadline passed before completion.
    pub expired: usize,
    /// Requests refused by admission control.
    pub rejected: usize,
    /// In-deadline completions per second of measured wall time.
    pub goodput_rps: f64,
}

impl SlaSummary {
    /// Builds a summary from raw counts and the measurement span.
    ///
    /// `span_us` is the wall-clock (or virtual) time the `completed`
    /// count was measured over; a zero span yields zero goodput.
    ///
    /// # Panics
    ///
    /// Panics if the drop counts exceed the offered count.
    pub fn new(
        offered: usize,
        completed: usize,
        expired: usize,
        rejected: usize,
        span_us: u64,
    ) -> Self {
        assert!(
            completed + expired + rejected <= offered,
            "resolved {} > offered {offered}",
            completed + expired + rejected
        );
        let goodput_rps = if span_us == 0 {
            0.0
        } else {
            completed as f64 / (span_us as f64 / 1e6)
        };
        SlaSummary {
            offered,
            completed,
            expired,
            rejected,
            goodput_rps,
        }
    }

    /// Fraction of offered requests that met their deadline, in `[0, 1]`.
    pub fn attainment(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.completed as f64 / self.offered as f64
        }
    }

    /// Fraction of offered requests dropped (expired or rejected).
    pub fn drop_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            (self.expired + self.rejected) as f64 / self.offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attainment_and_goodput() {
        // 80 of 100 requests completed over 2 virtual seconds.
        let s = SlaSummary::new(100, 80, 15, 5, 2_000_000);
        assert!((s.attainment() - 0.8).abs() < 1e-12);
        assert!((s.drop_fraction() - 0.2).abs() < 1e-12);
        assert!((s.goodput_rps - 40.0).abs() < 1e-9);
    }

    #[test]
    fn zero_span_and_zero_offered_are_safe() {
        let s = SlaSummary::new(0, 0, 0, 0, 0);
        assert_eq!(s.goodput_rps, 0.0);
        assert_eq!(s.attainment(), 0.0);
        assert_eq!(s.drop_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "resolved")]
    fn overcounting_drops_panics() {
        let _ = SlaSummary::new(10, 8, 2, 1, 1_000_000);
    }
}
