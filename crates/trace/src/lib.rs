//! Low-overhead structured tracing for the cellular-batching scheduler.
//!
//! The paper's central claims (§4, Algorithm 1) are about *why* the
//! scheduler forms each batch — saturation, starvation, priority,
//! subgraph pinning — yet aggregate counters cannot show a single
//! decision. This crate captures the full request lifecycle as typed
//! [`TraceEvent`]s behind a [`TraceSink`] trait:
//!
//! - [`NoopSink`] — the default; [`TraceSink::enabled`] returns `false`
//!   so instrumented hot paths skip event construction entirely;
//! - [`CounterSink`] — per-event-kind atomic counters for cheap
//!   always-on accounting;
//! - [`RingBufferSink`] — a bounded drop-oldest buffer capturing full
//!   events for export, counting what it drops;
//! - [`SamplingSink`] — per-request head sampling in front of another
//!   sink (keep/drop decided once at arrival by request-id hash), so
//!   million-request replays stay bounded.
//!
//! Exporters:
//!
//! - [`chrome_trace`] — Chrome trace-event JSON loadable in Perfetto or
//!   `chrome://tracing`, with one track per worker, a scheduler track of
//!   instant events, and per-request flow arrows across batched tasks;
//! - `bm_metrics::timeline` — plain-text per-request timelines
//!   reconstructed from the same events.
//!
//! The crate is deliberately dependency-light (ids are plain integers,
//! not the scheduler's newtypes) so every layer — engine, threaded
//! runtime, discrete-event simulator, harness — can share it without
//! cycles.

mod chrome;
mod event;
mod sink;

/// Strict JSON parser, re-exported from `bm-telemetry` (it moved there
/// so snapshot decoding could live beside snapshot encoding without a
/// dependency cycle).
pub use bm_telemetry::json;

pub use chrome::{chrome_trace, chrome_trace_with_meta};
pub use event::{BatchReason, EventKind, RejectReason, TraceEvent, KIND_NAMES, NUM_EVENT_KINDS};
pub use sink::{noop, CounterSink, NoopSink, RingBufferSink, SamplingSink, TraceSink};
