//! Trace sinks: where instrumented code sends events.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::event::{EventKind, TraceEvent, KIND_NAMES, NUM_EVENT_KINDS};

/// A destination for trace events.
///
/// Instrumented hot paths guard event construction behind
/// [`TraceSink::enabled`]:
///
/// ```ignore
/// if sink.enabled() {
///     sink.record(TraceEvent { ts_us, kind: EventKind::TaskStarted { .. } });
/// }
/// ```
///
/// so a disabled sink costs one predictable branch per site and no
/// allocation.
pub trait TraceSink: std::fmt::Debug + Send + Sync {
    /// Whether callers should construct and record events at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event. Must be cheap and non-blocking; sinks that
    /// buffer must bound their memory.
    fn record(&self, event: TraceEvent);
}

/// The default sink: drops everything, reports itself disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: TraceEvent) {}
}

/// A shared no-op sink — the default for every options struct.
pub fn noop() -> Arc<dyn TraceSink> {
    Arc::new(NoopSink)
}

/// Counts events per kind with relaxed atomics — cheap enough to leave
/// on in production for always-on counters.
#[derive(Debug, Default)]
pub struct CounterSink {
    counts: [AtomicU64; NUM_EVENT_KINDS],
}

impl CounterSink {
    /// A fresh zeroed counter sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The count recorded for one event kind (by [`EventKind::index`]).
    pub fn count(&self, kind_index: usize) -> u64 {
        self.counts[kind_index].load(Ordering::Relaxed)
    }

    /// Snapshot of `(kind name, count)` pairs, all kinds.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        KIND_NAMES
            .iter()
            .zip(&self.counts)
            .map(|(n, c)| (*n, c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

impl TraceSink for CounterSink {
    fn record(&self, event: TraceEvent) {
        self.counts[event.kind.index()].fetch_add(1, Ordering::Relaxed);
    }
}

#[derive(Debug)]
struct RingInner {
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A bounded in-memory capture buffer: keeps the most recent `capacity`
/// events, dropping the oldest (and counting drops) when full.
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl RingBufferSink {
    /// A buffer holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBufferSink {
            capacity,
            inner: Mutex::new(RingInner {
                buf: VecDeque::with_capacity(capacity.min(4096)),
                dropped: 0,
            }),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Copies out the buffered events, oldest first, without draining.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().buf.iter().cloned().collect()
    }

    /// Drains the buffered events, oldest first, resetting the buffer
    /// (the drop counter is preserved).
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut g = self.inner.lock();
        g.buf.drain(..).collect()
    }

    /// Records a pre-built event kind at `ts_us` — convenience for
    /// drivers that already hold an `Arc<RingBufferSink>`.
    pub fn push(&self, ts_us: u64, kind: EventKind) {
        self.record(TraceEvent { ts_us, kind });
    }
}

impl TraceSink for RingBufferSink {
    fn record(&self, event: TraceEvent) {
        let mut g = self.inner.lock();
        if g.buf.len() == self.capacity {
            g.buf.pop_front();
            g.dropped += 1;
        }
        g.buf.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, RejectReason};

    fn ev(ts: u64) -> TraceEvent {
        TraceEvent {
            ts_us: ts,
            kind: EventKind::RequestExpired { request: ts },
        }
    }

    #[test]
    fn noop_is_disabled() {
        let s = NoopSink;
        assert!(!s.enabled());
        s.record(ev(1)); // must not panic
    }

    #[test]
    fn counter_sink_counts_per_kind() {
        let s = CounterSink::new();
        s.record(ev(1));
        s.record(ev(2));
        s.record(TraceEvent {
            ts_us: 3,
            kind: EventKind::RequestRejected {
                request: 0,
                reason: RejectReason::QueueFull,
            },
        });
        assert_eq!(s.total(), 3);
        let snap = s.snapshot();
        assert_eq!(
            snap.iter()
                .find(|(n, _)| *n == "request_expired")
                .unwrap()
                .1,
            2
        );
        assert_eq!(
            snap.iter()
                .find(|(n, _)| *n == "request_rejected")
                .unwrap()
                .1,
            1
        );
    }

    #[test]
    fn ring_buffer_drops_oldest_beyond_capacity() {
        let s = RingBufferSink::new(3);
        for t in 0..5 {
            s.record(ev(t));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        let ts: Vec<u64> = s.events().iter().map(|e| e.ts_us).collect();
        assert_eq!(ts, vec![2, 3, 4]);
        let drained = s.drain();
        assert_eq!(drained.len(), 3);
        assert!(s.is_empty());
        assert_eq!(s.dropped(), 2, "drop counter survives drain");
    }
}
