//! Trace sinks: where instrumented code sends events.

use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::event::{EventKind, TraceEvent, KIND_NAMES, NUM_EVENT_KINDS};

/// A destination for trace events.
///
/// Instrumented hot paths guard event construction behind
/// [`TraceSink::enabled`]:
///
/// ```ignore
/// if sink.enabled() {
///     sink.record(TraceEvent { ts_us, kind: EventKind::TaskStarted { .. } });
/// }
/// ```
///
/// so a disabled sink costs one predictable branch per site and no
/// allocation.
pub trait TraceSink: std::fmt::Debug + Send + Sync {
    /// Whether callers should construct and record events at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event. Must be cheap and non-blocking; sinks that
    /// buffer must bound their memory.
    fn record(&self, event: TraceEvent);
}

/// The default sink: drops everything, reports itself disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: TraceEvent) {}
}

/// A shared no-op sink — the default for every options struct.
pub fn noop() -> Arc<dyn TraceSink> {
    Arc::new(NoopSink)
}

/// Counts events per kind with relaxed atomics — cheap enough to leave
/// on in production for always-on counters.
#[derive(Debug, Default)]
pub struct CounterSink {
    counts: [AtomicU64; NUM_EVENT_KINDS],
}

impl CounterSink {
    /// A fresh zeroed counter sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The count recorded for one event kind (by [`EventKind::index`]).
    pub fn count(&self, kind_index: usize) -> u64 {
        self.counts[kind_index].load(Ordering::Relaxed)
    }

    /// Snapshot of `(kind name, count)` pairs, all kinds.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        KIND_NAMES
            .iter()
            .zip(&self.counts)
            .map(|(n, c)| (*n, c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

impl TraceSink for CounterSink {
    fn record(&self, event: TraceEvent) {
        self.counts[event.kind.index()].fetch_add(1, Ordering::Relaxed);
    }
}

#[derive(Debug)]
struct RingInner {
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A bounded in-memory capture buffer: keeps the most recent `capacity`
/// events, dropping the oldest (and counting drops) when full.
///
/// Dropped events are silent data loss for exporters, so the drop count
/// is surfaced three ways: [`RingBufferSink::dropped`] on the sink, an
/// optional telemetry [`bm_telemetry::Counter`] incremented per drop
/// ([`RingBufferSink::with_drop_counter`]), and a warning in
/// [`crate::chrome_trace_with_meta`] export metadata.
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    inner: Mutex<RingInner>,
    drop_counter: Option<bm_telemetry::Counter>,
}

impl RingBufferSink {
    /// A buffer holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBufferSink {
            capacity,
            inner: Mutex::new(RingInner {
                buf: VecDeque::with_capacity(capacity.min(4096)),
                dropped: 0,
            }),
            drop_counter: None,
        }
    }

    /// Also count drops on a registry counter (conventionally
    /// `bm_trace_events_dropped_total`), so live snapshots expose the
    /// loss while the run is still going.
    pub fn with_drop_counter(mut self, counter: bm_telemetry::Counter) -> Self {
        self.drop_counter = Some(counter);
        self
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Copies out the buffered events, oldest first, without draining.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().buf.iter().cloned().collect()
    }

    /// Drains the buffered events, oldest first, resetting the buffer
    /// (the drop counter is preserved).
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut g = self.inner.lock();
        g.buf.drain(..).collect()
    }

    /// Records a pre-built event kind at `ts_us` — convenience for
    /// drivers that already hold an `Arc<RingBufferSink>`.
    pub fn push(&self, ts_us: u64, kind: EventKind) {
        self.record(TraceEvent { ts_us, kind });
    }
}

impl TraceSink for RingBufferSink {
    fn record(&self, event: TraceEvent) {
        let mut g = self.inner.lock();
        if g.buf.len() == self.capacity {
            g.buf.pop_front();
            g.dropped += 1;
            if let Some(c) = &self.drop_counter {
                c.inc();
            }
        }
        g.buf.push_back(event);
    }
}

/// Per-request head sampling in front of another sink.
///
/// The keep/drop decision is made *once per request, at its head* — a
/// deterministic hash of the request id against the configured rate —
/// so a kept request retains **all** of its events (arrival, enqueues,
/// pins, migrations, cancellation, completion) and a dropped request
/// contributes none, keeping per-request timelines intact. This is
/// what lets 10⁶-request replays trace a representative slice at
/// bounded memory instead of truncating the tail.
///
/// Routing rules:
/// - events naming exactly one request ([`EventKind::request`]) follow
///   that request's decision;
/// - [`EventKind::BatchFormed`] is kept when *any* member request is
///   kept; its task id is then remembered so the matching
///   [`EventKind::TaskStarted`]/[`EventKind::TaskCompleted`] pair is
///   kept too (and forgotten at completion);
/// - [`EventKind::WorkerQueueDepth`] counter samples are always kept —
///   they are already bounded and aggregate across requests.
#[derive(Debug)]
pub struct SamplingSink {
    inner: Arc<dyn TraceSink>,
    /// Keep when `hash(request) < threshold`; `rate * 2^64` as u128 so
    /// a rate of 1.0 keeps everything exactly.
    threshold: u128,
    kept_tasks: Mutex<HashSet<u64>>,
    sampled_out: AtomicU64,
}

impl SamplingSink {
    /// Wraps `inner`, keeping each request with probability `rate`
    /// (clamped to `[0, 1]`). The decision is a deterministic function
    /// of the request id, so every sink observing the same run agrees.
    pub fn new(inner: Arc<dyn TraceSink>, rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        SamplingSink {
            inner,
            threshold: (rate * 2f64.powi(64)) as u128,
            kept_tasks: Mutex::new(HashSet::new()),
            sampled_out: AtomicU64::new(0),
        }
    }

    /// Whether request `request` is kept by this sink's rate.
    pub fn keeps(&self, request: u64) -> bool {
        (splitmix64(request) as u128) < self.threshold
    }

    /// Events discarded by the sampling decision (not by the inner
    /// sink's own bounds).
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out.load(Ordering::Relaxed)
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &Arc<dyn TraceSink> {
        &self.inner
    }
}

/// splitmix64 finalizer: cheap, well-mixed, and stable across runs —
/// sequential request ids map to uniformly spread hashes.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl TraceSink for SamplingSink {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn record(&self, event: TraceEvent) {
        let keep = match &event.kind {
            EventKind::BatchFormed { task, requests, .. } => {
                let keep = requests.iter().any(|r| self.keeps(*r));
                if keep {
                    self.kept_tasks.lock().insert(*task);
                }
                keep
            }
            EventKind::TaskStarted { task, .. } => self.kept_tasks.lock().contains(task),
            EventKind::TaskCompleted { task, .. } => self.kept_tasks.lock().remove(task),
            EventKind::WorkerQueueDepth { .. } => true,
            kind => match kind.request() {
                Some(r) => self.keeps(r),
                // Every remaining variant names exactly one request;
                // keep anything new by default until routed here.
                None => true,
            },
        };
        if keep {
            self.inner.record(event);
        } else {
            self.sampled_out.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, RejectReason};

    fn ev(ts: u64) -> TraceEvent {
        TraceEvent {
            ts_us: ts,
            kind: EventKind::RequestExpired { request: ts },
        }
    }

    #[test]
    fn noop_is_disabled() {
        let s = NoopSink;
        assert!(!s.enabled());
        s.record(ev(1)); // must not panic
    }

    #[test]
    fn counter_sink_counts_per_kind() {
        let s = CounterSink::new();
        s.record(ev(1));
        s.record(ev(2));
        s.record(TraceEvent {
            ts_us: 3,
            kind: EventKind::RequestRejected {
                request: 0,
                reason: RejectReason::QueueFull,
            },
        });
        assert_eq!(s.total(), 3);
        let snap = s.snapshot();
        assert_eq!(
            snap.iter()
                .find(|(n, _)| *n == "request_expired")
                .unwrap()
                .1,
            2
        );
        assert_eq!(
            snap.iter()
                .find(|(n, _)| *n == "request_rejected")
                .unwrap()
                .1,
            1
        );
    }

    #[test]
    fn ring_buffer_drops_oldest_beyond_capacity() {
        let s = RingBufferSink::new(3);
        for t in 0..5 {
            s.record(ev(t));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        let ts: Vec<u64> = s.events().iter().map(|e| e.ts_us).collect();
        assert_eq!(ts, vec![2, 3, 4]);
        let drained = s.drain();
        assert_eq!(drained.len(), 3);
        assert!(s.is_empty());
        assert_eq!(s.dropped(), 2, "drop counter survives drain");
    }

    #[test]
    fn ring_buffer_reports_drops_on_telemetry_counter() {
        let tel = bm_telemetry::Telemetry::new();
        let s =
            RingBufferSink::new(2).with_drop_counter(tel.counter("bm_trace_events_dropped_total"));
        for t in 0..5 {
            s.record(ev(t));
        }
        assert_eq!(s.dropped(), 3);
        assert_eq!(
            tel.snapshot().counter_sum("bm_trace_events_dropped_total"),
            3
        );
    }

    #[test]
    fn sampling_rate_extremes() {
        let all = SamplingSink::new(Arc::new(CounterSink::new()), 1.0);
        let none = SamplingSink::new(Arc::new(CounterSink::new()), 0.0);
        for r in 0..1000 {
            assert!(all.keeps(r), "rate 1.0 must keep request {r}");
            assert!(!none.keeps(r), "rate 0.0 must keep nothing, kept {r}");
        }
    }

    #[test]
    fn sampling_keeps_whole_requests_and_their_tasks() {
        let ring = Arc::new(RingBufferSink::new(1024));
        let s = SamplingSink::new(ring.clone(), 0.5);
        // Find one kept and one dropped request id.
        let kept_req = (0..u64::MAX).find(|r| s.keeps(*r)).unwrap();
        let drop_req = (0..u64::MAX).find(|r| !s.keeps(*r)).unwrap();
        for (req, task) in [(kept_req, 1u64), (drop_req, 2u64)] {
            s.record(TraceEvent {
                ts_us: 0,
                kind: EventKind::RequestArrived {
                    request: req,
                    nodes: 1,
                    subgraphs: 1,
                },
            });
            s.record(TraceEvent {
                ts_us: 1,
                kind: EventKind::BatchFormed {
                    task,
                    worker: 0,
                    cell_type: 0,
                    batch: 1,
                    reason: crate::event::BatchReason::Priority,
                    gather_rows: 0,
                    transfer_rows: 0,
                    requests: vec![req],
                },
            });
            s.record(TraceEvent {
                ts_us: 2,
                kind: EventKind::TaskStarted { task, worker: 0 },
            });
            s.record(TraceEvent {
                ts_us: 3,
                kind: EventKind::TaskCompleted { task, worker: 0 },
            });
            s.record(TraceEvent {
                ts_us: 4,
                kind: EventKind::RequestCompleted {
                    request: req,
                    executed: 1,
                    total: 1,
                    cancelled: false,
                },
            });
        }
        // Depth samples always pass.
        s.record(TraceEvent {
            ts_us: 5,
            kind: EventKind::WorkerQueueDepth {
                worker: 0,
                depth: 1,
            },
        });
        let events = ring.events();
        // All 5 events of the kept request plus the depth sample.
        assert_eq!(events.len(), 6);
        assert_eq!(s.sampled_out(), 5);
        for e in &events {
            if let Some(r) = e.kind.request() {
                assert_eq!(r, kept_req);
            }
        }
        // Task bookkeeping is cleaned up at completion.
        assert!(s.kept_tasks.lock().is_empty());
    }

    #[test]
    fn sampling_keeps_batch_with_any_kept_member() {
        let ring = Arc::new(RingBufferSink::new(16));
        let s = SamplingSink::new(ring.clone(), 0.5);
        let kept_req = (0..u64::MAX).find(|r| s.keeps(*r)).unwrap();
        let drop_req = (0..u64::MAX).find(|r| !s.keeps(*r)).unwrap();
        s.record(TraceEvent {
            ts_us: 0,
            kind: EventKind::BatchFormed {
                task: 9,
                worker: 0,
                cell_type: 0,
                batch: 2,
                reason: crate::event::BatchReason::Saturation,
                gather_rows: 0,
                transfer_rows: 0,
                requests: vec![drop_req, kept_req],
            },
        });
        assert_eq!(ring.len(), 1, "mixed batch must be kept");
    }
}
