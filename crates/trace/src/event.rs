//! The structured event schema of the scheduler trace.
//!
//! Ids are plain integers rather than the scheduler's newtypes so the
//! trace layer sits below every other crate: `request` is
//! `bm_core::RequestId.0`, `task` is `TaskId.0`, `subgraph` is
//! `SubgraphId.0`, `worker` is `WorkerId.0` and `cell_type` is
//! `bm_cell::CellTypeId.0`.

use std::fmt;

/// Why the scheduler chose a cell type when forming a batch — the three
/// branches of Algorithm 1's cell-type selection (lines 5–10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchReason {
    /// The type's ready nodes met its maximum batch size (line 6): the
    /// batch is full, so executing it wastes nothing.
    Saturation,
    /// The type had ready nodes but no running tasks (line 8): it was
    /// starving, and its pipeline must be kept busy.
    Starvation,
    /// Fallback (line 9): some type had ready nodes; the highest
    /// priority one wins (e.g. encoder over decoder for Seq2Seq).
    Priority,
    /// The type was picked because it holds the earliest request
    /// deadline (deadline-EDF policy, beyond the paper).
    Deadline,
    /// A held batch was released because a member's slack dropped below
    /// the policy threshold or the queue stopped growing (lazy-slack
    /// policy, beyond the paper).
    SlackRelease,
    /// A held batch was released by the policy's max-delay timeout
    /// (lazy-slack policy, beyond the paper).
    Timeout,
}

impl BatchReason {
    /// Stable lowercase label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            BatchReason::Saturation => "saturation",
            BatchReason::Starvation => "starvation",
            BatchReason::Priority => "priority",
            BatchReason::Deadline => "deadline",
            BatchReason::SlackRelease => "slack_release",
            BatchReason::Timeout => "timeout",
        }
    }
}

impl fmt::Display for BatchReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why admission control refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The active-request cap was reached.
    AtCapacity,
    /// The manager's bounded message queue was full.
    QueueFull,
}

impl RejectReason {
    /// Stable lowercase label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::AtCapacity => "at_capacity",
            RejectReason::QueueFull => "queue_full",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One traced scheduler event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Timestamp, µs on the driver's clock (virtual time under
    /// simulation, µs since start for the threaded runtime).
    pub ts_us: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The request-lifecycle event vocabulary.
///
/// Batch formation carries the *reason* the scheduler picked the cell
/// type ([`BatchReason`]) — the observable form of Algorithm 1's
/// decision procedure.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A request was admitted into the engine and partitioned.
    RequestArrived {
        /// Request id.
        request: u64,
        /// Nodes in the unfolded cell graph.
        nodes: u32,
        /// Subgraphs the graph partitioned into.
        subgraphs: u32,
    },
    /// Admission control refused a request before it reached the engine.
    RequestRejected {
        /// Request id.
        request: u64,
        /// Which control refused it.
        reason: RejectReason,
    },
    /// Dependency-free nodes of a subgraph entered its cell type's
    /// scheduling queue.
    NodesEnqueued {
        /// Owning request.
        request: u64,
        /// The subgraph whose nodes became schedulable.
        subgraph: u64,
        /// The subgraph's cell type.
        cell_type: u32,
        /// How many nodes were enqueued by this transition.
        count: u32,
    },
    /// The scheduler formed one batched task for a worker
    /// (Algorithm 1 `FormBatchedTask`).
    BatchFormed {
        /// Task id.
        task: u64,
        /// Destination worker.
        worker: u32,
        /// The chosen cell type.
        cell_type: u32,
        /// Batch size (node invocations in the task).
        batch: u32,
        /// Why this cell type was selected.
        reason: BatchReason,
        /// State rows needing a gather copy (batch composition changed).
        gather_rows: u32,
        /// State rows migrating from another worker.
        transfer_rows: u32,
        /// Distinct requests contributing entries, in batch order.
        requests: Vec<u64>,
    },
    /// A batched task began executing on its worker.
    TaskStarted {
        /// Task id.
        task: u64,
        /// Executing worker.
        worker: u32,
    },
    /// A batched task finished executing.
    TaskCompleted {
        /// Task id.
        task: u64,
        /// Executing worker.
        worker: u32,
    },
    /// A subgraph with in-flight work was pinned to a worker
    /// (Algorithm 1 lines 20–21).
    SubgraphPinned {
        /// The subgraph.
        subgraph: u64,
        /// Owning request.
        request: u64,
        /// The worker it is pinned to.
        worker: u32,
    },
    /// A subgraph resumed on a different worker than it last executed
    /// on, moving its recurrent state (§4.3 transfer cost).
    SubgraphMigrated {
        /// The subgraph.
        subgraph: u64,
        /// Owning request.
        request: u64,
        /// Previous worker.
        from: u32,
        /// New worker.
        to: u32,
        /// State rows moved.
        rows: u32,
    },
    /// Whole-request cancellation was requested (deadline expiry or
    /// explicit): unsubmitted nodes were dropped.
    CancelRequested {
        /// The request.
        request: u64,
        /// Nodes dropped before reaching a worker.
        dropped_nodes: u32,
        /// Whether in-flight tasks remain to drain before the request
        /// retires.
        draining: bool,
    },
    /// A request's deadline passed before completion.
    RequestExpired {
        /// The request.
        request: u64,
    },
    /// A request retired: all non-cancelled nodes completed.
    RequestCompleted {
        /// The request.
        request: u64,
        /// Nodes actually executed.
        executed: u32,
        /// Total nodes in the unfolded graph.
        total: u32,
        /// Whether the request resolved via cancellation rather than
        /// running to completion.
        cancelled: bool,
    },
    /// A worker's in-flight task count (pipeline occupancy) changed.
    /// Sampled by the manager on every change and exported as a Chrome
    /// trace counter track, so pipeline bubbles — windows where a
    /// worker's queue drained to zero while work existed — are directly
    /// visible in Perfetto.
    WorkerQueueDepth {
        /// The worker.
        worker: u32,
        /// Unfinished tasks dispatched to it (queued + executing).
        depth: u32,
    },
}

/// Number of distinct [`EventKind`] variants (for counter sinks).
pub const NUM_EVENT_KINDS: usize = 12;

impl EventKind {
    /// Dense index of the variant, `0..NUM_EVENT_KINDS`.
    pub fn index(&self) -> usize {
        match self {
            EventKind::RequestArrived { .. } => 0,
            EventKind::RequestRejected { .. } => 1,
            EventKind::NodesEnqueued { .. } => 2,
            EventKind::BatchFormed { .. } => 3,
            EventKind::TaskStarted { .. } => 4,
            EventKind::TaskCompleted { .. } => 5,
            EventKind::SubgraphPinned { .. } => 6,
            EventKind::SubgraphMigrated { .. } => 7,
            EventKind::CancelRequested { .. } => 8,
            EventKind::RequestExpired { .. } => 9,
            EventKind::RequestCompleted { .. } => 10,
            EventKind::WorkerQueueDepth { .. } => 11,
        }
    }

    /// Stable snake_case name of the variant.
    pub fn name(&self) -> &'static str {
        KIND_NAMES[self.index()]
    }

    /// The request the event concerns, when it concerns exactly one.
    pub fn request(&self) -> Option<u64> {
        match self {
            EventKind::RequestArrived { request, .. }
            | EventKind::RequestRejected { request, .. }
            | EventKind::NodesEnqueued { request, .. }
            | EventKind::SubgraphPinned { request, .. }
            | EventKind::SubgraphMigrated { request, .. }
            | EventKind::CancelRequested { request, .. }
            | EventKind::RequestExpired { request }
            | EventKind::RequestCompleted { request, .. } => Some(*request),
            EventKind::BatchFormed { .. }
            | EventKind::TaskStarted { .. }
            | EventKind::TaskCompleted { .. }
            | EventKind::WorkerQueueDepth { .. } => None,
        }
    }
}

/// Variant names indexed by [`EventKind::index`].
pub const KIND_NAMES: [&str; NUM_EVENT_KINDS] = [
    "request_arrived",
    "request_rejected",
    "nodes_enqueued",
    "batch_formed",
    "task_started",
    "task_completed",
    "subgraph_pinned",
    "subgraph_migrated",
    "cancel_requested",
    "request_expired",
    "request_completed",
    "worker_queue_depth",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_names_unique() {
        let kinds: Vec<EventKind> = vec![
            EventKind::RequestArrived {
                request: 0,
                nodes: 1,
                subgraphs: 1,
            },
            EventKind::RequestRejected {
                request: 0,
                reason: RejectReason::AtCapacity,
            },
            EventKind::NodesEnqueued {
                request: 0,
                subgraph: 0,
                cell_type: 0,
                count: 1,
            },
            EventKind::BatchFormed {
                task: 0,
                worker: 0,
                cell_type: 0,
                batch: 1,
                reason: BatchReason::Priority,
                gather_rows: 0,
                transfer_rows: 0,
                requests: vec![0],
            },
            EventKind::TaskStarted { task: 0, worker: 0 },
            EventKind::TaskCompleted { task: 0, worker: 0 },
            EventKind::SubgraphPinned {
                subgraph: 0,
                request: 0,
                worker: 0,
            },
            EventKind::SubgraphMigrated {
                subgraph: 0,
                request: 0,
                from: 0,
                to: 1,
                rows: 1,
            },
            EventKind::CancelRequested {
                request: 0,
                dropped_nodes: 0,
                draining: false,
            },
            EventKind::RequestExpired { request: 0 },
            EventKind::RequestCompleted {
                request: 0,
                executed: 1,
                total: 1,
                cancelled: false,
            },
            EventKind::WorkerQueueDepth {
                worker: 0,
                depth: 2,
            },
        ];
        assert_eq!(kinds.len(), NUM_EVENT_KINDS);
        let mut seen = [false; NUM_EVENT_KINDS];
        for k in &kinds {
            assert!(!seen[k.index()], "duplicate index {}", k.index());
            seen[k.index()] = true;
            assert_eq!(k.name(), KIND_NAMES[k.index()]);
        }
    }
}
