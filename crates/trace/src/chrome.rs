//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! Layout:
//!
//! - one **track per worker** (`tid` = worker id) carrying `B`/`E`
//!   duration slices for every executed batched task, with the batch
//!   size, cell type, formation *reason*, and gather/transfer rows as
//!   slice args;
//! - a **scheduler track** (`tid` = [`SCHEDULER_TID`]) of instant
//!   events: arrivals, enqueues, batch formations, cancellations,
//!   expiries, rejections and completions;
//! - **flow arrows per request** (`ph` `s`/`t`/`f`, flow id = request
//!   id) connecting the batched tasks a request participated in, in
//!   execution order — the visual form of a per-request timeline;
//! - a **counter track per worker** (`ph` `C`) sampling its pipeline
//!   occupancy (tasks dispatched but not completed), so dispatch
//!   bubbles — a worker idling at depth 0 while work exists — show up
//!   as gaps in the counter graph.
//!
//! The output is the JSON-object form (`{"traceEvents": [...]}`), which
//! both Perfetto and `chrome://tracing` load directly. All timestamps
//! are microseconds, matching the trace-event spec.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::event::{EventKind, TraceEvent};

/// The `tid` of the scheduler's instant-event track. Chosen far above
/// any plausible worker id.
pub const SCHEDULER_TID: u32 = 1_000_000;

/// The single `pid` used by every emitted event.
const PID: u32 = 1;

/// Escapes a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Sort rank within one timestamp: metadata, then flow finishes (inside
/// the closing slice), then slice ends, then slice begins, then flow
/// starts/steps (inside the opening slice), then instants.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Rank {
    Meta = 0,
    FlowFinish = 1,
    End = 2,
    Begin = 3,
    FlowStart = 4,
    Instant = 5,
}

struct Emitter {
    rows: Vec<(u64, Rank, String)>,
}

impl Emitter {
    fn push(&mut self, ts: u64, rank: Rank, json: String) {
        self.rows.push((ts, rank, json));
    }

    fn meta_thread_name(&mut self, tid: u32, name: &str) {
        self.push(
            0,
            Rank::Meta,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                esc(name)
            ),
        );
    }

    fn instant(&mut self, ts: u64, name: &str, args: &str) {
        self.push(
            ts,
            Rank::Instant,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"scheduler\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{ts},\"pid\":{PID},\"tid\":{SCHEDULER_TID},\"args\":{{{args}}}}}",
                esc(name)
            ),
        );
    }
}

/// Per-task metadata harvested from `BatchFormed`.
struct TaskMeta {
    cell_type: u32,
    batch: u32,
    reason: &'static str,
    gather_rows: u32,
    transfer_rows: u32,
    requests: Vec<u64>,
}

/// Renders `events` as Chrome trace-event JSON.
///
/// Events need not arrive time-sorted; the exporter orders the output
/// so `ts` is non-decreasing and every `B` is matched by a later `E` on
/// the same track. Zero-duration task slices are widened to 1 µs so the
/// pair stays well-formed.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    chrome_trace_with_meta(events, 0)
}

/// Like [`chrome_trace`], but also records capture loss: when
/// `dropped_events > 0` (e.g. a [`crate::RingBufferSink`] overflowed),
/// the top-level `"metadata"` object carries the count and a warning
/// line so a truncated trace can't silently pass for a complete one.
pub fn chrome_trace_with_meta(events: &[TraceEvent], dropped_events: u64) -> String {
    let mut e = Emitter { rows: Vec::new() };

    // Harvest task metadata, execution intervals and worker ids.
    let mut tasks: HashMap<u64, TaskMeta> = HashMap::new();
    let mut started: HashMap<u64, (u64, u32)> = HashMap::new();
    let mut slices: Vec<(u64, u32, u64, u64)> = Vec::new(); // (task, worker, start, end)
    let mut workers: Vec<u32> = Vec::new();
    let mut completion_ts: HashMap<u64, u64> = HashMap::new();
    for ev in events {
        match &ev.kind {
            EventKind::BatchFormed {
                task,
                worker,
                cell_type,
                batch,
                reason,
                gather_rows,
                transfer_rows,
                requests,
            } => {
                if !workers.contains(worker) {
                    workers.push(*worker);
                }
                tasks.insert(
                    *task,
                    TaskMeta {
                        cell_type: *cell_type,
                        batch: *batch,
                        reason: reason.label(),
                        gather_rows: *gather_rows,
                        transfer_rows: *transfer_rows,
                        requests: requests.clone(),
                    },
                );
            }
            EventKind::TaskStarted { task, worker } => {
                if !workers.contains(worker) {
                    workers.push(*worker);
                }
                started.insert(*task, (ev.ts_us, *worker));
            }
            EventKind::TaskCompleted { task, .. } => {
                if let Some((start, worker)) = started.remove(task) {
                    let end = ev.ts_us.max(start + 1); // widen zero-duration
                    slices.push((*task, worker, start, end));
                }
            }
            EventKind::RequestCompleted { request, .. } | EventKind::RequestExpired { request } => {
                completion_ts.insert(*request, ev.ts_us);
            }
            _ => {}
        }
    }
    workers.sort_unstable();
    slices.sort_by_key(|&(_, _, start, end)| (start, end));

    // Track names.
    e.push(
        0,
        Rank::Meta,
        format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\
             \"args\":{{\"name\":\"batchmaker\"}}}}"
        ),
    );
    for w in &workers {
        e.meta_thread_name(*w, &format!("worker {w}"));
    }
    e.meta_thread_name(SCHEDULER_TID, "scheduler");

    // Task slices.
    for (task, worker, start, end) in &slices {
        let (name, args) = match tasks.get(task) {
            Some(m) => (
                format!("ct{} x{}", m.cell_type, m.batch),
                format!(
                    "\"task\":{task},\"cell_type\":{},\"batch\":{},\"reason\":\"{}\",\
                     \"gather_rows\":{},\"transfer_rows\":{}",
                    m.cell_type, m.batch, m.reason, m.gather_rows, m.transfer_rows
                ),
            ),
            None => (format!("task {task}"), format!("\"task\":{task}")),
        };
        e.push(
            *start,
            Rank::Begin,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"task\",\"ph\":\"B\",\"ts\":{start},\
                 \"pid\":{PID},\"tid\":{worker},\"args\":{{{args}}}}}",
                esc(&name)
            ),
        );
        e.push(
            *end,
            Rank::End,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"task\",\"ph\":\"E\",\"ts\":{end},\
                 \"pid\":{PID},\"tid\":{worker}}}",
                esc(&name)
            ),
        );
        // Busy/idle utilization as a 0/1 counter track per worker:
        // workers execute their slices serially, so toggling at slice
        // edges renders exact busy windows next to the pipeline-depth
        // track. Rank keeps the falling edge before a back-to-back
        // rising edge at the same ts.
        e.push(
            *start,
            Rank::Begin,
            format!(
                "{{\"name\":\"worker {worker} busy\",\"cat\":\"scheduler\",\"ph\":\"C\",\
                 \"ts\":{start},\"pid\":{PID},\"tid\":{worker},\"args\":{{\"busy\":1}}}}"
            ),
        );
        e.push(
            *end,
            Rank::End,
            format!(
                "{{\"name\":\"worker {worker} busy\",\"cat\":\"scheduler\",\"ph\":\"C\",\
                 \"ts\":{end},\"pid\":{PID},\"tid\":{worker},\"args\":{{\"busy\":0}}}}"
            ),
        );
    }

    // Flow arrows: per request, chain its task slices in time order.
    let mut per_request: HashMap<u64, Vec<(u64, u32, u64)>> = HashMap::new();
    for (task, worker, start, end) in &slices {
        if let Some(m) = tasks.get(task) {
            for r in &m.requests {
                per_request
                    .entry(*r)
                    .or_default()
                    .push((*start, *worker, *end));
            }
        }
    }
    let mut flow_requests: Vec<u64> = per_request.keys().copied().collect();
    flow_requests.sort_unstable();
    for r in flow_requests {
        let hops = &per_request[&r];
        if hops.len() < 2 && !completion_ts.contains_key(&r) {
            continue; // nothing to connect
        }
        for (i, (start, worker, _)) in hops.iter().enumerate() {
            let ph = if i == 0 { "s" } else { "t" };
            e.push(
                *start,
                Rank::FlowStart,
                format!(
                    "{{\"name\":\"req {r}\",\"cat\":\"request\",\"ph\":\"{ph}\",\
                     \"id\":{r},\"ts\":{start},\"pid\":{PID},\"tid\":{worker}}}"
                ),
            );
        }
        let &(_, last_worker, last_end) = hops.last().expect("nonempty hops");
        let f_ts = completion_ts
            .get(&r)
            .copied()
            .unwrap_or(last_end)
            .min(last_end);
        e.push(
            f_ts,
            Rank::FlowFinish,
            format!(
                "{{\"name\":\"req {r}\",\"cat\":\"request\",\"ph\":\"f\",\"bp\":\"e\",\
                 \"id\":{r},\"ts\":{f_ts},\"pid\":{PID},\"tid\":{last_worker}}}"
            ),
        );
    }

    // Scheduler instants.
    for ev in events {
        let ts = ev.ts_us;
        match &ev.kind {
            EventKind::RequestArrived {
                request,
                nodes,
                subgraphs,
            } => e.instant(
                ts,
                "arrival",
                &format!("\"request\":{request},\"nodes\":{nodes},\"subgraphs\":{subgraphs}"),
            ),
            EventKind::RequestRejected { request, reason } => e.instant(
                ts,
                "rejected",
                &format!("\"request\":{request},\"reason\":\"{}\"", reason.label()),
            ),
            EventKind::NodesEnqueued {
                request,
                subgraph,
                cell_type,
                count,
            } => e.instant(
                ts,
                "enqueue",
                &format!(
                    "\"request\":{request},\"subgraph\":{subgraph},\
                     \"cell_type\":{cell_type},\"count\":{count}"
                ),
            ),
            EventKind::BatchFormed {
                task,
                worker,
                cell_type,
                batch,
                reason,
                ..
            } => e.instant(
                ts,
                "batch_formed",
                &format!(
                    "\"task\":{task},\"worker\":{worker},\"cell_type\":{cell_type},\
                     \"batch\":{batch},\"reason\":\"{}\"",
                    reason.label()
                ),
            ),
            EventKind::SubgraphPinned {
                subgraph,
                request,
                worker,
            } => e.instant(
                ts,
                "pin",
                &format!("\"subgraph\":{subgraph},\"request\":{request},\"worker\":{worker}"),
            ),
            EventKind::SubgraphMigrated {
                subgraph,
                request,
                from,
                to,
                rows,
            } => e.instant(
                ts,
                "migrate",
                &format!(
                    "\"subgraph\":{subgraph},\"request\":{request},\
                     \"from\":{from},\"to\":{to},\"rows\":{rows}"
                ),
            ),
            EventKind::CancelRequested {
                request,
                dropped_nodes,
                draining,
            } => e.instant(
                ts,
                "cancel",
                &format!(
                    "\"request\":{request},\"dropped_nodes\":{dropped_nodes},\
                     \"draining\":{draining}"
                ),
            ),
            EventKind::RequestExpired { request } => {
                e.instant(ts, "expired", &format!("\"request\":{request}"))
            }
            EventKind::RequestCompleted {
                request,
                executed,
                total,
                cancelled,
            } => e.instant(
                ts,
                "completed",
                &format!(
                    "\"request\":{request},\"executed\":{executed},\"total\":{total},\
                     \"cancelled\":{cancelled}"
                ),
            ),
            EventKind::WorkerQueueDepth { worker, depth } => e.push(
                ts,
                Rank::Instant,
                format!(
                    "{{\"name\":\"worker {worker} pipeline\",\"cat\":\"scheduler\",\
                     \"ph\":\"C\",\"ts\":{ts},\"pid\":{PID},\"tid\":{worker},\
                     \"args\":{{\"depth\":{depth}}}}}"
                ),
            ),
            EventKind::TaskStarted { .. } | EventKind::TaskCompleted { .. } => {}
        }
    }

    e.rows.sort_by_key(|&(ts, rank, _)| (ts, rank));
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",");
    if dropped_events > 0 {
        let _ = write!(
            out,
            "\"metadata\":{{\"dropped_events\":{dropped_events},\"warning\":\
             \"ring buffer overflowed: {dropped_events} oldest events were dropped; \
             the start of this trace is incomplete\"}},"
        );
    }
    out.push_str("\"traceEvents\":[\n");
    for (i, (_, _, json)) in e.rows.iter().enumerate() {
        out.push_str(json);
        if i + 1 < e.rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::BatchReason;

    #[test]
    fn zero_duration_slice_is_widened() {
        let events = vec![
            TraceEvent {
                ts_us: 10,
                kind: EventKind::TaskStarted { task: 1, worker: 0 },
            },
            TraceEvent {
                ts_us: 10,
                kind: EventKind::TaskCompleted { task: 1, worker: 0 },
            },
        ];
        let json = chrome_trace(&events);
        assert!(json.contains("\"ph\":\"B\",\"ts\":10"));
        assert!(json.contains("\"ph\":\"E\",\"ts\":11"));
    }

    #[test]
    fn queue_depth_becomes_a_counter_event() {
        let events = vec![TraceEvent {
            ts_us: 30,
            kind: EventKind::WorkerQueueDepth {
                worker: 1,
                depth: 3,
            },
        }];
        let json = chrome_trace(&events);
        assert!(json.contains("\"name\":\"worker 1 pipeline\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"depth\":3"));
    }

    #[test]
    fn busy_counter_track_toggles_at_slice_edges() {
        let events = vec![
            TraceEvent {
                ts_us: 10,
                kind: EventKind::TaskStarted { task: 1, worker: 3 },
            },
            TraceEvent {
                ts_us: 25,
                kind: EventKind::TaskCompleted { task: 1, worker: 3 },
            },
        ];
        let json = chrome_trace(&events);
        assert!(json.contains("\"name\":\"worker 3 busy\""));
        assert!(json.contains("\"ts\":10") && json.contains("\"busy\":1"));
        assert!(json.contains("\"ts\":25") && json.contains("\"busy\":0"));
    }

    #[test]
    fn drop_metadata_appears_only_when_events_were_dropped() {
        let json = chrome_trace_with_meta(&[], 0);
        assert!(!json.contains("metadata"));
        let json = chrome_trace_with_meta(&[], 17);
        assert!(json.contains("\"dropped_events\":17"));
        assert!(json.contains("incomplete"));
        // The metadata object must still parse as strict JSON.
        assert!(crate::json::parse(&json).is_ok());
    }

    #[test]
    fn reason_appears_in_batch_args() {
        let events = vec![TraceEvent {
            ts_us: 5,
            kind: EventKind::BatchFormed {
                task: 7,
                worker: 2,
                cell_type: 0,
                batch: 64,
                reason: BatchReason::Saturation,
                gather_rows: 64,
                transfer_rows: 0,
                requests: vec![1, 2, 3],
            },
        }];
        let json = chrome_trace(&events);
        assert!(json.contains("\"reason\":\"saturation\""));
        assert!(json.contains("batch_formed"));
    }
}
